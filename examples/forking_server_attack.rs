//! The headline experiment of the paper (§II-B, §VI-C): the byte-by-byte
//! attack against a long-lived forking server, under classic SSP and under
//! P-SSP — driven through the server's connection loop, the way a remote
//! attacker actually sees it.
//!
//! Run with: `cargo run --release --example forking_server_attack`

use polycanary::attacks::{ByteByByteAttack, ForkingServer, VictimConfig};
use polycanary::core::SchemeKind;

fn main() {
    println!("byte-by-byte attack against a forking worker-per-connection server\n");

    // The reconnect loop, by hand: every probe is one connection served by a
    // freshly forked worker.  Under SSP each worker inherits the parent's
    // canary, so a response (instead of a reset) confirms a guessed byte.
    let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 0xD5A7));
    let mut conn = server.connect();
    let outcome = conn.send(b"GET / HTTP/1.1");
    drop(conn);
    println!(
        "handshake: policy = {}, first connection {:?}, {} connection(s) served\n",
        server.canary_policy(),
        outcome,
        server.connections_served()
    );

    for (scheme, budget) in [
        (SchemeKind::Ssp, 5_000),
        (SchemeKind::RafSsp, 5_000),
        (SchemeKind::Pssp, 10_000),
        (SchemeKind::PsspNt, 10_000),
        (SchemeKind::PsspBin32, 10_000),
    ] {
        let mut server = ForkingServer::new(VictimConfig::new(scheme, 0xD5A7));
        let geometry = server.geometry();
        let result = ByteByByteAttack::with_budget(budget).run(&mut server, geometry, scheme);
        if result.success {
            println!(
                "{:<24} BROKEN  — canary recovered and control flow hijacked after {} connections",
                scheme.name(),
                server.connections_served()
            );
        } else {
            println!(
                "{:<24} holds   — attack gave up after {} connections ({} workers crashed, \
                 canaries {})",
                scheme.name(),
                server.connections_served(),
                server.crashed_workers(),
                server.canary_policy()
            );
        }
    }

    println!("\nthe paper reports ~8*2^7 = 1024 expected requests to break SSP;");
    println!("every re-randomizing scheme denies the attacker any accumulated progress.");
}
