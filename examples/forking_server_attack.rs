//! The headline experiment of the paper (§II-B, §VI-C): the byte-by-byte
//! attack against a forking server, under classic SSP and under P-SSP.
//!
//! Run with: `cargo run --release --example forking_server_attack`

use polycanary::attacks::{ByteByByteAttack, ForkingServer, VictimConfig};
use polycanary::core::SchemeKind;

fn main() {
    println!("byte-by-byte attack against a forking worker-per-request server\n");

    for (scheme, budget) in [
        (SchemeKind::Ssp, 5_000),
        (SchemeKind::RafSsp, 5_000),
        (SchemeKind::Pssp, 10_000),
        (SchemeKind::PsspNt, 10_000),
        (SchemeKind::PsspBin32, 10_000),
    ] {
        let mut server = ForkingServer::new(VictimConfig::new(scheme, 0xD5A7));
        let geometry = server.geometry();
        let result = ByteByByteAttack::with_budget(budget).run(&mut server, geometry, scheme);
        if result.success {
            println!(
                "{:<24} BROKEN  — canary recovered and control flow hijacked after {} requests",
                scheme.name(),
                result.trials
            );
        } else {
            println!(
                "{:<24} holds   — attack gave up after {} requests ({} workers crashed)",
                scheme.name(),
                result.trials,
                server.crashed_workers()
            );
        }
    }

    println!("\nthe paper reports ~8*2^7 = 1024 expected requests to break SSP;");
    println!("every re-randomizing scheme denies the attacker any accumulated progress.");
}
