//! The binary-instrumentation deployment (§V-C): take a legacy binary
//! compiled with `-fstack-protector` and upgrade it to P-SSP in place,
//! without changing the stack layout or the code layout.
//!
//! Run with: `cargo run --example binary_rewriting`

use polycanary::compiler::{Compiler, FunctionBuilder, ModuleBuilder};
use polycanary::core::SchemeKind;
use polycanary::rewriter::{LinkMode, Rewriter};
use polycanary::vm::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = ModuleBuilder::new()
        .function(
            FunctionBuilder::new("parse_packet")
                .buffer("packet", 128)
                .vulnerable_copy("packet")
                .compute(400)
                .returns(0)
                .build(),
        )
        .function(FunctionBuilder::new("main").call("parse_packet").returns(0).build());
    // Give the "legacy binary" a realistic amount of other code so the
    // static-link section shows up as a few percent, as in Table II, rather
    // than dominating a toy-sized text section.
    for i in 0..8 {
        let mut helper = FunctionBuilder::new(format!("protocol_helper_{i}")).scalar("state");
        for _ in 0..40 {
            helper = helper.compute(3);
        }
        builder = builder.function(helper.returns(0).build());
    }
    let module = builder.entry("main").build()?;

    // The "legacy binary": compiled with classic SSP.
    let legacy = Compiler::new(SchemeKind::Ssp).compile(&module)?;
    let mut program = legacy.program;
    let before = program.binary_size();

    // Upgrade it in place.
    for mode in [LinkMode::Dynamic, LinkMode::Static] {
        let mut copy = program.clone();
        let report = Rewriter::new().with_link_mode(mode).rewrite(&mut copy)?;
        println!(
            "{:<22} functions rewritten: {} | size {} -> {} bytes ({:+.2}%)",
            format!("{mode:?} link"),
            report.functions_rewritten,
            report.size_before,
            report.size_after,
            report.expansion_percent()
        );
    }

    // Run the dynamically rewritten binary under the 32-bit P-SSP runtime.
    let report = Rewriter::new().rewrite(&mut program)?;
    assert_eq!(report.size_after, before);
    let hooks = SchemeKind::PsspBin32.scheme().runtime_hooks(9);
    let mut machine = Machine::new(program, hooks, 9);

    let mut process = machine.spawn();
    process.set_input(b"ping".to_vec());
    println!("\nbenign packet   : {:?}", machine.run(&mut process)?.exit);

    let mut process = machine.spawn();
    process.set_input(vec![0x41u8; 128 + 32]);
    println!("smashing packet : {:?}", machine.run(&mut process)?.exit);
    Ok(())
}
