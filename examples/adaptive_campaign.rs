//! Adaptive-budget attack campaigns: the same 32-seed §VI-C verdict for a
//! fraction of the requests, plus the machine-readable record export.
//!
//! A fixed-budget campaign attacks every configured victim seed.  An
//! adaptive campaign processes the seed list in fixed-size batches and
//! stops as soon as a Wilson-interval bound proves the verdict (here:
//! "success rate is above / below 1/2 at 95 % confidence"), so unanimous
//! outcomes settle after the first batch.
//!
//! Run with: `cargo run --release --example adaptive_campaign`

use polycanary::attacks::{AttackKind, Campaign, StopRule};
use polycanary::core::SchemeKind;

fn main() {
    println!("fixed vs adaptive byte-by-byte campaigns over 32 victim seeds\n");

    for scheme in [SchemeKind::Ssp, SchemeKind::Pssp] {
        let base = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, scheme)
            .with_seed_range(0xADA9, 32);
        let fixed = base.clone().run();
        let adaptive = base.with_stop_rule(StopRule::settled()).run();

        println!(
            "{:<8} fixed    {:>2}/{} seeds, verdict {:<12} {:>7} total requests",
            scheme.name(),
            fixed.successes(),
            fixed.campaigns(),
            fixed.verdict().label(),
            fixed.total_requests()
        );
        println!(
            "{:<8} adaptive {:>2}/{} seeds, verdict {:<12} {:>7} total requests ({} seeds skipped)",
            scheme.name(),
            adaptive.successes(),
            adaptive.campaigns(),
            adaptive.verdict().label(),
            adaptive.total_requests(),
            adaptive.configured_seeds - adaptive.runs.len()
        );
        // SSP and P-SSP are unanimous populations, so the early stop
        // provably reaches the exhaustive verdict (mixed-rate populations
        // would carry the stop rule's configured error probability).
        assert_eq!(fixed.verdict(), adaptive.verdict(), "unanimous cells keep their verdict");

        println!("\nadaptive campaign as a self-describing JSON record:");
        println!("{}\n", adaptive.record().to_json());
    }
}
