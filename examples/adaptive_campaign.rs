//! Adaptive-budget attack campaigns: the same 32-seed §VI-C verdict for a
//! fraction of the requests, plus the machine-readable record export.
//!
//! A fixed-budget campaign attacks every configured victim seed.  An
//! adaptive campaign stops as soon as its stop rule proves the verdict:
//! the Wilson rule once an interval bound clears the 1/2 threshold (four
//! unanimous victims), the sequential SPRT rule once Wald's likelihood
//! ratio crosses a 5 % error boundary (three unanimous victims — always at
//! most the Wilson cost on unanimous populations).
//!
//! Run with: `cargo run --release --example adaptive_campaign`

use polycanary::attacks::{AttackKind, Campaign, StopRule};
use polycanary::core::SchemeKind;

fn main() {
    println!("fixed vs adaptive byte-by-byte campaigns over 32 victim seeds\n");

    for scheme in [SchemeKind::Ssp, SchemeKind::Pssp] {
        let base = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, scheme)
            .with_seed_range(0xADA9, 32);
        let fixed = base.clone().run();
        let wilson = base.clone().with_stop_rule(StopRule::settled()).run();
        let sprt = base.with_stop_rule(StopRule::sprt()).run();

        let line = |label: &str, report: &polycanary::attacks::CampaignReport| {
            println!(
                "{:<8} {:<8} {:>2}/{} seeds, verdict {:<12} {:>7} total requests ({} skipped)",
                scheme.name(),
                label,
                report.successes(),
                report.campaigns(),
                report.verdict().label(),
                report.total_requests(),
                report.configured_seeds - report.runs.len()
            );
        };
        line("fixed", &fixed);
        line("wilson", &wilson);
        line("sprt", &sprt);
        // SSP and P-SSP are unanimous populations, so the early stops
        // provably reach the exhaustive verdict (mixed-rate populations
        // would carry the stop rules' configured error probabilities), and
        // the sequential test is never more expensive than the Wilson rule.
        assert_eq!(fixed.verdict(), wilson.verdict(), "unanimous cells keep their verdict");
        assert_eq!(fixed.verdict(), sprt.verdict(), "unanimous cells keep their verdict");
        assert!(sprt.total_requests() <= wilson.total_requests());

        println!("\nsequential (SPRT) campaign as a self-describing JSON record:");
        println!("{}\n", sprt.record().to_json());
    }
}
