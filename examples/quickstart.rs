//! Quickstart: compile a vulnerable request handler under classic SSP and
//! under P-SSP, overflow it, and watch what each protection does.
//!
//! Run with: `cargo run --example quickstart`

use polycanary::compiler::{Compiler, FunctionBuilder, ModuleBuilder};
use polycanary::core::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny "network service": handle_request copies the request into a
    // 64-byte stack buffer with no bounds check.
    let module = ModuleBuilder::new()
        .function(
            FunctionBuilder::new("handle_request")
                .buffer("request", 64)
                .vulnerable_copy("request")
                .compute(500)
                .returns(0)
                .build(),
        )
        .function(FunctionBuilder::new("main").call("handle_request").returns(0).build())
        .entry("main")
        .build()?;

    println!("request handler with a 64-byte buffer and an unbounded copy\n");

    for scheme in [SchemeKind::Native, SchemeKind::Ssp, SchemeKind::Pssp, SchemeKind::PsspOwf] {
        let compiled = Compiler::new(scheme).compile(&module)?;
        let code_bytes = compiled.code_size();
        let mut machine = compiled.into_machine(42);

        // A benign request.
        let mut process = machine.spawn();
        process.set_input(b"GET /index.html".to_vec());
        let ok = machine.run(&mut process)?;

        // A smashing request: 64 bytes of filler plus enough to reach the
        // saved return address under every layout.
        let mut process = machine.spawn();
        process.set_input(vec![0x41u8; 64 + 32]);
        let smashed = machine.run(&mut process)?;

        println!(
            "{:<12} code = {:>4} bytes | benign: {:<28} | overflow: {}",
            scheme.name(),
            code_bytes,
            format!("{:?}", ok.exit),
            match &smashed.exit {
                e if e.is_detection() => "stack smashing detected".to_string(),
                e if e.is_normal() => "ran to completion (!)".to_string(),
                e => format!("crashed undetected ({e:?})"),
            }
        );
    }

    println!("\nnative execution lets the overflow through; every canary scheme detects it.");
    Ok(())
}
