//! Mixed victim populations: campaigning a partially patched fleet.
//!
//! ```sh
//! cargo run --release --example mixed_population
//! ```
//!
//! A uniform campaign (every paper table) has a success rate of 0 or 1;
//! a partially patched fleet lands in between, which is where the
//! sequential stop rules earn their keep — or run out of seeds undecided.

use polycanary::attacks::campaign::{AttackKind, Campaign, StopRule};
use polycanary::attacks::population::Population;
use polycanary::core::SchemeKind;

fn main() {
    let fleets = [
        Population::mixed("patched-90/10", [(9, SchemeKind::Pssp), (1, SchemeKind::Ssp)]),
        Population::mixed("patched-70/30", [(7, SchemeKind::Pssp), (3, SchemeKind::Ssp)]),
        Population::mixed("half-half", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]),
    ];
    println!("{:<16} {:>8}  {:<28} {:<28} {:<28}", "fleet", "rate", "sprt", "wilson", "exhaustive");
    for fleet in fleets {
        let base = Campaign::against(AttackKind::ByteByByte { budget: 2_600 }, fleet.clone())
            .with_seed_range(0x5EED, 16);
        let cell = |rule: StopRule| {
            let report = base.clone().with_stop_rule(rule).run();
            format!(
                "{} after {}/{} victims",
                report.verdict(),
                report.campaigns(),
                report.configured_seeds
            )
        };
        let exhaustive = base.clone().run();
        println!(
            "{:<16} {:>7.0}%  {:<28} {:<28} {:<28}",
            fleet.label(),
            exhaustive.success_rate() * 100.0,
            cell(StopRule::sprt()),
            cell(StopRule::settled()),
            cell(StopRule::Exhaustive),
        );
    }
}
