//! P-SSP-LV (§IV-B): guarding critical local variables with their own
//! canaries, so overflows that never reach the return address still get
//! caught.
//!
//! Run with: `cargo run --example local_variable_protection`

use polycanary::compiler::{Compiler, FunctionBuilder, ModuleBuilder};
use polycanary::core::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `record` holds security-sensitive data (marked critical); `scratch`
    // sits between it and the return-address canary.  An overflow out of
    // `record` that only corrupts `scratch` never touches what plain
    // SSP/P-SSP check.
    let module = ModuleBuilder::new()
        .function(
            FunctionBuilder::new("process_record")
                .buffer("scratch", 64)
                .critical_buffer("record", 32)
                .vulnerable_copy("record")
                .returns(0)
                .build(),
        )
        .build()?;

    let overflow = vec![0x42u8; 32 + 8]; // 8 bytes past the critical buffer

    for scheme in [SchemeKind::Ssp, SchemeKind::Pssp, SchemeKind::PsspLv] {
        let compiled = Compiler::new(scheme).compile(&module)?;
        let frame = compiled.frame("process_record").unwrap();
        let guards = frame.info.critical_canary_slots.len();
        let mut machine = compiled.into_machine(7);
        let mut process = machine.spawn();
        process.set_input(overflow.clone());
        let outcome = machine.run(&mut process)?;
        println!(
            "{:<10} per-variable guards: {} | overflow into the critical variable: {}",
            scheme.name(),
            guards,
            if outcome.exit.is_detection() { "DETECTED" } else { "missed" }
        );
    }

    println!("\nonly P-SSP-LV places a guard canary directly above the critical variable.");
    Ok(())
}
