//! P-SSP-OWF (§IV-C): even if one frame's canary leaks through a memory
//! disclosure bug, it cannot be replayed to smash a different frame.
//!
//! Run with: `cargo run --example exposure_resilience`

use polycanary::attacks::{CanaryReuseAttack, ForkingServer, VictimConfig};
use polycanary::core::SchemeKind;

fn main() {
    println!("canary disclosure + reuse over one keep-alive connection\n");

    for scheme in [SchemeKind::Ssp, SchemeKind::Pssp, SchemeKind::PsspNt, SchemeKind::PsspOwf] {
        let mut server = ForkingServer::new(VictimConfig::new(scheme, 0x1EAC));
        let result = CanaryReuseAttack::default().run(&mut server);
        let leaked = result
            .recovered_canary
            .as_ref()
            .map(|c| format!("{} canary bytes leaked", c.len()))
            .unwrap_or_else(|| "nothing leaked".to_string());
        println!(
            "{:<12} {:<28} replaying them against another frame: {}",
            scheme.name(),
            leaked,
            if result.success { "HIJACKED" } else { "detected" }
        );
    }

    println!("\nonly P-SSP-OWF binds the canary to the frame's return address and a nonce");
    println!("under a secret AES key, so a leaked canary is useless anywhere else.");
}
