//! Top-level entry points tying CFG, dataflow and policy together.

use polycanary_compiler::CompiledModule;
use polycanary_vm::inst::Inst;

use crate::dataflow::analyze_function;
use crate::finding::Finding;
use crate::policy::ProtectionPolicy;

/// Verifies one function body against `policy` and returns every finding.
pub fn verify_function(function: &str, insts: &[Inst], policy: &ProtectionPolicy) -> Vec<Finding> {
    analyze_function(function, insts, policy)
}

/// Verifies every function of a compiled module against the scheme and pass
/// policy the compiler recorded for it.
///
/// A clean compiler is expected to produce zero findings for every scheme ×
/// workload combination; anything returned here is a code-generation defect.
pub fn verify_compiled(module: &CompiledModule) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (id, func) in module.program.iter() {
        let scheme = module.function_schemes[id.0];
        let frame = &module.frames[id.0];
        let policy =
            ProtectionPolicy::new(scheme, frame.info.protected, &frame.info.critical_canary_slots);
        findings.extend(verify_function(func.name(), func.insts(), &policy));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycanary_compiler::{Compiler, FunctionBuilder, ModuleBuilder};
    use polycanary_core::scheme::SchemeKind;
    use polycanary_vm::reg::Reg;
    use polycanary_vm::tls::TLS_CANARY_OFFSET;

    use crate::finding::CheckKind;

    fn victim() -> polycanary_compiler::ModuleDef {
        ModuleBuilder::new()
            .function(
                FunctionBuilder::new("handle_request")
                    .buffer("buf", 64)
                    .safe_copy("buf")
                    .compute(100)
                    .returns(0)
                    .build(),
            )
            .function(
                FunctionBuilder::new("main").scalar("x").call("handle_request").returns(0).build(),
            )
            .entry("main")
            .build()
            .expect("victim module is well-formed")
    }

    #[test]
    fn every_scheme_compiles_to_a_clean_module() {
        for kind in SchemeKind::ALL {
            let module = Compiler::new(kind).compile(&victim()).expect("victim compiles");
            let findings = verify_compiled(&module);
            assert!(findings.is_empty(), "{kind}: {findings:?}");
        }
    }

    #[test]
    fn optimized_builds_re_prove_the_invariants_at_every_opt_level() {
        use polycanary_compiler::OptLevel;
        // Include a critical buffer so P-SSP-LV guard slots (and the
        // canary-load elimination over them) are exercised too.
        let module = ModuleBuilder::new()
            .function(
                FunctionBuilder::new("handle_request")
                    .buffer("buf", 64)
                    .critical_buffer("record", 32)
                    .compute(50)
                    .vulnerable_copy("buf")
                    .compute(100)
                    .returns(0)
                    .compute(25)
                    .build(),
            )
            .function(
                FunctionBuilder::new("main").scalar("x").call("handle_request").returns(0).build(),
            )
            .entry("main")
            .build()
            .expect("module is well-formed");
        for kind in SchemeKind::ALL {
            for opt in OptLevel::ALL {
                let compiled =
                    Compiler::new(kind).with_opt_level(opt).compile(&module).expect("compiles");
                let findings = verify_compiled(&compiled);
                assert!(findings.is_empty(), "{kind}@{opt}: {findings:?}");
            }
        }
    }

    #[test]
    fn hand_built_ssp_body_is_clean() {
        // The canonical SSP shape the compiler emits.
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::MovTlsToReg { dst: Reg::Rax, offset: TLS_CANARY_OFFSET },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -8 },
            Inst::CopyInputToFrameBounded { offset: -72, max_len: 64 },
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: TLS_CANARY_OFFSET },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let policy = ProtectionPolicy::new(SchemeKind::Ssp, true, &[]);
        assert_eq!(verify_function("f", &insts, &policy), Vec::new());
    }

    #[test]
    fn buffer_write_before_the_prologue_store_is_unprotected() {
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::CopyInputToFrame { offset: -72 }, // before the canary store
            Inst::MovTlsToReg { dst: Reg::Rax, offset: TLS_CANARY_OFFSET },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -8 },
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: TLS_CANARY_OFFSET },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let policy = ProtectionPolicy::new(SchemeKind::Ssp, true, &[]);
        let findings = verify_function("f", &insts, &policy);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, CheckKind::UnprotectedBuffer);
        assert_eq!(findings[0].index, Some(2));
    }

    #[test]
    fn unrelated_zero_flag_guard_is_not_an_epilogue_check() {
        // A je/__stack_chk_fail pair fed by scalar ALU work must not count
        // as a canary check: the ret stays unchecked on every path.
        let insts = vec![
            Inst::MovTlsToReg { dst: Reg::Rax, offset: TLS_CANARY_OFFSET },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -8 },
            Inst::TestReg(Reg::Rcx), // unrelated comparison
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let policy = ProtectionPolicy::new(SchemeKind::Ssp, true, &[]);
        let findings = verify_function("f", &insts, &policy);
        assert!(findings.iter().any(|f| f.kind == CheckKind::UncheckedReturn), "{findings:?}");
    }

    #[test]
    fn split_scheme_tracks_both_slots() {
        let module = Compiler::new(SchemeKind::Pssp).compile(&victim()).expect("compiles");
        assert!(verify_compiled(&module).is_empty());

        // Clobber the second canary word (-16) after the prologue: only a
        // verifier tracking all region slots catches this.
        let frame = module.frame("handle_request").expect("frame exists");
        assert!(frame.info.protected);
        let id = module.by_name["handle_request"];
        let mut insts = module.program.function(id).expect("function exists").insts().to_vec();
        let store = insts
            .iter()
            .rposition(|i| matches!(i, Inst::MovRegToFrame { offset: -16, .. }))
            .expect("P-SSP prologue stores -16");
        insts.insert(store + 1, Inst::MovImmToFrame { offset: -16, imm: 0 });
        let policy = ProtectionPolicy::new(SchemeKind::Pssp, true, &[]);
        let findings = verify_function("handle_request", &insts, &policy);
        assert!(findings.iter().any(|f| f.kind == CheckKind::ClobberedCanary), "{findings:?}");
    }
}
