//! Typed findings emitted by the verifier's check suite.

use polycanary_core::record::Record;

/// The five invariant checks the verifier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// A buffer write is reachable while a canary slot may still be unset,
    /// in a function the pass policy says needs protection.
    UnprotectedBuffer,
    /// A `ret` is reachable without passing an epilogue check on some path.
    UncheckedReturn,
    /// A store overlaps a canary slot between the prologue store and the
    /// epilogue check.
    ClobberedCanary,
    /// An epilogue check is unreachable from the function entry.
    DeadCheck,
    /// Rewriter output violates its contract: un-replaced sites, unbalanced
    /// counts, stray TLS canary accesses, or a changed layout.
    RewriteSoundness,
}

impl CheckKind {
    /// Every check kind, in severity-agnostic reporting order.
    pub const ALL: [CheckKind; 5] = [
        CheckKind::UnprotectedBuffer,
        CheckKind::UncheckedReturn,
        CheckKind::ClobberedCanary,
        CheckKind::DeadCheck,
        CheckKind::RewriteSoundness,
    ];

    /// Stable machine-readable label (used in records and CLI output).
    pub fn label(&self) -> &'static str {
        match self {
            CheckKind::UnprotectedBuffer => "unprotected-buffer",
            CheckKind::UncheckedReturn => "unchecked-return",
            CheckKind::ClobberedCanary => "clobbered-canary",
            CheckKind::DeadCheck => "dead-check",
            CheckKind::RewriteSoundness => "rewrite-soundness",
        }
    }
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One proven violation of a canary invariant.
///
/// Every finding is a defect: the verifier stays silent on clean programs,
/// so presence of any finding fails a `harness verify` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which check fired.
    pub kind: CheckKind,
    /// The function the violation was found in.
    pub function: String,
    /// The scheme the function was (supposed to be) protected with.
    pub scheme: String,
    /// Instruction index the finding anchors to, when one exists.
    pub index: Option<usize>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// The self-describing record form, following the
    /// `polycanary_analysis::diff::Finding` idiom so `harness diff` and the
    /// analysis crate consume verifier exports for free.
    pub fn record(&self) -> Record {
        let record = Record::new()
            .field("kind", self.kind.label())
            .field("function", self.function.as_str())
            .field("scheme", self.scheme.as_str())
            .field("message", self.message.as_str());
        match self.index {
            Some(index) => record.field("index", index),
            None => record,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} ({}): {}", self.kind, self.function, self.scheme, self.message)?;
        if let Some(index) = self.index {
            write!(f, " (at inst {index})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycanary_core::record::Value;

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<_> = CheckKind::ALL.iter().map(CheckKind::label).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(labels.contains(&"unprotected-buffer"));
    }

    #[test]
    fn record_carries_all_fields() {
        let finding = Finding {
            kind: CheckKind::DeadCheck,
            function: "victim".into(),
            scheme: "SSP".into(),
            index: Some(9),
            message: "check unreachable".into(),
        };
        let record = finding.record();
        assert_eq!(record.get("kind"), Some(&Value::from("dead-check")));
        assert_eq!(record.get("function"), Some(&Value::from("victim")));
        assert_eq!(record.get("index"), Some(&Value::from(9usize)));
        assert!(finding.to_string().contains("dead-check"));
        assert!(finding.to_string().contains("inst 9"));
    }
}
