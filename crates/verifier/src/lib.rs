//! # polycanary-verifier — static proof of canary invariants
//!
//! The runtime harness shows that attacks *fail*; this crate shows that the
//! instrumentation is *present and well-formed* in the first place.  It
//! builds a control-flow graph over every function body, runs a forward
//! abstract interpretation tracking each canary slot through
//! `Unset → Stored → Checked` (with `Clobbered` as the error state), and
//! emits typed [`Finding`]s for five invariant checks:
//!
//! | check | proves |
//! |---|---|
//! | `unprotected-buffer` | no buffer write precedes the canary store |
//! | `unchecked-return` | every path to `ret` passes an epilogue check |
//! | `clobbered-canary` | no store overlaps a live canary slot |
//! | `dead-check` | every epilogue check is reachable from entry |
//! | `rewrite-soundness` | rewriter output replaced every SSP site exactly |
//!
//! The pass is a *may*-analysis: joins keep every state either branch could
//! be in, so a defect on any path is reported even if other paths are
//! clean.  Clean compiler and rewriter output over every workload × scheme
//! × deployment cell must verify finding-free; the [`selftest`] battery
//! holds the negative controls proving each check actually fires.
//!
//! Entry points: [`verify_compiled`] for compiler output,
//! [`verify_rewritten`] for rewriter output, [`verify_function`] for a bare
//! body under an explicit [`ProtectionPolicy`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cfg;
pub mod dataflow;
pub mod finding;
pub mod policy;
pub mod rewrite_check;
pub mod selftest;
pub mod verify;

pub use cfg::{BasicBlock, Cfg};
pub use finding::{CheckKind, Finding};
pub use policy::ProtectionPolicy;
pub use rewrite_check::verify_rewritten;
pub use selftest::InjectedDefect;
pub use verify::{verify_compiled, verify_function};
