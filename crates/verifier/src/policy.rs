//! Protection policy: which canary slots a scheme is required to maintain.
//!
//! The compiler's pass policy (`polycanary_compiler::pass::StackProtectPass`,
//! mirroring `-fstack-protector`) decides *whether* a function needs
//! protection; the scheme decides *where* its canary words live — directly
//! below the saved `%rbp`, one 8-byte slot per canary region word, plus the
//! per-variable guard slots of P-SSP-LV.  [`ProtectionPolicy`] bundles both
//! for one function so the dataflow pass can verify against them.

use polycanary_core::scheme::SchemeKind;

/// The canary obligations of one function under one scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectionPolicy {
    /// The scheme the function is expected to be protected with.
    pub scheme: SchemeKind,
    /// Whether the pass policy requires protection (a local buffer exists).
    pub required: bool,
    /// `%rbp`-relative offsets of every canary slot the scheme maintains.
    /// Empty when the function is unprotected or the scheme is `Native`.
    pub slots: Vec<i32>,
}

impl ProtectionPolicy {
    /// Policy for one function: `required` comes from the pass analysis
    /// (`FunctionAnalysis::needs_protection` / `FrameInfo::protected`),
    /// `critical_slots` from the frame layout (P-SSP-LV guard slots; empty
    /// for every other scheme).
    pub fn new(scheme: SchemeKind, required: bool, critical_slots: &[i32]) -> Self {
        let slots = if required { Self::scheme_slots(scheme, critical_slots) } else { Vec::new() };
        ProtectionPolicy { scheme, required: required && !slots.is_empty(), slots }
    }

    /// The canary slots `scheme` maintains in a protected frame, matching
    /// `CanaryScheme::canary_region_words` and the emitted prologues: region
    /// words sit at `-8`, `-16`, … directly below the saved `%rbp`.
    fn scheme_slots(scheme: SchemeKind, critical_slots: &[i32]) -> Vec<i32> {
        let region_words = scheme.scheme().canary_region_words();
        let mut slots: Vec<i32> = (1..=region_words).map(|w| -8 * w as i32).collect();
        if scheme.scheme().properties().protects_local_variables {
            slots.extend_from_slice(critical_slots);
        }
        slots
    }

    /// Whether `[offset, offset + width)` overlaps the 8-byte slot at `slot`.
    pub fn overlaps_slot(slot: i32, offset: i32, width: u32) -> bool {
        let write_end = i64::from(offset) + i64::from(width);
        let slot_end = i64::from(slot) + 8;
        i64::from(offset) < slot_end && i64::from(slot) < write_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts_follow_canary_region_words() {
        let single = [SchemeKind::Ssp, SchemeKind::RafSsp, SchemeKind::PsspBin32];
        for kind in single {
            assert_eq!(ProtectionPolicy::new(kind, true, &[]).slots, vec![-8], "{kind}");
        }
        assert_eq!(ProtectionPolicy::new(SchemeKind::Pssp, true, &[]).slots, vec![-8, -16]);
        assert_eq!(ProtectionPolicy::new(SchemeKind::PsspNt, true, &[]).slots, vec![-8, -16]);
        assert_eq!(ProtectionPolicy::new(SchemeKind::PsspOwf, true, &[]).slots, vec![-8, -16, -24]);
    }

    #[test]
    fn lv_adds_critical_guard_slots() {
        let policy = ProtectionPolicy::new(SchemeKind::PsspLv, true, &[-24, -48]);
        assert_eq!(policy.slots, vec![-8, -24, -48]);
        // Other schemes ignore critical slots — they maintain none.
        let ssp = ProtectionPolicy::new(SchemeKind::Ssp, true, &[-24]);
        assert_eq!(ssp.slots, vec![-8]);
    }

    #[test]
    fn native_and_unprotected_functions_have_no_obligations() {
        let native = ProtectionPolicy::new(SchemeKind::Native, true, &[]);
        assert!(!native.required && native.slots.is_empty());
        let leaf = ProtectionPolicy::new(SchemeKind::Pssp, false, &[]);
        assert!(!leaf.required && leaf.slots.is_empty());
    }

    #[test]
    fn slot_overlap_geometry() {
        // Exact 64-bit store over the slot.
        assert!(ProtectionPolicy::overlaps_slot(-8, -8, 8));
        // 32-bit store into the slot's low half.
        assert!(ProtectionPolicy::overlaps_slot(-8, -8, 4));
        // A 64-byte buffer at -72 ends exactly at the slot — no overlap.
        assert!(!ProtectionPolicy::overlaps_slot(-8, -72, 64));
        // One byte too far reaches into the slot.
        assert!(ProtectionPolicy::overlaps_slot(-8, -72, 65));
        // Store above the slot.
        assert!(!ProtectionPolicy::overlaps_slot(-8, 0, 8));
    }
}
