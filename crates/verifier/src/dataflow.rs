//! Forward dataflow / abstract interpretation over one function body.
//!
//! The pass tracks an abstract frame state per basic block of the
//! [`crate::cfg::Cfg`]:
//!
//! * per canary slot, a *may*-set over `{Unset, Stored, Clobbered, Checked}`
//!   (joins are bitwise unions, so "some path reaches here with the slot
//!   unset" is never lost),
//! * whether every path since the last canary store has passed an epilogue
//!   check, and
//! * what last defined the zero flag — a canary comparison or unrelated ALU
//!   work — so a `je; __stack_chk_fail` guard only counts as an epilogue
//!   check when it actually tests the canary.
//!
//! Check semantics follow the interpreter: [`Inst::CallStackChkFail`] aborts
//! (its block has no successors), so the *taken* edge of a `je +1` guarding
//! it is exactly the "check passed" path; [`Inst::CallCheckCanary32`] either
//! aborts or returns with ZF set, so falling through it also proves the
//! check passed.
//!
//! On top of the fixpoint, four of the five checks are evaluated
//! (*unprotected-buffer*, *unchecked-return*, *clobbered-canary*,
//! *dead-check*); *rewrite-soundness* is structural and lives in
//! [`crate::rewrite_check`].

use polycanary_vm::inst::Inst;
use polycanary_vm::tls::TLS_CANARY_OFFSET;

use crate::cfg::Cfg;
use crate::finding::{CheckKind, Finding};
use crate::policy::ProtectionPolicy;

// May-set bits of one canary slot.
const UNSET: u8 = 1 << 0;
const STORED: u8 = 1 << 1;
const CLOBBERED: u8 = 1 << 2;
const CHECKED: u8 = 1 << 3;

// May-set bits of the per-path "passed an epilogue check" property.
const CHECKED_YES: u8 = 1 << 0;
const CHECKED_NO: u8 = 1 << 1;

// May-set bits of the zero-flag provenance.
const FLAGS_CANARY: u8 = 1 << 0;
const FLAGS_OTHER: u8 = 1 << 1;

/// Abstract frame state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    /// One may-set per policy slot, in [`ProtectionPolicy::slots`] order.
    slots: Vec<u8>,
    checked: u8,
    flags: u8,
}

impl AbsState {
    fn entry(slot_count: usize) -> AbsState {
        AbsState { slots: vec![UNSET; slot_count], checked: CHECKED_NO, flags: FLAGS_OTHER }
    }

    /// Bitwise-union join; returns whether `self` changed.
    fn join(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            let joined = *mine | theirs;
            changed |= joined != *mine;
            *mine = joined;
        }
        let checked = self.checked | other.checked;
        let flags = self.flags | other.flags;
        changed |= checked != self.checked || flags != self.flags;
        self.checked = checked;
        self.flags = flags;
        changed
    }

    /// The state after a passed epilogue check: every stored slot is now
    /// verified and every path through this point is checked.
    fn apply_check(&self) -> AbsState {
        let slots = self
            .slots
            .iter()
            .map(|&bits| if bits & STORED != 0 { (bits & !STORED) | CHECKED } else { bits })
            .collect();
        AbsState { slots, checked: CHECKED_YES, flags: self.flags }
    }
}

/// Whether `inst` compares the canary (as opposed to unrelated ALU work).
fn is_canary_compare(inst: &Inst, policy: &ProtectionPolicy) -> bool {
    match inst {
        Inst::XorTlsReg { offset, .. } => *offset == TLS_CANARY_OFFSET,
        Inst::CmpFrameReg { offset, .. } => policy.slots.contains(offset),
        Inst::CallCheckCanary32 => true,
        _ => false,
    }
}

/// Whether the instruction at `index` is the conditional guard of an abort:
/// `je +1` immediately followed by `__stack_chk_fail`.
fn is_guard_site(insts: &[Inst], index: usize) -> bool {
    matches!(insts.get(index), Some(Inst::JeSkip(1)))
        && matches!(insts.get(index + 1), Some(Inst::CallStackChkFail))
}

/// Per-instruction transfer function.  `report` receives findings during the
/// final reporting pass and is `None` while iterating to the fixpoint.
fn transfer(
    state: &mut AbsState,
    inst: &Inst,
    index: usize,
    policy: &ProtectionPolicy,
    mut report: Option<&mut Vec<Finding>>,
) {
    let mut emit = |kind: CheckKind, message: String| {
        if let Some(findings) = report.as_deref_mut() {
            findings.push(Finding {
                kind,
                function: String::new(), // filled in by the caller
                scheme: policy.scheme.to_string(),
                index: Some(index),
                message,
            });
        }
    };

    // Statically-bounded frame stores: canary-slot stores and clobbers.
    if let Some((offset, width)) = inst.frame_store() {
        for (slot_index, &slot) in policy.slots.iter().enumerate() {
            if !ProtectionPolicy::overlaps_slot(slot, offset, width) {
                continue;
            }
            let bits = state.slots[slot_index];
            if offset == slot && width == 8 {
                // A full-width store at the slot: the canonical canary store.
                // Re-storing a live (stored, unchecked) canary is a clobber —
                // no scheme writes the same slot twice before checking it.
                if bits & STORED != 0 {
                    emit(
                        CheckKind::ClobberedCanary,
                        format!("canary slot {slot} overwritten while live ({inst})"),
                    );
                }
                let mut next = 0;
                if bits & (UNSET | CHECKED) != 0 {
                    next |= STORED;
                }
                if bits & (STORED | CLOBBERED) != 0 {
                    next |= CLOBBERED;
                }
                state.slots[slot_index] = next;
                // A fresh store opens a new protection region: the previous
                // check (if any) no longer covers the return.
                state.checked = CHECKED_NO;
            } else {
                // Partial or misaligned overlap — never a legitimate canary
                // store in any scheme, so a live canary is being corrupted.
                if bits & STORED != 0 {
                    emit(
                        CheckKind::ClobberedCanary,
                        format!(
                            "store [{offset}, {}) overlaps canary slot {slot} ({inst})",
                            i64::from(offset) + i64::from(width)
                        ),
                    );
                    state.slots[slot_index] = (bits & !STORED) | CLOBBERED;
                }
            }
        }
    }

    // Buffer writes (the overflow vectors a canary guards against).
    if let Some(offset) = inst.input_copy_offset() {
        if policy.required {
            let unset: Vec<i32> = policy
                .slots
                .iter()
                .enumerate()
                .filter(|&(i, _)| state.slots[i] & UNSET != 0)
                .map(|(_, &slot)| slot)
                .collect();
            if !unset.is_empty() {
                emit(
                    CheckKind::UnprotectedBuffer,
                    format!(
                        "buffer write at {offset} reachable with canary slot(s) {unset:?} unset \
                         ({inst})"
                    ),
                );
            }
        }
        // Writing the frame after a check re-opens the attack window.
        state.checked = CHECKED_NO;
    }

    // Returns must be covered by a check on every path.
    if inst.is_ret() && policy.required && state.checked & CHECKED_NO != 0 {
        emit(
            CheckKind::UncheckedReturn,
            "return reachable without passing an epilogue canary check".to_string(),
        );
    }

    // CallCheckCanary32 aborts on mismatch, so falling through it proves the
    // check passed (the interpreter sets ZF on the success path).
    if matches!(inst, Inst::CallCheckCanary32) {
        *state = state.apply_check();
    }

    // Zero-flag provenance.
    if inst.sets_zero_flag() {
        state.flags = if is_canary_compare(inst, policy) { FLAGS_CANARY } else { FLAGS_OTHER };
    }
}

/// Runs the dataflow pass over `insts` under `policy` and returns every
/// finding, with `function` filled into each.
pub fn analyze_function(function: &str, insts: &[Inst], policy: &ProtectionPolicy) -> Vec<Finding> {
    if policy.slots.is_empty() || insts.is_empty() {
        // Nothing to verify: the pass policy does not require protection
        // (or the scheme maintains no slots, e.g. Native).
        return Vec::new();
    }

    let cfg = Cfg::build(insts);
    let blocks = cfg.blocks();

    // Fixpoint over block entry states.
    let mut in_states: Vec<Option<AbsState>> = vec![None; blocks.len()];
    in_states[0] = Some(AbsState::entry(policy.slots.len()));
    let mut work: Vec<usize> = vec![0];
    while let Some(id) = work.pop() {
        let mut state = in_states[id].clone().expect("only seeded blocks are enqueued");
        for index in blocks[id].range() {
            transfer(&mut state, &insts[index], index, policy, None);
        }
        let last = blocks[id].end - 1;
        // The taken edge of a canary-guarded `je +1; __stack_chk_fail` is
        // the "check passed" path.
        let guarded_check = is_guard_site(insts, last) && state.flags & FLAGS_CANARY != 0;
        let taken_block = insts[last]
            .branch_skip()
            .and_then(|skip| last.checked_add(1 + skip))
            .filter(|&target| target < insts.len())
            .map(|target| cfg.block_of(target));
        for &succ in &blocks[id].successors {
            let edge_state = if guarded_check && Some(succ) == taken_block {
                state.apply_check()
            } else {
                state.clone()
            };
            match &mut in_states[succ] {
                Some(existing) => {
                    if existing.join(&edge_state) && !work.contains(&succ) {
                        work.push(succ);
                    }
                }
                slot @ None => {
                    *slot = Some(edge_state);
                    work.push(succ);
                }
            }
        }
    }

    // Reporting pass: replay each reached block once against its final entry
    // state.
    let mut findings = Vec::new();
    for (id, block) in blocks.iter().enumerate() {
        let Some(entry) = &in_states[id] else { continue };
        let mut state = entry.clone();
        for index in block.range() {
            transfer(&mut state, &insts[index], index, policy, Some(&mut findings));
        }
    }

    // Dead checks: epilogue check sites in blocks unreachable from entry.
    let reachable = cfg.reachable();
    for index in 0..insts.len() {
        let is_check_site =
            is_guard_site(insts, index) || matches!(insts[index], Inst::CallCheckCanary32);
        if is_check_site && !reachable[cfg.block_of(index)] {
            findings.push(Finding {
                kind: CheckKind::DeadCheck,
                function: String::new(),
                scheme: policy.scheme.to_string(),
                index: Some(index),
                message: "epilogue check unreachable from function entry".to_string(),
            });
        }
    }

    for finding in &mut findings {
        finding.function = function.to_string();
    }
    findings
}
