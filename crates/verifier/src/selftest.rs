//! Self-test battery: known-bad programs each check kind must catch.
//!
//! Every [`InjectedDefect`] builds a clean victim, plants one specific
//! instrumentation defect — a skipped prologue, a canary-slot clobber, an
//! epilogue dropped on one branch, a jumped-over (dead) check, a stale
//! rewrite, or an optimizer pass deleting the strength-reduced check from
//! an O2 build — and runs the verifier over the result.  The battery
//! doubles as
//! the negative control for the `harness verify` CI gate: a verifier that
//! stays silent on these programs is broken, however clean the real cells
//! look.

use polycanary_compiler::{CompiledModule, Compiler, FunctionBuilder, ModuleBuilder, OptLevel};
use polycanary_core::scheme::SchemeKind;
use polycanary_rewriter::Rewriter;
use polycanary_vm::inst::Inst;

use crate::finding::{CheckKind, Finding};
use crate::rewrite_check::verify_rewritten;
use crate::verify::verify_compiled;

/// One deliberately planted instrumentation defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedDefect {
    /// The prologue canary store is removed: the buffer write runs with the
    /// slot unset.
    SkippedPrologue,
    /// An immediate store lands on the live canary slot after the prologue.
    ClobberedCanary,
    /// One branch bypasses the epilogue check and reaches `ret` unchecked.
    DroppedEpilogue,
    /// An unconditional jump makes the epilogue check unreachable.
    DeadCheck,
    /// A rewritten program with one function's original SSP body restored.
    StaleRewrite,
    /// A miscompiling optimizer: the strength-reduced epilogue check of an
    /// O2 build is deleted, as a buggy transform pass would.
    OptimizerDroppedCheck,
}

impl InjectedDefect {
    /// Every defect, in [`CheckKind::ALL`] order (with the optimizer
    /// miscompile — a second `UncheckedReturn` producer — last).
    pub const ALL: [InjectedDefect; 6] = [
        InjectedDefect::SkippedPrologue,
        InjectedDefect::ClobberedCanary,
        InjectedDefect::DroppedEpilogue,
        InjectedDefect::DeadCheck,
        InjectedDefect::StaleRewrite,
        InjectedDefect::OptimizerDroppedCheck,
    ];

    /// Stable CLI label (`harness verify --inject <label>`).
    pub fn label(&self) -> &'static str {
        match self {
            InjectedDefect::SkippedPrologue => "skipped-prologue",
            InjectedDefect::ClobberedCanary => "clobbered-canary",
            InjectedDefect::DroppedEpilogue => "dropped-epilogue",
            InjectedDefect::DeadCheck => "dead-check",
            InjectedDefect::StaleRewrite => "stale-rewrite",
            InjectedDefect::OptimizerDroppedCheck => "optimizer-dropped-check",
        }
    }

    /// Parses a CLI label.
    pub fn from_label(label: &str) -> Option<InjectedDefect> {
        InjectedDefect::ALL.into_iter().find(|defect| defect.label() == label)
    }

    /// The check kind this defect must trip.
    pub fn expected_kind(&self) -> CheckKind {
        match self {
            InjectedDefect::SkippedPrologue => CheckKind::UnprotectedBuffer,
            InjectedDefect::ClobberedCanary => CheckKind::ClobberedCanary,
            InjectedDefect::DroppedEpilogue => CheckKind::UncheckedReturn,
            InjectedDefect::DeadCheck => CheckKind::DeadCheck,
            InjectedDefect::StaleRewrite => CheckKind::RewriteSoundness,
            InjectedDefect::OptimizerDroppedCheck => CheckKind::UncheckedReturn,
        }
    }

    /// Builds the defective program and runs the verifier over it.
    ///
    /// # Panics
    ///
    /// Panics if the clean victim fails to build — the victim is a fixed,
    /// known-good module, so that indicates a broken toolchain, not input.
    pub fn run(&self) -> Vec<Finding> {
        match self {
            InjectedDefect::StaleRewrite => {
                let original = victim_module(SchemeKind::Ssp).program;
                let mut rewritten = original.clone();
                Rewriter::new().rewrite(&mut rewritten).expect("victim rewrite succeeds");
                let (id, func) = original
                    .iter()
                    .find(|(_, f)| f.name() == "handle_request")
                    .expect("victim has handle_request");
                rewritten.replace_function_body(id, func.insts().to_vec()).expect("id is valid");
                verify_rewritten(&original, &rewritten)
            }
            InjectedDefect::OptimizerDroppedCheck => {
                // At O2 the leaf victim's epilogue is strength-reduced to an
                // in-place compare; a buggy pass deleting that 3-instruction
                // check leaves the stored canary unchecked at `ret`.
                let mut module = victim_module_at(SchemeKind::Ssp, OptLevel::O2);
                let id = module.by_name["handle_request"];
                let mut insts = module
                    .program
                    .function(id)
                    .expect("victim has handle_request")
                    .insts()
                    .to_vec();
                let check = insts
                    .iter()
                    .position(|inst| matches!(inst, Inst::CmpFrameReg { offset: -8, .. }))
                    .expect("O2 epilogue compares the canary slot in place");
                insts.drain(check..check + 3); // compare, branch, __stack_chk_fail
                module.program.replace_function_body(id, insts).expect("id is valid");
                verify_compiled(&module)
            }
            defect => {
                let mut module = victim_module(SchemeKind::Ssp);
                inject(&mut module, *defect);
                verify_compiled(&module)
            }
        }
    }
}

impl std::fmt::Display for InjectedDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The fixed victim every defect is planted into: one protected function
/// with a buffer and a bounded copy, called from an unprotected `main`.
fn victim_module(scheme: SchemeKind) -> CompiledModule {
    victim_module_at(scheme, OptLevel::O0)
}

/// [`victim_module`] at an explicit optimization level.
fn victim_module_at(scheme: SchemeKind, opt: OptLevel) -> CompiledModule {
    let module = ModuleBuilder::new()
        .function(
            FunctionBuilder::new("handle_request")
                .buffer("buf", 64)
                .safe_copy("buf")
                .compute(100)
                .returns(0)
                .build(),
        )
        .function(
            FunctionBuilder::new("main").scalar("x").call("handle_request").returns(0).build(),
        )
        .entry("main")
        .build()
        .expect("victim module is well-formed");
    Compiler::new(scheme).with_opt_level(opt).compile(&module).expect("victim compiles")
}

/// Plants `defect` into the victim's `handle_request` body.
fn inject(module: &mut CompiledModule, defect: InjectedDefect) {
    let id = module.by_name["handle_request"];
    let mut insts =
        module.program.function(id).expect("victim has handle_request").insts().to_vec();

    let canary_store = insts
        .iter()
        .position(|inst| matches!(inst, Inst::MovRegToFrame { offset: -8, .. }))
        .expect("SSP prologue stores the canary at -8");
    let guard = insts
        .iter()
        .position(|inst| matches!(inst, Inst::MovFrameToReg { offset: -8, .. }))
        .expect("SSP epilogue reloads the canary");

    match defect {
        InjectedDefect::SkippedPrologue => {
            // Drop the TLS load + store pair: the buffer is written with the
            // slot still unset.
            insts.drain(canary_store - 1..=canary_store);
        }
        InjectedDefect::ClobberedCanary => {
            insts.insert(canary_store + 1, Inst::MovImmToFrame { offset: -8, imm: 0 });
        }
        InjectedDefect::DroppedEpilogue => {
            // One branch skips the 4-instruction check and lands on `leave`.
            insts.splice(
                guard..guard,
                [Inst::TestReg(polycanary_vm::reg::Reg::Rax), Inst::JneSkip(4)],
            );
        }
        InjectedDefect::DeadCheck => {
            // Both paths skip the check: it becomes unreachable.
            insts.splice(guard..guard, [Inst::JmpSkip(4)]);
        }
        InjectedDefect::StaleRewrite | InjectedDefect::OptimizerDroppedCheck => {
            unreachable!("handled by InjectedDefect::run")
        }
    }

    module.program.replace_function_body(id, insts).expect("id is valid");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_defect_trips_its_expected_check() {
        for defect in InjectedDefect::ALL {
            let findings = defect.run();
            assert!(
                findings.iter().any(|f| f.kind == defect.expected_kind()),
                "{defect}: expected a {} finding, got {findings:?}",
                defect.expected_kind()
            );
        }
    }

    #[test]
    fn labels_round_trip() {
        for defect in InjectedDefect::ALL {
            assert_eq!(InjectedDefect::from_label(defect.label()), Some(defect));
        }
        assert_eq!(InjectedDefect::from_label("nonsense"), None);
    }

    #[test]
    fn the_clean_victim_is_finding_free() {
        let module = victim_module(SchemeKind::Ssp);
        assert!(verify_compiled(&module).is_empty());
    }
}
