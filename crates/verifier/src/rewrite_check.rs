//! Rewrite-soundness: structural verification of binary-rewriter output.
//!
//! Given the original SSP-compiled program and the rewriter's output, the
//! check proves per function that every scanned SSP site was replaced and
//! nothing else changed:
//!
//! * prologue/epilogue site counts in the original are balanced,
//! * no stray accesses to the glibc TLS canary (`%fs:0x28`) survive — every
//!   load and compare must target the shadow pair,
//! * one shadow-canary load per original prologue and one
//!   `__pssp_check_canary32` per original epilogue,
//! * the encoded size is unchanged (the rewriter's replacements are
//!   size-preserving by construction), and
//! * uninstrumented functions are byte-identical to the original.
//!
//! On top of the structural pass, every instrumented function is re-proven
//! with the dataflow pass under the 32-bit P-SSP policy, so a rewrite that
//! is structurally plausible but drops a check on some path still fails.

use polycanary_core::scheme::SchemeKind;
use polycanary_rewriter::scan_function;
use polycanary_vm::inst::Inst;
use polycanary_vm::program::Program;
use polycanary_vm::tls::{TLS_CANARY_OFFSET, TLS_SHADOW_C0_OFFSET};

use crate::dataflow::analyze_function;
use crate::finding::{CheckKind, Finding};
use crate::policy::ProtectionPolicy;

fn soundness(function: &str, index: Option<usize>, message: String) -> Finding {
    Finding {
        kind: CheckKind::RewriteSoundness,
        function: function.to_string(),
        scheme: SchemeKind::PsspBin32.to_string(),
        index,
        message,
    }
}

/// Counts instructions of `insts` matching `pred`.
fn count(insts: &[Inst], pred: impl Fn(&Inst) -> bool) -> usize {
    insts.iter().filter(|inst| pred(inst)).count()
}

/// Verifies rewriter output against the original program it was derived
/// from.  Returns every violated invariant; a sound rewrite yields none.
pub fn verify_rewritten(original: &Program, rewritten: &Program) -> Vec<Finding> {
    let mut findings = Vec::new();

    if original.len() != rewritten.len() {
        findings.push(soundness(
            "<program>",
            None,
            format!("function count changed: {} before, {} after", original.len(), rewritten.len()),
        ));
        return findings;
    }

    for (id, orig) in original.iter() {
        let name = orig.name();
        let Ok(rewritten_func) = rewritten.function(id) else {
            findings.push(soundness(name, None, "function missing from rewritten program".into()));
            continue;
        };
        let insts = orig.insts();
        let out = rewritten_func.insts();
        let sites = scan_function(insts);

        if !sites.is_instrumented() {
            // The rewriter must leave uninstrumented functions untouched.
            if out != insts {
                findings.push(soundness(
                    name,
                    None,
                    "uninstrumented function was modified by the rewriter".into(),
                ));
            }
            continue;
        }

        if !sites.is_balanced() {
            findings.push(soundness(
                name,
                None,
                format!(
                    "unbalanced SSP sites in original: {} prologue(s), {} epilogue(s)",
                    sites.prologues.len(),
                    sites.epilogues.len()
                ),
            ));
        }

        // No stray accesses to the glibc TLS canary may survive the rewrite.
        let stray = out.iter().position(|inst| {
            matches!(inst, Inst::MovTlsToReg { offset, .. } if *offset == TLS_CANARY_OFFSET)
                || matches!(inst, Inst::XorTlsReg { offset, .. } if *offset == TLS_CANARY_OFFSET)
        });
        if let Some(index) = stray {
            findings.push(soundness(
                name,
                Some(index),
                "stray TLS canary access survived the rewrite".into(),
            ));
        }

        // Site accounting: one shadow load per prologue, one 32-bit check
        // call per epilogue.
        let shadow_loads = count(
            out,
            |inst| matches!(inst, Inst::MovTlsToReg { offset, .. } if *offset == TLS_SHADOW_C0_OFFSET),
        );
        if shadow_loads != sites.prologues.len() {
            findings.push(soundness(
                name,
                None,
                format!(
                    "expected {} shadow-canary load(s), found {shadow_loads}",
                    sites.prologues.len()
                ),
            ));
        }
        let checks = count(out, |inst| matches!(inst, Inst::CallCheckCanary32));
        if checks != sites.epilogues.len() {
            findings.push(soundness(
                name,
                None,
                format!("expected {} canary check call(s), found {checks}", sites.epilogues.len()),
            ));
        }

        // The rewriter's replacements are size-preserving by construction.
        if rewritten_func.encoded_size() != orig.encoded_size() {
            findings.push(soundness(
                name,
                None,
                format!(
                    "encoded size changed: {} bytes before, {} after",
                    orig.encoded_size(),
                    rewritten_func.encoded_size()
                ),
            ));
        }

        // Semantic re-proof: the rewritten body must still store and check a
        // canary at -8 on every path.
        let policy = ProtectionPolicy::new(SchemeKind::PsspBin32, true, &[]);
        findings.extend(analyze_function(name, out, &policy));
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycanary_compiler::{Compiler, FunctionBuilder, ModuleBuilder};
    use polycanary_rewriter::Rewriter;

    fn ssp_program() -> Program {
        let module = ModuleBuilder::new()
            .function(
                FunctionBuilder::new("handle_request")
                    .buffer("buf", 64)
                    .safe_copy("buf")
                    .compute(50)
                    .returns(0)
                    .build(),
            )
            .function(
                FunctionBuilder::new("main").scalar("x").call("handle_request").returns(0).build(),
            )
            .entry("main")
            .build()
            .expect("module is well-formed");
        Compiler::new(SchemeKind::Ssp).compile(&module).expect("compiles").program
    }

    #[test]
    fn faithful_rewrite_is_sound() {
        let original = ssp_program();
        let mut rewritten = original.clone();
        Rewriter::new().rewrite(&mut rewritten).expect("rewrite succeeds");
        let findings = verify_rewritten(&original, &rewritten);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn reverted_function_body_is_caught() {
        let original = ssp_program();
        let mut rewritten = original.clone();
        Rewriter::new().rewrite(&mut rewritten).expect("rewrite succeeds");

        // Sneak the original (still SSP) body back in — a stale rewrite.
        let (id, func) =
            original.iter().find(|(_, f)| f.name() == "handle_request").expect("function exists");
        rewritten.replace_function_body(id, func.insts().to_vec()).expect("id is valid");
        let findings = verify_rewritten(&original, &rewritten);
        assert!(
            findings.iter().any(|f| f.kind == CheckKind::RewriteSoundness
                && f.message.contains("stray TLS canary access")),
            "{findings:?}"
        );
    }

    #[test]
    fn modified_uninstrumented_function_is_caught() {
        let original = ssp_program();
        let mut rewritten = original.clone();
        Rewriter::new().rewrite(&mut rewritten).expect("rewrite succeeds");

        // `main` has no buffer, so it is uninstrumented; any edit to it is a
        // rewriter overreach.
        let (id, func) =
            original.iter().find(|(_, f)| f.name() == "main").expect("function exists");
        let mut body = func.insts().to_vec();
        body.insert(0, Inst::Nop);
        rewritten.replace_function_body(id, body).expect("id is valid");
        let findings = verify_rewritten(&original, &rewritten);
        assert!(
            findings.iter().any(|f| f.function == "main"
                && f.message.contains("uninstrumented function was modified")),
            "{findings:?}"
        );
    }
}
