//! Control-flow graph construction over `&[Inst]` function bodies.
//!
//! The instruction set encodes control flow as *relative skips*: a branch at
//! index `i` with skip `n` transfers to index `i + 1 + n` when taken (see
//! [`Inst::branch_skip`]).  Block leaders are therefore the function entry,
//! every branch target, and every instruction following a branch, call or
//! return; successor edges follow the interpreter semantics exactly —
//! `jmp` has only its taken edge, `ret` has none, and
//! [`Inst::CallStackChkFail`] aborts the process, so it has no successors
//! either.
//!
//! The graph is deliberately generic (no canary knowledge): it is the
//! substrate for the dataflow pass in [`crate::dataflow`] and is exposed so
//! future passes — instruction scheduling, dead-store elimination — can
//! reuse it unchanged.

use polycanary_vm::inst::Inst;

/// One basic block: the half-open instruction range `[start, end)` plus its
/// successor edges (block ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the block's first instruction (its leader).
    pub start: usize,
    /// One past the index of the block's last instruction.
    pub end: usize,
    /// Ids of the blocks control can transfer to from this block's last
    /// instruction.  A branch target beyond the end of the body contributes
    /// no edge (control falls off the function).
    pub successors: Vec<usize>,
}

impl BasicBlock {
    /// The instruction range of this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The control-flow graph of one function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Instruction index → id of the containing block.
    block_index: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `insts`.  An empty body yields an empty graph.
    pub fn build(insts: &[Inst]) -> Cfg {
        if insts.is_empty() {
            return Cfg { blocks: Vec::new(), block_index: Vec::new() };
        }

        // Leaders: entry, branch targets, and the instruction after every
        // branch, call, return or abort.
        let mut leader = vec![false; insts.len()];
        leader[0] = true;
        for (i, inst) in insts.iter().enumerate() {
            if let Some(skip) = inst.branch_skip() {
                if let Some(target) = i.checked_add(1 + skip) {
                    if target < insts.len() {
                        leader[target] = true;
                    }
                }
                if i + 1 < insts.len() {
                    leader[i + 1] = true;
                }
            } else if (inst.is_call() || !inst.falls_through()) && i + 1 < insts.len() {
                leader[i + 1] = true;
            }
        }

        // Carve blocks and index instructions.
        let mut blocks = Vec::new();
        let mut block_index = vec![0usize; insts.len()];
        let mut start = 0;
        for i in 0..insts.len() {
            block_index[i] = blocks.len();
            let block_ends = i + 1 == insts.len() || leader[i + 1];
            if block_ends {
                blocks.push(BasicBlock { start, end: i + 1, successors: Vec::new() });
                start = i + 1;
            }
        }

        // Successor edges from each block's last instruction.
        for id in 0..blocks.len() {
            let last = blocks[id].end - 1;
            let inst = &insts[last];
            let mut successors = Vec::new();
            if inst.falls_through() && blocks[id].end < insts.len() {
                successors.push(block_index[blocks[id].end]);
            }
            if let Some(skip) = inst.branch_skip() {
                if let Some(target) = last.checked_add(1 + skip) {
                    if target < insts.len() {
                        let succ = block_index[target];
                        if !successors.contains(&succ) {
                            successors.push(succ);
                        }
                    }
                }
            }
            blocks[id].successors = successors;
        }

        Cfg { blocks, block_index }
    }

    /// The blocks of the graph in instruction order (block 0 is the entry).
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Id of the block containing instruction `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the body the graph was built from.
    pub fn block_of(&self, index: usize) -> usize {
        self.block_index[index]
    }

    /// Per-block reachability from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut work = vec![0usize];
        seen[0] = true;
        while let Some(id) = work.pop() {
            for &succ in &self.blocks[id].successors {
                if !seen[succ] {
                    seen[succ] = true;
                    work.push(succ);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycanary_vm::reg::Reg;

    #[test]
    fn straight_line_body_is_one_block() {
        let insts =
            vec![Inst::PushReg(Reg::Rbp), Inst::Compute(10), Inst::Nop, Inst::Leave, Inst::Ret];
        let cfg = Cfg::build(&insts);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].range(), 0..5);
        assert!(cfg.blocks()[0].successors.is_empty(), "ret has no successors");
    }

    #[test]
    fn conditional_branch_splits_three_ways() {
        // 0: test  1: je +1  2: fail  3: nop  4: ret
        let insts = vec![
            Inst::TestReg(Reg::Rax),
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Nop,
            Inst::Ret,
        ];
        let cfg = Cfg::build(&insts);
        // [test, je] / [fail] / [nop, ret]
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].successors, vec![1, 2]);
        assert!(cfg.blocks()[1].successors.is_empty(), "__stack_chk_fail aborts");
        assert!(cfg.blocks()[2].successors.is_empty());
        assert_eq!(cfg.block_of(2), 1);
        assert_eq!(cfg.block_of(4), 2);
    }

    #[test]
    fn unconditional_jump_has_no_fall_through_edge() {
        // 0: jmp +1  1: nop (unreachable)  2: ret
        let insts = vec![Inst::JmpSkip(1), Inst::Nop, Inst::Ret];
        let cfg = Cfg::build(&insts);
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].successors, vec![2]);
        let reachable = cfg.reachable();
        assert!(reachable[0] && !reachable[1] && reachable[2]);
    }

    #[test]
    fn call_starts_a_new_block_with_a_fall_through_edge() {
        use polycanary_vm::inst::FuncId;
        let insts = vec![Inst::CallFn(FuncId(1)), Inst::Compute(5), Inst::Ret];
        let cfg = Cfg::build(&insts);
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.blocks()[0].successors, vec![1]);
    }

    #[test]
    fn branch_target_past_the_end_contributes_no_edge() {
        let insts = vec![Inst::TestReg(Reg::Rax), Inst::JeSkip(5), Inst::Ret];
        let cfg = Cfg::build(&insts);
        let last = &cfg.blocks()[cfg.block_of(1)];
        // Only the fall-through edge to the ret block survives.
        assert_eq!(last.successors, vec![cfg.block_of(2)]);
    }

    #[test]
    fn empty_body_yields_an_empty_graph() {
        let cfg = Cfg::build(&[]);
        assert!(cfg.blocks().is_empty());
        assert!(cfg.reachable().is_empty());
    }

    #[test]
    fn blocks_partition_the_body() {
        let insts = vec![
            Inst::TestReg(Reg::Rax),
            Inst::JneSkip(2),
            Inst::Compute(1),
            Inst::JmpSkip(1),
            Inst::Compute(2),
            Inst::Ret,
        ];
        let cfg = Cfg::build(&insts);
        let mut covered = vec![0usize; insts.len()];
        for block in cfg.blocks() {
            for i in block.range() {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "every instruction in exactly one block");
    }
}
