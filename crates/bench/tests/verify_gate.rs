//! End-to-end gate behaviour of the static verification sweep: the clean
//! matrix proves finding-free, every injected defect dirties it, and the
//! export envelope flows through the same trend-tracking pipeline
//! (`polycanary-analysis`) as every scenario export.

use polycanary_analysis::diff::{diff_runs, DiffOptions};
use polycanary_analysis::run::Run;
use polycanary_bench::verify::{run_inject, run_verify, InjectedDefect};
use polycanary_core::record::Envelope;

#[test]
fn quick_matrix_proves_clean_and_covers_every_build() {
    let report = run_verify(true);
    assert!(report.is_clean(), "{}", report.render_text());

    // Every cell must carry the deployment matrix: 10 compiler schemes plus
    // both rewriter link modes, for each of the 8 quick workloads.
    let builds: std::collections::BTreeSet<_> =
        report.cells.iter().map(|cell| cell.build.as_str()).collect();
    assert_eq!(builds.len(), 12, "{builds:?}");
    assert!(builds.iter().any(|b| b.contains("dynamic link")));
    assert!(builds.iter().any(|b| b.contains("static link")));
    let workloads: std::collections::BTreeSet<_> =
        report.cells.iter().map(|cell| cell.workload.as_str()).collect();
    assert_eq!(workloads.len(), 8, "{workloads:?}");
}

#[test]
fn every_injected_defect_fails_the_gate_with_its_kind() {
    for defect in InjectedDefect::ALL {
        let report = run_inject(defect);
        assert!(!report.is_clean(), "{defect}: gate passed a known-bad program");
        assert!(
            report.cells[0].findings.iter().any(|f| f.kind == defect.expected_kind()),
            "{defect}: expected {} among {:?}",
            defect.expected_kind(),
            report.cells[0].findings
        );
    }
}

#[test]
fn verify_envelopes_flow_through_the_analysis_pipeline() {
    let report = run_inject(InjectedDefect::StaleRewrite);
    let json = report.envelope(false).to_json();

    // The export is a valid schema-versioned envelope ...
    let envelope = Envelope::from_json(&json).expect("verify export parses as an envelope");
    assert_eq!(envelope.scenario, "verify");
    let count = envelope.records[0]
        .get("finding_count")
        .and_then(|value| value.as_u64())
        .expect("cells carry finding_count");
    assert!(count > 0);

    // ... and the trend tooling ingests and diffs it like any scenario.
    let mut old = Run::new();
    old.ingest_json("old/verify.json", &json).expect("analysis ingests verify exports");
    let mut new = Run::new();
    new.ingest_json("new/verify.json", &json).expect("analysis ingests verify exports");
    let diff = diff_runs(&old, &new, None, &DiffOptions::default());
    assert!(!diff.has_regressions(), "identical verify runs must not diff");
}
