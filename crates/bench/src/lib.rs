//! Benchmark harness regenerating every table and figure of
//! *To Detect Stack Buffer Overflow with Polymorphic Canaries* (DSN 2018).
//!
//! The [`experiments`] module contains one `run_*` / `format_*` pair per
//! table and figure of the paper's evaluation section:
//!
//! | Function | Paper artefact |
//! |---|---|
//! | [`experiments::run_table1`] | Table I — defence-tool comparison |
//! | [`experiments::run_fig5`] | Figure 5 — SPEC runtime overhead |
//! | [`experiments::run_table2`] | Table II — code expansion |
//! | [`experiments::run_table3`] | Table III — web-server response time |
//! | [`experiments::run_table4`] | Table IV — database performance |
//! | [`experiments::run_table5`] | Table V — prologue/epilogue cycles |
//! | [`experiments::run_effectiveness`] | §VI-C — attack effectiveness |
//! | [`experiments::run_theorem1`] | Theorem 1 — canary independence |
//! | [`experiments::run_ablation`] | §IV/§VI-B — extension trade-offs |
//!
//! Run `cargo run -p polycanary-bench --bin harness -- all` to print every
//! table, or `cargo bench` to measure them under Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
