//! Benchmark harness regenerating every table and figure of
//! *To Detect Stack Buffer Overflow with Polymorphic Canaries* (DSN 2018).
//!
//! The [`experiments`] module is a **scenario engine**: every paper
//! artefact (and every extension, like the mixed-fleet `population`
//! scenario) is one module implementing the [`experiments::Experiment`]
//! trait and registered once in [`experiments::registry`].  The `harness`
//! binary derives its usage text, argument validation, dispatch and
//! JSON/CSV export loop from that registry, so a scenario cannot exist
//! half-wired; the Criterion benches wrap the same `run_*` functions for
//! wall-clock measurement, and EXPERIMENTS.md records representative
//! output next to the paper's numbers.
//!
//! | Registry name | Paper artefact |
//! |---|---|
//! | `table1` | Table I — defence-tool comparison |
//! | `fig5` | Figure 5 — SPEC runtime overhead |
//! | `table2` | Table II — code expansion |
//! | `table3` | Table III — web-server response time |
//! | `table4` | Table IV — database performance |
//! | `table5` | Table V — prologue/epilogue cycles |
//! | `effectiveness` | §VI-C — attack effectiveness |
//! | `server-attack` | §II — stop-rule comparison on forking servers |
//! | `population` | mixed partially-patched fleets (beyond the paper) |
//! | `theorem1` | Theorem 1 — canary independence |
//! | `ablation` | §IV/§VI-B — extension trade-offs |
//! | `gen:<lattice>:<cell>` | scenario-grammar cells (`--lattice`, beyond the paper) |
//!
//! Every scenario consumes one [`experiments::ExperimentCtx`] (seed,
//! sizing, worker budget, stop rule) and fans its independent units out
//! over the shared job pool, so records are a pure function of the context
//! — the worker count changes wall time, never results.
//!
//! Run `cargo run -p polycanary-bench --bin harness -- all` to print every
//! table, or `cargo bench` to measure them under Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod grammar;
pub mod verify;

pub use experiments::*;
