//! Theorem 1 — independence of exposed canaries.

use polycanary_core::analysis::{theorem1_independence_test, IndependenceTest};
use polycanary_core::rerandomize::re_randomize;
use polycanary_crypto::Xoshiro256StarStar;

use super::{Experiment, ExperimentCtx, ScenarioOutput};

/// The Theorem-1 scenario: empirical uniformity of the exposed canary half.
pub struct Theorem1;

impl Experiment for Theorem1 {
    fn name(&self) -> &str {
        "theorem1"
    }

    fn title(&self) -> &str {
        "Theorem 1: independence of exposed canaries"
    }

    fn description(&self) -> &str {
        "Chi-square uniformity test over the exposed half of re-randomized \
         canaries"
    }

    fn paper_note(&self) -> &str {
        "the exposed half `C1` of a re-randomized canary is uniform and carries \
         no information about the TLS canary `C` (Theorem 1).  The chi-square \
         statistic over 64 bit positions stays below the 99.9 % critical value."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let result = run_theorem1(ctx);
        ScenarioOutput::new(format_theorem1(&result), vec![result.record()])
    }
}

/// Samples collected per parallel chunk of the Theorem-1 test.  The chunk
/// grid is a function of the sample count alone, so the observation list —
/// and therefore the chi-square statistic — is identical for any worker
/// count.
const THEOREM1_CHUNK: usize = 512;

/// Runs the empirical Theorem-1 test: collects the `C1` half of
/// [`ExperimentCtx::theorem1_samples`] re-randomizations of one fixed TLS
/// canary and checks the observations are consistent with uniformity (zero
/// information about `C`).  Sample chunks draw from independently seeded
/// PRNG streams and fan out over the shared pool.
pub fn run_theorem1(ctx: &ExperimentCtx) -> IndependenceTest {
    let samples = ctx.theorem1_samples.max(1);
    let tls_canary = 0x0123_4567_89AB_CDEFu64 ^ ctx.seed;
    let chunk_seeds =
        polycanary_attacks::campaign::derive_seeds(ctx.seed, samples.div_ceil(THEOREM1_CHUNK));
    let chunks: Vec<(u64, usize)> = chunk_seeds
        .iter()
        .enumerate()
        .map(|(i, &chunk_seed)| {
            let start = i * THEOREM1_CHUNK;
            (chunk_seed, THEOREM1_CHUNK.min(samples - start))
        })
        .collect();
    let observed: Vec<u64> = ctx
        .pool()
        .run(&chunks, |_, &(chunk_seed, len)| {
            let mut rng = Xoshiro256StarStar::new(chunk_seed);
            (0..len).map(|_| re_randomize(tls_canary, &mut rng).c1).collect::<Vec<u64>>()
        })
        .concat();
    theorem1_independence_test(&observed)
}

/// Renders the Theorem-1 result.
pub fn format_theorem1(result: &IndependenceTest) -> String {
    format!(
        "samples = {}, chi-square = {:.2} (df = {}), consistent with uniform: {}\n",
        result.samples,
        result.chi_square,
        result.degrees_of_freedom,
        result.consistent_with_uniform
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_is_consistent_with_uniformity() {
        let result = run_theorem1(&ExperimentCtx::new(99).with_samples(2_000));
        assert_eq!(result.samples, 2_000);
        assert!(result.consistent_with_uniform, "chi2 = {}", result.chi_square);
        assert!(format_theorem1(&result).contains("consistent"));
    }

    #[test]
    fn theorem1_observations_are_worker_count_independent() {
        // A partial last chunk exercises the chunk-grid arithmetic.
        let ctx = ExperimentCtx::new(5).with_samples(THEOREM1_CHUNK * 2 + 100);
        let once = run_theorem1(&ctx.clone().with_workers(1));
        let twice = run_theorem1(&ctx.with_workers(8));
        assert_eq!(once.samples, THEOREM1_CHUNK * 2 + 100);
        assert_eq!(once.chi_square, twice.chi_square);
        assert_eq!(once.consistent_with_uniform, twice.consistent_with_uniform);
    }
}
