//! Ablation over the extensions (§IV / §VI-B), swept over the opt-level axis.

use std::fmt::Write as _;

use polycanary_compiler::OptLevel;
use polycanary_core::analysis::attack_effort;
use polycanary_core::record::Record;
use polycanary_core::scheme::SchemeKind;

use super::{canary_handling_cycles, Experiment, ExperimentCtx, ScenarioOutput};

/// The ablation scenario: cost and security trade-offs of the extensions.
pub struct Ablation;

impl Experiment for Ablation {
    fn name(&self) -> &str {
        "ablation"
    }

    fn title(&self) -> &str {
        "Extensions ablation (P-SSP vs NT / LV / OWF)"
    }

    fn description(&self) -> &str {
        "Per-call cycles (at O0 and the configured opt level), analytical \
         attack effort and deployment requirements of P-SSP and its extensions"
    }

    fn paper_note(&self) -> &str {
        "the extensions trade per-call cycles for deployment (NT needs no \
         TLS/fork changes) and disclosure resilience (only OWF), while all of \
         them keep the byte-by-byte attack at ≥ 2⁶³ expected trials.  The \
         security columns are a property of the scheme, not the optimizer: \
         they are identical across opt levels, and only the per-call cycle \
         column moves when the O2 strength reduction kicks in."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let rows = run_ablation(ctx);
        ScenarioOutput::new(format_ablation(&rows), rows.iter().map(AblationRow::record).collect())
    }
}

/// One row of the extensions ablation at one optimization level.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The scheme.
    pub scheme: SchemeKind,
    /// Optimization level the per-call cost was measured at.
    pub opt_level: OptLevel,
    /// Per-call canary handling cost in cycles.
    pub per_call_cycles: u64,
    /// Expected byte-by-byte trials from the analytical model.
    pub analytical_byte_by_byte_trials: u64,
    /// Whether the scheme needs TLS/fork changes to deploy.
    pub needs_runtime_changes: bool,
    /// Whether the scheme resists the canary-reuse (disclosure) attack.
    pub exposure_resilient: bool,
}

impl AblationRow {
    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("scheme", self.scheme.name())
            .field("opt_level", self.opt_level.label())
            .field("per_call_cycles", self.per_call_cycles)
            .field("analytical_byte_by_byte_trials", self.analytical_byte_by_byte_trials)
            .field("needs_runtime_changes", self.needs_runtime_changes)
            .field("exposure_resilient", self.exposure_resilient)
    }
}

/// Runs the ablation over P-SSP and its three extensions × the ctx's
/// opt-level axis.  Cells are independent parallel jobs on the shared pool.
pub fn run_ablation(ctx: &ExperimentCtx) -> Vec<AblationRow> {
    let seed = ctx.seed;
    let schemes = [SchemeKind::Pssp, SchemeKind::PsspNt, SchemeKind::PsspLv, SchemeKind::PsspOwf];
    let cells: Vec<(SchemeKind, OptLevel)> = schemes
        .into_iter()
        .flat_map(|s| ctx.opt_levels().into_iter().map(move |opt| (s, opt)))
        .collect();
    ctx.pool().run(&cells, |_, &(scheme, opt)| {
        let props = scheme.scheme().properties();
        AblationRow {
            scheme,
            opt_level: opt,
            per_call_cycles: canary_handling_cycles(scheme, 0, opt, seed),
            analytical_byte_by_byte_trials: attack_effort(&props).byte_by_byte_trials,
            needs_runtime_changes: props.modifies_tls_layout,
            exposure_resilient: props.exposure_resilient,
        }
    })
}

/// Renders the ablation.
pub fn format_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>16} {:>24} {:>16} {:>20}",
        "Scheme",
        "Opt",
        "cycles/call",
        "byte-by-byte trials",
        "runtime changes",
        "exposure resilient"
    );
    for row in rows {
        let trials = if row.analytical_byte_by_byte_trials == u64::MAX {
            ">= 2^63".to_string()
        } else {
            row.analytical_byte_by_byte_trials.to_string()
        };
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>16} {:>24} {:>16} {:>20}",
            row.scheme.name(),
            row.opt_level,
            row.per_call_cycles,
            trials,
            if row.needs_runtime_changes { "yes" } else { "no" },
            if row.exposure_resilient { "yes" } else { "no" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_the_three_extensions() {
        let rows = run_ablation(&ExperimentCtx::new(3).with_opt_level(OptLevel::O0));
        assert_eq!(rows.len(), 4);
        let owf = rows.iter().find(|r| r.scheme == SchemeKind::PsspOwf).unwrap();
        assert!(owf.exposure_resilient);
        let nt = rows.iter().find(|r| r.scheme == SchemeKind::PsspNt).unwrap();
        assert!(!nt.needs_runtime_changes);
        assert!(nt.per_call_cycles > rows[0].per_call_cycles);
        assert!(format_ablation(&rows).contains("cycles/call"));
    }

    #[test]
    fn ablation_o2_cells_cost_less_and_keep_the_security_columns() {
        let rows = run_ablation(&ExperimentCtx::new(3));
        // scheme × {O0, O2}, O0 first within each scheme.
        assert_eq!(rows.len(), 8);
        for pair in rows.chunks(2) {
            let (o0, o2) = (&pair[0], &pair[1]);
            assert_eq!(o0.scheme, o2.scheme);
            assert_eq!(o0.opt_level, OptLevel::O0);
            assert_eq!(o2.opt_level, OptLevel::O2);
            assert!(
                o2.per_call_cycles < o0.per_call_cycles,
                "{}: O2 ({}) must cost less per call than O0 ({})",
                o0.scheme.name(),
                o2.per_call_cycles,
                o0.per_call_cycles
            );
            // The optimizer must not change the scheme's security posture.
            assert_eq!(o0.analytical_byte_by_byte_trials, o2.analytical_byte_by_byte_trials);
            assert_eq!(o0.needs_runtime_changes, o2.needs_runtime_changes);
            assert_eq!(o0.exposure_resilient, o2.exposure_resilient);
        }
    }

    #[test]
    fn ablation_rows_are_worker_count_independent() {
        let once = run_ablation(&ExperimentCtx::new(3).with_workers(1));
        let twice = run_ablation(&ExperimentCtx::new(3).with_workers(8));
        assert_eq!(once, twice);
        assert_eq!(once.len(), 8);
    }
}
