//! Table III — web servers.

use std::fmt::Write as _;

use polycanary_workloads::build::Build;
use polycanary_workloads::webserver::{
    benchmark_server, LoadConfig, ResponseTimeReport, ServerModel,
};

use super::{Experiment, ExperimentCtx, ScenarioOutput};

/// The Table III scenario: mean response time per server × build cell.
pub struct Table3;

impl Experiment for Table3 {
    fn name(&self) -> &str {
        "table3"
    }

    fn title(&self) -> &str {
        "Table III: web-server mean response time"
    }

    fn description(&self) -> &str {
        "Mean response time of Apache-like and Nginx-like servers under \
         native, compiler and instrumentation builds"
    }

    fn paper_note(&self) -> &str {
        "~33 ms per Apache2 request at concurrency 500, with the native, \
         compiler-P-SSP and instrumentation builds indistinguishable \
         (differences in the noise) — canary work is lost in the request path.  \
         Reproduced: < 0.02 % spread per server."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let rows = run_table3(ctx);
        ScenarioOutput::new(format_table3(&rows), rows.iter().map(Table3Row::record).collect())
    }
}

/// One cell of Table III — the full workload report of one server × build
/// load run (self-describing via [`ResponseTimeReport::record`]).
pub type Table3Row = ResponseTimeReport;

/// Runs the Table III measurement with [`ExperimentCtx::requests`] per
/// cell.  Every server × build cell is an independent parallel job on the
/// shared pool; the row order is the fixed cell order, not finish order.
pub fn run_table3(ctx: &ExperimentCtx) -> Vec<Table3Row> {
    let config = LoadConfig { requests: ctx.requests.max(1), concurrency: 50, seed: ctx.seed };
    let cells: Vec<(ServerModel, Build)> = [ServerModel::ApacheLike, ServerModel::NginxLike]
        .into_iter()
        .flat_map(|server| Build::figure5_builds().into_iter().map(move |build| (server, build)))
        .collect();
    ctx.pool().run(&cells, |_, &(server, build)| benchmark_server(server, build, config))
}

/// Renders Table III.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<10} {:<36} {:>18}", "Server", "Build", "Mean ms/request");
    for row in rows {
        let _ = writeln!(out, "{:<10} {:<36} {:>18.3}", row.server, row.build, row.mean_ms);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shows_negligible_differences() {
        let rows = run_table3(&ExperimentCtx::new(7).with_requests(20));
        assert_eq!(rows.len(), 6);
        for chunk in rows.chunks(3) {
            let native = chunk[0].mean_ms;
            for cell in chunk {
                assert!((cell.mean_ms - native) / native < 0.01, "{cell:?}");
            }
        }
        assert!(format_table3(&rows).contains("Build"));
    }

    #[test]
    fn table3_cells_are_worker_count_independent() {
        // The pool deposits results under their cell index, so row order is
        // the fixed cell order (servers × figure5 builds) for any pool width.
        let ctx = ExperimentCtx::new(9).with_requests(10);
        let once = run_table3(&ctx.clone().with_workers(1));
        let twice = run_table3(&ctx.with_workers(8));
        assert_eq!(once, twice);
        assert_eq!(once[0].server, "Apache2");
        assert_eq!(once[3].server, "Nginx");
    }
}
