//! Figure 5 — SPEC-like runtime overhead, swept over the opt-level axis.

use std::fmt::Write as _;

use polycanary_compiler::OptLevel;
use polycanary_core::record::Record;
use polycanary_core::scheme::SchemeKind;
use polycanary_rewriter::LinkMode;
use polycanary_workloads::build::Build;
use polycanary_workloads::spec::{mean, spec_suite, SpecProgram};

use super::{Experiment, ExperimentCtx, ScenarioOutput};

/// The Figure 5 scenario: per-program compiler vs instrumentation overhead,
/// reported program × opt-level so the protection cost is measured against
/// an honestly optimized baseline as well as the naive one.
pub struct Fig5;

impl Experiment for Fig5 {
    fn name(&self) -> &str {
        "fig5"
    }

    fn title(&self) -> &str {
        "Figure 5: runtime overhead of P-SSP vs native (SPEC-like suite)"
    }

    fn description(&self) -> &str {
        "Per-program runtime overhead of compiler and instrumentation P-SSP \
         over native, at O0 and the configured opt level"
    }

    fn paper_note(&self) -> &str {
        "P-SSP's average overhead on SPEC CPU2006 stays under ~1 % for the \
         compiler deployment, with the instrumentation deployment consistently a \
         little costlier — both orderings hold here at every opt level, and the \
         O2 rows (protected build and native baseline both optimized) come in \
         below their O0 counterparts for the compiler deployment, since the \
         optimizer strength-reduces the canary check in leaf functions.  \
         Simulated cycle counts depend only on the executed instructions, so \
         this scenario is seed-invariant by design."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let rows = run_fig5(ctx);
        ScenarioOutput::new(format_fig5(&rows), rows.iter().map(Fig5Row::record).collect())
    }
}

/// One bar group of Figure 5 at one optimization level.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark program name.
    pub program: &'static str,
    /// Optimization level both the baseline and the protected builds used.
    pub opt_level: OptLevel,
    /// Compiler-based P-SSP overhead over native, percent.
    pub compiler_percent: f64,
    /// Instrumentation-based P-SSP overhead over native, percent.
    pub instrumentation_percent: f64,
}

impl Fig5Row {
    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("program", self.program)
            .field("opt_level", self.opt_level.label())
            .field("compiler_percent", self.compiler_percent)
            .field("instrumentation_percent", self.instrumentation_percent)
    }
}

/// Runs the Figure 5 sweep over the first [`ExperimentCtx::spec_programs`]
/// SPEC-like programs (28 for the full figure) × the ctx's opt-level axis.
/// Each program × level cell is an independent parallel job on the shared
/// pool.
pub fn run_fig5(ctx: &ExperimentCtx) -> Vec<Fig5Row> {
    let seed = ctx.seed;
    let suite: Vec<SpecProgram> = spec_suite().into_iter().take(ctx.spec_programs.max(1)).collect();
    let cells: Vec<(SpecProgram, OptLevel)> = suite
        .into_iter()
        .flat_map(|p| ctx.opt_levels().into_iter().map(move |opt| (p, opt)))
        .collect();
    ctx.pool().run(&cells, |_, (p, opt)| Fig5Row {
        program: p.name,
        opt_level: *opt,
        compiler_percent: p.overhead_percent_at(Build::Compiler(SchemeKind::Pssp), *opt, seed),
        instrumentation_percent: p.overhead_percent_at(
            Build::BinaryRewriter(LinkMode::Dynamic),
            *opt,
            seed,
        ),
    })
}

/// Renders Figure 5 (as a table of the two series, one row per program ×
/// opt level, with per-level averages).
pub fn format_fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>5} {:>14} {:>20}",
        "Program", "Opt", "Compiler (%)", "Instrumentation (%)"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>14.3} {:>20.3}",
            row.program, row.opt_level, row.compiler_percent, row.instrumentation_percent
        );
    }
    for opt in OptLevel::ALL {
        let level: Vec<&Fig5Row> = rows.iter().filter(|r| r.opt_level == opt).collect();
        if level.is_empty() {
            continue;
        }
        let compiler_mean = mean(&level.iter().map(|r| r.compiler_percent).collect::<Vec<_>>());
        let instr_mean = mean(&level.iter().map(|r| r.instrumentation_percent).collect::<Vec<_>>());
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>14.3} {:>20.3}",
            format!("average @{opt}"),
            opt,
            compiler_mean,
            instr_mean
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_overheads_are_small_and_ordered() {
        let rows =
            run_fig5(&ExperimentCtx::new(5).with_spec_programs(4).with_opt_level(OptLevel::O0));
        assert_eq!(rows.len(), 4);
        let compiler = mean(&rows.iter().map(|r| r.compiler_percent).collect::<Vec<_>>());
        let instr = mean(&rows.iter().map(|r| r.instrumentation_percent).collect::<Vec<_>>());
        assert!(compiler > 0.0 && compiler < 3.0, "compiler mean {compiler}");
        assert!(instr > compiler, "instrumentation {instr} vs compiler {compiler}");
        assert!(format_fig5(&rows).contains("average"));
    }

    #[test]
    fn fig5_default_grid_covers_o0_and_o2_with_lower_o2_overhead() {
        let rows = run_fig5(&ExperimentCtx::new(5).with_spec_programs(4));
        // program × {O0, O2}.
        assert_eq!(rows.len(), 8);
        for pair in rows.chunks(2) {
            let (o0, o2) = (&pair[0], &pair[1]);
            assert_eq!(o0.program, o2.program);
            assert_eq!(o0.opt_level, OptLevel::O0);
            assert_eq!(o2.opt_level, OptLevel::O2);
            assert!(
                o2.compiler_percent < o0.compiler_percent,
                "{}: O2 {:.3}% must beat O0 {:.3}%",
                o0.program,
                o2.compiler_percent,
                o0.compiler_percent
            );
            // The rewriter path compiles shape-preserved, so its canary cost
            // is unchanged — but never worse.
            assert!(o2.instrumentation_percent <= o0.instrumentation_percent + 1e-9);
        }
    }

    #[test]
    fn fig5_records_are_self_describing() {
        use polycanary_core::record::{records_to_csv, records_to_json};

        let rows = run_fig5(&ExperimentCtx::new(5).with_spec_programs(2));
        let records: Vec<Record> = rows.iter().map(Fig5Row::record).collect();
        let json = records_to_json(&records);
        assert!(json.starts_with('[') && json.contains("\"program\""));
        assert!(json.contains("\"opt_level\""));
        let csv = records_to_csv(&records);
        assert!(csv.starts_with("program,opt_level,compiler_percent,instrumentation_percent\n"));
    }
}
