//! Figure 5 — SPEC-like runtime overhead.

use std::fmt::Write as _;

use polycanary_core::record::Record;
use polycanary_core::scheme::SchemeKind;
use polycanary_rewriter::LinkMode;
use polycanary_workloads::build::Build;
use polycanary_workloads::spec::{mean, spec_suite, SpecProgram};

use super::{Experiment, ExperimentCtx, ScenarioOutput};

/// The Figure 5 scenario: per-program compiler vs instrumentation overhead.
pub struct Fig5;

impl Experiment for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "Figure 5: runtime overhead of P-SSP vs native (SPEC-like suite)"
    }

    fn description(&self) -> &'static str {
        "Per-program runtime overhead of compiler and instrumentation P-SSP \
         over native"
    }

    fn paper_note(&self) -> &'static str {
        "P-SSP's average overhead on SPEC CPU2006 stays under ~1 % for the \
         compiler deployment, with the instrumentation deployment consistently a \
         little costlier — both orderings hold here.  Simulated cycle counts \
         depend only on the executed instructions, so this scenario is \
         seed-invariant by design."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let rows = run_fig5(ctx);
        ScenarioOutput::new(format_fig5(&rows), rows.iter().map(Fig5Row::record).collect())
    }
}

/// One bar group of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark program name.
    pub program: &'static str,
    /// Compiler-based P-SSP overhead over native, percent.
    pub compiler_percent: f64,
    /// Instrumentation-based P-SSP overhead over native, percent.
    pub instrumentation_percent: f64,
}

impl Fig5Row {
    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("program", self.program)
            .field("compiler_percent", self.compiler_percent)
            .field("instrumentation_percent", self.instrumentation_percent)
    }
}

/// Runs the Figure 5 sweep over the first [`ExperimentCtx::spec_programs`]
/// SPEC-like programs (28 for the full figure).  Each program is an
/// independent parallel job on the shared pool.
pub fn run_fig5(ctx: &ExperimentCtx) -> Vec<Fig5Row> {
    let seed = ctx.seed;
    let suite: Vec<SpecProgram> = spec_suite().into_iter().take(ctx.spec_programs.max(1)).collect();
    ctx.pool().run(&suite, |_, p| Fig5Row {
        program: p.name,
        compiler_percent: p.overhead_percent(Build::Compiler(SchemeKind::Pssp), seed),
        instrumentation_percent: p.overhead_percent(Build::BinaryRewriter(LinkMode::Dynamic), seed),
    })
}

/// Renders Figure 5 (as a table of the two series).
pub fn format_fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<18} {:>14} {:>20}", "Program", "Compiler (%)", "Instrumentation (%)");
    for row in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>14.3} {:>20.3}",
            row.program, row.compiler_percent, row.instrumentation_percent
        );
    }
    let compiler_mean = mean(&rows.iter().map(|r| r.compiler_percent).collect::<Vec<_>>());
    let instr_mean = mean(&rows.iter().map(|r| r.instrumentation_percent).collect::<Vec<_>>());
    let _ = writeln!(out, "{:<18} {:>14.3} {:>20.3}", "average", compiler_mean, instr_mean);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_overheads_are_small_and_ordered() {
        let rows = run_fig5(&ExperimentCtx::new(5).with_spec_programs(4));
        assert_eq!(rows.len(), 4);
        let compiler = mean(&rows.iter().map(|r| r.compiler_percent).collect::<Vec<_>>());
        let instr = mean(&rows.iter().map(|r| r.instrumentation_percent).collect::<Vec<_>>());
        assert!(compiler > 0.0 && compiler < 3.0, "compiler mean {compiler}");
        assert!(instr > compiler, "instrumentation {instr} vs compiler {compiler}");
        assert!(format_fig5(&rows).contains("average"));
    }

    #[test]
    fn fig5_records_are_self_describing() {
        use polycanary_core::record::{records_to_csv, records_to_json};

        let rows = run_fig5(&ExperimentCtx::new(5).with_spec_programs(2));
        let records: Vec<Record> = rows.iter().map(Fig5Row::record).collect();
        let json = records_to_json(&records);
        assert!(json.starts_with('[') && json.contains("\"program\""));
        let csv = records_to_csv(&records);
        assert!(csv.starts_with("program,compiler_percent,instrumentation_percent\n"));
    }
}
