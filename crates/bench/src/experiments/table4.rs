//! Table IV — databases.

use std::fmt::Write as _;

use polycanary_workloads::build::Build;
use polycanary_workloads::database::{benchmark_database, DatabaseModel, QueryReport};

use super::{Experiment, ExperimentCtx, ScenarioOutput};

/// The Table IV scenario: query latency and memory per engine × build cell.
pub struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &str {
        "table4"
    }

    fn title(&self) -> &str {
        "Table IV: database performance"
    }

    fn description(&self) -> &str {
        "Query latency and memory of MySQL-like and SQLite-like engines \
         under native, compiler and instrumentation builds"
    }

    fn paper_note(&self) -> &str {
        "identical query times and memory across the three builds — 22.59 MB \
         resident for MySQL, 20.58 MB for SQLite, with ~3.3 ms MySQL queries and \
         ~167 ms SQLite thread-test batches.  Reproduced exactly in the memory \
         column and to < 0.01 % in the time columns."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let rows = run_table4(ctx);
        ScenarioOutput::new(format_table4(&rows), rows.iter().map(Table4Row::record).collect())
    }
}

/// One cell of Table IV — the full workload report of one engine × build
/// benchmark (self-describing via [`QueryReport::record`]).
pub type Table4Row = QueryReport;

/// Runs the Table IV measurement with [`ExperimentCtx::queries`] per cell.
/// Every engine × build cell is an independent parallel job on the shared
/// pool; the row order is the fixed cell order, not finish order.
pub fn run_table4(ctx: &ExperimentCtx) -> Vec<Table4Row> {
    let (seed, queries) = (ctx.seed, ctx.queries.max(1));
    let cells: Vec<(DatabaseModel, Build)> = [DatabaseModel::MySqlLike, DatabaseModel::SqliteLike]
        .into_iter()
        .flat_map(|engine| Build::figure5_builds().into_iter().map(move |build| (engine, build)))
        .collect();
    ctx.pool().run(&cells, |_, &(engine, build)| benchmark_database(engine, build, queries, seed))
}

/// Renders Table IV.
pub fn format_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "{:<8} {:<36} {:>16} {:>14}", "Engine", "Build", "Query (ms)", "Memory (MB)");
    for row in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<36} {:>16.3} {:>14.2}",
            row.engine, row.build, row.mean_query_ms, row.memory_mb
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shows_negligible_differences() {
        let rows = run_table4(&ExperimentCtx::new(7).with_queries(3));
        assert_eq!(rows.len(), 6);
        for chunk in rows.chunks(3) {
            let native = chunk[0].mean_query_ms;
            for cell in chunk {
                assert!((cell.mean_query_ms - native) / native < 0.01, "{cell:?}");
                assert_eq!(cell.memory_mb, chunk[0].memory_mb);
            }
        }
        assert!(format_table4(&rows).contains("Memory"));
    }

    #[test]
    fn table4_cells_are_worker_count_independent() {
        let ctx = ExperimentCtx::new(9).with_queries(2);
        let once = run_table4(&ctx.clone().with_workers(1));
        let twice = run_table4(&ctx.with_workers(8));
        assert_eq!(once, twice);
        assert_eq!(once[0].engine, "MySQL");
        assert_eq!(once[3].engine, "SQLite");
    }
}
