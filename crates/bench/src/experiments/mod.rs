//! The scenario engine: every table and figure of the paper as a
//! registered [`Experiment`].
//!
//! Each scenario lives in its own module (one per paper artefact, plus the
//! mixed-fleet [`population`] scenario that goes beyond the paper) and
//! implements the [`Experiment`] trait — name, title, description and a
//! `run` consuming one shared [`ExperimentCtx`].  The [`registry`] is the
//! single source of truth the harness CLI derives its usage text,
//! validation, dispatch and export loop from: a scenario registered here is
//! automatically runnable, listable, exportable and covered by the CI
//! registry sweep; one that is not registered does not exist.
//!
//! Determinism contract, engine-wide: every scenario runs its independent
//! units on the shared [`JobPool`], so its records are a pure function of
//! the [`ExperimentCtx`] — the worker count changes wall time, never
//! results.

use polycanary_attacks::campaign::StopRule;
use polycanary_attacks::pool::JobPool;
use polycanary_compiler::OptLevel;
use polycanary_core::record::Record;

pub mod ablation;
pub mod effectiveness;
pub mod fig5;
pub mod population;
pub mod server_attack;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod theorem1;

pub use ablation::*;
pub use effectiveness::*;
pub use fig5::*;
pub use population::*;
pub use server_attack::*;
pub use table1::*;
pub use table2::*;
pub use table3::*;
pub use table4::*;
pub use table5::*;
pub use theorem1::*;

/// Output medium of a harness run — plain text, or machine-readable
/// JSON/CSV records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExportFormat {
    /// Human-readable tables (the default).
    #[default]
    Text,
    /// Self-describing JSON envelopes (see
    /// [`polycanary_core::record::export_envelope`]).
    Json,
    /// One CSV row per record.
    Csv,
}

impl ExportFormat {
    /// Display label, as accepted by the harness `--format` flag.
    pub fn label(&self) -> &'static str {
        match self {
            ExportFormat::Text => "text",
            ExportFormat::Json => "json",
            ExportFormat::Csv => "csv",
        }
    }

    /// File extension for `--out` exports.
    pub fn extension(&self) -> &'static str {
        match self {
            ExportFormat::Text => "txt",
            ExportFormat::Json => "json",
            ExportFormat::Csv => "csv",
        }
    }
}

/// The one context threaded through every scenario: seed, sizing, worker
/// budget, adaptive-stop policy and output format.
///
/// A scenario must draw **all** of its inputs from here — that is what
/// makes `harness --seed N --workers W <scenario>` reproducible and lets
/// the engine prove worker-count independence across the whole registry.
/// The sizing knobs are plain fields so benches and tests can shrink
/// individual scenarios without inventing a second code path.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentCtx {
    /// Base seed every scenario derives its randomness from.
    pub seed: u64,
    /// CI-sized workloads (`--quick`): fewer programs, requests and seeds.
    pub quick: bool,
    /// Adaptive campaign budgets (`--adaptive`): [`ExperimentCtx::stop_rule`]
    /// defaults to [`StopRule::settled`] instead of [`StopRule::Exhaustive`].
    pub adaptive: bool,
    /// Worker-thread budget; `None` uses one worker per available CPU.
    pub workers: Option<usize>,
    /// Stop rule for single-rule campaign scenarios (the stop-rule
    /// *comparison* scenarios run all three rules regardless).
    pub stop_rule: StopRule,
    /// Output medium the harness renders into.
    pub format: ExportFormat,
    /// SPEC-like programs for Table II / Figure 5 sweeps (Table I uses at
    /// most 6 of them for its overhead column).
    pub spec_programs: usize,
    /// Web requests per Table III cell.
    pub requests: u64,
    /// Database queries per Table IV cell.
    pub queries: u64,
    /// Oracle-request budget per byte-by-byte attack victim.
    pub byte_budget: u64,
    /// Victim seeds per attack campaign.
    pub campaign_seeds: usize,
    /// Re-randomization samples for the Theorem-1 uniformity test.
    pub theorem1_samples: usize,
    /// Optimization level the overhead scenarios compile their O0-vs-opt
    /// comparison column at (`--opt-level`): fig5, table5 and the ablation
    /// report scheme × {O0, opt_level} grids.  Defaults to `O2`; setting
    /// `O0` collapses the grid to the historical single-level rows.
    pub opt_level: OptLevel,
    /// Fleet-scale victim count (`--fleet N`): when set, the campaign
    /// scenarios (`population`, `server-attack`) switch to SPRT-only
    /// fleet campaigns over `N` lazily drawn victim seeds — 10^5+ is
    /// practical because victims boot from memoized snapshots and the
    /// sequential rule cancels almost the entire fleet.  `None` (the
    /// default, and what the registry sweeps use) keeps the classic
    /// stop-rule-comparison scenarios.
    pub fleet: Option<usize>,
}

impl ExperimentCtx {
    /// Full-size context (28 SPEC-like programs, 500 requests / 50 queries
    /// per cell, 32-seed campaigns) with exhaustive budgets.
    pub fn new(seed: u64) -> Self {
        ExperimentCtx {
            seed,
            quick: false,
            adaptive: false,
            workers: None,
            stop_rule: StopRule::Exhaustive,
            format: ExportFormat::Text,
            spec_programs: 28,
            requests: 500,
            queries: 50,
            byte_budget: 20_000,
            campaign_seeds: EFFECTIVENESS_SEEDS,
            theorem1_samples: 5_000,
            opt_level: OptLevel::O2,
            fleet: None,
        }
    }

    /// The opt-level axis the overhead scenarios sweep: always `O0` (the
    /// historical baseline), plus [`ExperimentCtx::opt_level`] when it is
    /// something stronger.
    pub fn opt_levels(&self) -> Vec<OptLevel> {
        if self.opt_level == OptLevel::O0 {
            vec![OptLevel::O0]
        } else {
            vec![OptLevel::O0, self.opt_level]
        }
    }

    /// Shrinks every sizing knob to CI scale (the harness `--quick` flag).
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.quick = true;
        self.spec_programs = 4;
        self.requests = 50;
        self.queries = 5;
        self.byte_budget = 4_000;
        self.campaign_seeds = 8;
        self.theorem1_samples = 2_000;
        self
    }

    /// Switches single-rule campaigns to the Wilson-settled adaptive budget
    /// (the harness `--adaptive` flag).
    #[must_use]
    pub fn adaptive(mut self) -> Self {
        self.adaptive = true;
        self.stop_rule = StopRule::settled();
        self
    }

    /// Caps the worker-thread budget (`0` is treated as `1`).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Overrides the campaign stop rule directly.
    #[must_use]
    pub fn with_stop_rule(mut self, stop_rule: StopRule) -> Self {
        self.stop_rule = stop_rule;
        self
    }

    /// Selects the output medium.
    #[must_use]
    pub fn with_format(mut self, format: ExportFormat) -> Self {
        self.format = format;
        self
    }

    /// Overrides the SPEC-like program count.
    #[must_use]
    pub fn with_spec_programs(mut self, programs: usize) -> Self {
        self.spec_programs = programs.max(1);
        self
    }

    /// Overrides the per-cell web-request count.
    #[must_use]
    pub fn with_requests(mut self, requests: u64) -> Self {
        self.requests = requests.max(1);
        self
    }

    /// Overrides the per-cell database-query count.
    #[must_use]
    pub fn with_queries(mut self, queries: u64) -> Self {
        self.queries = queries.max(1);
        self
    }

    /// Overrides the byte-by-byte request budget.
    #[must_use]
    pub fn with_byte_budget(mut self, budget: u64) -> Self {
        self.byte_budget = budget.max(1);
        self
    }

    /// Overrides the victim-seed count per campaign.
    #[must_use]
    pub fn with_campaign_seeds(mut self, seeds: usize) -> Self {
        self.campaign_seeds = seeds.max(1);
        self
    }

    /// Overrides the Theorem-1 sample count.
    #[must_use]
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.theorem1_samples = samples.max(1);
        self
    }

    /// Selects the optimization level of the comparison column in the
    /// overhead scenarios (the harness `--opt-level` flag).
    #[must_use]
    pub fn with_opt_level(mut self, opt: OptLevel) -> Self {
        self.opt_level = opt;
        self
    }

    /// Switches the campaign scenarios to fleet mode over `fleet` victims
    /// (the harness `--fleet N` flag; `0` is treated as `1`).
    #[must_use]
    pub fn with_fleet(mut self, fleet: usize) -> Self {
        self.fleet = Some(fleet.max(1));
        self
    }

    /// The job pool every scenario fans out on: `--workers`-capped, or one
    /// worker per CPU.
    pub fn pool(&self) -> JobPool {
        self.workers.map(JobPool::with_workers).unwrap_or_default()
    }

    /// The self-describing record form of this context — embedded in every
    /// export envelope so later runs can tell configuration changes from
    /// result changes (`workers` 0 encodes "auto": one per CPU).
    pub fn record(&self) -> Record {
        Record::new()
            .field("seed", self.seed)
            .field("quick", self.quick)
            .field("adaptive", self.adaptive)
            .field("workers", self.workers.unwrap_or(0))
            .field("stop_rule", self.stop_rule.label())
            .field("format", self.format.label())
            .field("spec_programs", self.spec_programs)
            .field("requests", self.requests)
            .field("queries", self.queries)
            .field("byte_budget", self.byte_budget)
            .field("campaign_seeds", self.campaign_seeds)
            .field("theorem1_samples", self.theorem1_samples)
            .field("opt_level", self.opt_level.label())
            .field("fleet", self.fleet.unwrap_or(0))
    }
}

/// What one scenario run produced: the plain-text rendering and the
/// machine-readable records behind it.
#[derive(Debug, Clone)]
pub struct ScenarioOutput {
    /// Human-readable rendering in the spirit of the paper's table.
    pub text: String,
    /// Self-describing records, one per row/cell, for JSON/CSV export.
    pub records: Vec<Record>,
}

impl ScenarioOutput {
    /// Bundles a rendering with its records.
    pub fn new(text: String, records: Vec<Record>) -> Self {
        ScenarioOutput { text, records }
    }
}

/// One registered scenario: a paper table/figure (or an extension like the
/// mixed-fleet campaign) with a stable name, human titles and a run method
/// consuming the shared [`ExperimentCtx`].
pub trait Experiment: Sync {
    /// Stable registry name (`table1`, `fig5`, `population`,
    /// `gen:<lattice>:<cell>`, …) — the CLI argument, export file stem and
    /// `scenario` envelope field.
    fn name(&self) -> &str;

    /// One-line title naming the paper artefact, shown above text output.
    fn title(&self) -> &str;

    /// One-line description for usage text and the experiment table in the
    /// docs.
    fn description(&self) -> &str;

    /// Alternative CLI names (e.g. `attack` for `effectiveness`).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// The annotation comparing this scenario's output to the paper's
    /// numbers — the `**Paper:**` paragraph of its section in the
    /// generated EXPERIMENTS.md.  Required, not defaulted: registering a
    /// scenario without documenting what the paper claims is exactly the
    /// doc drift the generated report exists to prevent.
    fn paper_note(&self) -> &str;

    /// The context record embedded in this scenario's export envelope.
    /// Defaults to the shared [`ExperimentCtx::record`]; generated
    /// scenarios override it to append their per-cell configuration, so
    /// `harness diff` classifies cell-axis changes as configuration
    /// divergence rather than result regressions.
    fn export_ctx(&self, ctx: &ExperimentCtx) -> Record {
        ctx.record()
    }

    /// Runs the scenario under `ctx` and returns its rendering + records.
    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput;
}

/// Every scenario, registered exactly once, in canonical order.  The
/// harness and the CI sweep both iterate this list — adding a scenario
/// here is all it takes to make it runnable, documented and CI-covered.
///
/// ```
/// use polycanary_bench::experiments::registry;
///
/// let experiments = registry();
/// let names: Vec<&str> = experiments.iter().map(|e| e.name()).collect();
/// assert!(names.contains(&"table1") && names.contains(&"server-attack"));
/// // Every scenario carries the metadata the generated report needs.
/// for experiment in &experiments {
///     assert!(!experiment.description().is_empty(), "{}", experiment.name());
///     assert!(!experiment.paper_note().is_empty(), "{}", experiment.name());
/// }
/// ```
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(table1::Table1),
        Box::new(fig5::Fig5),
        Box::new(table2::Table2),
        Box::new(table3::Table3),
        Box::new(table4::Table4),
        Box::new(table5::Table5),
        Box::new(effectiveness::Effectiveness),
        Box::new(server_attack::ServerAttack),
        Box::new(population::MixedPopulation),
        Box::new(theorem1::Theorem1),
        Box::new(ablation::Ablation),
    ]
}

/// The registry plus, when a lattice is selected, every scenario the
/// scenario grammar generates for it — the one dynamic registration path
/// (`harness --lattice NAME --gen-seed N`).  Generated scenarios are
/// ordinary [`Experiment`]s named `gen:<lattice>:<cell>`, so they flow
/// through listing, export, diff and report exactly like the static ones.
///
/// # Errors
///
/// Returns a message listing the valid lattice names when `lattice` names
/// none of them (the harness maps this to usage-error exit status 2).
pub fn registry_with(lattice: Option<(&str, u64)>) -> Result<Vec<Box<dyn Experiment>>, String> {
    let mut experiments = registry();
    if let Some((name, gen_seed)) = lattice {
        experiments.extend(crate::grammar::generated_experiments(name, gen_seed)?);
    }
    Ok(experiments)
}

/// Resolves a CLI name (canonical or alias) to its registered scenario.
pub fn find_experiment(name: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.name() == name || e.aliases().contains(&name))
}

/// The registry rendered as report metadata: one
/// [`SectionMeta`](polycanary_analysis::summary::SectionMeta) per
/// scenario, in registry order.  `harness report` hands this to
/// [`polycanary_analysis::summary::RunSummary`] so the generated
/// EXPERIMENTS.md sections, titles and paper annotations all come from the
/// same place the CLI usage text does.
pub fn report_sections() -> Vec<polycanary_analysis::summary::SectionMeta> {
    registry()
        .iter()
        .map(|experiment| polycanary_analysis::summary::SectionMeta {
            name: experiment.name().to_string(),
            title: experiment.title().to_string(),
            description: experiment.description().to_string(),
            paper_note: experiment.paper_note().to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_aliases_resolve() {
        let experiments = registry();
        let names: Vec<&str> = experiments.iter().map(|e| e.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate registry names: {names:?}");
        assert_eq!(names.len(), 11);
        assert!(find_experiment("attack").is_some_and(|e| e.name() == "effectiveness"));
        assert!(find_experiment("population").is_some());
        assert!(find_experiment("no-such-scenario").is_none());
    }

    #[test]
    fn generated_names_never_collide_with_static_scenarios_or_aliases() {
        // The latent gap the grammar closed: uniqueness must hold across
        // the *combined* catalogue — static names, static aliases and the
        // generated `gen:*` names of every lattice — not just the static
        // list.
        for lattice in crate::grammar::lattices() {
            let experiments = registry_with(Some((lattice.name(), 7)))
                .expect("every advertised lattice generates");
            let mut seen = std::collections::HashSet::new();
            for experiment in &experiments {
                assert!(
                    seen.insert(experiment.name().to_string()),
                    "duplicate scenario name {} in lattice {}",
                    experiment.name(),
                    lattice.name()
                );
                for alias in experiment.aliases() {
                    assert!(
                        seen.insert((*alias).to_string()),
                        "alias {alias} collides in lattice {}",
                        lattice.name()
                    );
                }
            }
            // Generated scenarios are namespaced away from static ones.
            for experiment in &experiments[registry().len()..] {
                assert!(
                    experiment.name().starts_with(&format!("gen:{}:", lattice.name())),
                    "generated scenario {} must live under gen:{}:",
                    experiment.name(),
                    lattice.name()
                );
                assert!(experiment.aliases().is_empty(), "generated scenarios have no aliases");
            }
        }
        // Unknown lattices are rejected with the valid names in the message.
        let Err(err) = registry_with(Some(("no-such-lattice", 7))) else {
            panic!("must reject unknown lattices")
        };
        assert!(err.contains("no-such-lattice") && err.contains("smoke"), "{err}");
    }

    #[test]
    fn ctx_defaults_and_quick_sizes_match_the_harness_contract() {
        let full = ExperimentCtx::new(7);
        assert_eq!(
            (full.spec_programs, full.requests, full.queries, full.byte_budget),
            (28, 500, 50, 20_000)
        );
        assert_eq!(full.campaign_seeds, EFFECTIVENESS_SEEDS);
        assert_eq!(full.stop_rule, StopRule::Exhaustive);
        let quick = ExperimentCtx::new(7).quick();
        assert_eq!(
            (quick.spec_programs, quick.requests, quick.queries, quick.byte_budget),
            (4, 50, 5, 4_000)
        );
        assert_eq!(quick.campaign_seeds, 8);
        let adaptive = ExperimentCtx::new(7).adaptive();
        assert_eq!(adaptive.stop_rule, StopRule::settled());
        assert_eq!(full.opt_level, OptLevel::O2);
        assert_eq!(full.opt_levels(), vec![OptLevel::O0, OptLevel::O2]);
        assert_eq!(
            ExperimentCtx::new(7).with_opt_level(OptLevel::O0).opt_levels(),
            vec![OptLevel::O0]
        );
        assert_eq!(ExperimentCtx::new(7).with_workers(0).workers, Some(1));
    }

    #[test]
    fn ctx_record_captures_every_reproducibility_knob() {
        use polycanary_core::record::Value;

        let rec = ExperimentCtx::new(9).quick().with_workers(4).record();
        assert_eq!(rec.get("seed"), Some(&Value::UInt(9)));
        assert_eq!(rec.get("quick"), Some(&Value::Bool(true)));
        assert_eq!(rec.get("workers"), Some(&Value::UInt(4)));
        assert_eq!(rec.get("stop_rule"), Some(&Value::Str("exhaustive".into())));
        assert_eq!(rec.get("opt_level"), Some(&Value::Str("O2".into())));
        // Auto parallelism encodes as 0.
        assert_eq!(ExperimentCtx::new(9).record().get("workers"), Some(&Value::UInt(0)));
    }
}
