//! §VI-C — attack effectiveness.

use std::fmt::Write as _;

use polycanary_attacks::campaign::{AttackKind, Campaign, CampaignReport};
use polycanary_attacks::victim::Deployment;
use polycanary_core::record::Record;
use polycanary_core::scheme::SchemeKind;

use super::{Experiment, ExperimentCtx, ScenarioOutput};

/// The §VI-C scenario: per-scheme campaigns of all three attack strategies.
pub struct Effectiveness;

impl Experiment for Effectiveness {
    fn name(&self) -> &str {
        "effectiveness"
    }

    fn title(&self) -> &str {
        "\u{a7}VI-C: attack effectiveness (byte-by-byte, exhaustive, reuse)"
    }

    fn description(&self) -> &str {
        "Multi-seed byte-by-byte, exhaustive and canary-reuse campaigns \
         against every P-SSP variant"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["attack"]
    }

    fn paper_note(&self) -> &str {
        "the byte-by-byte attack needs ~8·2⁷ ≈ 1024 expected requests to break \
         SSP and never breaks any P-SSP variant; exhaustive guessing is hopeless \
         against everyone at bounded budgets; only P-SSP-OWF survives canary \
         disclosure-and-reuse.  All four claims hold in every seed, not just on \
         average.  The `P-SSP (binary, 32-bit)` row campaigns the binary-rewriter \
         deployment (an SSP binary upgraded in place, keeping the single 8-byte \
         canary slot), so its ~256-request failures reflect the instrumented \
         binary the paper measures."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let rows = run_effectiveness(ctx, EFFECTIVENESS_SCHEMES);
        ScenarioOutput::new(
            format_effectiveness(&rows),
            rows.iter().map(EffectivenessRow::record).collect(),
        )
    }
}

/// The schemes the registered effectiveness and server-attack scenarios
/// campaign against.
pub const EFFECTIVENESS_SCHEMES: &[SchemeKind] = &[
    SchemeKind::Ssp,
    SchemeKind::Pssp,
    SchemeKind::PsspNt,
    SchemeKind::PsspOwf,
    SchemeKind::PsspBin32,
];

/// Result of the effectiveness experiment for one scheme: one multi-seed
/// campaign per attack strategy.
#[derive(Debug, Clone)]
pub struct EffectivenessRow {
    /// The scheme under attack.
    pub scheme: SchemeKind,
    /// Byte-by-byte campaign over all victim seeds.
    pub byte_by_byte: CampaignReport,
    /// Exhaustive campaign (bounded budget) over all victim seeds.
    pub exhaustive: CampaignReport,
    /// Canary-reuse campaign over all victim seeds.
    pub reuse: CampaignReport,
}

impl EffectivenessRow {
    /// The self-describing record form of this row — one nested campaign
    /// record (including per-seed runs) per attack strategy.
    pub fn record(&self) -> Record {
        Record::new()
            .field("scheme", self.scheme.name())
            .field("deployment", self.byte_by_byte.deployment.label())
            .field("byte_by_byte", self.byte_by_byte.record())
            .field("exhaustive", self.exhaustive.record())
            .field("reuse", self.reuse.record())
    }
}

/// Default number of independent victim seeds per effectiveness campaign
/// (the campaign engine's own default, re-exposed under the experiment's
/// name so the two can never drift apart).
pub const EFFECTIVENESS_SEEDS: usize = polycanary_attacks::campaign::DEFAULT_SEEDS;

/// The deployment vehicle §VI-C measures for a scheme: `PsspBin32` *is* the
/// binary-rewriter deployment (an SSP binary upgraded in place, keeping
/// SSP's single 8-byte canary slot), so campaigning it under the compiler
/// would measure the wrong binary; every other scheme ships via its
/// compiler plugin.
pub fn effectiveness_deployment(scheme: SchemeKind) -> Deployment {
    if scheme == SchemeKind::PsspBin32 {
        Deployment::BinaryRewriter
    } else {
        Deployment::Compiler
    }
}

/// Runs the §VI-C effectiveness experiment for the given schemes.
///
/// Every (scheme, attack) cell is a [`Campaign`] over
/// [`ExperimentCtx::campaign_seeds`] independent victim seeds derived from
/// the context seed, fanned out over the shared pool (scheme rows in
/// parallel, campaign seeds on nested workers), so the reported numbers are
/// a distribution rather than a single-seed anecdote.  Under a settling
/// [`ExperimentCtx::stop_rule`] each campaign ends as soon as its verdict
/// is statistically proven, spending strictly fewer requests on unanimous
/// cells while reaching the same verdicts as the exhaustive run.
pub fn run_effectiveness(ctx: &ExperimentCtx, schemes: &[SchemeKind]) -> Vec<EffectivenessRow> {
    let (seed, seeds) = (ctx.seed, ctx.campaign_seeds.max(1));
    let pool = ctx.pool();
    let campaign_workers = pool.nested_workers(schemes.len());
    pool.run(schemes, |_, &scheme| {
        let campaign = |attack: AttackKind, base: u64| {
            Campaign::new(attack, scheme)
                .with_deployment(effectiveness_deployment(scheme))
                .with_seed_range(base, seeds)
                .with_stop_rule(ctx.stop_rule)
                .with_workers(campaign_workers)
                .run()
        };
        EffectivenessRow {
            scheme,
            byte_by_byte: campaign(AttackKind::ByteByByte { budget: ctx.byte_budget }, seed),
            exhaustive: campaign(AttackKind::Exhaustive { budget: 500 }, seed ^ 1),
            reuse: campaign(AttackKind::Reuse, seed ^ 2),
        }
    })
}

/// Renders one campaign cell: success rate plus the request-count spread.
pub(crate) fn format_campaign_cell(report: &CampaignReport) -> String {
    let rate = format!("{}/{}", report.successes(), report.campaigns());
    match report.success_trial_stats() {
        Some(stats) => format!(
            "breaks {rate}, {:.0}±{:.0} reqs (med {}, p95 {}, max {})",
            stats.mean, stats.std_dev, stats.median, stats.p95, stats.max
        ),
        None => {
            let trials = report.trial_stats().map(|s| s.median).unwrap_or(0);
            format!("fails {rate} (median {trials} reqs)")
        }
    }
}

/// Renders the effectiveness experiment.
pub fn format_effectiveness(rows: &[EffectivenessRow]) -> String {
    let mut out = String::new();
    let seeds = rows.first().map(|r| r.byte_by_byte.configured_seeds as u64).unwrap_or(0);
    let _ = writeln!(out, "per-scheme campaigns over {seeds} independent victim seeds");
    let _ = writeln!(
        out,
        "{:<12} {:<52} {:<34} {:<30} {:>10}",
        "Scheme", "byte-by-byte", "exhaustive (500)", "canary reuse", "wall (ms)"
    );
    for row in rows {
        let wall_ms = (row.byte_by_byte.wall_time + row.exhaustive.wall_time + row.reuse.wall_time)
            .as_secs_f64()
            * 1_000.0;
        let _ = writeln!(
            out,
            "{:<12} {:<52} {:<34} {:<30} {:>10.1}",
            row.scheme.name(),
            format_campaign_cell(&row.byte_by_byte),
            format_campaign_cell(&row.exhaustive),
            format_campaign_cell(&row.reuse),
            wall_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycanary_attacks::campaign::{StopRule, Verdict};

    fn ctx(seed: u64, budget: u64, seeds: usize) -> ExperimentCtx {
        ExperimentCtx::new(seed).with_byte_budget(budget).with_campaign_seeds(seeds)
    }

    #[test]
    fn effectiveness_rows_separate_ssp_from_pssp() {
        let rows = run_effectiveness(&ctx(11, 4_000, 8), &[SchemeKind::Ssp, SchemeKind::Pssp]);
        let ssp = &rows[0];
        let pssp = &rows[1];
        // The campaign verdicts must hold in *every* seed, not on average.
        assert!(ssp.byte_by_byte.all_succeeded(), "SSP falls in every seed");
        assert!(pssp.byte_by_byte.none_succeeded(), "P-SSP survives every seed");
        assert!(ssp.exhaustive.none_succeeded() && pssp.exhaustive.none_succeeded());
        assert!(ssp.reuse.all_succeeded() && pssp.reuse.all_succeeded());
        // The request-count distribution matches the ~8·2⁷ analysis of §II-B.
        let stats = ssp.byte_by_byte.success_trial_stats().expect("all succeeded");
        assert!(stats.mean > 64.0 && stats.max <= 8 * 256 + 1, "{stats}");
        let rendered = format_effectiveness(&rows);
        assert!(rendered.contains("8 independent victim seeds"));
        assert!(rendered.contains("breaks 8/8"));
        assert!(rendered.contains("fails 0/8"));
    }

    #[test]
    fn effectiveness_campaigns_are_reproducible_and_worker_independent() {
        let base = ctx(3, 3_000, 4);
        let once = run_effectiveness(&base.clone().with_workers(1), &[SchemeKind::Ssp]);
        let twice = run_effectiveness(&base.with_workers(8), &[SchemeKind::Ssp]);
        assert_eq!(once[0].byte_by_byte.runs, twice[0].byte_by_byte.runs);
        assert_eq!(once[0].exhaustive.runs, twice[0].exhaustive.runs);
        assert_eq!(once[0].reuse.runs, twice[0].reuse.runs);
    }

    #[test]
    fn pssp_bin32_effectiveness_campaigns_attack_the_rewritten_binary() {
        use polycanary_attacks::victim::{ForkingServer, VictimConfig};

        // Regression: the §VI-C PsspBin32 row must attack the rewriter
        // deployment, not a compiler-deployed victim.
        assert_eq!(effectiveness_deployment(SchemeKind::PsspBin32), Deployment::BinaryRewriter);
        assert_eq!(effectiveness_deployment(SchemeKind::Pssp), Deployment::Compiler);

        let rows = run_effectiveness(&ctx(3, 2_000, 4), &[SchemeKind::PsspBin32]);
        let row = &rows[0];
        for report in [&row.byte_by_byte, &row.exhaustive, &row.reuse] {
            assert_eq!(report.deployment, Deployment::BinaryRewriter, "{}", report.attack);
        }
        // The campaigned geometry is SSP's single-slot layout: the rewriter
        // keeps one 8-byte canary region (vs 16 for compiler-built P-SSP).
        for run in &row.byte_by_byte.runs {
            let victim = VictimConfig::new(SchemeKind::PsspBin32, run.seed)
                .with_deployment(Deployment::BinaryRewriter);
            assert_eq!(ForkingServer::new(victim).geometry().canary_region_len, 8);
        }
        // And the rewritten binary still resists the byte-by-byte attack.
        assert!(row.byte_by_byte.none_succeeded(), "{:?}", row.byte_by_byte);
    }

    #[test]
    fn adaptive_effectiveness_agrees_with_exhaustive_on_verdicts() {
        let schemes = [SchemeKind::Ssp, SchemeKind::Pssp];
        let exhaustive = run_effectiveness(&ctx(5, 3_000, 8), &schemes);
        let adaptive =
            run_effectiveness(&ctx(5, 3_000, 8).with_stop_rule(StopRule::settled()), &schemes);
        for (e, a) in exhaustive.iter().zip(&adaptive) {
            assert_eq!(e.byte_by_byte.verdict(), a.byte_by_byte.verdict(), "{}", e.scheme);
            assert_eq!(e.exhaustive.verdict(), a.exhaustive.verdict(), "{}", e.scheme);
            assert_eq!(e.reuse.verdict(), a.reuse.verdict(), "{}", e.scheme);
        }
        assert_eq!(exhaustive[0].byte_by_byte.verdict(), Verdict::Breaks);
        // Unanimous cells settle after the first batch, so the adaptive run
        // spends strictly fewer requests.
        let requests = |rows: &[EffectivenessRow]| -> u64 {
            rows.iter()
                .map(|r| {
                    r.byte_by_byte.total_requests()
                        + r.exhaustive.total_requests()
                        + r.reuse.total_requests()
                })
                .sum()
        };
        assert!(requests(&adaptive) < requests(&exhaustive));
    }

    #[test]
    fn effectiveness_records_nest_per_seed_runs() {
        use polycanary_core::record::Value;

        let eff = run_effectiveness(&ctx(3, 3_000, 4), &[SchemeKind::Ssp]);
        let rec = eff[0].record();
        let Some(Value::Record(byte)) = rec.get("byte_by_byte") else {
            panic!("nested campaign record: {rec:?}")
        };
        let Some(Value::List(runs)) = byte.get("runs") else { panic!("per-seed runs") };
        assert_eq!(runs.len(), 4);
    }
}
