//! Table I — defence-tool comparison.

use std::fmt::Write as _;

use polycanary_attacks::campaign::{AttackKind, Campaign, StopRule, Verdict};
use polycanary_core::record::Record;
use polycanary_core::scheme::{ForkCanaryPolicy, SchemeKind};
use polycanary_workloads::build::Build;
use polycanary_workloads::spec::{mean, spec_suite, SpecProgram};

use super::{Experiment, ExperimentCtx, ScenarioOutput};

/// The Table I scenario: BROP campaign verdicts, fork correctness and
/// compiler overhead per defence tool.
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &str {
        "table1"
    }

    fn title(&self) -> &str {
        "Table I: comparison of brute-force-attack defence tools"
    }

    fn description(&self) -> &str {
        "Defence-tool comparison: SPRT BROP-campaign verdicts, fork-return \
         correctness, compiler overhead"
    }

    fn paper_note(&self) -> &str {
        "only P-SSP combines BROP prevention, fork-correctness and near-zero \
         overhead — SSP is correct but falls to the byte-by-byte attack, RAF-SSP \
         prevents it but breaks returns through inherited frames, DynaGuard/DCR \
         prevent it at higher bookkeeping cost.  The BROP column is a multi-seed \
         forking-server campaign verdict (`successes/victims, connections`) under \
         the sequential (SPRT) stop rule, and the fork-canary column is the §II \
         mechanism behind it: only the schemes whose forked workers inherit the \
         parent's canary byte-for-byte are BROP-able."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let rows = run_table1(ctx);
        ScenarioOutput::new(format_table1(&rows), rows.iter().map(Table1Row::record).collect())
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The defence tool.
    pub scheme: SchemeKind,
    /// "BROP Prevention" column — the verdict of a multi-seed byte-by-byte
    /// campaign against forking servers protected by the scheme (`true`
    /// when the campaign proves the attack fails).
    pub brop_prevented: bool,
    /// The full tri-state campaign verdict behind [`Self::brop_prevented`]
    /// — an inconclusive campaign is not the same as a proven break.
    pub brop_verdict: Verdict,
    /// Successful hijacks in the BROP campaign.
    pub brop_successes: u64,
    /// Completed campaign runs (may stop short of [`TABLE1_BROP_SEEDS`]
    /// once the sequential stop rule settles the verdict).
    pub brop_runs: u64,
    /// Total connections the BROP campaign opened against its forking
    /// servers (one connection per byte-guess in the reconnect loop).
    pub brop_connections: u64,
    /// What a forked worker's canaries look like across the reconnect
    /// loop — the property the BROP column turns on.
    pub fork_canary_policy: ForkCanaryPolicy,
    /// "Correctness" column — measured by forking a child after the parent
    /// pushed protected frames and letting the child return through them.
    pub correct: bool,
    /// Compiler-based runtime overhead over native, in percent (measured on
    /// a subset of the SPEC-like suite).
    pub compiler_overhead_percent: f64,
}

impl Table1Row {
    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("scheme", self.scheme.name())
            .field("brop_prevented", self.brop_prevented)
            .field("brop_verdict", self.brop_verdict.label())
            .field("brop_successes", self.brop_successes)
            .field("brop_runs", self.brop_runs)
            .field("brop_connections", self.brop_connections)
            .field("fork_canary_policy", self.fork_canary_policy.label())
            .field("correct", self.correct)
            .field("compiler_overhead_percent", self.compiler_overhead_percent)
    }
}

/// Victim seeds configured per Table-I BROP campaign; the adaptive stop
/// rule usually settles the verdict after the first batch.
pub const TABLE1_BROP_SEEDS: usize = 8;

/// Runs the Table I comparison.  Scheme rows are independent, so they fan
/// out over the shared [`super::ExperimentCtx::pool`]; the report only
/// depends on the context.
pub fn run_table1(ctx: &ExperimentCtx) -> Vec<Table1Row> {
    let seed = ctx.seed;
    let schemes = [
        SchemeKind::Ssp,
        SchemeKind::RafSsp,
        SchemeKind::DynaGuard,
        SchemeKind::Dcr,
        SchemeKind::Pssp,
    ];
    // The overhead column is a representative subset, never the whole suite.
    let programs: Vec<SpecProgram> =
        spec_suite().into_iter().take(ctx.spec_programs.clamp(1, 6)).collect();
    let pool = ctx.pool();
    let campaign_workers = pool.nested_workers(schemes.len());
    pool.run(&schemes, |_, &scheme| {
        // BROP prevention: a multi-seed forking-server campaign verdict, not
        // a single-seed anecdote.  The sequential (SPRT) rule stops the
        // reconnect loop as soon as the evidence is conclusive — one victim
        // earlier than the Wilson rule on these unanimous populations.
        let budget = if scheme == SchemeKind::Ssp { 4_000 } else { 3_000 };
        let brop = Campaign::new(AttackKind::ByteByByte { budget }, scheme)
            .with_seed_range(seed, TABLE1_BROP_SEEDS)
            .with_stop_rule(StopRule::sprt())
            .with_workers(campaign_workers)
            .run();

        // Correctness: child returning into an inherited protected frame.
        let correct = fork_return_correctness(scheme, seed);

        // Overhead on the SPEC-like subset.
        let overheads: Vec<f64> =
            programs.iter().map(|p| p.overhead_percent(Build::Compiler(scheme), seed)).collect();

        Table1Row {
            scheme,
            brop_prevented: brop.verdict() == Verdict::Resists,
            brop_verdict: brop.verdict(),
            brop_successes: brop.successes(),
            brop_runs: brop.campaigns(),
            brop_connections: brop.total_requests(),
            fork_canary_policy: scheme.fork_canary_policy(),
            correct,
            compiler_overhead_percent: mean(&overheads),
        }
    })
}

/// The fork-return correctness scenario of §II-B/§II-C: the parent forks
/// while a protected frame is live on its stack, and the child later executes
/// that frame's *epilogue* (i.e. returns through the inherited frame).
/// RAF-SSP fails this check because the child's TLS canary no longer matches
/// the canary the parent's prologue stored; every other scheme passes.
///
/// The scenario is built from two hand-assembled functions that share one
/// frame layout: `parent_half` runs the scheme's prologue (leaving the canary
/// and any bookkeeping state behind, exactly like a frame that is still live
/// at fork time) and `child_half` runs only the scheme's epilogue over that
/// inherited frame image.
pub fn fork_return_correctness(scheme: SchemeKind, seed: u64) -> bool {
    use polycanary_core::layout::FrameInfo;
    use polycanary_vm::inst::Inst;
    use polycanary_vm::machine::Machine;
    use polycanary_vm::program::Program;
    use polycanary_vm::reg::Reg;

    let scheme_obj = scheme.scheme();
    let frame = FrameInfo::protected("inherited_frame", 0x40);

    let mut parent_half = vec![
        Inst::PushReg(Reg::Rbp),
        Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
        Inst::SubRspImm(frame.frame_size),
    ];
    parent_half.extend(scheme_obj.emit_prologue(&frame));
    parent_half.extend([Inst::MovImmToReg { dst: Reg::Rax, imm: 0 }, Inst::Leave, Inst::Ret]);

    let mut child_half = vec![
        Inst::PushReg(Reg::Rbp),
        Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
        Inst::SubRspImm(frame.frame_size),
    ];
    child_half.extend(scheme_obj.emit_epilogue(&frame));
    child_half.extend([Inst::MovImmToReg { dst: Reg::Rax, imm: 0 }, Inst::Leave, Inst::Ret]);

    let mut program = Program::new();
    let parent_fn = program.add_function("parent_half", parent_half).expect("unique names");
    program.add_function("child_half", child_half).expect("unique names");
    program.set_entry(parent_fn);

    let mut machine = Machine::new(program, scheme_obj.runtime_hooks(seed), seed);
    let mut parent = machine.spawn();
    let parent_outcome = machine.run_function(&mut parent, "parent_half").expect("exists");
    if !parent_outcome.exit.is_normal() {
        return false;
    }
    // Fork while the parent's canary (and bookkeeping entries) are in place.
    let mut child = machine.fork(&mut parent);
    // The child now "returns" through the inherited frame: both functions use
    // the same frame size, so the epilogue reads exactly the slots the
    // parent's prologue wrote.
    let child_outcome = machine.run_function(&mut child, "child_half").expect("exists");
    child_outcome.exit.is_normal()
}

/// Renders Table I as text.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>26} {:>14} {:>12} {:>24}",
        "Defence", "BROP Prevention", "Fork canary", "Correctness", "Compiler overhead (%)"
    );
    for row in rows {
        let brop = format!(
            "{} ({}/{}, {} conns)",
            match row.brop_verdict {
                Verdict::Resists => "Yes",
                Verdict::Breaks => "No",
                Verdict::Inconclusive => "?",
            },
            row.brop_successes,
            row.brop_runs,
            row.brop_connections
        );
        let _ = writeln!(
            out,
            "{:<12} {:>26} {:>14} {:>12} {:>24.2}",
            row.scheme.name(),
            brop,
            row.fork_canary_policy.label(),
            if row.correct { "Yes" } else { "No" },
            row.compiler_overhead_percent
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentCtx {
        ExperimentCtx::new(3).with_spec_programs(2)
    }

    #[test]
    fn table1_matches_paper_qualitative_columns() {
        let rows = run_table1(&ctx());
        let by_scheme = |k: SchemeKind| rows.iter().find(|r| r.scheme == k).unwrap();
        assert!(!by_scheme(SchemeKind::Ssp).brop_prevented);
        assert!(by_scheme(SchemeKind::Ssp).correct);
        assert!(by_scheme(SchemeKind::RafSsp).brop_prevented);
        assert!(!by_scheme(SchemeKind::RafSsp).correct);
        for k in [SchemeKind::DynaGuard, SchemeKind::Dcr, SchemeKind::Pssp] {
            assert!(by_scheme(k).brop_prevented, "{k}");
            assert!(by_scheme(k).correct, "{k}");
        }
        // P-SSP is the cheapest of the BROP-preventing schemes.
        assert!(
            by_scheme(SchemeKind::Pssp).compiler_overhead_percent
                <= by_scheme(SchemeKind::DynaGuard).compiler_overhead_percent + 1e-9
        );
        assert!(format_table1(&rows).contains("P-SSP"));
    }

    #[test]
    fn table1_brop_column_runs_on_the_sprt_reconnect_loop() {
        let rows = run_table1(&ctx());
        for row in &rows {
            // The SPRT rule settles the unanimous BROP cells in 3 victims.
            assert_eq!(row.brop_runs, 3, "{}", row.scheme);
            assert!(row.brop_connections > 0, "{}", row.scheme);
            let expected = match row.scheme {
                SchemeKind::Ssp => ForkCanaryPolicy::Inherited,
                _ => ForkCanaryPolicy::Rerandomized,
            };
            assert_eq!(row.fork_canary_policy, expected, "{}", row.scheme);
        }
        let rendered = format_table1(&rows);
        assert!(rendered.contains("conns"), "{rendered}");
        assert!(rendered.contains("Fork canary"), "{rendered}");
    }
}
