//! Mixed-population campaigns: partially patched fleets (beyond the paper).
//!
//! Every paper table campaigns a *unanimous* fleet, whose empirical success
//! rate is 0 or 1 — the easiest case for any stop rule.  This scenario
//! attacks weighted mixes of patched (P-SSP) and static-canary (SSP)
//! servers, producing in-between success rates that genuinely exercise the
//! sequential rules: SPRT's 0.2/0.8 indifference region, its α/β error
//! budget, and the exhaustive Wilson test's inconclusive band around 1/2.

use std::fmt::Write as _;

use polycanary_attacks::campaign::{AttackKind, Campaign};
use polycanary_attacks::population::Population;
use polycanary_core::record::Record;
use polycanary_core::scheme::SchemeKind;

use super::{Experiment, ExperimentCtx, ScenarioOutput, StopRuleComparison};

/// The mixed-population scenario.
pub struct MixedPopulation;

impl Experiment for MixedPopulation {
    fn name(&self) -> &'static str {
        "population"
    }

    fn title(&self) -> &'static str {
        "Mixed victim populations: partially patched fleets vs the stop rules"
    }

    fn description(&self) -> &'static str {
        "Byte-by-byte campaigns against partially patched fleets (mixed \
         P-SSP/SSP), comparing SPRT, Wilson and exhaustive verdicts"
    }

    fn paper_note(&self) -> &'static str {
        "(beyond the paper) every paper table campaigns a unanimous fleet \
         (success rate 0 or 1) where all three stop rules provably agree.  Here \
         each victim seed deterministically draws one member of a weighted \
         population (e.g. a fleet whose P-SSP rollout reached 70 %), so the \
         empirical rate lands between the endpoints — the regime the sequential \
         rules were designed for: SPRT may settle inside its α/β error budget \
         while the Wilson interval stays inconclusive, and a 50/50 fleet leaves \
         every rule undecided (the 0.2/0.8 indifference region working as \
         designed)."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let rows = run_population(ctx);
        ScenarioOutput::new(
            format_population(&rows),
            rows.iter().map(PopulationRow::record).collect(),
        )
    }
}

/// The fleets the registered scenario campaigns against, from almost-fully
/// patched (attack mostly fails) through an even split (maximally
/// ambiguous) to mostly static (attack mostly succeeds).
pub fn population_fleets() -> Vec<Population> {
    vec![
        Population::mixed("patched-90/10", [(9, SchemeKind::Pssp), (1, SchemeKind::Ssp)]),
        Population::mixed("patched-70/30", [(7, SchemeKind::Pssp), (3, SchemeKind::Ssp)]),
        Population::mixed("half-half-50/50", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]),
        Population::mixed("static-70/30", [(3, SchemeKind::Pssp), (7, SchemeKind::Ssp)]),
    ]
}

/// One row of the mixed-population experiment: a fleet and the byte-by-byte
/// campaign against it under all three stop rules.
#[derive(Debug, Clone)]
pub struct PopulationRow {
    /// The victim fleet.
    pub population: Population,
    /// The byte-by-byte attack under the three stop rules.
    pub byte_by_byte: StopRuleComparison,
}

impl PopulationRow {
    /// Empirical success rate of the full (exhaustive-rule) campaign — the
    /// ground truth the sequential rules approximate.
    pub fn exhaustive_rate(&self) -> f64 {
        self.byte_by_byte.exhaustive.success_rate()
    }

    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("population", self.population.label())
            .field("population_mix", self.population.record())
            .field("exhaustive_success_rate", self.exhaustive_rate())
            .field("byte_by_byte", self.byte_by_byte.record())
    }
}

/// Runs the mixed-population experiment: every fleet in
/// [`population_fleets`] is campaigned with the byte-by-byte attack over
/// [`ExperimentCtx::campaign_seeds`] victim seeds under all three stop
/// rules.  Fleet rows fan out over the shared pool; every cell is
/// deterministic in the context and independent of the worker count.
pub fn run_population(ctx: &ExperimentCtx) -> Vec<PopulationRow> {
    let fleets = population_fleets();
    // A unanimous cell is characterized by any handful of victims; a mixed
    // fleet needs enough independent draws for its empirical rate to
    // resemble the configured weights, so this scenario doubles the
    // configured campaign width.
    let (seed, seeds) = (ctx.seed, ctx.campaign_seeds.max(1) * 2);
    let byte_budget = ctx.byte_budget;
    let pool = ctx.pool();
    let campaign_workers = pool.nested_workers(fleets.len());
    pool.run(&fleets, |_, fleet| PopulationRow {
        population: fleet.clone(),
        byte_by_byte: StopRuleComparison::run(
            &Campaign::against(AttackKind::ByteByByte { budget: byte_budget }, fleet.clone())
                .with_seed_range(seed, seeds)
                .with_workers(campaign_workers),
        ),
    })
}

/// Renders the mixed-population experiment: per fleet, the empirical rate
/// and the per-rule `verdict victims/connections` cells.
pub fn format_population(rows: &[PopulationRow]) -> String {
    let mut out = String::new();
    let seeds = rows.first().map(|r| r.byte_by_byte.exhaustive.configured_seeds).unwrap_or(0);
    let _ = writeln!(
        out,
        "byte-by-byte campaigns against mixed fleets over {seeds} victim seeds; \
         cells are `verdict victims/connections` under sprt | wilson | exhaustive"
    );
    let _ = writeln!(out, "{:<18} {:>10} {:<64}", "Fleet", "rate", "byte-by-byte");
    for row in rows {
        let cmp = &row.byte_by_byte;
        let cells = format!(
            "{} | {} | {}{}",
            StopRuleComparison::cell(&cmp.sprt),
            StopRuleComparison::cell(&cmp.wilson),
            StopRuleComparison::cell(&cmp.exhaustive),
            if cmp.verdicts_agree() { "" } else { "  (sequential rules differ)" }
        );
        let _ = writeln!(
            out,
            "{:<18} {:>10.2} {:<64}",
            row.population.label(),
            row.exhaustive_rate(),
            cells
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_rows_cover_the_configured_fleets() {
        let rows =
            run_population(&ExperimentCtx::new(7).with_byte_budget(2_600).with_campaign_seeds(6));
        assert_eq!(rows.len(), population_fleets().len());
        for row in &rows {
            assert!(!row.population.is_uniform(), "{}", row.population.label());
            // Mixed fleets run twice the configured campaign width.
            assert_eq!(row.byte_by_byte.exhaustive.campaigns(), 12);
        }
        let rendered = format_population(&rows);
        assert!(rendered.contains("half-half-50/50"), "{rendered}");
        assert!(rendered.contains("12 victim seeds"), "{rendered}");
    }

    #[test]
    fn population_rows_are_worker_count_independent() {
        let ctx = ExperimentCtx::new(5).with_byte_budget(2_600).with_campaign_seeds(5);
        let once = run_population(&ctx.clone().with_workers(1));
        let twice = run_population(&ctx.with_workers(8));
        assert_eq!(once.len(), twice.len());
        for (a, b) in once.iter().zip(&twice) {
            assert_eq!(a.byte_by_byte.sprt.runs, b.byte_by_byte.sprt.runs);
            assert_eq!(a.byte_by_byte.wilson.runs, b.byte_by_byte.wilson.runs);
            assert_eq!(a.byte_by_byte.exhaustive.runs, b.byte_by_byte.exhaustive.runs);
        }
    }

    #[test]
    fn population_records_label_the_fleet_mix() {
        use polycanary_core::record::Value;

        let rows =
            run_population(&ExperimentCtx::new(3).with_byte_budget(2_600).with_campaign_seeds(4));
        let rec = rows[0].record();
        assert_eq!(rec.get("population"), Some(&Value::Str("patched-90/10".into())));
        let Some(Value::Record(mix)) = rec.get("population_mix") else {
            panic!("fleet mix must nest: {rec:?}")
        };
        let Some(Value::List(members)) = mix.get("members") else { panic!("members nest") };
        assert_eq!(members.len(), 2);
    }
}
