//! Mixed-population campaigns: partially patched fleets (beyond the paper).
//!
//! Every paper table campaigns a *unanimous* fleet, whose empirical success
//! rate is 0 or 1 — the easiest case for any stop rule.  This scenario
//! attacks weighted mixes of patched (P-SSP) and static-canary (SSP)
//! servers, producing in-between success rates that genuinely exercise the
//! sequential rules: SPRT's 0.2/0.8 indifference region, its α/β error
//! budget, and the exhaustive Wilson test's inconclusive band around 1/2.

use std::fmt::Write as _;

use polycanary_attacks::campaign::{AttackKind, Campaign, CampaignReport, StopRule};
use polycanary_attacks::population::Population;
use polycanary_core::record::Record;
use polycanary_core::scheme::SchemeKind;

use super::{Experiment, ExperimentCtx, ScenarioOutput, StopRuleComparison};

/// The mixed-population scenario.
pub struct MixedPopulation;

impl Experiment for MixedPopulation {
    fn name(&self) -> &str {
        "population"
    }

    fn title(&self) -> &str {
        "Mixed victim populations: partially patched fleets vs the stop rules"
    }

    fn description(&self) -> &str {
        "Byte-by-byte campaigns against partially patched fleets (mixed \
         P-SSP/SSP), comparing SPRT, Wilson and exhaustive verdicts"
    }

    fn paper_note(&self) -> &str {
        "(beyond the paper) every paper table campaigns a unanimous fleet \
         (success rate 0 or 1) where all three stop rules provably agree.  Here \
         each victim seed deterministically draws one member of a weighted \
         population (e.g. a fleet whose P-SSP rollout reached 70 %), so the \
         empirical rate lands between the endpoints — the regime the sequential \
         rules were designed for: SPRT may settle inside its α/β error budget \
         while the Wilson interval stays inconclusive, and a 50/50 fleet leaves \
         every rule undecided (the 0.2/0.8 indifference region working as \
         designed)."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        if let Some(fleet) = ctx.fleet {
            let rows = run_population_fleet(ctx, fleet);
            return ScenarioOutput::new(
                format_population_fleet(&rows),
                rows.iter().map(FleetRow::record).collect(),
            );
        }
        let rows = run_population(ctx);
        ScenarioOutput::new(
            format_population(&rows),
            rows.iter().map(PopulationRow::record).collect(),
        )
    }
}

/// The fleets the registered scenario campaigns against, from almost-fully
/// patched (attack mostly fails) through an even split (maximally
/// ambiguous) to mostly static (attack mostly succeeds).
pub fn population_fleets() -> Vec<Population> {
    vec![
        Population::mixed("patched-90/10", [(9, SchemeKind::Pssp), (1, SchemeKind::Ssp)]),
        Population::mixed("patched-70/30", [(7, SchemeKind::Pssp), (3, SchemeKind::Ssp)]),
        Population::mixed("half-half-50/50", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]),
        Population::mixed("static-70/30", [(3, SchemeKind::Pssp), (7, SchemeKind::Ssp)]),
    ]
}

/// One row of the mixed-population experiment: a fleet and the byte-by-byte
/// campaign against it under all three stop rules.
#[derive(Debug, Clone)]
pub struct PopulationRow {
    /// The victim fleet.
    pub population: Population,
    /// The byte-by-byte attack under the three stop rules.
    pub byte_by_byte: StopRuleComparison,
}

impl PopulationRow {
    /// Empirical success rate of the full (exhaustive-rule) campaign — the
    /// ground truth the sequential rules approximate.
    pub fn exhaustive_rate(&self) -> f64 {
        self.byte_by_byte.exhaustive.success_rate()
    }

    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("population", self.population.label())
            .field("population_mix", self.population.record())
            .field("exhaustive_success_rate", self.exhaustive_rate())
            .field("byte_by_byte", self.byte_by_byte.record())
    }
}

/// Runs the mixed-population experiment: every fleet in
/// [`population_fleets`] is campaigned with the byte-by-byte attack over
/// [`ExperimentCtx::campaign_seeds`] victim seeds under all three stop
/// rules.  Fleet rows fan out over the shared pool; every cell is
/// deterministic in the context and independent of the worker count.
pub fn run_population(ctx: &ExperimentCtx) -> Vec<PopulationRow> {
    let fleets = population_fleets();
    // A unanimous cell is characterized by any handful of victims; a mixed
    // fleet needs enough independent draws for its empirical rate to
    // resemble the configured weights, so this scenario doubles the
    // configured campaign width.
    let (seed, seeds) = (ctx.seed, ctx.campaign_seeds.max(1) * 2);
    let byte_budget = ctx.byte_budget;
    let pool = ctx.pool();
    let campaign_workers = pool.nested_workers(fleets.len());
    pool.run(&fleets, |_, fleet| PopulationRow {
        population: fleet.clone(),
        byte_by_byte: StopRuleComparison::run(
            &Campaign::against(AttackKind::ByteByByte { budget: byte_budget }, fleet.clone())
                .with_seed_range(seed, seeds)
                .with_workers(campaign_workers),
        ),
    })
}

/// Renders the mixed-population experiment: per fleet, the empirical rate
/// and the per-rule `verdict victims/connections` cells.
pub fn format_population(rows: &[PopulationRow]) -> String {
    let mut out = String::new();
    let seeds = rows.first().map(|r| r.byte_by_byte.exhaustive.configured_seeds).unwrap_or(0);
    let _ = writeln!(
        out,
        "byte-by-byte campaigns against mixed fleets over {seeds} victim seeds; \
         cells are `verdict victims/connections` under sprt | wilson | exhaustive"
    );
    let _ = writeln!(out, "{:<18} {:>10} {:<64}", "Fleet", "rate", "byte-by-byte");
    for row in rows {
        let cmp = &row.byte_by_byte;
        let cells = format!(
            "{} | {} | {}{}",
            StopRuleComparison::cell(&cmp.sprt),
            StopRuleComparison::cell(&cmp.wilson),
            StopRuleComparison::cell(&cmp.exhaustive),
            if cmp.verdicts_agree() { "" } else { "  (sequential rules differ)" }
        );
        let _ = writeln!(
            out,
            "{:<18} {:>10.2} {:<64}",
            row.population.label(),
            row.exhaustive_rate(),
            cells
        );
    }
    out
}

/// One fleet-mode row: a population campaigned at fleet scale under the
/// SPRT stop rule.  Fleet mode is SPRT-only by design — an exhaustive
/// campaign over 10^5 victims would attack them all, and the Wilson rule's
/// repeated testing has a heavy tail on near-50/50 fleets, while SPRT's
/// expected sample size stays in the single digits whatever the fleet
/// size.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// The victim fleet.
    pub population: Population,
    /// The SPRT byte-by-byte campaign over the whole fleet.
    pub report: CampaignReport,
}

impl FleetRow {
    /// The self-describing record form of this row — including the
    /// snapshot-reuse and shard counters the fleet engine exists for.
    /// Every field is deterministic (worker-count independent).
    pub fn record(&self) -> Record {
        Record::new()
            .field("population", self.population.label())
            .field("population_mix", self.population.record())
            .field("fleet", self.report.configured_seeds)
            .field("completed_seeds", self.report.runs.len())
            .field("victims_cancelled", self.report.victims_cancelled())
            .field("stopped_early", self.report.stopped_early())
            .field("verdict", self.report.verdict().label())
            .field("success_rate", self.report.success_rate())
            .field("total_requests", self.report.total_requests())
            .field("shard_size", self.report.shard_size)
            .field("snapshot_configs", self.report.snapshot_configs())
            .field("snapshot_reuses", self.report.snapshot_reuses())
    }
}

/// Runs the fleet-mode population experiment: every fleet in
/// [`population_fleets`] is campaigned with the byte-by-byte attack over
/// `fleet_size` lazily drawn victim seeds under [`StopRule::sprt`].  The
/// sequential rule settles after a handful of victims and cancels the
/// rest, so 10^5+ victims complete in seconds; the reported rows are
/// byte-identical at any worker count.
pub fn run_population_fleet(ctx: &ExperimentCtx, fleet_size: usize) -> Vec<FleetRow> {
    let fleets = population_fleets();
    let (seed, byte_budget) = (ctx.seed, ctx.byte_budget);
    let pool = ctx.pool();
    let campaign_workers = pool.nested_workers(fleets.len());
    pool.run(&fleets, |_, fleet| FleetRow {
        population: fleet.clone(),
        report: Campaign::against(AttackKind::ByteByByte { budget: byte_budget }, fleet.clone())
            .with_seed_range(seed, fleet_size)
            .with_stop_rule(StopRule::sprt())
            .with_workers(campaign_workers)
            .run(),
    })
}

/// Renders the fleet-mode population experiment: per fleet, the verdict,
/// how few victims the SPRT rule actually attacked, and the snapshot
/// reuse behind them.
pub fn format_population_fleet(rows: &[FleetRow]) -> String {
    let mut out = String::new();
    let fleet = rows.first().map(|r| r.report.configured_seeds).unwrap_or(0);
    let _ = writeln!(
        out,
        "SPRT byte-by-byte fleet campaigns over {fleet} victims per fleet; \
         snapshots are shared per victim configuration"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "Fleet", "verdict", "attacked", "cancelled", "configs", "reuses"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>10} {:>12} {:>10} {:>10}",
            row.population.label(),
            row.report.verdict().label(),
            row.report.campaigns(),
            row.report.victims_cancelled(),
            row.report.snapshot_configs(),
            row.report.snapshot_reuses(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_rows_cover_the_configured_fleets() {
        let rows =
            run_population(&ExperimentCtx::new(7).with_byte_budget(2_600).with_campaign_seeds(6));
        assert_eq!(rows.len(), population_fleets().len());
        for row in &rows {
            assert!(!row.population.is_uniform(), "{}", row.population.label());
            // Mixed fleets run twice the configured campaign width.
            assert_eq!(row.byte_by_byte.exhaustive.campaigns(), 12);
        }
        let rendered = format_population(&rows);
        assert!(rendered.contains("half-half-50/50"), "{rendered}");
        assert!(rendered.contains("12 victim seeds"), "{rendered}");
    }

    #[test]
    fn population_rows_are_worker_count_independent() {
        let ctx = ExperimentCtx::new(5).with_byte_budget(2_600).with_campaign_seeds(5);
        let once = run_population(&ctx.clone().with_workers(1));
        let twice = run_population(&ctx.with_workers(8));
        assert_eq!(once.len(), twice.len());
        for (a, b) in once.iter().zip(&twice) {
            assert_eq!(a.byte_by_byte.sprt.runs, b.byte_by_byte.sprt.runs);
            assert_eq!(a.byte_by_byte.wilson.runs, b.byte_by_byte.wilson.runs);
            assert_eq!(a.byte_by_byte.exhaustive.runs, b.byte_by_byte.exhaustive.runs);
        }
    }

    #[test]
    fn fleet_mode_completes_at_scale_and_is_worker_count_independent() {
        let ctx = ExperimentCtx::new(11).with_byte_budget(2_600).with_fleet(100_000);
        let serial = run_population_fleet(&ctx.clone().with_workers(1), 100_000);
        let parallel = run_population_fleet(&ctx.with_workers(8), 100_000);
        assert_eq!(serial.len(), population_fleets().len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.report.runs, b.report.runs, "{}", a.population.label());
            assert_eq!(a.record(), b.record(), "{}", a.population.label());
            assert_eq!(a.report.configured_seeds, 100_000);
            // SPRT settles after a handful of victims; the rest of the
            // fleet is never attacked (or even constructed).
            assert!(a.report.stopped_early(), "{}", a.population.label());
            assert!(a.report.campaigns() < 100, "{}", a.population.label());
        }
    }

    #[test]
    fn fleet_records_export_snapshot_and_shard_counters() {
        use polycanary_core::record::Value;

        let ctx = ExperimentCtx::new(9).with_byte_budget(2_600).with_fleet(10_000);
        let rows = run_population_fleet(&ctx, 10_000);
        let rec = rows[0].record();
        assert_eq!(rec.get("fleet"), Some(&Value::UInt(10_000)));
        assert!(rec.get("shard_size").is_some(), "{rec:?}");
        assert!(rec.get("snapshot_configs").is_some(), "{rec:?}");
        assert!(rec.get("snapshot_reuses").is_some(), "{rec:?}");
        assert!(rec.get("victims_cancelled").is_some(), "{rec:?}");
        let rendered = format_population_fleet(&rows);
        assert!(rendered.contains("10000 victims per fleet"), "{rendered}");
        assert!(rendered.contains("cancelled"), "{rendered}");
    }

    #[test]
    fn population_records_label_the_fleet_mix() {
        use polycanary_core::record::Value;

        let rows =
            run_population(&ExperimentCtx::new(3).with_byte_budget(2_600).with_campaign_seeds(4));
        let rec = rows[0].record();
        assert_eq!(rec.get("population"), Some(&Value::Str("patched-90/10".into())));
        let Some(Value::Record(mix)) = rec.get("population_mix") else {
            panic!("fleet mix must nest: {rec:?}")
        };
        let Some(Value::List(members)) = mix.get("members") else { panic!("members nest") };
        assert_eq!(members.len(), 2);
    }
}
