//! Table II — code expansion.

use polycanary_core::record::{Record, Value};
use polycanary_core::scheme::SchemeKind;
use polycanary_crypto::{Prng, Xoshiro256StarStar};
use polycanary_rewriter::LinkMode;
use polycanary_workloads::build::{binary_size, Build};
use polycanary_workloads::spec::{mean, spec_suite, SpecProgram};

use super::{Experiment, ExperimentCtx, ScenarioOutput};

/// The Table II scenario: code expansion of the three deployments.
pub struct Table2;

impl Experiment for Table2 {
    fn name(&self) -> &str {
        "table2"
    }

    fn title(&self) -> &str {
        "Table II: code expansion rate"
    }

    fn description(&self) -> &str {
        "Binary-size expansion of compiler P-SSP and dynamic/static \
         instrumentation over a seed-sampled program set"
    }

    fn paper_note(&self) -> &str {
        "compilation grows the binary by a few percent; dynamic instrumentation \
         expands nothing on disk (the rewriter patches in place against the SSP \
         baseline), while static rewriting pays the largest expansion.  Same \
         shape here.  A `--quick` run measures a seed-sampled program subset \
         (listed in the record) rather than always the first four, so the shrunk \
         mean is not biased toward one fixed slice."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let result = run_table2(ctx);
        ScenarioOutput::new(format_table2(&result), vec![result.record()])
    }
}

/// The three columns of Table II, plus the program set they were measured
/// over.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// Compiler-based P-SSP code expansion, percent.
    pub compilation_percent: f64,
    /// Instrumentation-based expansion for dynamically linked binaries.
    pub instrumentation_dynamic_percent: f64,
    /// Instrumentation-based expansion for statically linked binaries.
    pub instrumentation_static_percent: f64,
    /// The measured programs — the whole suite for full runs, a
    /// seed-sampled subset for shrunk (`--quick`) runs.
    pub programs: Vec<&'static str>,
}

impl Table2Result {
    /// The self-describing record form of this result, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("compilation_percent", self.compilation_percent)
            .field("instrumentation_dynamic_percent", self.instrumentation_dynamic_percent)
            .field("instrumentation_static_percent", self.instrumentation_static_percent)
            .field(
                "programs",
                self.programs.iter().map(|&p| Value::Str(p.into())).collect::<Vec<_>>(),
            )
    }
}

/// The SPEC-like programs a Table II run of `count` programs measures.
///
/// A shrunk run measures a *mean* over an arbitrary subset, so pinning it
/// to "the first N of the suite" would silently bias every quick run
/// toward the same programs; instead the subset is a seed-derived sample
/// (Fisher–Yates over the suite), which is how the scenario consumes
/// [`ExperimentCtx::seed`].  Asking for the whole suite (or more) returns
/// it in canonical order, making full runs seed-independent.
pub fn table2_program_sample(seed: u64, count: usize) -> Vec<SpecProgram> {
    let mut suite = spec_suite();
    let count = count.clamp(1, suite.len());
    if count == suite.len() {
        return suite;
    }
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x7AB2_E5EE_D000_0002);
    // Partial Fisher–Yates: after i swaps the prefix is a uniform sample.
    for i in 0..count {
        let j = i + (rng.next_u64() as usize) % (suite.len() - i);
        suite.swap(i, j);
    }
    suite.truncate(count);
    suite
}

/// Runs the Table II measurement over [`ExperimentCtx::spec_programs`]
/// programs sampled per [`table2_program_sample`].  Programs are
/// independent parallel jobs on the shared pool; binary sizes are exact, so
/// the result is a pure function of the context.
pub fn run_table2(ctx: &ExperimentCtx) -> Table2Result {
    let sample = table2_program_sample(ctx.seed, ctx.spec_programs);

    /// Per-program expansion of every deployment, measured in one job so
    /// each module is built once per build flavour.
    struct ProgramExpansion {
        compilation: f64,
        dynamic: f64,
        statik: f64,
    }
    let expansions: Vec<ProgramExpansion> = ctx.pool().run(&sample, |_, p| {
        let module = p.module();
        let native = binary_size(&module, Build::Native) as f64;
        // The instrumentation columns compare against the SSP binary the
        // rewriter starts from, matching the paper's methodology.
        let ssp_baseline = binary_size(&module, Build::Compiler(SchemeKind::Ssp)) as f64;
        let percent = |build: Build, baseline: f64| -> f64 {
            (binary_size(&module, build) as f64 - baseline) / baseline * 100.0
        };
        ProgramExpansion {
            compilation: percent(Build::Compiler(SchemeKind::Pssp), native),
            dynamic: percent(Build::BinaryRewriter(LinkMode::Dynamic), ssp_baseline),
            statik: percent(Build::BinaryRewriter(LinkMode::Static), ssp_baseline),
        }
    });

    Table2Result {
        compilation_percent: mean(&expansions.iter().map(|e| e.compilation).collect::<Vec<_>>()),
        instrumentation_dynamic_percent: mean(
            &expansions.iter().map(|e| e.dynamic).collect::<Vec<_>>(),
        ),
        instrumentation_static_percent: mean(
            &expansions.iter().map(|e| e.statik).collect::<Vec<_>>(),
        ),
        programs: sample.iter().map(|p| p.name).collect(),
    }
}

/// Renders Table II.
pub fn format_table2(result: &Table2Result) -> String {
    format!(
        "{:<28} {:>10.2}%\n{:<28} {:>10.2}%\n{:<28} {:>10.2}%\n(over {} programs: {})\n",
        "Compilation",
        result.compilation_percent,
        "Instrumentation (dynamic)",
        result.instrumentation_dynamic_percent,
        "Instrumentation (static)",
        result.instrumentation_static_percent,
        result.programs.len(),
        result.programs.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        let result = run_table2(&ExperimentCtx::new(7).with_spec_programs(3));
        assert!(result.compilation_percent > 0.0 && result.compilation_percent < 5.0);
        assert_eq!(result.instrumentation_dynamic_percent, 0.0);
        assert!(result.instrumentation_static_percent > 0.0);
        assert_eq!(result.programs.len(), 3);
        assert!(format_table2(&result).contains("static"));
    }

    #[test]
    fn table2_consumes_the_context_seed() {
        // Regression for the pre-registry engine, whose `run_table2` ignored
        // the harness seed entirely: a shrunk run's program subset is a
        // seed-derived sample, so two seeds measure different program sets.
        let a = run_table2(&ExperimentCtx::new(1).with_spec_programs(4));
        let b = run_table2(&ExperimentCtx::new(2).with_spec_programs(4));
        assert_ne!(a.programs, b.programs, "quick subsets must be seed-sampled");
        // Same seed, same subset — the sample is deterministic.
        let a_again = run_table2(&ExperimentCtx::new(1).with_spec_programs(4));
        assert_eq!(a, a_again);
        // A full-suite run is seed-independent by design: there is nothing
        // left to sample.
        let full = spec_suite().len();
        assert_eq!(
            run_table2(&ExperimentCtx::new(1).with_spec_programs(full)).programs,
            run_table2(&ExperimentCtx::new(2).with_spec_programs(full)).programs,
        );
    }

    #[test]
    fn table2_sample_is_a_subset_without_duplicates() {
        let sample = table2_program_sample(9, 6);
        assert_eq!(sample.len(), 6);
        let suite_names: Vec<&str> = spec_suite().iter().map(|p| p.name).collect();
        let mut names: Vec<&str> = sample.iter().map(|p| p.name).collect();
        assert!(names.iter().all(|n| suite_names.contains(n)));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "sampled programs must be pairwise distinct");
        // Oversized requests clamp to the whole suite in canonical order.
        let all = table2_program_sample(9, suite_names.len() + 10);
        assert_eq!(all.iter().map(|p| p.name).collect::<Vec<_>>(), suite_names);
    }
}
