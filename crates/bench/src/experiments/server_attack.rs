//! Forking-server attack: stop-rule comparison over the reconnect loop (§II).

use std::fmt::Write as _;

use polycanary_attacks::campaign::{AttackKind, Campaign, CampaignReport, StopRule};
use polycanary_attacks::server::ForkingServer;
use polycanary_attacks::victim::{Deployment, VictimConfig};
use polycanary_core::record::Record;
use polycanary_core::scheme::{ForkCanaryPolicy, SchemeKind};

use super::{
    effectiveness_deployment, Experiment, ExperimentCtx, ScenarioOutput, EFFECTIVENESS_SCHEMES,
};

/// The forking-server attack scenario: SPRT vs Wilson vs exhaustive stop
/// rules per scheme × attack cell.
pub struct ServerAttack;

impl Experiment for ServerAttack {
    fn name(&self) -> &str {
        "server-attack"
    }

    fn title(&self) -> &str {
        "Forking-server attack: SPRT vs Wilson vs exhaustive stop rules (\u{a7}II)"
    }

    fn description(&self) -> &str {
        "Reconnect-loop campaigns against forking servers under all three \
         stop rules, with verdict-agreement flags and server counters"
    }

    fn paper_note(&self) -> &str {
        "each victim is a long-lived forking server; every byte-guess is one \
         connection served by a freshly forked worker, so the SSP break at \
         ~1000 connections per victim and the polymorphic survivals reproduce \
         the §II-B analysis against the realistic reconnect loop.  Every cell is \
         campaigned under all three stop rules: `Exhaustive` attacks every \
         configured victim, `WilsonSettled` stops once a 95 % interval clears \
         the 1/2 threshold (4 unanimous victims), and `Sprt` — Wald's \
         sequential probability-ratio test at 5 % error rates — stops after 3, \
         spending strictly fewer connections on every unanimous cell while \
         always reaching the same verdict."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        if let Some(fleet) = ctx.fleet {
            let rows = run_server_attack_fleet(ctx, EFFECTIVENESS_SCHEMES, fleet);
            return ScenarioOutput::new(
                format_server_attack_fleet(&rows),
                rows.iter().map(ServerFleetRow::record).collect(),
            );
        }
        let rows = run_server_attack(ctx, EFFECTIVENESS_SCHEMES);
        ScenarioOutput::new(
            format_server_attack(&rows),
            rows.iter().map(ServerAttackRow::record).collect(),
        )
    }
}

/// One attack strategy campaigned under all three stop rules against the
/// same victim population, so their verdicts and connection budgets can be
/// compared cell by cell.
#[derive(Debug, Clone)]
pub struct StopRuleComparison {
    /// The campaign under [`StopRule::Sprt`] (Wald sequential test).
    pub sprt: CampaignReport,
    /// The campaign under [`StopRule::WilsonSettled`].
    pub wilson: CampaignReport,
    /// The full-budget campaign under [`StopRule::Exhaustive`].
    pub exhaustive: CampaignReport,
}

impl StopRuleComparison {
    /// Campaigns `base` under all three stop rules.
    pub fn run(base: &Campaign) -> Self {
        let campaign = |rule: StopRule| base.clone().with_stop_rule(rule).run();
        StopRuleComparison {
            sprt: campaign(StopRule::sprt()),
            wilson: campaign(StopRule::settled()),
            exhaustive: campaign(StopRule::Exhaustive),
        }
    }

    /// Whether all three rules reached the same verdict (they provably do
    /// on unanimous victim populations; on mixed-rate populations a
    /// sequential rule may settle a cell the exhaustive Wilson test calls
    /// inconclusive — that is the indifference region working as designed,
    /// within the rule's error budget).
    pub fn verdicts_agree(&self) -> bool {
        self.sprt.verdict() == self.exhaustive.verdict()
            && self.wilson.verdict() == self.exhaustive.verdict()
    }

    /// The self-describing record form: one nested campaign record
    /// (including per-seed runs) per stop rule, plus the agreement flag.
    pub fn record(&self) -> Record {
        Record::new()
            .field("verdict", self.exhaustive.verdict().label())
            .field("verdicts_agree", self.verdicts_agree())
            .field("sprt", self.sprt.record())
            .field("wilson", self.wilson.record())
            .field("exhaustive", self.exhaustive.record())
    }

    /// Renders one per-rule cell as `verdict victims/connections`.
    pub(crate) fn cell(report: &CampaignReport) -> String {
        format!("{} {}v/{}c", report.verdict().label(), report.campaigns(), report.total_requests())
    }
}

/// One row of the forking-server attack experiment: a scheme, its
/// fork-canary policy, and the byte-by-byte / exhaustive-guess campaigns
/// under the three stop rules.
#[derive(Debug, Clone)]
pub struct ServerAttackRow {
    /// The scheme protecting every victim server.
    pub scheme: SchemeKind,
    /// Deployment vehicle (binary rewriter for `PsspBin32`).
    pub deployment: Deployment,
    /// Whether forked workers inherit or re-randomize the parent's canaries.
    pub policy: ForkCanaryPolicy,
    /// The BROP-style byte-by-byte attack under the three stop rules.
    pub byte_by_byte: StopRuleComparison,
    /// Whole-word exhaustive guessing under the three stop rules.
    pub exhaustive: StopRuleComparison,
    /// Operational counters of one representative victim server after a
    /// full byte-by-byte attack: connections served, requests handled,
    /// workers crashed and forks performed.
    pub server: Record,
}

impl ServerAttackRow {
    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("scheme", self.scheme.name())
            .field("deployment", self.deployment.label())
            .field("fork_canary_policy", self.policy.label())
            .field("byte_by_byte", self.byte_by_byte.record())
            .field("exhaustive", self.exhaustive.record())
            .field("server", self.server.clone())
    }
}

/// Runs the forking-server attack experiment: for every scheme, campaign
/// the byte-by-byte and exhaustive attacks against forking-server victims
/// under all three stop rules ([`StopRule::Sprt`], [`StopRule::settled`],
/// [`StopRule::Exhaustive`]) over [`ExperimentCtx::campaign_seeds`] victim
/// seeds derived from the context seed.  Scheme rows fan out over the
/// shared pool; every cell is deterministic in the context and independent
/// of the worker count.
pub fn run_server_attack(ctx: &ExperimentCtx, schemes: &[SchemeKind]) -> Vec<ServerAttackRow> {
    let (seed, seeds) = (ctx.seed, ctx.campaign_seeds.max(1));
    let byte_budget = ctx.byte_budget;
    let pool = ctx.pool();
    let campaign_workers = pool.nested_workers(schemes.len());
    pool.run(schemes, |_, &scheme| {
        let deployment = effectiveness_deployment(scheme);
        let compare = |attack: AttackKind, base: u64| {
            StopRuleComparison::run(
                &Campaign::new(attack, scheme)
                    .with_deployment(deployment)
                    .with_seed_range(base, seeds)
                    .with_workers(campaign_workers),
            )
        };
        let byte_by_byte = compare(AttackKind::ByteByByte { budget: byte_budget }, seed);
        let exhaustive = compare(AttackKind::Exhaustive { budget: 500 }, seed ^ 1);

        // One representative victim, attacked end to end, for the
        // operational counters of the reconnect loop itself.
        let mut server = ForkingServer::new(
            VictimConfig::new(scheme, seed ^ 0x5E4E4).with_deployment(deployment),
        );
        let geometry = server.geometry();
        let _ = polycanary_attacks::ByteByByteAttack::with_budget(byte_budget).run(
            &mut server,
            geometry,
            scheme,
        );
        let policy = server.canary_policy();

        ServerAttackRow {
            scheme,
            deployment,
            policy,
            byte_by_byte,
            exhaustive,
            server: server.stats_record(),
        }
    })
}

/// Renders the forking-server attack experiment: per cell, the verdict
/// plus `v` victims attacked and `c` connections spent, per stop rule.
pub fn format_server_attack(rows: &[ServerAttackRow]) -> String {
    let mut out = String::new();
    let seeds = rows.first().map(|r| r.byte_by_byte.exhaustive.configured_seeds).unwrap_or(0);
    let _ = writeln!(
        out,
        "forking-server campaigns over {seeds} victim seeds; cells are \
         `verdict victims/connections` under sprt | wilson | exhaustive"
    );
    let _ = writeln!(
        out,
        "{:<12} {:<13} {:<58} {:<58}",
        "Scheme", "Fork canary", "byte-by-byte", "exhaustive (500)"
    );
    for row in rows {
        let fmt_cmp = |c: &StopRuleComparison| {
            format!(
                "{} | {} | {}{}",
                StopRuleComparison::cell(&c.sprt),
                StopRuleComparison::cell(&c.wilson),
                StopRuleComparison::cell(&c.exhaustive),
                if c.verdicts_agree() { "" } else { "  DISAGREE" }
            )
        };
        let _ = writeln!(
            out,
            "{:<12} {:<13} {:<58} {:<58}",
            row.scheme.name(),
            row.policy.label(),
            fmt_cmp(&row.byte_by_byte),
            fmt_cmp(&row.exhaustive),
        );
    }
    out
}

/// One fleet-mode row: a scheme's whole server fleet campaigned under the
/// SPRT stop rule.  As in the population scenario, fleet mode is
/// SPRT-only: the sequential rule's expected sample size is independent of
/// the fleet size, so the verdict for 10^5 servers costs a handful of
/// victim attacks — every one booted from the scheme's shared VM snapshot.
#[derive(Debug, Clone)]
pub struct ServerFleetRow {
    /// The scheme protecting every server in the fleet.
    pub scheme: SchemeKind,
    /// Deployment vehicle (binary rewriter for `PsspBin32`).
    pub deployment: Deployment,
    /// The SPRT byte-by-byte campaign over the whole fleet.
    pub report: CampaignReport,
}

impl ServerFleetRow {
    /// The self-describing record form of this row — including the
    /// snapshot-reuse and shard counters of the fleet engine.  Every
    /// field is deterministic (worker-count independent).
    pub fn record(&self) -> Record {
        Record::new()
            .field("scheme", self.scheme.name())
            .field("deployment", self.deployment.label())
            .field("fleet", self.report.configured_seeds)
            .field("completed_seeds", self.report.runs.len())
            .field("victims_cancelled", self.report.victims_cancelled())
            .field("stopped_early", self.report.stopped_early())
            .field("verdict", self.report.verdict().label())
            .field("success_rate", self.report.success_rate())
            .field("total_requests", self.report.total_requests())
            .field("shard_size", self.report.shard_size)
            .field("snapshot_configs", self.report.snapshot_configs())
            .field("snapshot_reuses", self.report.snapshot_reuses())
    }
}

/// Runs the fleet-mode server-attack experiment: for every scheme, one
/// SPRT byte-by-byte campaign over `fleet_size` victim servers (each a
/// distinct seed of the scheme's effectiveness deployment).  Unanimous
/// scheme fleets settle after three victims, so fleets of 10^5+ servers
/// complete in seconds with byte-identical reports at any worker count.
pub fn run_server_attack_fleet(
    ctx: &ExperimentCtx,
    schemes: &[SchemeKind],
    fleet_size: usize,
) -> Vec<ServerFleetRow> {
    let (seed, byte_budget) = (ctx.seed, ctx.byte_budget);
    let pool = ctx.pool();
    let campaign_workers = pool.nested_workers(schemes.len());
    pool.run(schemes, |_, &scheme| {
        let deployment = effectiveness_deployment(scheme);
        ServerFleetRow {
            scheme,
            deployment,
            report: Campaign::new(AttackKind::ByteByByte { budget: byte_budget }, scheme)
                .with_deployment(deployment)
                .with_seed_range(seed, fleet_size)
                .with_stop_rule(StopRule::sprt())
                .with_workers(campaign_workers)
                .run(),
        }
    })
}

/// Renders the fleet-mode server-attack experiment: per scheme, the SPRT
/// verdict, how few of the fleet's servers were actually attacked, and
/// the snapshot reuse behind them.
pub fn format_server_attack_fleet(rows: &[ServerFleetRow]) -> String {
    let mut out = String::new();
    let fleet = rows.first().map(|r| r.report.configured_seeds).unwrap_or(0);
    let _ = writeln!(
        out,
        "SPRT byte-by-byte fleet campaigns over {fleet} servers per scheme; \
         snapshots are shared per victim configuration"
    );
    let _ = writeln!(
        out,
        "{:<12} {:<10} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "Scheme", "deploy", "verdict", "attacked", "cancelled", "configs", "reuses"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<12} {:<10} {:>12} {:>10} {:>12} {:>10} {:>10}",
            row.scheme.name(),
            row.deployment.label(),
            row.report.verdict().label(),
            row.report.campaigns(),
            row.report.victims_cancelled(),
            row.report.snapshot_configs(),
            row.report.snapshot_reuses(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycanary_attacks::campaign::Verdict;

    fn ctx(seed: u64, budget: u64, seeds: usize) -> ExperimentCtx {
        ExperimentCtx::new(seed).with_byte_budget(budget).with_campaign_seeds(seeds)
    }

    #[test]
    fn server_attack_rows_compare_stop_rules_consistently() {
        use polycanary_core::record::Value;

        let rows = run_server_attack(&ctx(7, 3_000, 6), &[SchemeKind::Ssp, SchemeKind::Pssp]);
        let ssp = &rows[0];
        let pssp = &rows[1];

        // Static canaries fall to byte-by-byte, polymorphic ones survive,
        // and all three stop rules agree on both.
        assert_eq!(ssp.byte_by_byte.exhaustive.verdict(), Verdict::Breaks);
        assert_eq!(pssp.byte_by_byte.exhaustive.verdict(), Verdict::Resists);
        assert_eq!(ssp.policy, ForkCanaryPolicy::Inherited);
        assert_eq!(pssp.policy, ForkCanaryPolicy::Rerandomized);
        for row in &rows {
            assert!(row.byte_by_byte.verdicts_agree(), "{}", row.scheme);
            assert!(row.exhaustive.verdicts_agree(), "{}", row.scheme);
            // SPRT settles unanimous cells one victim before Wilson and
            // never spends more connections.
            assert_eq!(row.byte_by_byte.sprt.campaigns(), 3, "{}", row.scheme);
            assert_eq!(row.byte_by_byte.wilson.campaigns(), 4, "{}", row.scheme);
            assert!(
                row.byte_by_byte.sprt.total_requests() <= row.byte_by_byte.wilson.total_requests()
            );
            // A bounded exhaustive guess never breaks either scheme.
            assert_eq!(row.exhaustive.exhaustive.verdict(), Verdict::Resists, "{}", row.scheme);
        }

        // The representative server's counters describe the reconnect loop.
        let conns = ssp.server.get("connections").and_then(Value::as_u64).unwrap();
        assert!(conns >= 64, "a byte-by-byte break opens many connections: {conns}");
        assert_eq!(ssp.server.get("forks").and_then(Value::as_u64), Some(conns));
        assert_eq!(ssp.server.get("fork_canary_policy"), Some(&Value::Str("inherited".into())));

        let rendered = format_server_attack(&rows);
        assert!(rendered.contains("6 victim seeds"), "{rendered}");
        assert!(rendered.contains("breaks 3v"), "{rendered}");
        assert!(!rendered.contains("DISAGREE"), "{rendered}");
    }

    #[test]
    fn server_fleet_mode_settles_every_scheme_at_scale() {
        use polycanary_core::record::Value;

        let base = ExperimentCtx::new(7).with_byte_budget(3_000).with_fleet(100_000);
        let schemes = [SchemeKind::Ssp, SchemeKind::Pssp, SchemeKind::PsspBin32];
        let serial = run_server_attack_fleet(&base.clone().with_workers(1), &schemes, 100_000);
        let parallel = run_server_attack_fleet(&base.with_workers(8), &schemes, 100_000);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.report.runs, b.report.runs, "{}", a.scheme);
            assert_eq!(a.record(), b.record(), "{}", a.scheme);
        }

        // Unanimous fleets settle after three victims; one snapshot covers
        // every attacked server of a scheme.
        let ssp = &serial[0];
        assert_eq!(ssp.report.verdict(), Verdict::Breaks);
        let pssp = &serial[1];
        assert_eq!(pssp.report.verdict(), Verdict::Resists);
        let rewritten = &serial[2];
        assert_eq!(rewritten.deployment, Deployment::BinaryRewriter);
        for row in &serial {
            assert_eq!(row.report.configured_seeds, 100_000, "{}", row.scheme);
            assert_eq!(row.report.campaigns(), 3, "{}", row.scheme);
            assert_eq!(row.report.victims_cancelled(), 99_997, "{}", row.scheme);
            assert_eq!(row.report.snapshot_configs(), 1, "{}", row.scheme);
            assert_eq!(row.report.snapshot_reuses(), 2, "{}", row.scheme);
            let rec = row.record();
            assert_eq!(rec.get("fleet"), Some(&Value::UInt(100_000)));
            assert_eq!(rec.get("snapshot_configs"), Some(&Value::UInt(1)));
        }
        let rendered = format_server_attack_fleet(&serial);
        assert!(rendered.contains("100000 servers per scheme"), "{rendered}");
        assert!(rendered.contains("rewriter"), "{rendered}");
    }

    #[test]
    fn server_attack_is_deterministic_and_self_describing() {
        use polycanary_core::record::{records_from_json, records_to_json, Value};

        let once = run_server_attack(&ctx(9, 2_500, 4), &[SchemeKind::Ssp]);
        let twice = run_server_attack(&ctx(9, 2_500, 4), &[SchemeKind::Ssp]);
        assert_eq!(once[0].byte_by_byte.exhaustive.runs, twice[0].byte_by_byte.exhaustive.runs);
        assert_eq!(once[0].server, twice[0].server);

        // The export parses back: nested stop-rule campaigns and per-seed
        // runs survive the JSON round trip.
        let json = records_to_json(&once.iter().map(ServerAttackRow::record).collect::<Vec<_>>());
        let parsed = records_from_json(&json).expect("server-attack export parses");
        let Some(Value::Record(byte)) = parsed[0].get("byte_by_byte") else {
            panic!("nested comparison record: {parsed:?}")
        };
        let Some(Value::Record(sprt)) = byte.get("sprt") else { panic!("nested sprt campaign") };
        assert_eq!(sprt.get("stop_rule"), Some(&Value::Str("sprt".into())));
        let Some(Value::List(runs)) = sprt.get("runs") else { panic!("per-seed runs") };
        assert_eq!(runs.len() as u64, once[0].byte_by_byte.sprt.campaigns());
    }
}
