//! Table V — prologue/epilogue cycles, swept over the opt-level axis.

use std::fmt::Write as _;

use polycanary_compiler::codegen::Compiler;
use polycanary_compiler::ir::{FunctionBuilder, ModuleBuilder};
use polycanary_compiler::OptLevel;
use polycanary_core::record::Record;
use polycanary_core::scheme::SchemeKind;

use super::{Experiment, ExperimentCtx, ScenarioOutput};

/// The Table V scenario: canary-handling cycle cost per configuration ×
/// optimization level.
pub struct Table5;

impl Experiment for Table5 {
    fn name(&self) -> &str {
        "table5"
    }

    fn title(&self) -> &str {
        "Table V: prologue/epilogue CPU cycles"
    }

    fn description(&self) -> &str {
        "Canary-handling cycle cost of P-SSP and its NT / LV / OWF \
         extensions on a minimal probe function, at O0 and the configured \
         opt level"
    }

    fn paper_note(&self) -> &str {
        "6 / 343 / 343 / 986 / 278 cycles for the same five configurations.  The \
         reproduction preserves the ordering and ratios at O0: P-SSP costs a \
         handful of cycles, NT and LV-2 are equal (one extra random draw), LV-4 \
         roughly triples that, OWF sits between P-SSP and NT.  The O2 rows show \
         what an optimizing deployment pays: the redundant canary re-loads are \
         eliminated in leaf functions, so every configuration gets cheaper — \
         OWF most of all, because its epilogue re-encryption disappears."
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let entries = run_table5(ctx);
        ScenarioOutput::new(
            format_table5(&entries),
            entries.iter().map(Table5Entry::record).collect(),
        )
    }
}

/// One column of Table V at one optimization level.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Entry {
    /// Configuration label (scheme, plus canary count for P-SSP-LV).
    pub label: String,
    /// Optimization level of both the protected and the baseline build.
    pub opt_level: OptLevel,
    /// Extra cycles spent in the prologue + epilogue relative to the same
    /// function compiled without protection.
    pub cycles: u64,
}

impl Table5Entry {
    /// The self-describing record form of this entry, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("configuration", self.label.as_str())
            .field("opt_level", self.opt_level.label())
            .field("cycles", self.cycles)
    }
}

/// Runs the Table V micro-measurement over configuration × opt level.  Each
/// cell is an independent parallel job on the shared pool; simulated cycle
/// counts are exact, so the entries are a pure function of the context seed.
pub fn run_table5(ctx: &ExperimentCtx) -> Vec<Table5Entry> {
    let seed = ctx.seed;
    let configs: [(&str, SchemeKind, u32); 5] = [
        ("P-SSP", SchemeKind::Pssp, 0),
        ("P-SSP-NT", SchemeKind::PsspNt, 0),
        ("P-SSP-LV (2 canaries)", SchemeKind::PsspLv, 1),
        ("P-SSP-LV (4 canaries)", SchemeKind::PsspLv, 3),
        ("P-SSP-OWF", SchemeKind::PsspOwf, 0),
    ];
    let cells: Vec<((&str, SchemeKind, u32), OptLevel)> = configs
        .into_iter()
        .flat_map(|c| ctx.opt_levels().into_iter().map(move |opt| (c, opt)))
        .collect();
    ctx.pool().run(&cells, |_, &((label, scheme, criticals), opt)| Table5Entry {
        label: label.into(),
        opt_level: opt,
        cycles: canary_handling_cycles(scheme, criticals, opt, seed),
    })
}

/// Measures the prologue+epilogue cycle cost of `scheme` on a minimal probe
/// function with `critical_buffers` critical locals at `opt`, by differencing
/// against the unprotected build of the same probe at the same level.
pub fn canary_handling_cycles(
    scheme: SchemeKind,
    critical_buffers: u32,
    opt: OptLevel,
    seed: u64,
) -> u64 {
    let probe = |kind: SchemeKind| -> u64 {
        let mut f = FunctionBuilder::new("probe").buffer("buf", 32).safe_copy("buf");
        for i in 0..critical_buffers {
            f = f.critical_buffer(format!("secret_{i}"), 16);
        }
        let module = ModuleBuilder::new().function(f.returns(0).build()).build().unwrap();
        let compiled =
            Compiler::new(kind).with_opt_level(opt).compile(&module).expect("probe compiles");
        let mut machine = compiled.into_machine(seed);
        let mut process = machine.spawn();
        process.set_input(vec![0u8; 8]);
        let outcome = machine.run(&mut process).expect("probe runs");
        assert!(outcome.exit.is_normal(), "probe must not crash: {:?}", outcome.exit);
        outcome.cycles
    };
    probe(scheme).saturating_sub(probe(SchemeKind::Native))
}

/// Renders Table V.
pub fn format_table5(entries: &[Table5Entry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<24} {:>5} {:>18}", "Configuration", "Opt", "Cycles (pro+epi)");
    for entry in entries {
        let _ = writeln!(out, "{:<24} {:>5} {:>18}", entry.label, entry.opt_level, entry.cycles);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_reproduces_the_paper_ordering() {
        // The paper measured unoptimized prologue/epilogue sequences: pin its
        // ordering on the O0 rows.
        let entries = run_table5(&ExperimentCtx::new(5).with_opt_level(OptLevel::O0));
        assert_eq!(entries.len(), 5);
        let get = |label: &str| entries.iter().find(|e| e.label.starts_with(label)).unwrap().cycles;
        let pssp = get("P-SSP");
        let nt = get("P-SSP-NT");
        let lv2 = get("P-SSP-LV (2");
        let lv4 = get("P-SSP-LV (4");
        let owf = get("P-SSP-OWF");
        // Paper: 6, 343, 343, 986, 278.
        assert!(pssp < 30, "P-SSP should be a handful of cycles, got {pssp}");
        assert!(owf > pssp && owf < nt, "OWF ({owf}) sits between P-SSP ({pssp}) and NT ({nt})");
        assert!((lv2 as i64 - nt as i64).abs() < 60, "LV-2 ({lv2}) ~ NT ({nt})");
        assert!(lv4 > 2 * nt, "LV-4 ({lv4}) draws three random numbers vs NT's one ({nt})");
        assert!(format_table5(&entries).contains("P-SSP-OWF"));
    }

    #[test]
    fn table5_o2_rows_are_cheaper_than_their_o0_counterparts() {
        let entries = run_table5(&ExperimentCtx::new(5));
        // configuration × {O0, O2}, O0 first within each configuration.
        assert_eq!(entries.len(), 10);
        for pair in entries.chunks(2) {
            let (o0, o2) = (&pair[0], &pair[1]);
            assert_eq!(o0.label, o2.label);
            assert_eq!(o0.opt_level, OptLevel::O0);
            assert_eq!(o2.opt_level, OptLevel::O2);
            assert!(
                o2.cycles < o0.cycles,
                "{}: O2 ({}) must cost fewer canary cycles than O0 ({})",
                o0.label,
                o2.cycles,
                o0.cycles
            );
        }
    }

    #[test]
    fn table5_entries_are_worker_count_independent() {
        let once = run_table5(&ExperimentCtx::new(5).with_workers(1));
        let twice = run_table5(&ExperimentCtx::new(5).with_workers(8));
        assert_eq!(once, twice);
        assert_eq!(once.len(), 10);
    }
}
