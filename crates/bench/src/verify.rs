//! `harness verify` — static verification sweep over every workload ×
//! scheme × deployment × opt-level cell.
//!
//! Where every other scenario *runs* the builds, this sweep *proves* them:
//! each cell compiles one workload under one build vehicle at one
//! optimization level and hands the result to `polycanary_verifier` —
//! [`verify_compiled`] for compiler output, [`verify_rewritten`] for
//! rewriter output — collecting the typed findings.  A clean toolchain
//! yields zero findings over the whole matrix, so CI gates on the process
//! exit code; the [`InjectedDefect`] battery is the negative control proving
//! the gate can actually fail.  The O2 half of the matrix is what makes the
//! optimizer trustworthy: every transformed body re-proves all five canary
//! invariants.
//!
//! Results export in the same schema-versioned envelope as every scenario
//! (`scenario: "verify"`), so `harness diff` and `polycanary-analysis`
//! consume them without special cases.

use polycanary_compiler::ir::ModuleDef;
use polycanary_compiler::{CompiledModule, Compiler, OptLevel};
use polycanary_core::record::{export_envelope, Record};
use polycanary_core::scheme::SchemeKind;
use polycanary_rewriter::{LinkMode, Rewriter};
use polycanary_verifier::{verify_compiled, verify_rewritten, Finding};
use polycanary_workloads::{spec_suite, Build, DatabaseModel, ServerModel};

pub use polycanary_verifier::InjectedDefect;

/// Result of verifying one workload × build × opt-level cell.
#[derive(Debug, Clone)]
pub struct VerifyCell {
    /// Workload name (SPEC program, server or database model).
    pub workload: String,
    /// Deployment vehicle label ([`Build::label`]).
    pub build: String,
    /// Optimization level the cell was compiled at.
    pub opt_level: OptLevel,
    /// Number of functions the verifier analysed.
    pub functions: usize,
    /// Every invariant violation found — empty on a clean toolchain.
    pub findings: Vec<Finding>,
}

impl VerifyCell {
    /// The cell as a self-describing record (findings nested as records).
    pub fn record(&self) -> Record {
        Record::new()
            .field("workload", self.workload.as_str())
            .field("build", self.build.as_str())
            .field("opt_level", self.opt_level.label())
            .field("functions", self.functions)
            .field("finding_count", self.findings.len())
            .field("findings", self.findings.iter().map(Finding::record).collect::<Vec<_>>())
    }
}

/// A full verification sweep.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Every verified cell, workload-major.
    pub cells: Vec<VerifyCell>,
}

impl VerifyReport {
    /// Total findings across all cells.
    pub fn finding_count(&self) -> usize {
        self.cells.iter().map(|cell| cell.findings.len()).sum()
    }

    /// Whether the whole matrix verified finding-free.
    pub fn is_clean(&self) -> bool {
        self.finding_count() == 0
    }

    /// The export envelope (`scenario: "verify"`), consumable by
    /// `harness diff` and `polycanary-analysis` like any scenario export.
    pub fn envelope(&self, quick: bool) -> Record {
        let ctx = Record::new()
            .field("quick", quick)
            .field("cells", self.cells.len())
            .field("finding_count", self.finding_count());
        export_envelope("verify", ctx, self.cells.iter().map(VerifyCell::record).collect())
    }

    /// Plain-text rendering: one line per cell, then a verdict.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "static verification: {} cells", self.cells.len());
        for cell in &self.cells {
            let verdict = if cell.findings.is_empty() {
                "ok".to_string()
            } else {
                format!("{} finding(s)", cell.findings.len())
            };
            let _ = writeln!(
                out,
                "  {:<18} {:<28} {:>3} {:>3} function(s)  {verdict}",
                cell.workload, cell.build, cell.opt_level, cell.functions
            );
            for finding in &cell.findings {
                let _ = writeln!(out, "    {finding}");
            }
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.is_clean() {
                "clean — all canary invariants proven".to_string()
            } else {
                format!("{} finding(s)", self.finding_count())
            }
        );
        out
    }
}

/// The workloads one sweep covers: SPEC-like programs (4 under `quick`,
/// all 28 otherwise) plus both server and both database models.
fn workload_modules(quick: bool) -> Vec<(String, ModuleDef)> {
    let spec = spec_suite();
    let spec_count = if quick { 4 } else { spec.len() };
    let mut modules: Vec<(String, ModuleDef)> = spec
        .iter()
        .take(spec_count)
        .map(|program| (program.name.to_string(), program.module()))
        .collect();
    for server in [ServerModel::ApacheLike, ServerModel::NginxLike] {
        modules.push((format!("{server:?}"), server.module()));
    }
    for database in [DatabaseModel::MySqlLike, DatabaseModel::SqliteLike] {
        modules.push((format!("{database:?}"), database.module()));
    }
    modules
}

/// The deployment vehicles every workload is verified under: all ten
/// compiler schemes plus both rewriter link modes.
fn builds() -> Vec<Build> {
    let mut builds: Vec<Build> = SchemeKind::ALL.into_iter().map(Build::Compiler).collect();
    builds.push(Build::BinaryRewriter(LinkMode::Dynamic));
    builds.push(Build::BinaryRewriter(LinkMode::Static));
    builds
}

/// The optimization levels every cell is verified at: the unoptimized
/// baseline plus the most aggressive pipeline.
fn opt_levels() -> [OptLevel; 2] {
    [OptLevel::O0, OptLevel::O2]
}

fn compile(module: &ModuleDef, kind: SchemeKind, opt: OptLevel) -> CompiledModule {
    Compiler::new(kind)
        .with_opt_level(opt)
        .compile(module)
        .expect("workload modules always compile")
}

/// Verifies one workload module under one build vehicle at one opt level.
fn verify_cell(workload: &str, module: &ModuleDef, build: Build, opt: OptLevel) -> VerifyCell {
    let (functions, findings) = match build {
        Build::Native => {
            let compiled = compile(module, SchemeKind::Native, opt);
            (compiled.program.len(), verify_compiled(&compiled))
        }
        Build::Compiler(kind) => {
            let compiled = compile(module, kind, opt);
            (compiled.program.len(), verify_compiled(&compiled))
        }
        Build::BinaryRewriter(mode) => {
            // The rewriter pattern-matches the canonical SSP sequences, so
            // its input compiles shape-preserved at every level — matching
            // what `build_machine_at` ships.
            let original = Compiler::new(SchemeKind::Ssp)
                .with_opt_level(opt)
                .with_preserved_canary_shapes()
                .compile(module)
                .expect("workload modules always compile")
                .program;
            let mut rewritten = original.clone();
            Rewriter::new()
                .with_link_mode(mode)
                .rewrite(&mut rewritten)
                .expect("SSP workloads are always rewritable");
            (original.len(), verify_rewritten(&original, &rewritten))
        }
    };
    VerifyCell {
        workload: workload.to_string(),
        build: build.label(),
        opt_level: opt,
        functions,
        findings,
    }
}

/// Runs the full verification sweep.
pub fn run_verify(quick: bool) -> VerifyReport {
    let builds = builds();
    let mut cells = Vec::new();
    for (name, module) in workload_modules(quick) {
        for &build in &builds {
            for opt in opt_levels() {
                cells.push(verify_cell(&name, &module, build, opt));
            }
        }
    }
    VerifyReport { cells }
}

/// Runs the injected-defect battery for one defect: a single synthetic cell
/// whose findings come from a deliberately broken program.  The cell is
/// labelled `inject:<defect>` so exports are unambiguous about their
/// provenance.
pub fn run_inject(defect: InjectedDefect) -> VerifyReport {
    let findings = defect.run();
    // The optimizer miscompile is the one defect planted into an O2 build.
    let opt_level = match defect {
        InjectedDefect::OptimizerDroppedCheck => OptLevel::O2,
        _ => OptLevel::O0,
    };
    let cell = VerifyCell {
        workload: format!("inject:{defect}"),
        build: format!("expected {}", defect.expected_kind()),
        opt_level,
        functions: 1,
        findings,
    };
    VerifyReport { cells: vec![cell] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_clean_over_all_builds() {
        let report = run_verify(true);
        // 4 SPEC + 2 servers + 2 databases, × (10 schemes + 2 link modes),
        // × {O0, O2}.
        assert_eq!(report.cells.len(), 8 * 12 * 2);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn every_injected_defect_dirties_the_report() {
        for defect in InjectedDefect::ALL {
            let report = run_inject(defect);
            assert!(!report.is_clean(), "{defect} produced no findings");
            assert!(
                report.cells[0].findings.iter().any(|f| f.kind == defect.expected_kind()),
                "{defect}: {:?}",
                report.cells[0].findings
            );
        }
    }

    #[test]
    fn envelope_round_trips_through_the_json_parser() {
        use polycanary_core::record::Envelope;
        let report = run_inject(InjectedDefect::ClobberedCanary);
        let json = report.envelope(true).to_json();
        let envelope = Envelope::from_json(&json).expect("envelope parses");
        assert_eq!(envelope.scenario, "verify");
        assert_eq!(envelope.records.len(), 1);
    }
}
