//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each `run_*` function produces a structured result plus a plain-text
//! rendering in the spirit of the original table.  The `harness` binary
//! prints them; the Criterion benches wrap them for wall-clock measurement;
//! EXPERIMENTS.md records representative output next to the paper's numbers.

use std::fmt::Write as _;

use polycanary_attacks::campaign::{AttackKind, Campaign, CampaignReport, StopRule, Verdict};
use polycanary_attacks::pool::JobPool;
use polycanary_attacks::server::ForkingServer;
use polycanary_attacks::victim::{Deployment, VictimConfig};
use polycanary_compiler::codegen::Compiler;
use polycanary_compiler::ir::{FunctionBuilder, ModuleBuilder};
use polycanary_core::analysis::{attack_effort, theorem1_independence_test, IndependenceTest};
use polycanary_core::record::Record;
use polycanary_core::rerandomize::re_randomize;
use polycanary_core::scheme::ForkCanaryPolicy;
use polycanary_core::scheme::SchemeKind;
use polycanary_crypto::Xoshiro256StarStar;
use polycanary_rewriter::LinkMode;
use polycanary_workloads::build::{binary_size, Build};
use polycanary_workloads::database::{benchmark_database, DatabaseModel, QueryReport};
use polycanary_workloads::spec::{mean, spec_suite, SpecProgram};
use polycanary_workloads::webserver::{
    benchmark_server, LoadConfig, ResponseTimeReport, ServerModel,
};

// ---------------------------------------------------------------------------
// Table I — defence-tool comparison
// ---------------------------------------------------------------------------

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The defence tool.
    pub scheme: SchemeKind,
    /// "BROP Prevention" column — the verdict of a multi-seed byte-by-byte
    /// campaign against forking servers protected by the scheme (`true`
    /// when the campaign proves the attack fails).
    pub brop_prevented: bool,
    /// The full tri-state campaign verdict behind [`Self::brop_prevented`]
    /// — an inconclusive campaign is not the same as a proven break.
    pub brop_verdict: Verdict,
    /// Successful hijacks in the BROP campaign.
    pub brop_successes: u64,
    /// Completed campaign runs (may stop short of [`TABLE1_BROP_SEEDS`]
    /// once the sequential stop rule settles the verdict).
    pub brop_runs: u64,
    /// Total connections the BROP campaign opened against its forking
    /// servers (one connection per byte-guess in the reconnect loop).
    pub brop_connections: u64,
    /// What a forked worker's canaries look like across the reconnect
    /// loop — the property the BROP column turns on.
    pub fork_canary_policy: ForkCanaryPolicy,
    /// "Correctness" column — measured by forking a child after the parent
    /// pushed protected frames and letting the child return through them.
    pub correct: bool,
    /// Compiler-based runtime overhead over native, in percent (measured on
    /// a subset of the SPEC-like suite).
    pub compiler_overhead_percent: f64,
}

impl Table1Row {
    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("scheme", self.scheme.name())
            .field("brop_prevented", self.brop_prevented)
            .field("brop_verdict", self.brop_verdict.label())
            .field("brop_successes", self.brop_successes)
            .field("brop_runs", self.brop_runs)
            .field("brop_connections", self.brop_connections)
            .field("fork_canary_policy", self.fork_canary_policy.label())
            .field("correct", self.correct)
            .field("compiler_overhead_percent", self.compiler_overhead_percent)
    }
}

/// Victim seeds configured per Table-I BROP campaign; the adaptive stop
/// rule usually settles the verdict after the first batch.
pub const TABLE1_BROP_SEEDS: usize = 8;

/// Runs the Table I comparison.  Scheme rows are independent, so they fan
/// out over the shared [`JobPool`]; the report only depends on `seed`.
pub fn run_table1(seed: u64, spec_programs: usize) -> Vec<Table1Row> {
    let schemes = [
        SchemeKind::Ssp,
        SchemeKind::RafSsp,
        SchemeKind::DynaGuard,
        SchemeKind::Dcr,
        SchemeKind::Pssp,
    ];
    let programs: Vec<SpecProgram> = spec_suite().into_iter().take(spec_programs.max(1)).collect();
    let pool = JobPool::new();
    let campaign_workers = pool.nested_workers(schemes.len());
    pool.run(&schemes, |_, &scheme| {
        // BROP prevention: a multi-seed forking-server campaign verdict, not
        // a single-seed anecdote.  The sequential (SPRT) rule stops the
        // reconnect loop as soon as the evidence is conclusive — one victim
        // earlier than the Wilson rule on these unanimous populations.
        let budget = if scheme == SchemeKind::Ssp { 4_000 } else { 3_000 };
        let brop = Campaign::new(AttackKind::ByteByByte { budget }, scheme)
            .with_seed_range(seed, TABLE1_BROP_SEEDS)
            .with_stop_rule(StopRule::sprt())
            .with_workers(campaign_workers)
            .run();

        // Correctness: child returning into an inherited protected frame.
        let correct = fork_return_correctness(scheme, seed);

        // Overhead on the SPEC-like subset.
        let overheads: Vec<f64> =
            programs.iter().map(|p| p.overhead_percent(Build::Compiler(scheme), seed)).collect();

        Table1Row {
            scheme,
            brop_prevented: brop.verdict() == Verdict::Resists,
            brop_verdict: brop.verdict(),
            brop_successes: brop.successes(),
            brop_runs: brop.campaigns(),
            brop_connections: brop.total_requests(),
            fork_canary_policy: scheme.fork_canary_policy(),
            correct,
            compiler_overhead_percent: mean(&overheads),
        }
    })
}

/// The fork-return correctness scenario of §II-B/§II-C: the parent forks
/// while a protected frame is live on its stack, and the child later executes
/// that frame's *epilogue* (i.e. returns through the inherited frame).
/// RAF-SSP fails this check because the child's TLS canary no longer matches
/// the canary the parent's prologue stored; every other scheme passes.
///
/// The scenario is built from two hand-assembled functions that share one
/// frame layout: `parent_half` runs the scheme's prologue (leaving the canary
/// and any bookkeeping state behind, exactly like a frame that is still live
/// at fork time) and `child_half` runs only the scheme's epilogue over that
/// inherited frame image.
pub fn fork_return_correctness(scheme: SchemeKind, seed: u64) -> bool {
    use polycanary_core::layout::FrameInfo;
    use polycanary_vm::inst::Inst;
    use polycanary_vm::machine::Machine;
    use polycanary_vm::program::Program;
    use polycanary_vm::reg::Reg;

    let scheme_obj = scheme.scheme();
    let frame = FrameInfo::protected("inherited_frame", 0x40);

    let mut parent_half = vec![
        Inst::PushReg(Reg::Rbp),
        Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
        Inst::SubRspImm(frame.frame_size),
    ];
    parent_half.extend(scheme_obj.emit_prologue(&frame));
    parent_half.extend([Inst::MovImmToReg { dst: Reg::Rax, imm: 0 }, Inst::Leave, Inst::Ret]);

    let mut child_half = vec![
        Inst::PushReg(Reg::Rbp),
        Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
        Inst::SubRspImm(frame.frame_size),
    ];
    child_half.extend(scheme_obj.emit_epilogue(&frame));
    child_half.extend([Inst::MovImmToReg { dst: Reg::Rax, imm: 0 }, Inst::Leave, Inst::Ret]);

    let mut program = Program::new();
    let parent_fn = program.add_function("parent_half", parent_half).expect("unique names");
    program.add_function("child_half", child_half).expect("unique names");
    program.set_entry(parent_fn);

    let mut machine = Machine::new(program, scheme_obj.runtime_hooks(seed), seed);
    let mut parent = machine.spawn();
    let parent_outcome = machine.run_function(&mut parent, "parent_half").expect("exists");
    if !parent_outcome.exit.is_normal() {
        return false;
    }
    // Fork while the parent's canary (and bookkeeping entries) are in place.
    let mut child = machine.fork(&mut parent);
    // The child now "returns" through the inherited frame: both functions use
    // the same frame size, so the epilogue reads exactly the slots the
    // parent's prologue wrote.
    let child_outcome = machine.run_function(&mut child, "child_half").expect("exists");
    child_outcome.exit.is_normal()
}

/// Renders Table I as text.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>26} {:>14} {:>12} {:>24}",
        "Defence", "BROP Prevention", "Fork canary", "Correctness", "Compiler overhead (%)"
    );
    for row in rows {
        let brop = format!(
            "{} ({}/{}, {} conns)",
            match row.brop_verdict {
                Verdict::Resists => "Yes",
                Verdict::Breaks => "No",
                Verdict::Inconclusive => "?",
            },
            row.brop_successes,
            row.brop_runs,
            row.brop_connections
        );
        let _ = writeln!(
            out,
            "{:<12} {:>26} {:>14} {:>12} {:>24.2}",
            row.scheme.name(),
            brop,
            row.fork_canary_policy.label(),
            if row.correct { "Yes" } else { "No" },
            row.compiler_overhead_percent
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 5 — SPEC-like runtime overhead
// ---------------------------------------------------------------------------

/// One bar group of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark program name.
    pub program: &'static str,
    /// Compiler-based P-SSP overhead over native, percent.
    pub compiler_percent: f64,
    /// Instrumentation-based P-SSP overhead over native, percent.
    pub instrumentation_percent: f64,
}

impl Fig5Row {
    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("program", self.program)
            .field("compiler_percent", self.compiler_percent)
            .field("instrumentation_percent", self.instrumentation_percent)
    }
}

/// Runs the Figure 5 sweep over the first `programs` SPEC-like programs
/// (pass 28 for the full figure).  Each program is an independent parallel
/// job on the shared [`JobPool`].
pub fn run_fig5(seed: u64, programs: usize) -> Vec<Fig5Row> {
    let suite: Vec<SpecProgram> = spec_suite().into_iter().take(programs.max(1)).collect();
    JobPool::new().run(&suite, |_, p| Fig5Row {
        program: p.name,
        compiler_percent: p.overhead_percent(Build::Compiler(SchemeKind::Pssp), seed),
        instrumentation_percent: p.overhead_percent(Build::BinaryRewriter(LinkMode::Dynamic), seed),
    })
}

/// Renders Figure 5 (as a table of the two series).
pub fn format_fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<18} {:>14} {:>20}", "Program", "Compiler (%)", "Instrumentation (%)");
    for row in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>14.3} {:>20.3}",
            row.program, row.compiler_percent, row.instrumentation_percent
        );
    }
    let compiler_mean = mean(&rows.iter().map(|r| r.compiler_percent).collect::<Vec<_>>());
    let instr_mean = mean(&rows.iter().map(|r| r.instrumentation_percent).collect::<Vec<_>>());
    let _ = writeln!(out, "{:<18} {:>14.3} {:>20.3}", "average", compiler_mean, instr_mean);
    out
}

// ---------------------------------------------------------------------------
// Table II — code expansion
// ---------------------------------------------------------------------------

/// The three columns of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Result {
    /// Compiler-based P-SSP code expansion, percent.
    pub compilation_percent: f64,
    /// Instrumentation-based expansion for dynamically linked binaries.
    pub instrumentation_dynamic_percent: f64,
    /// Instrumentation-based expansion for statically linked binaries.
    pub instrumentation_static_percent: f64,
}

impl Table2Result {
    /// The self-describing record form of this result, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("compilation_percent", self.compilation_percent)
            .field("instrumentation_dynamic_percent", self.instrumentation_dynamic_percent)
            .field("instrumentation_static_percent", self.instrumentation_static_percent)
    }
}

/// Runs the Table II measurement over the first `programs` SPEC-like
/// programs.
pub fn run_table2(programs: usize) -> Table2Result {
    let suite: Vec<SpecProgram> = spec_suite().into_iter().take(programs.max(1)).collect();
    let expansion = |build: Build| -> f64 {
        let mut totals = Vec::new();
        for p in &suite {
            let module = p.module();
            let native = binary_size(&module, Build::Native) as f64;
            // The instrumentation columns compare against the SSP binary the
            // rewriter starts from, matching the paper's methodology.
            let baseline = match build {
                Build::BinaryRewriter(_) => {
                    binary_size(&module, Build::Compiler(SchemeKind::Ssp)) as f64
                }
                _ => native,
            };
            let protected = binary_size(&module, build) as f64;
            totals.push((protected - baseline) / baseline * 100.0);
        }
        mean(&totals)
    };
    Table2Result {
        compilation_percent: expansion(Build::Compiler(SchemeKind::Pssp)),
        instrumentation_dynamic_percent: expansion(Build::BinaryRewriter(LinkMode::Dynamic)),
        instrumentation_static_percent: expansion(Build::BinaryRewriter(LinkMode::Static)),
    }
}

/// Renders Table II.
pub fn format_table2(result: &Table2Result) -> String {
    format!(
        "{:<28} {:>10.2}%\n{:<28} {:>10.2}%\n{:<28} {:>10.2}%\n",
        "Compilation",
        result.compilation_percent,
        "Instrumentation (dynamic)",
        result.instrumentation_dynamic_percent,
        "Instrumentation (static)",
        result.instrumentation_static_percent
    )
}

// ---------------------------------------------------------------------------
// Table III — web servers
// ---------------------------------------------------------------------------

/// One cell of Table III — the full workload report of one server × build
/// load run (self-describing via [`ResponseTimeReport::record`]).
pub type Table3Row = ResponseTimeReport;

/// Runs the Table III measurement with `requests` per cell.  Every
/// server × build cell is an independent parallel job on the shared
/// [`JobPool`]; the row order is the fixed cell order, not finish order.
pub fn run_table3(seed: u64, requests: u64) -> Vec<Table3Row> {
    let config = LoadConfig { requests: requests.max(1), concurrency: 50, seed };
    let cells: Vec<(ServerModel, Build)> = [ServerModel::ApacheLike, ServerModel::NginxLike]
        .into_iter()
        .flat_map(|server| Build::figure5_builds().into_iter().map(move |build| (server, build)))
        .collect();
    JobPool::new().run(&cells, |_, &(server, build)| benchmark_server(server, build, config))
}

/// Renders Table III.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<10} {:<36} {:>18}", "Server", "Build", "Mean ms/request");
    for row in rows {
        let _ = writeln!(out, "{:<10} {:<36} {:>18.3}", row.server, row.build, row.mean_ms);
    }
    out
}

// ---------------------------------------------------------------------------
// Table IV — databases
// ---------------------------------------------------------------------------

/// One cell of Table IV — the full workload report of one engine × build
/// benchmark (self-describing via [`QueryReport::record`]).
pub type Table4Row = QueryReport;

/// Runs the Table IV measurement with `queries` per cell.  Every
/// engine × build cell is an independent parallel job on the shared
/// [`JobPool`]; the row order is the fixed cell order, not finish order.
pub fn run_table4(seed: u64, queries: u64) -> Vec<Table4Row> {
    let cells: Vec<(DatabaseModel, Build)> = [DatabaseModel::MySqlLike, DatabaseModel::SqliteLike]
        .into_iter()
        .flat_map(|engine| Build::figure5_builds().into_iter().map(move |build| (engine, build)))
        .collect();
    JobPool::new()
        .run(&cells, |_, &(engine, build)| benchmark_database(engine, build, queries, seed))
}

/// Renders Table IV.
pub fn format_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "{:<8} {:<36} {:>16} {:>14}", "Engine", "Build", "Query (ms)", "Memory (MB)");
    for row in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<36} {:>16.3} {:>14.2}",
            row.engine, row.build, row.mean_query_ms, row.memory_mb
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Table V — prologue/epilogue cycles
// ---------------------------------------------------------------------------

/// One column of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Entry {
    /// Configuration label (scheme, plus canary count for P-SSP-LV).
    pub label: String,
    /// Extra cycles spent in the prologue + epilogue relative to the same
    /// function compiled without protection.
    pub cycles: u64,
}

impl Table5Entry {
    /// The self-describing record form of this entry, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new().field("configuration", self.label.as_str()).field("cycles", self.cycles)
    }
}

/// Runs the Table V micro-measurement.
pub fn run_table5(seed: u64) -> Vec<Table5Entry> {
    vec![
        Table5Entry {
            label: "P-SSP".into(),
            cycles: canary_handling_cycles(SchemeKind::Pssp, 0, seed),
        },
        Table5Entry {
            label: "P-SSP-NT".into(),
            cycles: canary_handling_cycles(SchemeKind::PsspNt, 0, seed),
        },
        Table5Entry {
            label: "P-SSP-LV (2 canaries)".into(),
            cycles: canary_handling_cycles(SchemeKind::PsspLv, 1, seed),
        },
        Table5Entry {
            label: "P-SSP-LV (4 canaries)".into(),
            cycles: canary_handling_cycles(SchemeKind::PsspLv, 3, seed),
        },
        Table5Entry {
            label: "P-SSP-OWF".into(),
            cycles: canary_handling_cycles(SchemeKind::PsspOwf, 0, seed),
        },
    ]
}

/// Measures the prologue+epilogue cycle cost of `scheme` on a minimal probe
/// function with `critical_buffers` critical locals, by differencing against
/// the unprotected build of the same probe.
pub fn canary_handling_cycles(scheme: SchemeKind, critical_buffers: u32, seed: u64) -> u64 {
    let probe = |kind: SchemeKind| -> u64 {
        let mut f = FunctionBuilder::new("probe").buffer("buf", 32).safe_copy("buf");
        for i in 0..critical_buffers {
            f = f.critical_buffer(format!("secret_{i}"), 16);
        }
        let module = ModuleBuilder::new().function(f.returns(0).build()).build().unwrap();
        let compiled = Compiler::new(kind).compile(&module).expect("probe compiles");
        let mut machine = compiled.into_machine(seed);
        let mut process = machine.spawn();
        process.set_input(vec![0u8; 8]);
        let outcome = machine.run(&mut process).expect("probe runs");
        assert!(outcome.exit.is_normal(), "probe must not crash: {:?}", outcome.exit);
        outcome.cycles
    };
    probe(scheme).saturating_sub(probe(SchemeKind::Native))
}

/// Renders Table V.
pub fn format_table5(entries: &[Table5Entry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<24} {:>18}", "Configuration", "Cycles (pro+epi)");
    for entry in entries {
        let _ = writeln!(out, "{:<24} {:>18}", entry.label, entry.cycles);
    }
    out
}

// ---------------------------------------------------------------------------
// §VI-C — attack effectiveness
// ---------------------------------------------------------------------------

/// Result of the effectiveness experiment for one scheme: one multi-seed
/// campaign per attack strategy.
#[derive(Debug, Clone)]
pub struct EffectivenessRow {
    /// The scheme under attack.
    pub scheme: SchemeKind,
    /// Byte-by-byte campaign over all victim seeds.
    pub byte_by_byte: CampaignReport,
    /// Exhaustive campaign (bounded budget) over all victim seeds.
    pub exhaustive: CampaignReport,
    /// Canary-reuse campaign over all victim seeds.
    pub reuse: CampaignReport,
}

impl EffectivenessRow {
    /// The self-describing record form of this row — one nested campaign
    /// record (including per-seed runs) per attack strategy.
    pub fn record(&self) -> Record {
        Record::new()
            .field("scheme", self.scheme.name())
            .field("deployment", self.byte_by_byte.deployment.label())
            .field("byte_by_byte", self.byte_by_byte.record())
            .field("exhaustive", self.exhaustive.record())
            .field("reuse", self.reuse.record())
    }
}

/// Default number of independent victim seeds per effectiveness campaign
/// (the campaign engine's own default, re-exposed under the experiment's
/// name so the two can never drift apart).
pub const EFFECTIVENESS_SEEDS: usize = polycanary_attacks::campaign::DEFAULT_SEEDS;

/// The deployment vehicle §VI-C measures for a scheme: `PsspBin32` *is* the
/// binary-rewriter deployment (an SSP binary upgraded in place, keeping
/// SSP's single 8-byte canary slot), so campaigning it under the compiler
/// would measure the wrong binary; every other scheme ships via its
/// compiler plugin.
pub fn effectiveness_deployment(scheme: SchemeKind) -> Deployment {
    if scheme == SchemeKind::PsspBin32 {
        Deployment::BinaryRewriter
    } else {
        Deployment::Compiler
    }
}

/// Runs the §VI-C effectiveness experiment for the given schemes.
///
/// Every (scheme, attack) cell is a [`Campaign`] over `seeds` independent
/// victim seeds derived from `seed`, fanned out over worker threads, so the
/// reported numbers are a distribution (mean ± spread, min/median/p95/max)
/// rather than a single-seed anecdote.
pub fn run_effectiveness(
    seed: u64,
    schemes: &[SchemeKind],
    byte_budget: u64,
    seeds: usize,
) -> Vec<EffectivenessRow> {
    run_effectiveness_with(seed, schemes, byte_budget, seeds, StopRule::Exhaustive)
}

/// [`run_effectiveness`] with an explicit adaptive-budget policy: under a
/// settling [`StopRule`] each campaign ends as soon as its verdict is
/// statistically proven, spending strictly fewer requests on unanimous
/// cells while reaching the same verdicts as the exhaustive run (every
/// §VI-C cell is unanimous; see [`Verdict`] for the caveat on mixed-rate
/// populations).
pub fn run_effectiveness_with(
    seed: u64,
    schemes: &[SchemeKind],
    byte_budget: u64,
    seeds: usize,
    stop_rule: StopRule,
) -> Vec<EffectivenessRow> {
    let seeds = seeds.max(1);
    schemes
        .iter()
        .map(|&scheme| {
            let campaign = |attack: AttackKind, base: u64| {
                Campaign::new(attack, scheme)
                    .with_deployment(effectiveness_deployment(scheme))
                    .with_seed_range(base, seeds)
                    .with_stop_rule(stop_rule)
                    .run()
            };
            EffectivenessRow {
                scheme,
                byte_by_byte: campaign(AttackKind::ByteByByte { budget: byte_budget }, seed),
                exhaustive: campaign(AttackKind::Exhaustive { budget: 500 }, seed ^ 1),
                reuse: campaign(AttackKind::Reuse, seed ^ 2),
            }
        })
        .collect()
}

/// Renders one campaign cell: success rate plus the request-count spread.
fn format_campaign_cell(report: &CampaignReport) -> String {
    let rate = format!("{}/{}", report.successes(), report.campaigns());
    match report.success_trial_stats() {
        Some(stats) => format!(
            "breaks {rate}, {:.0}±{:.0} reqs (med {}, p95 {}, max {})",
            stats.mean, stats.std_dev, stats.median, stats.p95, stats.max
        ),
        None => {
            let trials = report.trial_stats().map(|s| s.median).unwrap_or(0);
            format!("fails {rate} (median {trials} reqs)")
        }
    }
}

/// Renders the effectiveness experiment.
pub fn format_effectiveness(rows: &[EffectivenessRow]) -> String {
    let mut out = String::new();
    let seeds = rows.first().map(|r| r.byte_by_byte.configured_seeds as u64).unwrap_or(0);
    let _ = writeln!(out, "per-scheme campaigns over {seeds} independent victim seeds");
    let _ = writeln!(
        out,
        "{:<12} {:<52} {:<34} {:<30} {:>10}",
        "Scheme", "byte-by-byte", "exhaustive (500)", "canary reuse", "wall (ms)"
    );
    for row in rows {
        let wall_ms = (row.byte_by_byte.wall_time + row.exhaustive.wall_time + row.reuse.wall_time)
            .as_secs_f64()
            * 1_000.0;
        let _ = writeln!(
            out,
            "{:<12} {:<52} {:<34} {:<30} {:>10.1}",
            row.scheme.name(),
            format_campaign_cell(&row.byte_by_byte),
            format_campaign_cell(&row.exhaustive),
            format_campaign_cell(&row.reuse),
            wall_ms
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Forking-server attack: stop-rule comparison over the reconnect loop (§II)
// ---------------------------------------------------------------------------

/// One attack strategy campaigned under all three stop rules against the
/// same victim population, so their verdicts and connection budgets can be
/// compared cell by cell.
#[derive(Debug, Clone)]
pub struct StopRuleComparison {
    /// The campaign under [`StopRule::Sprt`] (Wald sequential test).
    pub sprt: CampaignReport,
    /// The campaign under [`StopRule::WilsonSettled`].
    pub wilson: CampaignReport,
    /// The full-budget campaign under [`StopRule::Exhaustive`].
    pub exhaustive: CampaignReport,
}

impl StopRuleComparison {
    /// Whether all three rules reached the same verdict (they provably do
    /// on unanimous victim populations; see [`Verdict`] for the mixed-rate
    /// caveat).
    pub fn verdicts_agree(&self) -> bool {
        self.sprt.verdict() == self.exhaustive.verdict()
            && self.wilson.verdict() == self.exhaustive.verdict()
    }

    /// The self-describing record form: one nested campaign record
    /// (including per-seed runs) per stop rule, plus the agreement flag.
    pub fn record(&self) -> Record {
        Record::new()
            .field("verdict", self.exhaustive.verdict().label())
            .field("verdicts_agree", self.verdicts_agree())
            .field("sprt", self.sprt.record())
            .field("wilson", self.wilson.record())
            .field("exhaustive", self.exhaustive.record())
    }

    fn cell(report: &CampaignReport) -> String {
        format!("{} {}v/{}c", report.verdict().label(), report.campaigns(), report.total_requests())
    }
}

/// One row of the forking-server attack experiment: a scheme, its
/// fork-canary policy, and the byte-by-byte / exhaustive-guess campaigns
/// under the three stop rules.
#[derive(Debug, Clone)]
pub struct ServerAttackRow {
    /// The scheme protecting every victim server.
    pub scheme: SchemeKind,
    /// Deployment vehicle (binary rewriter for `PsspBin32`).
    pub deployment: Deployment,
    /// Whether forked workers inherit or re-randomize the parent's canaries.
    pub policy: ForkCanaryPolicy,
    /// The BROP-style byte-by-byte attack under the three stop rules.
    pub byte_by_byte: StopRuleComparison,
    /// Whole-word exhaustive guessing under the three stop rules.
    pub exhaustive: StopRuleComparison,
    /// Operational counters of one representative victim server after a
    /// full byte-by-byte attack: connections served, requests handled,
    /// workers crashed and forks performed.
    pub server: Record,
}

impl ServerAttackRow {
    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("scheme", self.scheme.name())
            .field("deployment", self.deployment.label())
            .field("fork_canary_policy", self.policy.label())
            .field("byte_by_byte", self.byte_by_byte.record())
            .field("exhaustive", self.exhaustive.record())
            .field("server", self.server.clone())
    }
}

/// Runs the forking-server attack experiment: for every scheme, campaign
/// the byte-by-byte and exhaustive attacks against forking-server victims
/// under all three stop rules ([`StopRule::Sprt`], [`StopRule::settled`],
/// [`StopRule::Exhaustive`]) over `seeds` victim seeds derived from `seed`.
/// Scheme rows fan out over the shared [`JobPool`]; every cell is
/// deterministic in `seed` and independent of the worker count.
pub fn run_server_attack(
    seed: u64,
    schemes: &[SchemeKind],
    byte_budget: u64,
    seeds: usize,
) -> Vec<ServerAttackRow> {
    let seeds = seeds.max(1);
    let pool = JobPool::new();
    let campaign_workers = pool.nested_workers(schemes.len());
    pool.run(schemes, |_, &scheme| {
        let deployment = effectiveness_deployment(scheme);
        let compare = |attack: AttackKind, base: u64| {
            let campaign = |rule: StopRule| {
                Campaign::new(attack, scheme)
                    .with_deployment(deployment)
                    .with_seed_range(base, seeds)
                    .with_stop_rule(rule)
                    .with_workers(campaign_workers)
                    .run()
            };
            StopRuleComparison {
                sprt: campaign(StopRule::sprt()),
                wilson: campaign(StopRule::settled()),
                exhaustive: campaign(StopRule::Exhaustive),
            }
        };
        let byte_by_byte = compare(AttackKind::ByteByByte { budget: byte_budget }, seed);
        let exhaustive = compare(AttackKind::Exhaustive { budget: 500 }, seed ^ 1);

        // One representative victim, attacked end to end, for the
        // operational counters of the reconnect loop itself.
        let mut server = ForkingServer::new(
            VictimConfig::new(scheme, seed ^ 0x5E4E4).with_deployment(deployment),
        );
        let geometry = server.geometry();
        let _ = polycanary_attacks::ByteByByteAttack::with_budget(byte_budget).run(
            &mut server,
            geometry,
            scheme,
        );
        let policy = server.canary_policy();

        ServerAttackRow {
            scheme,
            deployment,
            policy,
            byte_by_byte,
            exhaustive,
            server: server.stats_record(),
        }
    })
}

/// Renders the forking-server attack experiment: per cell, the verdict
/// plus `v` victims attacked and `c` connections spent, per stop rule.
pub fn format_server_attack(rows: &[ServerAttackRow]) -> String {
    let mut out = String::new();
    let seeds = rows.first().map(|r| r.byte_by_byte.exhaustive.configured_seeds).unwrap_or(0);
    let _ = writeln!(
        out,
        "forking-server campaigns over {seeds} victim seeds; cells are \
         `verdict victims/connections` under sprt | wilson | exhaustive"
    );
    let _ = writeln!(
        out,
        "{:<12} {:<13} {:<58} {:<58}",
        "Scheme", "Fork canary", "byte-by-byte", "exhaustive (500)"
    );
    for row in rows {
        let fmt_cmp = |c: &StopRuleComparison| {
            format!(
                "{} | {} | {}{}",
                StopRuleComparison::cell(&c.sprt),
                StopRuleComparison::cell(&c.wilson),
                StopRuleComparison::cell(&c.exhaustive),
                if c.verdicts_agree() { "" } else { "  DISAGREE" }
            )
        };
        let _ = writeln!(
            out,
            "{:<12} {:<13} {:<58} {:<58}",
            row.scheme.name(),
            row.policy.label(),
            fmt_cmp(&row.byte_by_byte),
            fmt_cmp(&row.exhaustive),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Theorem 1 — independence of exposed canaries
// ---------------------------------------------------------------------------

/// Runs the empirical Theorem-1 test: collects the `C1` half of `samples`
/// re-randomizations of one fixed TLS canary and checks the observations are
/// consistent with uniformity (zero information about `C`).
pub fn run_theorem1(seed: u64, samples: usize) -> IndependenceTest {
    let mut rng = Xoshiro256StarStar::new(seed);
    let tls_canary = 0x0123_4567_89AB_CDEFu64 ^ seed;
    let observed: Vec<u64> = (0..samples).map(|_| re_randomize(tls_canary, &mut rng).c1).collect();
    theorem1_independence_test(&observed)
}

/// Renders the Theorem-1 result.
pub fn format_theorem1(result: &IndependenceTest) -> String {
    format!(
        "samples = {}, chi-square = {:.2} (df = {}), consistent with uniform: {}\n",
        result.samples,
        result.chi_square,
        result.degrees_of_freedom,
        result.consistent_with_uniform
    )
}

// ---------------------------------------------------------------------------
// Ablation over the extensions (§IV / §VI-B)
// ---------------------------------------------------------------------------

/// One row of the extensions ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The scheme.
    pub scheme: SchemeKind,
    /// Per-call canary handling cost in cycles.
    pub per_call_cycles: u64,
    /// Expected byte-by-byte trials from the analytical model.
    pub analytical_byte_by_byte_trials: u64,
    /// Whether the scheme needs TLS/fork changes to deploy.
    pub needs_runtime_changes: bool,
    /// Whether the scheme resists the canary-reuse (disclosure) attack.
    pub exposure_resilient: bool,
}

impl AblationRow {
    /// The self-describing record form of this row, for JSON/CSV export.
    pub fn record(&self) -> Record {
        Record::new()
            .field("scheme", self.scheme.name())
            .field("per_call_cycles", self.per_call_cycles)
            .field("analytical_byte_by_byte_trials", self.analytical_byte_by_byte_trials)
            .field("needs_runtime_changes", self.needs_runtime_changes)
            .field("exposure_resilient", self.exposure_resilient)
    }
}

/// Runs the ablation over P-SSP and its three extensions.
pub fn run_ablation(seed: u64) -> Vec<AblationRow> {
    [SchemeKind::Pssp, SchemeKind::PsspNt, SchemeKind::PsspLv, SchemeKind::PsspOwf]
        .into_iter()
        .map(|scheme| {
            let props = scheme.scheme().properties();
            AblationRow {
                scheme,
                per_call_cycles: canary_handling_cycles(scheme, 0, seed),
                analytical_byte_by_byte_trials: attack_effort(&props).byte_by_byte_trials,
                needs_runtime_changes: props.modifies_tls_layout,
                exposure_resilient: props.exposure_resilient,
            }
        })
        .collect()
}

/// Renders the ablation.
pub fn format_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>16} {:>24} {:>16} {:>20}",
        "Scheme", "cycles/call", "byte-by-byte trials", "runtime changes", "exposure resilient"
    );
    for row in rows {
        let trials = if row.analytical_byte_by_byte_trials == u64::MAX {
            ">= 2^63".to_string()
        } else {
            row.analytical_byte_by_byte_trials.to_string()
        };
        let _ = writeln!(
            out,
            "{:<12} {:>16} {:>24} {:>16} {:>20}",
            row.scheme.name(),
            row.per_call_cycles,
            trials,
            if row.needs_runtime_changes { "yes" } else { "no" },
            if row.exposure_resilient { "yes" } else { "no" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_qualitative_columns() {
        let rows = run_table1(3, 2);
        let by_scheme = |k: SchemeKind| rows.iter().find(|r| r.scheme == k).unwrap();
        assert!(!by_scheme(SchemeKind::Ssp).brop_prevented);
        assert!(by_scheme(SchemeKind::Ssp).correct);
        assert!(by_scheme(SchemeKind::RafSsp).brop_prevented);
        assert!(!by_scheme(SchemeKind::RafSsp).correct);
        for k in [SchemeKind::DynaGuard, SchemeKind::Dcr, SchemeKind::Pssp] {
            assert!(by_scheme(k).brop_prevented, "{k}");
            assert!(by_scheme(k).correct, "{k}");
        }
        // P-SSP is the cheapest of the BROP-preventing schemes.
        assert!(
            by_scheme(SchemeKind::Pssp).compiler_overhead_percent
                <= by_scheme(SchemeKind::DynaGuard).compiler_overhead_percent + 1e-9
        );
        assert!(format_table1(&rows).contains("P-SSP"));
    }

    #[test]
    fn fig5_overheads_are_small_and_ordered() {
        let rows = run_fig5(5, 4);
        assert_eq!(rows.len(), 4);
        let compiler = mean(&rows.iter().map(|r| r.compiler_percent).collect::<Vec<_>>());
        let instr = mean(&rows.iter().map(|r| r.instrumentation_percent).collect::<Vec<_>>());
        assert!(compiler > 0.0 && compiler < 3.0, "compiler mean {compiler}");
        assert!(instr > compiler, "instrumentation {instr} vs compiler {compiler}");
        assert!(format_fig5(&rows).contains("average"));
    }

    #[test]
    fn table2_shape_matches_paper() {
        let result = run_table2(3);
        assert!(result.compilation_percent > 0.0 && result.compilation_percent < 5.0);
        assert_eq!(result.instrumentation_dynamic_percent, 0.0);
        assert!(result.instrumentation_static_percent > 0.0);
        assert!(format_table2(&result).contains("static"));
    }

    #[test]
    fn table3_and_table4_show_negligible_differences() {
        let rows = run_table3(7, 20);
        assert_eq!(rows.len(), 6);
        for chunk in rows.chunks(3) {
            let native = chunk[0].mean_ms;
            for cell in chunk {
                assert!((cell.mean_ms - native) / native < 0.01, "{cell:?}");
            }
        }
        assert!(format_table3(&rows).contains("Build"));
        let rows = run_table4(7, 3);
        assert_eq!(rows.len(), 6);
        for chunk in rows.chunks(3) {
            let native = chunk[0].mean_query_ms;
            for cell in chunk {
                assert!((cell.mean_query_ms - native) / native < 0.01, "{cell:?}");
                assert_eq!(cell.memory_mb, chunk[0].memory_mb);
            }
        }
        assert!(format_table4(&rows).contains("Memory"));
    }

    #[test]
    fn table3_and_table4_cells_are_worker_count_independent() {
        // The pool deposits results under their cell index, so row order is
        // the fixed cell order (servers × figure5 builds), reproducibly.
        let once = run_table3(9, 10);
        let twice = run_table3(9, 10);
        assert_eq!(once, twice);
        assert_eq!(once[0].server, "Apache2");
        assert_eq!(once[3].server, "Nginx");
        let once = run_table4(9, 2);
        let twice = run_table4(9, 2);
        assert_eq!(once, twice);
        assert_eq!(once[0].engine, "MySQL");
        assert_eq!(once[3].engine, "SQLite");
    }

    #[test]
    fn table5_reproduces_the_paper_ordering() {
        let entries = run_table5(5);
        let get = |label: &str| entries.iter().find(|e| e.label.starts_with(label)).unwrap().cycles;
        let pssp = get("P-SSP");
        let nt = get("P-SSP-NT");
        let lv2 = get("P-SSP-LV (2");
        let lv4 = get("P-SSP-LV (4");
        let owf = get("P-SSP-OWF");
        // Paper: 6, 343, 343, 986, 278.
        assert!(pssp < 30, "P-SSP should be a handful of cycles, got {pssp}");
        assert!(owf > pssp && owf < nt, "OWF ({owf}) sits between P-SSP ({pssp}) and NT ({nt})");
        assert!((lv2 as i64 - nt as i64).abs() < 60, "LV-2 ({lv2}) ~ NT ({nt})");
        assert!(lv4 > 2 * nt, "LV-4 ({lv4}) draws three random numbers vs NT's one ({nt})");
        assert!(format_table5(&entries).contains("P-SSP-OWF"));
    }

    #[test]
    fn effectiveness_rows_separate_ssp_from_pssp() {
        let rows = run_effectiveness(11, &[SchemeKind::Ssp, SchemeKind::Pssp], 4_000, 8);
        let ssp = &rows[0];
        let pssp = &rows[1];
        // The campaign verdicts must hold in *every* seed, not on average.
        assert!(ssp.byte_by_byte.all_succeeded(), "SSP falls in every seed");
        assert!(pssp.byte_by_byte.none_succeeded(), "P-SSP survives every seed");
        assert!(ssp.exhaustive.none_succeeded() && pssp.exhaustive.none_succeeded());
        assert!(ssp.reuse.all_succeeded() && pssp.reuse.all_succeeded());
        // The request-count distribution matches the ~8·2⁷ analysis of §II-B.
        let stats = ssp.byte_by_byte.success_trial_stats().expect("all succeeded");
        assert!(stats.mean > 64.0 && stats.max <= 8 * 256 + 1, "{stats}");
        let rendered = format_effectiveness(&rows);
        assert!(rendered.contains("8 independent victim seeds"));
        assert!(rendered.contains("breaks 8/8"));
        assert!(rendered.contains("fails 0/8"));
    }

    #[test]
    fn effectiveness_campaigns_are_reproducible() {
        let once = run_effectiveness(3, &[SchemeKind::Ssp], 3_000, 4);
        let twice = run_effectiveness(3, &[SchemeKind::Ssp], 3_000, 4);
        assert_eq!(once[0].byte_by_byte.runs, twice[0].byte_by_byte.runs);
        assert_eq!(once[0].exhaustive.runs, twice[0].exhaustive.runs);
        assert_eq!(once[0].reuse.runs, twice[0].reuse.runs);
    }

    #[test]
    fn pssp_bin32_effectiveness_campaigns_attack_the_rewritten_binary() {
        use polycanary_attacks::victim::{ForkingServer, VictimConfig};

        // Regression: the §VI-C PsspBin32 row must attack the rewriter
        // deployment, not a compiler-deployed victim.
        assert_eq!(effectiveness_deployment(SchemeKind::PsspBin32), Deployment::BinaryRewriter);
        assert_eq!(effectiveness_deployment(SchemeKind::Pssp), Deployment::Compiler);

        let rows = run_effectiveness(3, &[SchemeKind::PsspBin32], 2_000, 4);
        let row = &rows[0];
        for report in [&row.byte_by_byte, &row.exhaustive, &row.reuse] {
            assert_eq!(report.deployment, Deployment::BinaryRewriter, "{}", report.attack);
        }
        // The campaigned geometry is SSP's single-slot layout: the rewriter
        // keeps one 8-byte canary region (vs 16 for compiler-built P-SSP).
        for run in &row.byte_by_byte.runs {
            let victim = VictimConfig::new(SchemeKind::PsspBin32, run.seed)
                .with_deployment(Deployment::BinaryRewriter);
            assert_eq!(ForkingServer::new(victim).geometry().canary_region_len, 8);
        }
        // And the rewritten binary still resists the byte-by-byte attack.
        assert!(row.byte_by_byte.none_succeeded(), "{:?}", row.byte_by_byte);
    }

    #[test]
    fn server_attack_rows_compare_stop_rules_consistently() {
        use polycanary_core::record::Value;

        let rows = run_server_attack(7, &[SchemeKind::Ssp, SchemeKind::Pssp], 3_000, 6);
        let ssp = &rows[0];
        let pssp = &rows[1];

        // Static canaries fall to byte-by-byte, polymorphic ones survive,
        // and all three stop rules agree on both.
        assert_eq!(ssp.byte_by_byte.exhaustive.verdict(), Verdict::Breaks);
        assert_eq!(pssp.byte_by_byte.exhaustive.verdict(), Verdict::Resists);
        assert_eq!(ssp.policy, ForkCanaryPolicy::Inherited);
        assert_eq!(pssp.policy, ForkCanaryPolicy::Rerandomized);
        for row in &rows {
            assert!(row.byte_by_byte.verdicts_agree(), "{}", row.scheme);
            assert!(row.exhaustive.verdicts_agree(), "{}", row.scheme);
            // SPRT settles unanimous cells one victim before Wilson and
            // never spends more connections.
            assert_eq!(row.byte_by_byte.sprt.campaigns(), 3, "{}", row.scheme);
            assert_eq!(row.byte_by_byte.wilson.campaigns(), 4, "{}", row.scheme);
            assert!(
                row.byte_by_byte.sprt.total_requests() <= row.byte_by_byte.wilson.total_requests()
            );
            // A bounded exhaustive guess never breaks either scheme.
            assert_eq!(row.exhaustive.exhaustive.verdict(), Verdict::Resists, "{}", row.scheme);
        }

        // The representative server's counters describe the reconnect loop.
        let conns = ssp.server.get("connections").and_then(Value::as_u64).unwrap();
        assert!(conns >= 64, "a byte-by-byte break opens many connections: {conns}");
        assert_eq!(ssp.server.get("forks").and_then(Value::as_u64), Some(conns));
        assert_eq!(ssp.server.get("fork_canary_policy"), Some(&Value::Str("inherited".into())));

        let rendered = format_server_attack(&rows);
        assert!(rendered.contains("6 victim seeds"), "{rendered}");
        assert!(rendered.contains("breaks 3v"), "{rendered}");
        assert!(!rendered.contains("DISAGREE"), "{rendered}");
    }

    #[test]
    fn server_attack_is_deterministic_and_self_describing() {
        use polycanary_core::record::{records_from_json, records_to_json, Value};

        let once = run_server_attack(9, &[SchemeKind::Ssp], 2_500, 4);
        let twice = run_server_attack(9, &[SchemeKind::Ssp], 2_500, 4);
        assert_eq!(once[0].byte_by_byte.exhaustive.runs, twice[0].byte_by_byte.exhaustive.runs);
        assert_eq!(once[0].server, twice[0].server);

        // The export parses back: nested stop-rule campaigns and per-seed
        // runs survive the JSON round trip.
        let json = records_to_json(&once.iter().map(ServerAttackRow::record).collect::<Vec<_>>());
        let parsed = records_from_json(&json).expect("server-attack export parses");
        let Some(Value::Record(byte)) = parsed[0].get("byte_by_byte") else {
            panic!("nested comparison record: {parsed:?}")
        };
        let Some(Value::Record(sprt)) = byte.get("sprt") else { panic!("nested sprt campaign") };
        assert_eq!(sprt.get("stop_rule"), Some(&Value::Str("sprt".into())));
        let Some(Value::List(runs)) = sprt.get("runs") else { panic!("per-seed runs") };
        assert_eq!(runs.len() as u64, once[0].byte_by_byte.sprt.campaigns());
    }

    #[test]
    fn table1_brop_column_runs_on_the_sprt_reconnect_loop() {
        let rows = run_table1(3, 2);
        for row in &rows {
            // The SPRT rule settles the unanimous BROP cells in 3 victims.
            assert_eq!(row.brop_runs, 3, "{}", row.scheme);
            assert!(row.brop_connections > 0, "{}", row.scheme);
            let expected = match row.scheme {
                SchemeKind::Ssp => ForkCanaryPolicy::Inherited,
                _ => ForkCanaryPolicy::Rerandomized,
            };
            assert_eq!(row.fork_canary_policy, expected, "{}", row.scheme);
        }
        let rendered = format_table1(&rows);
        assert!(rendered.contains("conns"), "{rendered}");
        assert!(rendered.contains("Fork canary"), "{rendered}");
    }

    #[test]
    fn adaptive_effectiveness_agrees_with_exhaustive_on_verdicts() {
        let schemes = [SchemeKind::Ssp, SchemeKind::Pssp];
        let exhaustive = run_effectiveness(5, &schemes, 3_000, 8);
        let adaptive = run_effectiveness_with(5, &schemes, 3_000, 8, StopRule::settled());
        for (e, a) in exhaustive.iter().zip(&adaptive) {
            assert_eq!(e.byte_by_byte.verdict(), a.byte_by_byte.verdict(), "{}", e.scheme);
            assert_eq!(e.exhaustive.verdict(), a.exhaustive.verdict(), "{}", e.scheme);
            assert_eq!(e.reuse.verdict(), a.reuse.verdict(), "{}", e.scheme);
        }
        // Unanimous cells settle after the first batch, so the adaptive run
        // spends strictly fewer requests.
        let requests = |rows: &[EffectivenessRow]| -> u64 {
            rows.iter()
                .map(|r| {
                    r.byte_by_byte.total_requests()
                        + r.exhaustive.total_requests()
                        + r.reuse.total_requests()
                })
                .sum()
        };
        assert!(requests(&adaptive) < requests(&exhaustive));
    }

    #[test]
    fn experiment_records_are_self_describing() {
        use polycanary_core::record::{records_to_csv, records_to_json, Value};

        let rows = run_fig5(5, 2);
        let records: Vec<Record> = rows.iter().map(Fig5Row::record).collect();
        let json = records_to_json(&records);
        assert!(json.starts_with('[') && json.contains("\"program\""));
        let csv = records_to_csv(&records);
        assert!(csv.starts_with("program,compiler_percent,instrumentation_percent\n"));

        let eff = run_effectiveness(3, &[SchemeKind::Ssp], 3_000, 4);
        let rec = eff[0].record();
        let Some(Value::Record(byte)) = rec.get("byte_by_byte") else {
            panic!("nested campaign record: {rec:?}")
        };
        let Some(Value::List(runs)) = byte.get("runs") else { panic!("per-seed runs") };
        assert_eq!(runs.len(), 4);
    }

    #[test]
    fn theorem1_is_consistent_with_uniformity() {
        let result = run_theorem1(99, 2_000);
        assert!(result.consistent_with_uniform, "chi2 = {}", result.chi_square);
        assert!(format_theorem1(&result).contains("consistent"));
    }

    #[test]
    fn ablation_covers_the_three_extensions() {
        let rows = run_ablation(3);
        assert_eq!(rows.len(), 4);
        let owf = rows.iter().find(|r| r.scheme == SchemeKind::PsspOwf).unwrap();
        assert!(owf.exposure_resilient);
        let nt = rows.iter().find(|r| r.scheme == SchemeKind::PsspNt).unwrap();
        assert!(!nt.needs_runtime_changes);
        assert!(nt.per_call_cycles > rows[0].per_call_cycles);
        assert!(format_ablation(&rows).contains("cycles/call"));
    }
}
