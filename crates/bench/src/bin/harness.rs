//! Command-line harness printing every table and figure of the paper.
//!
//! ```text
//! cargo run -p polycanary-bench --bin harness -- all
//! cargo run -p polycanary-bench --bin harness -- table1 fig5 table5
//! cargo run -p polycanary-bench --bin harness -- --seed 7 effectiveness
//! ```

use polycanary_bench::experiments as exp;
use polycanary_core::scheme::SchemeKind;

fn print_usage() {
    eprintln!(
        "usage: harness [--seed N] [--quick] <experiment>...\n\
         experiments: table1 fig5 table2 table3 table4 table5 effectiveness \
         theorem1 ablation all\n\
         (`attack` is accepted as an alias for `effectiveness`)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut seed = 0x00DD_5EEDu64;
    let mut quick = false;
    let mut experiments = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let value = iter.next().unwrap_or_default();
                seed = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed value `{value}`");
                    std::process::exit(2);
                });
            }
            "--quick" => quick = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }

    let spec_programs = if quick { 4 } else { 28 };
    let requests = if quick { 50 } else { 500 };
    let queries = if quick { 5 } else { 50 };
    let byte_budget = if quick { 4_000 } else { 20_000 };
    let campaign_seeds = if quick { 8 } else { exp::EFFECTIVENESS_SEEDS };

    let all = experiments.iter().any(|e| e == "all");
    let wants = |name: &str| all || experiments.iter().any(|e| e == name);

    if wants("table1") {
        println!("== Table I: comparison of brute-force-attack defence tools ==");
        println!("{}", exp::format_table1(&exp::run_table1(seed, spec_programs.min(6))));
    }
    if wants("fig5") {
        println!("== Figure 5: runtime overhead of P-SSP vs native (SPEC-like suite) ==");
        println!("{}", exp::format_fig5(&exp::run_fig5(seed, spec_programs)));
    }
    if wants("table2") {
        println!("== Table II: code expansion rate ==");
        println!("{}", exp::format_table2(&exp::run_table2(spec_programs)));
    }
    if wants("table3") {
        println!("== Table III: web-server mean response time ==");
        println!("{}", exp::format_table3(&exp::run_table3(seed, requests)));
    }
    if wants("table4") {
        println!("== Table IV: database performance ==");
        println!("{}", exp::format_table4(&exp::run_table4(seed, queries)));
    }
    if wants("table5") {
        println!("== Table V: prologue/epilogue CPU cycles ==");
        println!("{}", exp::format_table5(&exp::run_table5(seed)));
    }
    if wants("effectiveness") || wants("attack") {
        println!("== §VI-C: attack effectiveness (byte-by-byte, exhaustive, reuse) ==");
        let schemes = [
            SchemeKind::Ssp,
            SchemeKind::Pssp,
            SchemeKind::PsspNt,
            SchemeKind::PsspOwf,
            SchemeKind::PsspBin32,
        ];
        println!(
            "{}",
            exp::format_effectiveness(&exp::run_effectiveness(
                seed,
                &schemes,
                byte_budget,
                campaign_seeds,
            ))
        );
    }
    if wants("theorem1") {
        println!("== Theorem 1: independence of exposed canaries ==");
        println!("{}", exp::format_theorem1(&exp::run_theorem1(seed, 5_000)));
    }
    if wants("ablation") {
        println!("== Extensions ablation (P-SSP vs NT / LV / OWF) ==");
        println!("{}", exp::format_ablation(&exp::run_ablation(seed)));
    }

    if !all
        && ![
            "table1",
            "fig5",
            "table2",
            "table3",
            "table4",
            "table5",
            "effectiveness",
            "attack",
            "theorem1",
            "ablation",
        ]
        .iter()
        .any(|known| experiments.iter().any(|e| e == known))
    {
        eprintln!("no known experiment selected");
        print_usage();
        std::process::exit(2);
    }
}
