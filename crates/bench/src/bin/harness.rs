//! Command-line harness printing every table and figure of the paper.
//!
//! ```text
//! cargo run -p polycanary-bench --bin harness -- all
//! cargo run -p polycanary-bench --bin harness -- table1 fig5 table5
//! cargo run -p polycanary-bench --bin harness -- --seed 7 effectiveness
//! cargo run -p polycanary-bench --bin harness -- --format json --out results all
//! ```
//!
//! Experiments can be rendered as plain text (default) or exported as
//! self-describing JSON/CSV records via `--format json|csv`; `--out DIR`
//! writes one file per experiment instead of printing to stdout.

use std::path::PathBuf;

use polycanary_bench::experiments as exp;
use polycanary_core::record::{records_to_csv, Record};
use polycanary_core::scheme::SchemeKind;

fn print_usage() {
    eprintln!(
        "usage: harness [--seed N] [--quick] [--adaptive] [--format text|json|csv] \
         [--out DIR] <experiment>...\n\
         experiments: table1 fig5 table2 table3 table4 table5 effectiveness \
         server-attack theorem1 ablation all\n\
         (`attack` is accepted as an alias for `effectiveness`)\n\
         --quick     smaller workloads and campaigns (CI-sized)\n\
         --adaptive  stop effectiveness campaigns once their verdict settles\n\
         --format    text (default) or machine-readable json / csv records\n\
         --out DIR   write one <experiment>.<ext> file per experiment to DIR"
    );
}

/// Invalid command line: report, print usage, exit 2.
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    print_usage();
    std::process::exit(2);
}

/// Runtime failure after a valid invocation (e.g. an unwritable `--out`
/// directory): report and exit 1, without the usage spam.
fn runtime_error(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

impl Format {
    fn extension(&self) -> &'static str {
        match self {
            Format::Text => "txt",
            Format::Json => "json",
            Format::Csv => "csv",
        }
    }
}

/// One catalogue entry: the single source of truth for an experiment's
/// name, its human title and how to run it.  The argument validator, the
/// selection logic and the output loop all derive from this list, so a
/// name cannot exist in one place and be missing from another.
struct Experiment {
    name: &'static str,
    title: &'static str,
    run: Box<dyn Fn() -> (String, Vec<Record>)>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut seed = 0x00DD_5EEDu64;
    let mut quick = false;
    let mut adaptive = false;
    let mut format = Format::Text;
    let mut out_dir: Option<PathBuf> = None;
    let mut selected = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(value) = iter.next() else {
                    usage_error("--seed requires a value");
                };
                seed = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --seed value `{value}`")));
            }
            "--quick" => quick = true,
            "--adaptive" => adaptive = true,
            "--format" => {
                let Some(value) = iter.next() else {
                    usage_error("--format requires a value (text, json or csv)");
                };
                format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => usage_error(&format!(
                        "invalid --format value `{other}` (expected text, json or csv)"
                    )),
                };
            }
            "--out" => {
                let Some(value) = iter.next() else {
                    usage_error("--out requires a directory path");
                };
                out_dir = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("--") => {
                usage_error(&format!("unknown flag `{other}`"));
            }
            other => selected.push(other.to_string()),
        }
    }

    if selected.is_empty() {
        usage_error("no experiment selected");
    }

    let spec_programs = if quick { 4 } else { 28 };
    let requests = if quick { 50 } else { 500 };
    let queries = if quick { 5 } else { 50 };
    let byte_budget = if quick { 4_000 } else { 20_000 };
    let campaign_seeds = if quick { 8 } else { exp::EFFECTIVENESS_SEEDS };
    let stop_rule = if adaptive {
        polycanary_attacks::campaign::StopRule::settled()
    } else {
        polycanary_attacks::campaign::StopRule::Exhaustive
    };

    let catalogue: Vec<Experiment> = vec![
        Experiment {
            name: "table1",
            title: "Table I: comparison of brute-force-attack defence tools",
            run: Box::new(move || {
                let rows = exp::run_table1(seed, spec_programs.min(6));
                (exp::format_table1(&rows), rows.iter().map(exp::Table1Row::record).collect())
            }),
        },
        Experiment {
            name: "fig5",
            title: "Figure 5: runtime overhead of P-SSP vs native (SPEC-like suite)",
            run: Box::new(move || {
                let rows = exp::run_fig5(seed, spec_programs);
                (exp::format_fig5(&rows), rows.iter().map(exp::Fig5Row::record).collect())
            }),
        },
        Experiment {
            name: "table2",
            title: "Table II: code expansion rate",
            run: Box::new(move || {
                let result = exp::run_table2(spec_programs);
                (exp::format_table2(&result), vec![result.record()])
            }),
        },
        Experiment {
            name: "table3",
            title: "Table III: web-server mean response time",
            run: Box::new(move || {
                let rows = exp::run_table3(seed, requests);
                (exp::format_table3(&rows), rows.iter().map(exp::Table3Row::record).collect())
            }),
        },
        Experiment {
            name: "table4",
            title: "Table IV: database performance",
            run: Box::new(move || {
                let rows = exp::run_table4(seed, queries);
                (exp::format_table4(&rows), rows.iter().map(exp::Table4Row::record).collect())
            }),
        },
        Experiment {
            name: "table5",
            title: "Table V: prologue/epilogue CPU cycles",
            run: Box::new(move || {
                let entries = exp::run_table5(seed);
                (
                    exp::format_table5(&entries),
                    entries.iter().map(exp::Table5Entry::record).collect(),
                )
            }),
        },
        Experiment {
            name: "effectiveness",
            title: "\u{a7}VI-C: attack effectiveness (byte-by-byte, exhaustive, reuse)",
            run: Box::new(move || {
                let schemes = [
                    SchemeKind::Ssp,
                    SchemeKind::Pssp,
                    SchemeKind::PsspNt,
                    SchemeKind::PsspOwf,
                    SchemeKind::PsspBin32,
                ];
                let rows = exp::run_effectiveness_with(
                    seed,
                    &schemes,
                    byte_budget,
                    campaign_seeds,
                    stop_rule,
                );
                (
                    exp::format_effectiveness(&rows),
                    rows.iter().map(exp::EffectivenessRow::record).collect(),
                )
            }),
        },
        Experiment {
            name: "server-attack",
            title: "Forking-server attack: SPRT vs Wilson vs exhaustive stop rules (\u{a7}II)",
            run: Box::new(move || {
                let schemes = [
                    SchemeKind::Ssp,
                    SchemeKind::Pssp,
                    SchemeKind::PsspNt,
                    SchemeKind::PsspOwf,
                    SchemeKind::PsspBin32,
                ];
                let rows = exp::run_server_attack(seed, &schemes, byte_budget, campaign_seeds);
                (
                    exp::format_server_attack(&rows),
                    rows.iter().map(exp::ServerAttackRow::record).collect(),
                )
            }),
        },
        Experiment {
            name: "theorem1",
            title: "Theorem 1: independence of exposed canaries",
            run: Box::new(move || {
                let result = exp::run_theorem1(seed, 5_000);
                (exp::format_theorem1(&result), vec![result.record()])
            }),
        },
        Experiment {
            name: "ablation",
            title: "Extensions ablation (P-SSP vs NT / LV / OWF)",
            run: Box::new(move || {
                let rows = exp::run_ablation(seed);
                (exp::format_ablation(&rows), rows.iter().map(exp::AblationRow::record).collect())
            }),
        },
    ];

    // Reject unknown experiment names outright — a typo must not silently
    // drop one table from an otherwise valid selection.
    fn resolve(name: &str) -> &str {
        if name == "attack" {
            "effectiveness"
        } else {
            name
        }
    }
    let unknown: Vec<&str> = selected
        .iter()
        .map(|e| resolve(e))
        .filter(|e| *e != "all" && !catalogue.iter().any(|x| x.name == *e))
        .collect();
    if !unknown.is_empty() {
        usage_error(&format!("unknown experiment(s): {}", unknown.join(", ")));
    }

    let all = selected.iter().any(|e| e == "all");
    let wants = |name: &str| all || selected.iter().any(|e| resolve(e) == name);

    // A CSV stream is only parseable with one header row, so CSV on stdout
    // is restricted to a single experiment; multi-experiment CSV sweeps go
    // through --out (one file per experiment).
    let selection_count = catalogue.iter().filter(|e| wants(e.name)).count();
    if format == Format::Csv && out_dir.is_none() && selection_count > 1 {
        usage_error("--format csv with multiple experiments requires --out DIR");
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|err| {
            runtime_error(&format!("cannot create --out directory {}: {err}", dir.display()));
        });
    }

    // Run and emit each selected experiment; stdout JSON is collected into
    // one parseable array over the whole selection.
    let mut json_stream: Vec<String> = Vec::new();
    for experiment in catalogue.iter().filter(|e| wants(e.name)) {
        let (text, records) = (experiment.run)();
        let body = match format {
            Format::Text => format!("== {} ==\n{text}", experiment.title),
            Format::Json => experiment_json(experiment.name, seed, quick, &records),
            Format::Csv => records_to_csv(&records),
        };
        match &out_dir {
            Some(dir) => {
                let path = dir.join(format!("{}.{}", experiment.name, format.extension()));
                std::fs::write(&path, body.as_bytes()).unwrap_or_else(|err| {
                    runtime_error(&format!("cannot write {}: {err}", path.display()));
                });
                eprintln!("wrote {}", path.display());
            }
            None => match format {
                Format::Text => println!("{body}"),
                Format::Json => json_stream.push(body),
                // Single experiment (enforced above): bare, parseable CSV.
                Format::Csv => print!("{body}"),
            },
        }
    }
    if out_dir.is_none() && format == Format::Json {
        println!("[{}]", json_stream.join(","));
    }
}

/// One experiment's export payload: a self-describing object so every file
/// (or stream entry) records what produced it.
fn experiment_json(name: &str, seed: u64, quick: bool, records: &[Record]) -> String {
    Record::new()
        .field("experiment", name)
        .field("seed", seed)
        .field("quick", quick)
        .field("records", records.to_vec())
        .to_json()
}
