//! Command-line harness printing every registered scenario of the engine —
//! and the trend-tracking subcommands consuming its own exports.
//!
//! ```text
//! cargo run -p polycanary-bench --bin harness -- all
//! cargo run -p polycanary-bench --bin harness -- table1 fig5 table5
//! cargo run -p polycanary-bench --bin harness -- --seed 7 --workers 4 effectiveness
//! cargo run -p polycanary-bench --bin harness -- --format json --out results all
//! cargo run -p polycanary-bench --bin harness -- --quick --timings BENCH_scenarios.json all
//! cargo run -p polycanary-bench --bin harness -- diff old-run/ new-run/ \
//!     --baseline BENCH_scenarios.json --threshold 25
//! cargo run -p polycanary-bench --bin harness -- report new-run/ --out EXPERIMENTS.md
//! ```
//!
//! Everything scenario-specific — the usage text, name validation, dispatch,
//! the export loop and the report sections — derives from the scenario
//! registry (`polycanary_bench::experiments::registry`); this file knows no
//! experiment by name.  Scenarios render as plain text (default), as
//! self-describing JSON envelopes (schema version, scenario name, full
//! context, records) or as bare CSV rows via `--format json|csv`; every
//! JSON payload is re-parsed through the workspace JSON parser before it
//! is emitted, so a malformed export can never leave the process.
//!
//! `harness diff OLD NEW` compares two such exports (directories, single
//! envelopes or `--timings` files) through `polycanary_analysis` and exits
//! 1 when it finds a regression — a verdict flip, a lost scenario, or a
//! wall-time ratio beyond `--threshold` against `--baseline` — so CI can
//! gate on it.  `harness report DIR` renders the Markdown experiment
//! report from an export directory; EXPERIMENTS.md is its generated,
//! drift-checked output.

use std::path::{Path, PathBuf};
use std::time::Instant;

use polycanary_analysis::diff::{diff_runs, DiffOptions};
use polycanary_analysis::run::Run;
use polycanary_analysis::summary::RunSummary;
use polycanary_bench::experiments::{
    registry, registry_with, report_sections, Experiment, ExperimentCtx, ExportFormat,
};
use polycanary_bench::grammar;
use polycanary_bench::verify::{run_inject, run_verify, InjectedDefect};
use polycanary_compiler::{OptLevel, PassManager};
use polycanary_core::record::{
    export_envelope, records_to_csv, records_to_json, Record, SCHEMA_VERSION,
};

fn print_usage() {
    eprintln!(
        "usage: harness [--seed N] [--quick] [--adaptive] [--workers N] [--fleet N] \
         [--opt-level L] [--lattice NAME] [--gen-seed N] [--format text|json|csv] [--out DIR] \
         [--timings FILE] [--list] [--list-passes] <scenario>...\n\
         \x20      harness diff OLD NEW [--baseline FILE] [--threshold PCT] [--format text|json]\n\
         \x20      harness report DIR [--out FILE] [--format md|json]\n\
         \x20      harness verify [--quick] [--inject DEFECT] [--format text|json] [--out FILE]"
    );
    eprintln!("scenarios (or `all`):");
    for experiment in registry() {
        let aliases = if experiment.aliases().is_empty() {
            String::new()
        } else {
            format!(" (alias: {})", experiment.aliases().join(", "))
        };
        eprintln!("  {:<14} {}{aliases}", experiment.name(), experiment.description());
    }
    eprintln!("lattices (scenario grammar, `--lattice NAME` adds their `gen:*` cells):");
    for lattice in grammar::lattices() {
        eprintln!("  {:<14} {}", lattice.name(), lattice.description());
    }
    eprintln!(
        "--quick       smaller workloads and campaigns (CI-sized)\n\
         --adaptive    stop single-rule campaigns once their verdict settles\n\
         --workers N   cap the worker-thread budget (results never change)\n\
         --fleet N     fleet-scale mode: SPRT campaigns over N snapshot-booted\n\
         \x20             victims per cell (population and server-attack scenarios)\n\
         --opt-level L compiler optimization level (O0, O1 or O2; default O2) —\n\
         \x20             overhead scenarios report O0 plus L as a grid\n\
         --lattice NAME  register the named lattice's generated `gen:NAME:*`\n\
         \x20             scenarios alongside the static registry; with no\n\
         \x20             positional scenario, runs exactly those cells\n\
         --gen-seed N  generator seed for `--lattice` victim programs (default 7)\n\
         --list-passes print the pass pipeline for the selected --opt-level and exit\n\
         --format      text (default), json (self-describing envelopes) or csv (bare records)\n\
         --out DIR     write one <scenario>.<ext> file per scenario to DIR\n\
         --timings FILE  also write per-scenario wall times as JSON records\n\
         --list        print `name<TAB>title` per scenario and exit\n\
         \n\
         diff   compare two runs (export dirs, envelope files or --timings files);\n\
         \x20      exits 1 on regression: verdict flip, lost scenario, or wall time\n\
         \x20      beyond --threshold PCT (default 25) vs --baseline (default: OLD)\n\
         report render the Markdown experiment report (EXPERIMENTS.md) from an\n\
         \x20      export directory; --format json emits the same model as records\n\
         verify statically prove canary invariants over every workload x scheme x\n\
         \x20      deployment x opt-level cell; exits 1 on any finding.  --inject DEFECT\n\
         \x20      runs the known-bad battery instead (defects: skipped-prologue,\n\
         \x20      clobbered-canary, dropped-epilogue, dead-check, stale-rewrite,\n\
         \x20      optimizer-dropped-check)"
    );
}

/// Invalid command line: report, print usage, exit 2.
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    print_usage();
    std::process::exit(2);
}

/// Runtime failure after a valid invocation (e.g. an unwritable `--out`
/// directory): report and exit 1, without the usage spam.
fn runtime_error(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    // The trend-tracking subcommands consume prior exports instead of
    // running scenarios; no registry name collides with them.
    match args.first().map(String::as_str) {
        Some("diff") => run_diff_command(&args[1..]),
        Some("report") => run_report_command(&args[1..]),
        Some("verify") => run_verify_command(&args[1..]),
        _ => {}
    }

    let mut ctx = ExperimentCtx::new(0x00DD_5EED);
    let mut out_dir: Option<PathBuf> = None;
    let mut timings_path: Option<PathBuf> = None;
    let mut list_passes = false;
    let mut list = false;
    let mut lattice: Option<String> = None;
    let mut gen_seed: u64 = 7;
    let mut selected = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(value) = iter.next() else {
                    usage_error("--seed requires a value");
                };
                ctx.seed = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --seed value `{value}`")));
            }
            "--quick" => ctx = ctx.quick(),
            "--adaptive" => ctx = ctx.adaptive(),
            "--workers" => {
                let Some(value) = iter.next() else {
                    usage_error("--workers requires a value");
                };
                let workers: usize = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --workers value `{value}`")));
                ctx = ctx.with_workers(workers.max(1));
            }
            "--fleet" => {
                let Some(value) = iter.next() else {
                    usage_error("--fleet requires a value");
                };
                let fleet: usize = value.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    usage_error(&format!(
                        "invalid --fleet value `{value}`: expected a positive victim count"
                    ))
                });
                ctx = ctx.with_fleet(fleet);
            }
            "--format" => {
                let Some(value) = iter.next() else {
                    usage_error("--format requires a value (text, json or csv)");
                };
                ctx.format = match value.as_str() {
                    "text" => ExportFormat::Text,
                    "json" => ExportFormat::Json,
                    "csv" => ExportFormat::Csv,
                    other => usage_error(&format!(
                        "invalid --format value `{other}` (expected text, json or csv)"
                    )),
                };
            }
            "--out" => {
                let Some(value) = iter.next() else {
                    usage_error("--out requires a directory path");
                };
                out_dir = Some(PathBuf::from(value));
            }
            "--timings" => {
                let Some(value) = iter.next() else {
                    usage_error("--timings requires a file path");
                };
                timings_path = Some(PathBuf::from(value));
            }
            "--opt-level" => {
                let Some(value) = iter.next() else {
                    usage_error("--opt-level requires a value (O0, O1 or O2)");
                };
                let opt: OptLevel = value
                    .parse()
                    .unwrap_or_else(|err: String| usage_error(&format!("--opt-level: {err}")));
                ctx = ctx.with_opt_level(opt);
            }
            "--lattice" => {
                let Some(value) = iter.next() else {
                    usage_error("--lattice requires a lattice name");
                };
                lattice = Some(value);
            }
            "--gen-seed" => {
                let Some(value) = iter.next() else {
                    usage_error("--gen-seed requires a value");
                };
                gen_seed = value.parse().unwrap_or_else(|_| {
                    usage_error(&format!("invalid --gen-seed value `{value}`"))
                });
            }
            // Deferred below the flag loop so `--list --lattice smoke`
            // and the reverse order list the same catalogue.
            "--list" => list = true,
            "--list-passes" => list_passes = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("--") => {
                usage_error(&format!("unknown flag `{other}`"));
            }
            other => selected.push(other.to_string()),
        }
    }

    // `--list-passes` is a debug aid: show the pipeline the selected
    // `--opt-level` would run, in order, and exit.  Parsed after the flag
    // loop so `--opt-level O2 --list-passes` and the reverse order agree.
    if list_passes {
        println!("{} pipeline:", ctx.opt_level);
        for name in PassManager::standard(ctx.opt_level).pass_names() {
            println!("  {name}");
        }
        return;
    }

    // The catalogue: the static registry plus, under `--lattice`, every
    // generated `gen:<lattice>:*` cell — one dynamic registration path,
    // shared by listing, validation, dispatch and export.
    let catalogue = registry_with(lattice.as_deref().map(|name| (name, gen_seed)))
        .unwrap_or_else(|err| usage_error(&err));

    if list {
        for experiment in &catalogue {
            println!("{}\t{}", experiment.name(), experiment.title());
        }
        return;
    }

    if selected.is_empty() && lattice.is_none() {
        usage_error("no scenario selected");
    }

    // Resolve aliases and reject unknown scenario names outright — a typo
    // must not silently drop one table from an otherwise valid selection.
    let resolve = |name: &str| -> Option<String> {
        catalogue
            .iter()
            .find(|e| e.name() == name || e.aliases().contains(&name))
            .map(|e| e.name().to_string())
    };
    let unknown: Vec<&str> = selected
        .iter()
        .map(String::as_str)
        .filter(|name| *name != "all" && resolve(name).is_none())
        .collect();
    if !unknown.is_empty() {
        usage_error(&format!("unknown scenario(s): {}", unknown.join(", ")));
    }

    let all = selected.iter().any(|e| e == "all");
    // `--lattice NAME` with no positional scenario runs exactly the
    // generated cells; explicit selections behave as always.
    let implicit_lattice = selected.is_empty();
    let wants = |name: &str| {
        all || (implicit_lattice && name.starts_with("gen:"))
            || selected.iter().any(|e| resolve(e).as_deref() == Some(name))
    };

    // A CSV stream is only parseable with one header row, so CSV on stdout
    // is restricted to a single scenario; multi-scenario CSV sweeps go
    // through --out (one file per scenario).
    let selection_count = catalogue.iter().filter(|e| wants(e.name())).count();
    if ctx.format == ExportFormat::Csv && out_dir.is_none() && selection_count > 1 {
        usage_error("--format csv with multiple scenarios requires --out DIR");
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|err| {
            runtime_error(&format!("cannot create --out directory {}: {err}", dir.display()));
        });
    }

    // Run and emit each selected scenario; stdout JSON is collected into
    // one parseable array over the whole selection.
    let mut json_stream: Vec<String> = Vec::new();
    let mut timings: Vec<Record> = Vec::new();
    for experiment in catalogue.iter().filter(|e| wants(e.name())) {
        let started = Instant::now();
        let output = experiment.run(&ctx);
        timings.push(scenario_timing(experiment.as_ref(), &ctx, started, output.records.len()));
        let body = match ctx.format {
            ExportFormat::Text => format!("== {} ==\n{}", experiment.title(), output.text),
            ExportFormat::Json => verified_json(export_envelope(
                experiment.name(),
                experiment.export_ctx(&ctx),
                output.records,
            )),
            ExportFormat::Csv => records_to_csv(&output.records),
        };
        match &out_dir {
            Some(dir) => {
                let path = dir.join(format!("{}.{}", experiment.name(), ctx.format.extension()));
                std::fs::write(&path, body.as_bytes()).unwrap_or_else(|err| {
                    runtime_error(&format!("cannot write {}: {err}", path.display()));
                });
                eprintln!("wrote {}", path.display());
            }
            None => match ctx.format {
                ExportFormat::Text => println!("{body}"),
                ExportFormat::Json => json_stream.push(body),
                // Single scenario (enforced above): bare, parseable CSV.
                ExportFormat::Csv => print!("{body}"),
            },
        }
    }
    if out_dir.is_none() && ctx.format == ExportFormat::Json {
        println!("[{}]", json_stream.join(","));
    }

    if let Some(path) = timings_path {
        let body = records_to_json(&timings);
        std::fs::write(&path, body.as_bytes()).unwrap_or_else(|err| {
            runtime_error(&format!("cannot write {}: {err}", path.display()));
        });
        eprintln!("wrote {}", path.display());
    }
}

/// Serializes `envelope` and re-parses it through the workspace JSON parser
/// before handing it out — exports are verified, never trusted.
fn verified_json(envelope: Record) -> String {
    let body = envelope.to_json();
    if let Err(err) = Record::from_json(&body) {
        runtime_error(&format!("export failed its own re-parse: {err}"));
    }
    body
}

/// Loads one side of a diff, bailing out with the offending file named.
fn load_run(path: &str) -> Run {
    Run::load(Path::new(path)).unwrap_or_else(|err| runtime_error(&err.to_string()))
}

/// `harness diff OLD NEW [--baseline FILE] [--threshold PCT]
/// [--format text|json]` — never returns.
///
/// Exit code 0 when the runs match (informational findings allowed), 1 on
/// any regression, 2 on a bad command line.
fn run_diff_command(args: &[String]) -> ! {
    let mut positional: Vec<&str> = Vec::new();
    let mut baseline: Option<String> = None;
    let mut options = DiffOptions::default();
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => {
                let Some(value) = iter.next() else {
                    usage_error("diff: --baseline requires a file path");
                };
                baseline = Some(value.clone());
            }
            "--threshold" => {
                let Some(value) = iter.next() else {
                    usage_error("diff: --threshold requires a percentage");
                };
                // f64::from_str happily parses "NaN"/"inf", and a NaN
                // threshold silently disables the wall-time gate — only a
                // finite, non-negative percentage is a valid invocation.
                options.threshold_pct = value
                    .parse()
                    .ok()
                    .filter(|pct: &f64| pct.is_finite() && *pct >= 0.0)
                    .unwrap_or_else(|| {
                        usage_error(&format!(
                            "diff: invalid --threshold value `{value}` \
                             (expected a finite percentage >= 0)"
                        ))
                    });
            }
            "--format" => {
                let Some(value) = iter.next() else {
                    usage_error("diff: --format requires a value (text or json)");
                };
                json = match value.as_str() {
                    "text" => false,
                    "json" => true,
                    other => usage_error(&format!(
                        "diff: invalid --format value `{other}` (expected text or json)"
                    )),
                };
            }
            other if other.starts_with("--") => {
                usage_error(&format!("diff: unknown flag `{other}`"))
            }
            other => positional.push(other),
        }
    }
    let [old_path, new_path] = positional[..] else {
        usage_error("diff requires exactly two run paths: harness diff OLD NEW");
    };

    let old = load_run(old_path);
    let new = load_run(new_path);
    let baseline = baseline.map(|path| load_run(&path));
    let report = diff_runs(&old, &new, baseline.as_ref(), &options);
    if json {
        println!("{}", verified_json(report.to_record()));
    } else {
        print!("{}", report.render_text());
    }
    std::process::exit(i32::from(report.has_regressions()));
}

/// `harness report DIR [--out FILE] [--format md|json]` — never returns.
///
/// Renders the generated experiment report (EXPERIMENTS.md) from the JSON
/// export envelopes in DIR, with section titles, descriptions and paper
/// annotations drawn from the scenario registry.
fn run_report_command(args: &[String]) -> ! {
    let mut positional: Vec<&str> = Vec::new();
    let mut out_path: Option<PathBuf> = None;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                let Some(value) = iter.next() else {
                    usage_error("report: --out requires a file path");
                };
                out_path = Some(PathBuf::from(value));
            }
            "--format" => {
                let Some(value) = iter.next() else {
                    usage_error("report: --format requires a value (md or json)");
                };
                json = match value.as_str() {
                    "md" => false,
                    "json" => true,
                    other => usage_error(&format!(
                        "report: invalid --format value `{other}` (expected md or json)"
                    )),
                };
            }
            other if other.starts_with("--") => {
                usage_error(&format!("report: unknown flag `{other}`"))
            }
            other => positional.push(other),
        }
    }
    let [dir] = positional[..] else {
        usage_error("report requires exactly one export directory: harness report DIR");
    };

    let run = load_run(dir);
    if run.scenarios.is_empty() {
        runtime_error(&format!("{dir}: contains no scenario envelopes to report on"));
    }
    // Section metadata for generated `gen:<lattice>:<cell>` scenarios is
    // synthesized from their names, so lattice exports report with titles
    // and paper notes just like the static registry.
    let mut sections = report_sections();
    sections.extend(run.scenarios.keys().filter_map(|name| grammar::report_section(name)));
    let summary = RunSummary::new(&run, &sections);
    let body = if json {
        format!("{}\n", verified_json(summary.to_record()))
    } else {
        summary.to_markdown()
    };
    match out_path {
        Some(path) => {
            std::fs::write(&path, body.as_bytes()).unwrap_or_else(|err| {
                runtime_error(&format!("cannot write {}: {err}", path.display()));
            });
            eprintln!("wrote {}", path.display());
        }
        None => print!("{body}"),
    }
    std::process::exit(0);
}

/// `harness verify [--quick] [--inject DEFECT] [--format text|json]
/// [--out FILE]` — never returns.
///
/// Statically proves the canary invariants over every workload × scheme ×
/// deployment × opt-level cell and exits 1 on any finding, so CI can gate
/// on a clean
/// toolchain.  `--inject DEFECT` verifies a deliberately broken program
/// instead — the negative control that must exit 1.
fn run_verify_command(args: &[String]) -> ! {
    let mut quick = false;
    let mut inject: Option<InjectedDefect> = None;
    let mut json = false;
    let mut out_path: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--inject" => {
                let Some(value) = iter.next() else {
                    usage_error("verify: --inject requires a defect label");
                };
                inject = Some(InjectedDefect::from_label(value).unwrap_or_else(|| {
                    let labels: Vec<_> =
                        InjectedDefect::ALL.iter().map(InjectedDefect::label).collect();
                    usage_error(&format!(
                        "verify: unknown defect `{value}` (expected one of: {})",
                        labels.join(", ")
                    ))
                }));
            }
            "--format" => {
                let Some(value) = iter.next() else {
                    usage_error("verify: --format requires a value (text or json)");
                };
                json = match value.as_str() {
                    "text" => false,
                    "json" => true,
                    other => usage_error(&format!(
                        "verify: invalid --format value `{other}` (expected text or json)"
                    )),
                };
            }
            "--out" => {
                let Some(value) = iter.next() else {
                    usage_error("verify: --out requires a file path");
                };
                out_path = Some(PathBuf::from(value));
            }
            other => usage_error(&format!("verify: unexpected argument `{other}`")),
        }
    }

    let report = match inject {
        Some(defect) => run_inject(defect),
        None => run_verify(quick),
    };
    let body = if json {
        format!("{}\n", verified_json(report.envelope(quick)))
    } else {
        report.render_text()
    };
    match out_path {
        Some(path) => {
            std::fs::write(&path, body.as_bytes()).unwrap_or_else(|err| {
                runtime_error(&format!("cannot write {}: {err}", path.display()));
            });
            eprintln!("wrote {}", path.display());
        }
        None => print!("{body}"),
    }
    std::process::exit(i32::from(!report.is_clean()));
}

/// One scenario's wall-time record for `--timings` — the perf-trajectory
/// baseline later runs diff against.
fn scenario_timing(
    experiment: &dyn Experiment,
    ctx: &ExperimentCtx,
    started: Instant,
    records: usize,
) -> Record {
    Record::new()
        .field("schema_version", SCHEMA_VERSION)
        .field("scenario", experiment.name())
        .field("wall_ms", started.elapsed().as_secs_f64() * 1_000.0)
        .field("records", records)
        .field("seed", ctx.seed)
        .field("quick", ctx.quick)
}
