//! Command-line harness printing every registered scenario of the engine.
//!
//! ```text
//! cargo run -p polycanary-bench --bin harness -- all
//! cargo run -p polycanary-bench --bin harness -- table1 fig5 table5
//! cargo run -p polycanary-bench --bin harness -- --seed 7 --workers 4 effectiveness
//! cargo run -p polycanary-bench --bin harness -- --format json --out results all
//! cargo run -p polycanary-bench --bin harness -- --quick --timings BENCH_scenarios.json all
//! ```
//!
//! Everything scenario-specific — the usage text, name validation, dispatch
//! and the export loop — derives from the scenario registry
//! (`polycanary_bench::experiments::registry`); this file knows no
//! experiment by name.  Scenarios render as plain text (default), as
//! self-describing JSON envelopes (schema version, scenario name, full
//! context, records) or as bare CSV rows via `--format json|csv`; every
//! JSON payload is re-parsed through the workspace JSON parser before it
//! is emitted, so a malformed export can never leave the process.

use std::path::PathBuf;
use std::time::Instant;

use polycanary_bench::experiments::{registry, Experiment, ExperimentCtx, ExportFormat};
use polycanary_core::record::{
    export_envelope, records_to_csv, records_to_json, Record, SCHEMA_VERSION,
};

fn print_usage() {
    eprintln!(
        "usage: harness [--seed N] [--quick] [--adaptive] [--workers N] \
         [--format text|json|csv] [--out DIR] [--timings FILE] [--list] <scenario>..."
    );
    eprintln!("scenarios (or `all`):");
    for experiment in registry() {
        let aliases = if experiment.aliases().is_empty() {
            String::new()
        } else {
            format!(" (alias: {})", experiment.aliases().join(", "))
        };
        eprintln!("  {:<14} {}{aliases}", experiment.name(), experiment.description());
    }
    eprintln!(
        "--quick       smaller workloads and campaigns (CI-sized)\n\
         --adaptive    stop single-rule campaigns once their verdict settles\n\
         --workers N   cap the worker-thread budget (results never change)\n\
         --format      text (default), json (self-describing envelopes) or csv (bare records)\n\
         --out DIR     write one <scenario>.<ext> file per scenario to DIR\n\
         --timings FILE  also write per-scenario wall times as JSON records\n\
         --list        print `name<TAB>title` per scenario and exit"
    );
}

/// Invalid command line: report, print usage, exit 2.
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    print_usage();
    std::process::exit(2);
}

/// Runtime failure after a valid invocation (e.g. an unwritable `--out`
/// directory): report and exit 1, without the usage spam.
fn runtime_error(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut ctx = ExperimentCtx::new(0x00DD_5EED);
    let mut out_dir: Option<PathBuf> = None;
    let mut timings_path: Option<PathBuf> = None;
    let mut selected = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(value) = iter.next() else {
                    usage_error("--seed requires a value");
                };
                ctx.seed = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --seed value `{value}`")));
            }
            "--quick" => ctx = ctx.quick(),
            "--adaptive" => ctx = ctx.adaptive(),
            "--workers" => {
                let Some(value) = iter.next() else {
                    usage_error("--workers requires a value");
                };
                let workers: usize = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --workers value `{value}`")));
                ctx = ctx.with_workers(workers.max(1));
            }
            "--format" => {
                let Some(value) = iter.next() else {
                    usage_error("--format requires a value (text, json or csv)");
                };
                ctx.format = match value.as_str() {
                    "text" => ExportFormat::Text,
                    "json" => ExportFormat::Json,
                    "csv" => ExportFormat::Csv,
                    other => usage_error(&format!(
                        "invalid --format value `{other}` (expected text, json or csv)"
                    )),
                };
            }
            "--out" => {
                let Some(value) = iter.next() else {
                    usage_error("--out requires a directory path");
                };
                out_dir = Some(PathBuf::from(value));
            }
            "--timings" => {
                let Some(value) = iter.next() else {
                    usage_error("--timings requires a file path");
                };
                timings_path = Some(PathBuf::from(value));
            }
            "--list" => {
                for experiment in registry() {
                    println!("{}\t{}", experiment.name(), experiment.title());
                }
                return;
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("--") => {
                usage_error(&format!("unknown flag `{other}`"));
            }
            other => selected.push(other.to_string()),
        }
    }

    if selected.is_empty() {
        usage_error("no scenario selected");
    }

    let catalogue = registry();

    // Resolve aliases and reject unknown scenario names outright — a typo
    // must not silently drop one table from an otherwise valid selection.
    let resolve = |name: &str| -> Option<&'static str> {
        catalogue.iter().find(|e| e.name() == name || e.aliases().contains(&name)).map(|e| e.name())
    };
    let unknown: Vec<&str> = selected
        .iter()
        .map(String::as_str)
        .filter(|name| *name != "all" && resolve(name).is_none())
        .collect();
    if !unknown.is_empty() {
        usage_error(&format!("unknown scenario(s): {}", unknown.join(", ")));
    }

    let all = selected.iter().any(|e| e == "all");
    let wants = |name: &str| all || selected.iter().any(|e| resolve(e) == Some(name));

    // A CSV stream is only parseable with one header row, so CSV on stdout
    // is restricted to a single scenario; multi-scenario CSV sweeps go
    // through --out (one file per scenario).
    let selection_count = catalogue.iter().filter(|e| wants(e.name())).count();
    if ctx.format == ExportFormat::Csv && out_dir.is_none() && selection_count > 1 {
        usage_error("--format csv with multiple scenarios requires --out DIR");
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|err| {
            runtime_error(&format!("cannot create --out directory {}: {err}", dir.display()));
        });
    }

    // Run and emit each selected scenario; stdout JSON is collected into
    // one parseable array over the whole selection.
    let mut json_stream: Vec<String> = Vec::new();
    let mut timings: Vec<Record> = Vec::new();
    for experiment in catalogue.iter().filter(|e| wants(e.name())) {
        let started = Instant::now();
        let output = experiment.run(&ctx);
        timings.push(scenario_timing(experiment.as_ref(), &ctx, started, output.records.len()));
        let body = match ctx.format {
            ExportFormat::Text => format!("== {} ==\n{}", experiment.title(), output.text),
            ExportFormat::Json => {
                verified_json(export_envelope(experiment.name(), ctx.record(), output.records))
            }
            ExportFormat::Csv => records_to_csv(&output.records),
        };
        match &out_dir {
            Some(dir) => {
                let path = dir.join(format!("{}.{}", experiment.name(), ctx.format.extension()));
                std::fs::write(&path, body.as_bytes()).unwrap_or_else(|err| {
                    runtime_error(&format!("cannot write {}: {err}", path.display()));
                });
                eprintln!("wrote {}", path.display());
            }
            None => match ctx.format {
                ExportFormat::Text => println!("{body}"),
                ExportFormat::Json => json_stream.push(body),
                // Single scenario (enforced above): bare, parseable CSV.
                ExportFormat::Csv => print!("{body}"),
            },
        }
    }
    if out_dir.is_none() && ctx.format == ExportFormat::Json {
        println!("[{}]", json_stream.join(","));
    }

    if let Some(path) = timings_path {
        let body = records_to_json(&timings);
        std::fs::write(&path, body.as_bytes()).unwrap_or_else(|err| {
            runtime_error(&format!("cannot write {}: {err}", path.display()));
        });
        eprintln!("wrote {}", path.display());
    }
}

/// Serializes `envelope` and re-parses it through the workspace JSON parser
/// before handing it out — exports are verified, never trusted.
fn verified_json(envelope: Record) -> String {
    let body = envelope.to_json();
    if let Err(err) = Record::from_json(&body) {
        runtime_error(&format!("export failed its own re-parse: {err}"));
    }
    body
}

/// One scenario's wall-time record for `--timings` — the perf-trajectory
/// baseline later runs diff against.
fn scenario_timing(
    experiment: &dyn Experiment,
    ctx: &ExperimentCtx,
    started: Instant,
    records: usize,
) -> Record {
    Record::new()
        .field("schema_version", SCHEMA_VERSION)
        .field("scenario", experiment.name())
        .field("wall_ms", started.elapsed().as_secs_f64() * 1_000.0)
        .field("records", records)
        .field("seed", ctx.seed)
        .field("quick", ctx.quick)
}
