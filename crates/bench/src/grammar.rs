//! The scenario grammar: scheme × deployment × attack lattices as
//! first-class experiments.
//!
//! The static registry reproduces the paper's tables one hand-written
//! scenario at a time.  This module closes the coverage gap between those
//! eleven scenarios and the full configuration space the engine supports:
//! a small composable grammar whose sentences are *experiment cells*.
//!
//! * A [`Frag`] is a partial cell — any subset of the grammar's axes
//!   (scheme, deployment vehicle, buffer size, attack strategy, stop rule,
//!   generated victim program, rollout shape, fork-canary-policy
//!   constraint).
//! * A [`ScenarioSet`] is a list of frags with the usual combinators:
//!   per-axis constructors, [`ScenarioSet::cross`] (the row-major product;
//!   panics on axis conflicts and is associative, so lattice definitions
//!   can parenthesize freely), [`ScenarioSet::filter`] and the
//!   deterministic [`ScenarioSet::sample`].
//! * [`ScenarioSet::cells`] materializes frags into concrete [`Cell`]s by
//!   filling unset axes with the registry defaults and dropping
//!   ill-formed combinations (the binary rewriter only ships
//!   [`SchemeKind::PsspBin32`]).
//! * A [`Lattice`] is a named, seeded preset ([`lattices`]); every cell of
//!   a selected lattice registers as an ordinary
//!   [`Experiment`] named `gen:<lattice>:<cell>` through
//!   [`generated_experiments`] — the one dynamic registration path behind
//!   `harness --lattice NAME --gen-seed N` — and flows through listing,
//!   JSON/CSV export, `harness diff` and `harness report` exactly like the
//!   static scenarios.
//!
//! Determinism contract: enumeration order, sampling and every cell's
//! records are a pure function of `(lattice, gen_seed, ExperimentCtx)` —
//! the generator test battery pins byte-identical exports across worker
//! counts and `cross` reassociations.

use std::fmt::Write as _;

use polycanary_attacks::campaign::{AttackKind, Campaign, StopRule};
use polycanary_attacks::population::{Population, PopulationMember, RolloutCurve};
use polycanary_attacks::victim::Deployment;
use polycanary_core::record::Record;
use polycanary_core::scheme::{ForkCanaryPolicy, SchemeKind};

use crate::experiments::{
    effectiveness_deployment, format_campaign_cell, Experiment, ExperimentCtx, ScenarioOutput,
    EFFECTIVENESS_SCHEMES,
};

/// Attack axis of the grammar, naming the three §VI-C strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenAttack {
    /// Byte-by-byte guessing against a forking server.
    ByteByByte,
    /// Exhaustive whole-canary guessing under a bounded budget.
    Exhaustive,
    /// Disclose a canary, reconnect, and replay it.
    Reconnect,
}

impl GenAttack {
    /// Slug used in generated scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            GenAttack::ByteByByte => "bbb",
            GenAttack::Exhaustive => "exh",
            GenAttack::Reconnect => "reuse",
        }
    }

    /// The campaign-engine attack this axis value runs, budgeted from the
    /// experiment context like the static effectiveness scenario.
    pub fn kind(&self, ctx: &ExperimentCtx) -> AttackKind {
        match self {
            GenAttack::ByteByByte => AttackKind::ByteByByte { budget: ctx.byte_budget },
            GenAttack::Exhaustive => AttackKind::Exhaustive { budget: 500 },
            GenAttack::Reconnect => AttackKind::Reuse,
        }
    }
}

/// Stop-rule axis of the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenStop {
    /// Run every victim seed to completion.
    Exhaustive,
    /// Stop when the Wilson interval clears 50 %.
    Wilson,
    /// Wald's sequential probability-ratio test.
    Sprt,
}

impl GenStop {
    /// Slug used in generated scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            GenStop::Exhaustive => "exhaustive",
            GenStop::Wilson => "wilson",
            GenStop::Sprt => "sprt",
        }
    }

    /// The campaign stop rule this axis value selects.
    pub fn rule(&self) -> StopRule {
        match self {
            GenStop::Exhaustive => StopRule::Exhaustive,
            GenStop::Wilson => StopRule::settled(),
            GenStop::Sprt => StopRule::sprt(),
        }
    }
}

/// Rollout axis: how a two-member patched-vs-legacy [`Population`] is
/// reweighted over campaign batches ([`RolloutCurve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutShape {
    /// A flat 50/50 mix for the whole campaign — the SPRT indifference
    /// region's worst case.
    Flat,
    /// A steep rollout: the patched scheme dominates early and takes the
    /// whole fleet by the final stage.
    Steep,
}

impl RolloutShape {
    /// Slug used in generated scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            RolloutShape::Flat => "flat",
            RolloutShape::Steep => "steep",
        }
    }

    /// The curve over a two-member `[patched, legacy]` population, staged
    /// in `batch`-sized victim batches.
    pub fn curve(&self, batch: usize) -> RolloutCurve {
        match self {
            RolloutShape::Flat => RolloutCurve::new(batch, vec![vec![1, 1]]),
            RolloutShape::Steep => {
                RolloutCurve::new(batch, vec![vec![4, 1], vec![8, 1], vec![1, 0]])
            }
        }
    }
}

/// One concrete point of the lattice: every axis resolved.  A cell is the
/// complete configuration of one generated experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Protection scheme of the victim fleet.
    pub scheme: SchemeKind,
    /// Deployment vehicle (compiler plugin or binary rewriter).
    pub deployment: Deployment,
    /// Vulnerable stack-buffer size in bytes.
    pub buffer_size: u32,
    /// Attack strategy campaigned against the cell.
    pub attack: GenAttack,
    /// Campaign stop rule.
    pub stop: GenStop,
    /// Victim-program generator id (`0` = the canonical module).
    pub program: u64,
    /// When set, the campaign runs against a two-member patched-vs-legacy
    /// population reweighted by this rollout shape.
    pub rollout: Option<RolloutShape>,
}

/// Scheme slug used in generated scenario names.
fn scheme_slug(scheme: SchemeKind) -> &'static str {
    match scheme {
        SchemeKind::Native => "native",
        SchemeKind::Ssp => "ssp",
        SchemeKind::RafSsp => "raf-ssp",
        SchemeKind::DynaGuard => "dynaguard",
        SchemeKind::Dcr => "dcr",
        SchemeKind::Pssp => "pssp",
        SchemeKind::PsspNt => "pssp-nt",
        SchemeKind::PsspLv => "pssp-lv",
        SchemeKind::PsspOwf => "pssp-owf",
        SchemeKind::PsspBin32 => "pssp-bin32",
        // `SchemeKind` is non-exhaustive; lattices only name the variants
        // above, so this arm is unreachable from any preset.
        _ => "scheme",
    }
}

/// Deployment slug used in generated scenario names.
fn deployment_slug(deployment: Deployment) -> &'static str {
    match deployment {
        Deployment::Compiler => "cc",
        Deployment::BinaryRewriter => "rw",
    }
}

impl Cell {
    /// The cell's stable name fragment — the `<cell>` part of
    /// `gen:<lattice>:<cell>`.  Every axis appears, so two distinct cells
    /// can never collide.
    pub fn slug(&self) -> String {
        let mut slug = format!(
            "{}-{}-b{}-{}-{}-p{:x}",
            scheme_slug(self.scheme),
            deployment_slug(self.deployment),
            self.buffer_size,
            self.attack.label(),
            self.stop.label(),
            self.program
        );
        if let Some(shape) = self.rollout {
            let _ = write!(slug, "-{}", shape.label());
        }
        slug
    }

    /// The fork-canary policy the cell's runtime scheme implies.
    pub fn fork_policy(&self) -> ForkCanaryPolicy {
        self.runtime_scheme().fork_canary_policy()
    }

    /// The scheme governing the deployed binary: the rewriter always ships
    /// [`SchemeKind::PsspBin32`].
    pub fn runtime_scheme(&self) -> SchemeKind {
        match self.deployment {
            Deployment::Compiler => self.scheme,
            Deployment::BinaryRewriter => SchemeKind::PsspBin32,
        }
    }

    /// The self-describing record form of the cell — embedded in the
    /// export envelope's ctx so `harness diff` classifies cell-axis
    /// changes as configuration divergence.
    pub fn record(&self) -> Record {
        let mut rec = Record::new()
            .field("scheme", self.scheme.name())
            .field("deployment", self.deployment.label())
            .field("buffer_size", self.buffer_size)
            .field("attack", self.attack.label())
            .field("stop", self.stop.label())
            .field("program", self.program)
            .field("fork_policy", self.fork_policy().label());
        if let Some(shape) = self.rollout {
            rec.push("rollout", shape.label());
        }
        rec
    }
}

/// A partial cell: any subset of the grammar's axes, plus an optional
/// fork-canary-policy constraint.  Frags merge when crossed; a fully
/// unset frag materializes as the registry-default cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frag {
    scheme: Option<SchemeKind>,
    deployment: Option<Deployment>,
    buffer_size: Option<u32>,
    attack: Option<GenAttack>,
    stop: Option<GenStop>,
    program: Option<u64>,
    rollout: Option<RolloutShape>,
    policy: Option<ForkCanaryPolicy>,
}

impl Frag {
    /// Merges two frags; panics when both set the same axis (a `cross` of
    /// two sets sharing an axis is a lattice-definition bug, not data).
    fn merge(&self, other: &Frag) -> Frag {
        fn pick<T: Copy>(axis: &'static str, a: Option<T>, b: Option<T>) -> Option<T> {
            assert!(
                a.is_none() || b.is_none(),
                "grammar axis `{axis}` is set on both sides of a cross"
            );
            a.or(b)
        }
        Frag {
            scheme: pick("scheme", self.scheme, other.scheme),
            deployment: pick("deployment", self.deployment, other.deployment),
            buffer_size: pick("buffer_size", self.buffer_size, other.buffer_size),
            attack: pick("attack", self.attack, other.attack),
            stop: pick("stop", self.stop, other.stop),
            program: pick("program", self.program, other.program),
            rollout: pick("rollout", self.rollout, other.rollout),
            policy: pick("policy", self.policy, other.policy),
        }
    }

    /// Materializes the frag with registry defaults: P-SSP, the §VI-C
    /// deployment of the scheme, a 64-byte buffer, the byte-by-byte
    /// attack, the SPRT stop rule and the canonical victim program.
    fn cell(&self) -> Cell {
        let scheme = self.scheme.unwrap_or(SchemeKind::Pssp);
        Cell {
            scheme,
            deployment: self.deployment.unwrap_or_else(|| effectiveness_deployment(scheme)),
            buffer_size: self.buffer_size.unwrap_or(64),
            attack: self.attack.unwrap_or(GenAttack::ByteByByte),
            stop: self.stop.unwrap_or(GenStop::Sprt),
            program: self.program.unwrap_or(0),
            rollout: self.rollout,
        }
    }

    /// Whether the materialized cell is buildable and satisfies the frag's
    /// policy constraint: the binary rewriter only ships
    /// [`SchemeKind::PsspBin32`], and a policy axis keeps only cells whose
    /// runtime scheme implies that fork-canary policy.
    fn well_formed(&self) -> bool {
        let cell = self.cell();
        if cell.deployment == Deployment::BinaryRewriter && cell.scheme != SchemeKind::PsspBin32 {
            return false;
        }
        self.policy.is_none_or(|policy| cell.fork_policy() == policy)
    }
}

/// A set of [`Frag`]s under construction: the grammar's sentence type.
/// Constructors introduce one axis each; [`ScenarioSet::cross`] takes
/// products; [`ScenarioSet::cells`] materializes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioSet {
    frags: Vec<Frag>,
}

/// Builds a one-axis [`ScenarioSet`].
fn axis<T: Copy>(values: &[T], set: impl Fn(&mut Frag, T)) -> ScenarioSet {
    let frags = values
        .iter()
        .map(|&value| {
            let mut frag = Frag::default();
            set(&mut frag, value);
            frag
        })
        .collect();
    ScenarioSet { frags }
}

impl ScenarioSet {
    /// One frag per scheme.
    pub fn schemes(values: &[SchemeKind]) -> Self {
        axis(values, |f, v| f.scheme = Some(v))
    }

    /// One frag per deployment vehicle.
    pub fn deployments(values: &[Deployment]) -> Self {
        axis(values, |f, v| f.deployment = Some(v))
    }

    /// One frag per buffer size.
    pub fn buffer_sizes(values: &[u32]) -> Self {
        axis(values, |f, v| f.buffer_size = Some(v))
    }

    /// One frag per attack strategy.
    pub fn attacks(values: &[GenAttack]) -> Self {
        axis(values, |f, v| f.attack = Some(v))
    }

    /// One frag per stop rule.
    pub fn stops(values: &[GenStop]) -> Self {
        axis(values, |f, v| f.stop = Some(v))
    }

    /// One frag per generated victim program (`0` = canonical module).
    pub fn programs(values: &[u64]) -> Self {
        axis(values, |f, v| f.program = Some(v))
    }

    /// One frag per rollout shape.
    pub fn rollouts(values: &[RolloutShape]) -> Self {
        axis(values, |f, v| f.rollout = Some(v))
    }

    /// One frag per fork-canary-policy constraint — crossed with schemes,
    /// it keeps only the cells whose runtime scheme implies the policy.
    pub fn policies(values: &[ForkCanaryPolicy]) -> Self {
        axis(values, |f, v| f.policy = Some(v))
    }

    /// The row-major product: every frag of `self` merged with every frag
    /// of `other`, `self`'s order outermost.  Associative — `(A × B) × C`
    /// enumerates the same frags in the same order as `A × (B × C)` — so
    /// [`ScenarioSet::sample`] is stable under reassociation.
    ///
    /// # Panics
    ///
    /// Panics when the two sides share an axis.
    #[must_use]
    pub fn cross(self, other: ScenarioSet) -> Self {
        let frags =
            self.frags.iter().flat_map(|a| other.frags.iter().map(|b| a.merge(b))).collect();
        ScenarioSet { frags }
    }

    /// Keeps the frags whose materialized [`Cell`] satisfies `pred`.
    #[must_use]
    pub fn filter(self, pred: impl Fn(&Cell) -> bool) -> Self {
        let frags = self.frags.into_iter().filter(|f| pred(&f.cell())).collect();
        ScenarioSet { frags }
    }

    /// A deterministic `n`-element subsample: indices are drawn by a
    /// seeded partial Fisher–Yates shuffle, then sorted ascending, so the
    /// survivors keep their enumeration order.  Because [`cross`] is
    /// associative, the same `(seed, n)` selects the same cells however
    /// the product was parenthesized.
    ///
    /// [`cross`]: ScenarioSet::cross
    #[must_use]
    pub fn sample(self, seed: u64, n: usize) -> Self {
        if n >= self.frags.len() {
            return self;
        }
        let mut rng = SplitMix(seed ^ 0x5CE7_A1B0_5EED_C0DE);
        let mut indices: Vec<usize> = (0..self.frags.len()).collect();
        for slot in 0..n {
            let pick = slot + rng.below((indices.len() - slot) as u64) as usize;
            indices.swap(slot, pick);
        }
        let mut keep = indices[..n].to_vec();
        keep.sort_unstable();
        let frags = keep.into_iter().map(|i| self.frags[i].clone()).collect();
        ScenarioSet { frags }
    }

    /// Number of frags (before well-formedness filtering).
    pub fn len(&self) -> usize {
        self.frags.len()
    }

    /// Whether the set holds no frags.
    pub fn is_empty(&self) -> bool {
        self.frags.is_empty()
    }

    /// Materializes every frag into a concrete [`Cell`], filling unset
    /// axes with the registry defaults and dropping ill-formed
    /// combinations (the binary rewriter only ships
    /// [`SchemeKind::PsspBin32`], and policy-constrained frags must match
    /// their runtime scheme's fork-canary policy).
    pub fn cells(&self) -> Vec<Cell> {
        self.frags.iter().filter(|f| f.well_formed()).map(Frag::cell).collect()
    }
}

/// The grammar's own deterministic PRNG (SplitMix64) — seeds sampling and
/// generated-program ids without touching the campaign engine's streams.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A named lattice preset: a seeded [`ScenarioSet`] recipe plus the
/// metadata its generated report sections share.
pub struct Lattice {
    name: &'static str,
    description: &'static str,
    paper_note: &'static str,
    build: fn(u64) -> ScenarioSet,
}

impl Lattice {
    /// The CLI name (`--lattice NAME`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description, shared by every generated section.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The paper annotation the lattice's cells check against.
    pub fn paper_note(&self) -> &'static str {
        self.paper_note
    }

    /// The lattice's scenario set for a generator seed.
    pub fn set(&self, gen_seed: u64) -> ScenarioSet {
        (self.build)(gen_seed)
    }

    /// The lattice's materialized cells for a generator seed.
    pub fn cells(&self, gen_seed: u64) -> Vec<Cell> {
        self.set(gen_seed).cells()
    }
}

/// The `smoke` lattice: three representative schemes (classic SSP, the
/// paper's P-SSP, the binary-rewriter deployment) × the canonical victim
/// and one grammar-generated victim program — six cells, CI-sized.
fn smoke_set(gen_seed: u64) -> ScenarioSet {
    let generated_program = SplitMix(gen_seed).next() | 1;
    ScenarioSet::schemes(&[SchemeKind::Ssp, SchemeKind::Pssp, SchemeKind::PsspBin32])
        .cross(ScenarioSet::programs(&[0, generated_program]))
}

/// The `matrix` lattice: the full §VI-C scheme roster × three buffer
/// sizes × two attacks × two sequential stop rules — 60 cells.
fn matrix_set(_gen_seed: u64) -> ScenarioSet {
    ScenarioSet::schemes(EFFECTIVENESS_SCHEMES)
        .cross(ScenarioSet::buffer_sizes(&[32, 64, 128]))
        .cross(ScenarioSet::attacks(&[GenAttack::ByteByByte, GenAttack::Exhaustive]))
        .cross(ScenarioSet::stops(&[GenStop::Wilson, GenStop::Sprt]))
}

/// The `rollout` lattice: patched-vs-legacy populations under flat and
/// steep [`RolloutCurve`]s, SPRT-stopped — the power-analysis cells.
fn rollout_set(_gen_seed: u64) -> ScenarioSet {
    ScenarioSet::schemes(&[SchemeKind::Pssp, SchemeKind::PsspOwf])
        .cross(ScenarioSet::rollouts(&[RolloutShape::Flat, RolloutShape::Steep]))
}

/// Every named lattice, in canonical order.
pub fn lattices() -> &'static [Lattice] {
    &[
        Lattice {
            name: "smoke",
            description: "CI-sized generator smoke lattice: {SSP, P-SSP, binary-rewriter} \
                          x {canonical, generated} victim programs",
            paper_note: "the generated cells replay \u{a7}VI-C in miniature: SSP falls to \
                         byte-by-byte guessing in every victim program the grammar emits, \
                         the P-SSP cells never do, and the rewriter cells defend the \
                         in-place-upgraded binary the paper measures",
            build: smoke_set,
        },
        Lattice {
            name: "matrix",
            description: "full \u{a7}VI-C scheme roster x buffer sizes {32, 64, 128} x \
                          {byte-by-byte, exhaustive} attacks x {wilson, sprt} stop rules",
            paper_note: "\u{a7}VI-C's verdicts are buffer-size- and stop-rule-invariant: \
                         byte-by-byte breaks exactly the single-canary schemes at \
                         ~8\u{b7}2\u{2077} expected requests regardless of buffer size, and \
                         both sequential rules reach the exhaustive verdicts",
            build: rollout_guarded_matrix,
        },
        Lattice {
            name: "rollout",
            description: "patched-vs-legacy fleets under flat and steep rollout curves, \
                          SPRT-stopped",
            paper_note: "a steep rollout to the patched scheme leaves the SPRT's \
                         indifference region quickly, so campaigns settle with fewer \
                         victims than under a flat 50/50 mix \u{2014} the power analysis \
                         behind fleet-scale deployment monitoring",
            build: rollout_set,
        },
    ]
}

/// `matrix` with its guard spelled out: the product is already
/// well-formed, but the explicit filter documents (and pins) that the
/// lattice never relies on `cells()` dropping rewriter cells silently.
fn rollout_guarded_matrix(gen_seed: u64) -> ScenarioSet {
    matrix_set(gen_seed).filter(|cell| {
        cell.deployment == Deployment::Compiler || cell.scheme == SchemeKind::PsspBin32
    })
}

/// Looks up a lattice by CLI name.
pub fn find_lattice(name: &str) -> Option<&'static Lattice> {
    lattices().iter().find(|l| l.name == name)
}

/// Materializes every cell of the named lattice as a registered
/// [`Experiment`] — the one dynamic registration path
/// (`experiments::registry_with`).
///
/// # Errors
///
/// Returns a message naming the valid lattices when `name` matches none.
pub fn generated_experiments(
    name: &str,
    gen_seed: u64,
) -> Result<Vec<Box<dyn Experiment>>, String> {
    let lattice = find_lattice(name).ok_or_else(|| {
        let valid: Vec<&str> = lattices().iter().map(Lattice::name).collect();
        format!("unknown lattice `{name}` (valid lattices: {})", valid.join(", "))
    })?;
    Ok(lattice
        .cells(gen_seed)
        .into_iter()
        .map(|cell| {
            Box::new(GeneratedExperiment::new(lattice, gen_seed, cell)) as Box<dyn Experiment>
        })
        .collect())
}

/// Synthesizes the report-section metadata for a generated scenario name
/// (`gen:<lattice>:<cell>`), so `harness report` documents generated
/// sections without the run having to carry metadata out of band.
pub fn report_section(name: &str) -> Option<polycanary_analysis::summary::SectionMeta> {
    let rest = name.strip_prefix("gen:")?;
    let (lattice_name, slug) = rest.split_once(':')?;
    let lattice = find_lattice(lattice_name)?;
    Some(polycanary_analysis::summary::SectionMeta {
        name: name.to_string(),
        title: format!("Grammar cell `{slug}` (lattice `{lattice_name}`)"),
        description: lattice.description.to_string(),
        paper_note: lattice.paper_note.to_string(),
    })
}

/// FNV-1a over the scenario name: folded into the context seed so every
/// generated cell campaigns an independent seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One grammar cell registered as an [`Experiment`]: runs a single
/// campaign configured by the cell, named `gen:<lattice>:<cell>`.
pub struct GeneratedExperiment {
    name: String,
    title: String,
    lattice: &'static Lattice,
    gen_seed: u64,
    cell: Cell,
}

impl GeneratedExperiment {
    fn new(lattice: &'static Lattice, gen_seed: u64, cell: Cell) -> Self {
        let name = format!("gen:{}:{}", lattice.name, cell.slug());
        let mut title = format!(
            "Grammar cell: {} via {}, {}-byte buffer, {} / {}",
            cell.scheme.name(),
            cell.deployment.label(),
            cell.buffer_size,
            cell.attack.label(),
            cell.stop.label()
        );
        if let Some(shape) = cell.rollout {
            let _ = write!(title, ", {} rollout", shape.label());
        }
        GeneratedExperiment { name, title, lattice, gen_seed, cell }
    }

    /// The cell this experiment materializes.
    pub fn cell(&self) -> &Cell {
        &self.cell
    }

    /// The campaign this cell configures under `ctx`.  Rollout cells
    /// campaign a two-member patched-vs-legacy population (both members
    /// fully specified, mixing deployments and buffer sizes) reweighted by
    /// the cell's [`RolloutCurve`]; plain cells campaign a uniform fleet.
    fn campaign(&self, ctx: &ExperimentCtx) -> Campaign {
        let attack = self.cell.attack.kind(ctx);
        let seeds = ctx.campaign_seeds.max(1);
        let base = ctx.seed ^ fnv1a(self.name.as_bytes());
        let mut campaign = match self.cell.rollout {
            Some(shape) => {
                let patched = PopulationMember::new(1, self.cell.scheme)
                    .with_deployment(self.cell.deployment)
                    .with_buffer_size(self.cell.buffer_size);
                let legacy = PopulationMember::new(1, SchemeKind::Ssp)
                    .with_deployment(Deployment::Compiler)
                    .with_buffer_size(64);
                let label = format!("rollout-{}-{}", shape.label(), scheme_slug(self.cell.scheme));
                let batch = (seeds / 4).max(1);
                let population = Population::from_members(label, [patched, legacy])
                    .with_rollout(shape.curve(batch));
                Campaign::against(attack, population)
            }
            None => Campaign::new(attack, self.cell.scheme)
                .with_deployment(self.cell.deployment)
                .with_buffer_size(self.cell.buffer_size)
                .with_program(self.cell.program),
        };
        campaign = campaign.with_seed_range(base, seeds).with_stop_rule(self.cell.stop.rule());
        if let Some(workers) = ctx.workers {
            campaign = campaign.with_workers(workers);
        }
        campaign
    }
}

impl Experiment for GeneratedExperiment {
    fn name(&self) -> &str {
        &self.name
    }

    fn title(&self) -> &str {
        &self.title
    }

    fn description(&self) -> &str {
        self.lattice.description
    }

    fn paper_note(&self) -> &str {
        self.lattice.paper_note
    }

    fn export_ctx(&self, ctx: &ExperimentCtx) -> Record {
        ctx.record()
            .field("lattice", self.lattice.name)
            .field("gen_seed", self.gen_seed)
            .field("cell", self.cell.record())
    }

    fn run(&self, ctx: &ExperimentCtx) -> ScenarioOutput {
        let report = self.campaign(ctx).run();
        let text =
            format!("{}\n{:<24} {}\n", self.title, self.cell.slug(), format_campaign_cell(&report));
        let record =
            Record::new().field("cell", self.cell.record()).field("campaign", report.record());
        ScenarioOutput::new(text, vec![record])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_is_row_major_and_fills_defaults() {
        let set = ScenarioSet::schemes(&[SchemeKind::Ssp, SchemeKind::Pssp])
            .cross(ScenarioSet::buffer_sizes(&[32, 64]));
        let cells = set.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells.iter().map(|c| (c.scheme, c.buffer_size)).collect::<Vec<_>>(),
            vec![
                (SchemeKind::Ssp, 32),
                (SchemeKind::Ssp, 64),
                (SchemeKind::Pssp, 32),
                (SchemeKind::Pssp, 64),
            ]
        );
        // Unset axes materialize as the registry defaults.
        for cell in &cells {
            assert_eq!(cell.deployment, Deployment::Compiler);
            assert_eq!(cell.attack, GenAttack::ByteByByte);
            assert_eq!(cell.stop, GenStop::Sprt);
            assert_eq!(cell.program, 0);
            assert_eq!(cell.rollout, None);
        }
        let default_cell = &ScenarioSet { frags: vec![Frag::default()] }.cells()[0];
        assert_eq!(default_cell.scheme, SchemeKind::Pssp);
        assert_eq!(default_cell.buffer_size, 64);
    }

    #[test]
    #[should_panic(expected = "axis `scheme` is set on both sides")]
    fn cross_rejects_axis_conflicts() {
        let _ = ScenarioSet::schemes(&[SchemeKind::Ssp])
            .cross(ScenarioSet::schemes(&[SchemeKind::Pssp]));
    }

    #[test]
    fn cross_is_associative() {
        let a = || ScenarioSet::schemes(&[SchemeKind::Ssp, SchemeKind::Pssp]);
        let b = || ScenarioSet::buffer_sizes(&[32, 64, 128]);
        let c = || ScenarioSet::attacks(&[GenAttack::ByteByByte, GenAttack::Exhaustive]);
        let left = a().cross(b()).cross(c());
        let right = a().cross(b().cross(c()));
        assert_eq!(left, right);
        assert_eq!(left.cells(), right.cells());
    }

    #[test]
    fn sample_is_deterministic_order_stable_and_reassociation_invariant() {
        let a = || ScenarioSet::schemes(EFFECTIVENESS_SCHEMES);
        let b = || ScenarioSet::buffer_sizes(&[32, 64, 128]);
        let c = || ScenarioSet::stops(&[GenStop::Wilson, GenStop::Sprt]);
        let full = a().cross(b()).cross(c()).cells();
        let sampled = a().cross(b()).cross(c()).sample(9, 7).cells();
        assert_eq!(sampled.len(), 7);
        // The sample is a subsequence of the full enumeration (order-stable).
        let mut cursor = full.iter();
        for cell in &sampled {
            assert!(cursor.any(|c| c == cell), "sample must preserve enumeration order");
        }
        // Same seed, same cells — however the product is parenthesized.
        assert_eq!(sampled, a().cross(b().cross(c())).sample(9, 7).cells());
        // A different seed draws a different subsequence.
        assert_ne!(sampled, a().cross(b()).cross(c()).sample(10, 7).cells());
        // Oversampling is the identity.
        assert_eq!(a().sample(3, 99).cells(), a().cells());
    }

    #[test]
    fn filter_and_policy_constrain_cells() {
        let big = ScenarioSet::buffer_sizes(&[32, 64, 128]).filter(|c| c.buffer_size > 32);
        assert_eq!(big.cells().iter().map(|c| c.buffer_size).collect::<Vec<_>>(), vec![64, 128]);
        // The policy axis keeps only schemes implying that fork policy:
        // classic SSP inherits canaries across forks, P-SSP re-randomizes.
        let inherited = ScenarioSet::schemes(&[SchemeKind::Ssp, SchemeKind::Pssp])
            .cross(ScenarioSet::policies(&[ForkCanaryPolicy::Inherited]));
        assert_eq!(
            inherited.cells().iter().map(|c| c.scheme).collect::<Vec<_>>(),
            vec![SchemeKind::Ssp]
        );
    }

    #[test]
    fn ill_formed_rewriter_cells_are_dropped() {
        let set = ScenarioSet::schemes(&[SchemeKind::Pssp, SchemeKind::PsspBin32])
            .cross(ScenarioSet::deployments(&[Deployment::Compiler, Deployment::BinaryRewriter]));
        let cells = set.cells();
        // P-SSP x rewriter is unbuildable (the rewriter ships PsspBin32).
        assert_eq!(cells.len(), 3);
        assert!(cells
            .iter()
            .all(|c| c.deployment == Deployment::Compiler || c.scheme == SchemeKind::PsspBin32));
    }

    #[test]
    fn lattice_presets_enumerate_their_documented_shapes() {
        let names: Vec<&str> = lattices().iter().map(Lattice::name).collect();
        assert_eq!(names, vec!["smoke", "matrix", "rollout"]);
        assert_eq!(find_lattice("smoke").unwrap().cells(7).len(), 6);
        // The acceptance lattice: >= 48 cells, every combination well-formed.
        let matrix = find_lattice("matrix").unwrap().cells(7);
        assert_eq!(matrix.len(), 60);
        assert!(matrix.len() >= 48);
        let rollout = find_lattice("rollout").unwrap().cells(7);
        assert_eq!(rollout.len(), 4);
        assert!(rollout.iter().all(|c| c.rollout.is_some()));
        assert!(find_lattice("no-such-lattice").is_none());
        // Slugs are unique within each lattice (they name the scenarios).
        for lattice in lattices() {
            let mut slugs: Vec<String> = lattice.cells(7).iter().map(Cell::slug).collect();
            let total = slugs.len();
            slugs.sort_unstable();
            slugs.dedup();
            assert_eq!(slugs.len(), total, "duplicate cell slugs in {}", lattice.name());
        }
    }

    #[test]
    fn smoke_lattice_derives_its_generated_program_from_the_gen_seed() {
        let cells_a = find_lattice("smoke").unwrap().cells(7);
        let cells_b = find_lattice("smoke").unwrap().cells(7);
        assert_eq!(cells_a, cells_b, "same gen seed, same cells");
        let cells_c = find_lattice("smoke").unwrap().cells(8);
        assert_ne!(cells_a, cells_c, "the generated victim program follows the gen seed");
        let programs: Vec<u64> = cells_a.iter().map(|c| c.program).filter(|&p| p != 0).collect();
        assert_eq!(programs.len(), 3);
        assert!(programs.iter().all(|&p| p == programs[0]));
    }

    #[test]
    fn generated_experiments_register_namespaced_cells() {
        let experiments = generated_experiments("smoke", 7).unwrap();
        assert_eq!(experiments.len(), 6);
        for experiment in &experiments {
            assert!(experiment.name().starts_with("gen:smoke:"));
            assert!(!experiment.title().is_empty());
            assert!(!experiment.description().is_empty());
            assert!(!experiment.paper_note().is_empty());
            // The export ctx appends the cell so diff sees axis changes as
            // configuration divergence.
            let ctx = ExperimentCtx::new(3).quick();
            let export = experiment.export_ctx(&ctx);
            use polycanary_core::record::Value;
            assert_eq!(export.get("lattice"), Some(&Value::Str("smoke".into())));
            assert!(matches!(export.get("cell"), Some(Value::Record(_))));
        }
        let Err(err) = generated_experiments("bogus", 7) else { panic!("must reject") };
        assert!(err.contains("bogus") && err.contains("smoke") && err.contains("matrix"), "{err}");
    }

    #[test]
    fn report_section_synthesizes_metadata_from_the_name() {
        let meta = report_section("gen:smoke:ssp-cc-b64-bbb-sprt-p0").unwrap();
        assert_eq!(meta.name, "gen:smoke:ssp-cc-b64-bbb-sprt-p0");
        assert!(meta.title.contains("ssp-cc-b64-bbb-sprt-p0"));
        assert!(!meta.paper_note.is_empty());
        assert!(report_section("gen:bogus:cell").is_none());
        assert!(report_section("table1").is_none());
    }

    #[test]
    fn generated_cells_run_deterministic_campaigns() {
        let experiments = generated_experiments("smoke", 7).unwrap();
        let ssp = experiments
            .iter()
            .find(|e| e.name() == "gen:smoke:ssp-cc-b64-bbb-sprt-p0")
            .expect("canonical SSP cell");
        let ctx = ExperimentCtx::new(3).quick().with_campaign_seeds(4).with_byte_budget(3_000);
        let once = ssp.run(&ctx.clone().with_workers(1));
        let twice = ssp.run(&ctx.with_workers(8));
        // Scrub the run-varying fields (wall times, worker counts) the way
        // every export consumer does, then demand byte-identical records.
        let scrubbed = polycanary_analysis::scrub::scrub_all;
        assert_eq!(
            scrubbed(&once.records),
            scrubbed(&twice.records),
            "worker count must not change records"
        );
        use polycanary_core::record::Value;
        let campaign = once.records[0].get("campaign").unwrap();
        let Value::Record(campaign) = campaign else { panic!("nested campaign record") };
        assert_eq!(campaign.get("verdict"), Some(&Value::Str("breaks".into())));
    }
}
