//! §VI-C — effectiveness: the byte-by-byte attack against SSP-compiled and
//! P-SSP-compiled servers (plus the rewritten binary).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_attacks::byte_by_byte::ByteByByteAttack;
use polycanary_attacks::victim::{Deployment, ForkingServer, VictimConfig};
use polycanary_core::scheme::SchemeKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("effectiveness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let campaigns: [(&str, SchemeKind, Deployment, u64); 3] = [
        ("ssp_falls", SchemeKind::Ssp, Deployment::Compiler, 4_000),
        ("pssp_resists", SchemeKind::Pssp, Deployment::Compiler, 2_000),
        ("rewritten_resists", SchemeKind::PsspBin32, Deployment::BinaryRewriter, 2_000),
    ];
    for (label, scheme, deployment, budget) in campaigns {
        group.bench_with_input(
            BenchmarkId::new("byte_by_byte", label),
            &(scheme, deployment, budget),
            |b, &(scheme, deployment, budget)| {
                b.iter(|| {
                    let mut server = ForkingServer::new(
                        VictimConfig::new(scheme, 0xA77A).with_deployment(deployment),
                    );
                    let geometry = server.geometry();
                    ByteByByteAttack::with_budget(budget).run(&mut server, geometry, scheme)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
