//! Table V — CPU cycles spent by the prologue and epilogue of P-SSP and its
//! three extensions (simulated cycles reported by the harness; here we
//! measure the wall-clock cost of executing the instrumented probe).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_bench::experiments::canary_handling_cycles;
use polycanary_compiler::OptLevel;
use polycanary_core::scheme::SchemeKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));

    let configs: [(&str, SchemeKind, u32); 5] = [
        ("P-SSP", SchemeKind::Pssp, 0),
        ("P-SSP-NT", SchemeKind::PsspNt, 0),
        ("P-SSP-LV-2", SchemeKind::PsspLv, 1),
        ("P-SSP-LV-4", SchemeKind::PsspLv, 3),
        ("P-SSP-OWF", SchemeKind::PsspOwf, 0),
    ];
    for (label, scheme, criticals) in configs {
        for opt in [OptLevel::O0, OptLevel::O2] {
            group.bench_with_input(
                BenchmarkId::new(format!("probe/{label}"), opt),
                &(scheme, criticals, opt),
                |b, &(scheme, criticals, opt)| {
                    b.iter(|| canary_handling_cycles(scheme, criticals, opt, 7))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
