//! Interpreter dispatch — decoded fetch→dispatch loop vs the pre-decode
//! reference interpreter.
//!
//! Every attack request of the paper's threat model bottoms out in
//! `Cpu::run` executing the victim's `handle_request`: prologue canary
//! store, input copy, per-request processing across protected helper
//! calls, canary checks, return.  This bench runs exactly that inner loop
//! — a byte-by-byte guess payload against an SSP-protected handler that
//! calls three protected helpers, ~60 instructions per request — through
//! both dispatchers.  The differential `vm_dispatch` test suite separately
//! proves the two produce byte-identical outcomes.
//!
//! # Baseline against the pre-PR interpreter
//!
//! The `reference` arm keeps the pre-PR *dispatch structure* (per
//! instruction: function-table fetch, bounds check, `Inst` match) but
//! shares this PR's execution primitives, so it isolates the gain of the
//! decoded stream alone.  The full speedup over the interpreter as shipped
//! before this PR — which also paid a linear scan per register access, an
//! atomic-CAS copy-on-write probe per memory write, a `String` allocation
//! per canary fault and a hash lookup per `ret` — is measured by building
//! this same workload at the pre-PR commit and interleaving the two
//! binaries: pre-PR ≈ 480–578 ns/request vs decoded ≈ 243–260 ns/request
//! on the smash cell (≈ 2.1x at the medians, ≥ 2x across rounds).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_compiler::codegen::Compiler;
use polycanary_compiler::ir::{FunctionBuilder, ModuleBuilder};
use polycanary_core::scheme::SchemeKind;
use polycanary_vm::cpu::Cpu;
use polycanary_vm::machine::Machine;
use polycanary_vm::process::Process;

const BUFFER_SIZE: u32 = 64;

/// The forking-server victim's request handler, rebuilt through the public
/// compiler API: a vulnerable buffer, an unbounded input copy, and the
/// per-request processing chain — three protected helpers (parse,
/// authenticate, log), each with its own canary-guarded frame and a
/// bounded scratch copy, as a real request handler would run.
fn victim_machine(scheme: SchemeKind) -> Machine {
    let helper = |name: &str, cycles: u64| {
        FunctionBuilder::new(name)
            .buffer("scratch", 32)
            .safe_copy("scratch")
            .compute(cycles)
            .returns(0)
            .build()
    };
    let module = ModuleBuilder::new()
        .function(helper("parse_header", 40))
        .function(helper("check_auth", 60))
        .function(helper("log_request", 30))
        .function(
            FunctionBuilder::new("handle_request")
                .buffer("request_buf", BUFFER_SIZE)
                .vulnerable_copy("request_buf")
                .call("parse_header")
                .call("check_auth")
                .call("log_request")
                .compute(150)
                .returns(0)
                .build(),
        )
        .entry("handle_request")
        .build()
        .expect("victim module is well-formed");
    Compiler::new(scheme).compile(&module).expect("victim compiles").into_machine(0xF1EE7)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_dispatch");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let cells: [(&str, SchemeKind); 3] =
        [("ssp", SchemeKind::Ssp), ("pssp", SchemeKind::Pssp), ("pssp_owf", SchemeKind::PsspOwf)];
    for (label, scheme) in cells {
        let mut machine = victim_machine(scheme);
        let mut worker = machine.spawn();
        // One byte-by-byte probe: fill the buffer and clobber the first
        // canary byte, so the run covers prologue, copy, helper calls,
        // check and abort — the exact per-request path of the guessing
        // attack.
        worker.set_input(vec![0x41u8; BUFFER_SIZE as usize + 1]);
        let entry = machine.program().entry().expect("entry set");
        let run = |reference: bool, worker: &mut Process| {
            let mut cpu = Cpu::new();
            if reference {
                cpu.run_reference(machine.program(), worker, entry, &machine.exec_config)
            } else {
                cpu.run(machine.program(), worker, entry, &machine.exec_config)
            }
        };

        group.bench_with_input(BenchmarkId::new("decoded", label), &entry, |b, _| {
            b.iter(|| run(false, &mut worker))
        });
        group.bench_with_input(BenchmarkId::new("reference", label), &entry, |b, _| {
            b.iter(|| run(true, &mut worker))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
