//! Optimizing pipeline — what the transform passes cost at compile time
//! and buy back at run time.
//!
//! Two groups of cells per scheme:
//!
//! * `compile/*` — full compilation of a call-heavy SPEC-like module at O0
//!   vs O2, measuring the pass pipeline's own overhead (analysis, IR
//!   transforms, instruction transforms including the epilogue strength
//!   reduction).
//! * `run/*` — one complete run of the same module's protected build at O0
//!   vs O2 through the machine, measuring the canary-handling cycles the
//!   optimizer eliminates on the hot call path.
//!
//! The `opt_equivalence` differential suite separately proves the O0 and
//! O2 builds are semantically identical, so the `run` deltas are pure
//! per-call savings.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_compiler::codegen::Compiler;
use polycanary_compiler::ir::ModuleDef;
use polycanary_compiler::OptLevel;
use polycanary_core::scheme::SchemeKind;
use polycanary_workloads::spec_suite;

/// The most call-heavy program of the SPEC-like suite (403.gcc-like):
/// short worker bodies and many calls, so prologue/epilogue work — the
/// optimizer's target — dominates.
fn call_heavy_module() -> ModuleDef {
    spec_suite()[2].module()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_pipeline");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let module = call_heavy_module();
    let cells: [(&str, SchemeKind); 3] =
        [("ssp", SchemeKind::Ssp), ("pssp", SchemeKind::Pssp), ("pssp_owf", SchemeKind::PsspOwf)];
    for (label, scheme) in cells {
        for opt in [OptLevel::O0, OptLevel::O2] {
            group.bench_with_input(
                BenchmarkId::new(format!("compile/{label}"), opt),
                &opt,
                |b, &opt| {
                    b.iter(|| {
                        Compiler::new(scheme)
                            .with_opt_level(opt)
                            .compile(&module)
                            .expect("module compiles")
                    })
                },
            );

            let compiled = Compiler::new(scheme)
                .with_opt_level(opt)
                .compile(&module)
                .expect("module compiles");
            let mut machine = compiled.into_machine(0xF1EE7);
            let mut worker = machine.spawn();
            worker.set_input(vec![0x5Au8; 16]);
            group.bench_with_input(BenchmarkId::new(format!("run/{label}"), opt), &opt, |b, _| {
                b.iter(|| {
                    let mut process = worker.clone();
                    machine.run(&mut process).expect("module runs")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
