//! Table III — web-server mean response time under the three builds.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_workloads::build::Build;
use polycanary_workloads::webserver::{benchmark_server, LoadConfig, ServerModel};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    let config = LoadConfig { requests: 50, concurrency: 25, seed: 7 };
    for server in [ServerModel::ApacheLike, ServerModel::NginxLike] {
        for build in Build::figure5_builds() {
            group.bench_with_input(
                BenchmarkId::new(server.name(), build.label()),
                &(server, build),
                |b, &(server, build)| b.iter(|| benchmark_server(server, build, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
