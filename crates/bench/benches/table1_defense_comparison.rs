//! Table I — comparison of brute-force-attack defence tools.
//!
//! Measures the wall-clock cost of the full comparison (attack campaigns,
//! fork-return correctness check and SPEC-subset overhead) and, separately,
//! the per-request cost of a worker under each defence.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_attacks::victim::{ForkingServer, VictimConfig};
use polycanary_bench::experiments as exp;
use polycanary_core::scheme::SchemeKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    let ctx = exp::ExperimentCtx::new(7).with_spec_programs(2);
    group.bench_function("full_comparison", |b| b.iter(|| exp::run_table1(&ctx)));

    for scheme in [
        SchemeKind::Ssp,
        SchemeKind::RafSsp,
        SchemeKind::DynaGuard,
        SchemeKind::Dcr,
        SchemeKind::Pssp,
    ] {
        group.bench_with_input(
            BenchmarkId::new("request_under", scheme.name()),
            &scheme,
            |b, &scheme| {
                let mut server = ForkingServer::new(VictimConfig::new(scheme, 7));
                b.iter(|| server.serve(b"GET /index.html HTTP/1.1"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
