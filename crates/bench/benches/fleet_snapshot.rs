//! Fleet engine — snapshot-boot vs from-scratch victim construction.
//!
//! The whole point of the snapshot layer is that booting the Nth server of
//! a configuration skips the compile/rewrite pipeline: `restore` should
//! beat `rebuild` by a wide margin on every deployment vehicle.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_attacks::snapshot::{VictimKey, VictimSnapshot};
use polycanary_attacks::victim::{Deployment, ForkingServer, VictimConfig};
use polycanary_core::scheme::SchemeKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_snapshot");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let cells: [(&str, SchemeKind, Deployment); 3] = [
        ("ssp_compiler", SchemeKind::Ssp, Deployment::Compiler),
        ("pssp_compiler", SchemeKind::Pssp, Deployment::Compiler),
        ("pssp_rewriter", SchemeKind::PsspBin32, Deployment::BinaryRewriter),
    ];
    for (label, scheme, deployment) in cells {
        let config = VictimConfig::new(scheme, 0xF1EE7).with_deployment(deployment);

        // From-scratch path: compile (or rewrite) + boot, per victim.
        group.bench_with_input(BenchmarkId::new("rebuild", label), &config, |b, &config| {
            b.iter(|| ForkingServer::new(config))
        });

        // Snapshot path: the build happens once per configuration; each
        // victim boots from the captured image.
        let snapshot = VictimSnapshot::build(VictimKey::of(&config));
        group.bench_with_input(BenchmarkId::new("restore", label), &snapshot, |b, snapshot| {
            b.iter(|| ForkingServer::from_snapshot(snapshot, 0xF1EE7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
