//! Figure 5 — runtime overhead of P-SSP against native executions on the
//! SPEC-like suite, for both the compiler and the instrumentation deployment.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_bench::experiments as exp;
use polycanary_workloads::build::Build;
use polycanary_workloads::spec::spec_suite;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    // The headline series: print-quality data comes from the harness; here we
    // measure the cost of producing a 6-program slice of the figure.
    let ctx = exp::ExperimentCtx::new(7).with_spec_programs(6);
    group.bench_function("six_program_sweep", |b| b.iter(|| exp::run_fig5(&ctx)));

    // Per-build execution of one call-heavy and one compute-heavy program.
    for program in [spec_suite()[2], spec_suite()[26]] {
        for build in Build::figure5_builds() {
            group.bench_with_input(
                BenchmarkId::new(program.name, build.label()),
                &(program, build),
                |b, &(program, build)| b.iter(|| program.run(build, 7)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
