//! Table II — code expansion rate of the three deployments.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use polycanary_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    let ctx = exp::ExperimentCtx::new(7).with_spec_programs(8);
    group.bench_function("code_expansion_8_programs", |b| b.iter(|| exp::run_table2(&ctx)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
