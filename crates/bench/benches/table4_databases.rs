//! Table IV — database query execution time under the three builds.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_workloads::build::Build;
use polycanary_workloads::database::{benchmark_database, DatabaseModel};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    for engine in [DatabaseModel::MySqlLike, DatabaseModel::SqliteLike] {
        for build in Build::figure5_builds() {
            group.bench_with_input(
                BenchmarkId::new(engine.name(), build.label()),
                &(engine, build),
                |b, &(engine, build)| b.iter(|| benchmark_database(engine, build, 3, 7)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
