//! Ablation over the P-SSP extensions: per-call cost and security properties
//! of P-SSP vs P-SSP-NT vs P-SSP-LV vs P-SSP-OWF (§IV, §VI-B).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polycanary_attacks::reuse::CanaryReuseAttack;
use polycanary_attacks::victim::{ForkingServer, VictimConfig};
use polycanary_bench::experiments as exp;
use polycanary_core::scheme::SchemeKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    let ctx = exp::ExperimentCtx::new(7);
    group.bench_function("full_ablation", |b| b.iter(|| exp::run_ablation(&ctx)));

    for scheme in [SchemeKind::Pssp, SchemeKind::PsspNt, SchemeKind::PsspLv, SchemeKind::PsspOwf] {
        group.bench_with_input(
            BenchmarkId::new("canary_reuse_attack", scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut server = ForkingServer::new(VictimConfig::new(scheme, 0x1EAC));
                    CanaryReuseAttack::default().run(&mut server)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
