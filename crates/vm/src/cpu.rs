//! The CPU interpreter.
//!
//! [`Cpu::run`] executes a finalized [`Program`] against a [`Process`],
//! charging cycle costs per instruction and faulting exactly where a real
//! machine (plus glibc's `__stack_chk_fail`) would: canary mismatches abort
//! the process, unmapped accesses segfault, and a `ret` through a corrupted
//! return address either lands on an invalid address or — when it matches the
//! attacker's chosen target — counts as a successful control-flow hijack.
//!
//! # Dispatch
//!
//! `run` executes the pre-decoded op stream built at
//! [`Program::finalize`](crate::program::Program::finalize) (see
//! `decode` module): one flat fetch→dispatch loop over absolute indices,
//! with no per-instruction function-table lookup or bounds re-check, plus
//! fused superinstructions for the canary prologue and epilogue sequences.
//! [`Cpu::run_reference`] keeps the original one-`Inst`-at-a-time
//! interpreter as the differential oracle: both dispatchers must produce
//! byte-identical [`RunOutcome`]s on every program, which the
//! `vm_dispatch` test suite enforces over PRNG-generated programs and the
//! full scheme × deployment matrix.
//!
//! # Cycle accounting
//!
//! Every executed instruction is charged its static [`Inst::cycles`] base
//! cost by the fetch loop; instructions with data-dependent cost add a
//! *surcharge* on top during execution (`rdrand` retry excess, input-copy
//! per-word cost).  The convention is documented on [`Inst::cycles`]; the
//! totals are pinned by tests in this module so the overhead figures the
//! campaigns report cannot drift silently.

use std::sync::Arc;

use polycanary_crypto::Aes128;

use crate::decode::{DecodedProgram, OpKind};
use crate::error::{Fault, VmError};
use crate::inst::{FuncId, Inst};
use crate::process::Process;
use crate::program::Program;
use crate::reg::{Reg, RegisterFile};
use crate::tls::TLS_DCR_HEAD_OFFSET;

/// Synthetic return address pushed below the entry function; `ret`-ing to it
/// terminates the execution normally.
pub const RETURN_SENTINEL: u64 = 0xFFFF_FFFF_FFFF_FF00;

/// Configuration of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Upper bound on executed instructions (guards against runaway loops).
    pub max_instructions: u64,
    /// The attacker's desired return target.  A `ret` to this address is
    /// reported as [`Fault::ControlFlowHijacked`], i.e. a successful,
    /// undetected attack.
    pub hijack_target: Option<u64>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { max_instructions: 50_000_000, hijack_target: None }
    }
}

/// How an execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exit {
    /// The entry function returned; the payload is the value of `%rax`.
    Normal(u64),
    /// The process faulted.
    Fault(Fault),
}

impl Exit {
    /// Whether the execution completed without a fault.
    pub fn is_normal(&self) -> bool {
        matches!(self, Exit::Normal(_))
    }

    /// Whether the execution ended with the stack protector firing.
    pub fn is_detection(&self) -> bool {
        matches!(self, Exit::Fault(f) if f.is_detection())
    }

    /// Whether the execution ended with a successful control-flow hijack.
    pub fn is_hijack(&self) -> bool {
        matches!(self, Exit::Fault(f) if f.is_hijack())
    }
}

/// Result of one execution: how it ended plus the cost accounting used by
/// every performance experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// How the execution ended.
    pub exit: Exit,
    /// Total simulated cycles consumed.
    pub cycles: u64,
    /// Number of instructions executed.
    pub instructions: u64,
}

/// The CPU state of one execution.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: RegisterFile,
    zero_flag: bool,
    /// Cycles consumed so far.
    pub cycles: u64,
    /// Instructions executed so far.
    pub instructions: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a CPU with zeroed registers.
    pub fn new() -> Self {
        Cpu { regs: RegisterFile::new(), zero_flag: false, cycles: 0, instructions: 0 }
    }

    /// Read access to the register file (useful in tests and hooks).
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable access to the register file (used by startup hooks that park
    /// the P-SSP-OWF key in `r12:r13`).
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Runs `entry` to completion over the pre-decoded op stream.
    ///
    /// The program must be finalized (addresses assigned and the decode
    /// cache built); this is a programming error, not a simulated fault,
    /// hence the panic.
    ///
    /// # Panics
    ///
    /// Panics if the program has not been finalized.
    pub fn run(
        &mut self,
        program: &Program,
        process: &mut Process,
        entry: FuncId,
        cfg: &ExecConfig,
    ) -> Exit {
        assert!(program.is_finalized(), "program must be finalized before execution");
        let decoded = program.decoded().expect("finalized program carries its decode cache");

        self.boot(process);
        if let Err(fault) = self.push_word(process, RETURN_SENTINEL) {
            return Exit::Fault(fault);
        }
        match self.dispatch_cached(program, decoded, process, entry, cfg) {
            Ok(rax) => Exit::Normal(rax),
            Err(fault) => Exit::Fault(fault),
        }
    }

    /// Runs `entry` through the pre-decode reference interpreter: the
    /// original one-`Inst`-at-a-time loop that re-fetches the current
    /// function from the program table on every instruction.
    ///
    /// Kept as the differential oracle for [`Cpu::run`] (the `vm_dispatch`
    /// suite asserts byte-identical [`RunOutcome`]s between the two) and as
    /// the honest baseline for the dispatch benchmarks.  Semantics are
    /// those of the shipped interpreter with this PR's bugfixes applied: an
    /// unresolvable function id faults as [`Fault::UnknownFunction`] (not
    /// `InvalidReturn { addr: 0 }`), and stack-pointer underflow in `push`
    /// faults as [`Fault::StackExhausted`].
    ///
    /// # Panics
    ///
    /// Panics if the program has not been finalized.
    pub fn run_reference(
        &mut self,
        program: &Program,
        process: &mut Process,
        entry: FuncId,
        cfg: &ExecConfig,
    ) -> Exit {
        assert!(program.is_finalized(), "program must be finalized before execution");

        self.boot(process);
        if let Err(fault) = self.push_word(process, RETURN_SENTINEL) {
            return Exit::Fault(fault);
        }

        let mut fid = entry;
        let mut idx = 0usize;

        loop {
            if self.instructions >= cfg.max_instructions {
                return Exit::Fault(Fault::InstructionLimit);
            }
            let func = match program.function(fid) {
                Ok(f) => f,
                Err(_) => return Exit::Fault(Fault::UnknownFunction { id: fid.0 }),
            };
            if idx >= func.insts().len() {
                // Fell off the end of a function without `ret`.
                return Exit::Fault(Fault::InvalidReturn {
                    addr: func.entry_addr() + func.encoded_size(),
                });
            }
            let inst = &func.insts()[idx];
            self.instructions += 1;
            self.cycles += inst.cycles();

            match self.step(program, process, fid, idx, inst, cfg) {
                Ok(Flow::Next) => idx += 1,
                Ok(Flow::Skip(n)) => idx += 1 + n,
                Ok(Flow::Call { target, return_addr }) => {
                    if let Err(fault) = self.push_word(process, return_addr) {
                        return Exit::Fault(fault);
                    }
                    fid = target;
                    idx = 0;
                }
                Ok(Flow::Return) => {
                    let addr = match self.pop_word(process) {
                        Ok(a) => a,
                        Err(fault) => return Exit::Fault(fault),
                    };
                    if addr == RETURN_SENTINEL {
                        return Exit::Normal(self.regs.read(Reg::Rax));
                    }
                    if cfg.hijack_target == Some(addr) {
                        return Exit::Fault(Fault::ControlFlowHijacked { addr });
                    }
                    match program.lookup_addr(addr) {
                        Some((f, i)) => {
                            fid = f;
                            idx = i;
                        }
                        None => return Exit::Fault(Fault::InvalidReturn { addr }),
                    }
                }
                Err(fault) => return Exit::Fault(fault),
            }
        }
    }

    /// Shared startup sequence: loader-provided key registers for
    /// P-SSP-OWF, then the initial stack and frame pointers.
    fn boot(&mut self, process: &Process) {
        if let Some((lo, hi)) = process.owf_key {
            self.regs.write(Reg::R12, lo);
            self.regs.write(Reg::R13, hi);
        }
        self.regs.write(Reg::Rsp, process.memory.stack_top());
        self.regs.write(Reg::Rbp, 0);
    }

    /// The decoded fetch→dispatch loop.  `Ok` carries the final `%rax`.
    ///
    /// Accounting mirrors [`Cpu::run_reference`] exactly: the instruction
    /// limit is checked before an instruction is charged, the
    /// one-past-the-end sentinel faults without charging (the reference
    /// loop's bounds check), and fused superinstructions charge their
    /// components one by one through [`Cpu::charge`] so a limit landing
    /// mid-sequence produces identical counts.
    fn dispatch_cached(
        &mut self,
        program: &Program,
        decoded: &DecodedProgram,
        process: &mut Process,
        entry: FuncId,
        cfg: &ExecConfig,
    ) -> Result<u64, Fault> {
        let mut flat = match decoded.func_start(entry) {
            Some(start) => start as usize,
            None => {
                // The reference loop checks the budget before resolving the
                // function, so an exhausted budget outranks a bad entry id.
                if cfg.max_instructions == 0 {
                    return Err(Fault::InstructionLimit);
                }
                return Err(Fault::UnknownFunction { id: entry.0 });
            }
        };
        let ops = decoded.ops();

        loop {
            if self.instructions >= cfg.max_instructions {
                return Err(Fault::InstructionLimit);
            }
            let op = &ops[flat];
            if let OpKind::FellOffEnd { addr } = op.kind {
                // Fell off (or branched past) the end of a function without
                // `ret`; uncharged, like the reference bounds check.
                return Err(Fault::InvalidReturn { addr });
            }
            self.instructions += 1;
            self.cycles += op.cycles;

            match &op.kind {
                OpKind::Basic(inst) => {
                    self.exec_basic(process, inst)?;
                    flat += 1;
                }
                OpKind::Block { head, len } => {
                    // The head component was charged by the fetch above; the
                    // tail components are the plain ops following this one.
                    self.exec_basic(process, head)?;
                    let tail = &ops[flat + 1..flat + *len as usize];
                    if cfg.max_instructions - self.instructions >= tail.len() as u64 {
                        // The whole block fits in the remaining budget, so no
                        // per-component limit check can fire: charge with
                        // plain adds.
                        for op in tail {
                            self.instructions += 1;
                            self.cycles += op.cycles;
                            let OpKind::Basic(inst) = &op.kind else {
                                unreachable!("superblocks cover Basic runs only")
                            };
                            self.exec_basic(process, inst)?;
                        }
                    } else {
                        // Budget lands mid-block: fall back to the checked
                        // per-component charge so the limit faults at the
                        // exact instruction the reference loop would.
                        for op in tail {
                            if self.instructions >= cfg.max_instructions {
                                return Err(Fault::InstructionLimit);
                            }
                            self.instructions += 1;
                            self.cycles += op.cycles;
                            let OpKind::Basic(inst) = &op.kind else {
                                unreachable!("superblocks cover Basic runs only")
                            };
                            self.exec_basic(process, inst)?;
                        }
                    }
                    flat += *len as usize;
                }
                OpKind::Je { target } => {
                    flat = if self.zero_flag { *target as usize } else { flat + 1 };
                }
                OpKind::Jne { target } => {
                    flat = if self.zero_flag { flat + 1 } else { *target as usize };
                }
                OpKind::Jmp { target } => flat = *target as usize,
                OpKind::Call { target, return_addr } => {
                    self.push_word(process, *return_addr)?;
                    flat = *target as usize;
                }
                OpKind::CallUnknown { id, return_addr } => {
                    // The reference interpreter pushes the return address
                    // first and only discovers the bad id on the next fetch,
                    // after the budget check — replicate that order.
                    self.push_word(process, *return_addr)?;
                    if self.instructions >= cfg.max_instructions {
                        return Err(Fault::InstructionLimit);
                    }
                    return Err(Fault::UnknownFunction { id: *id });
                }
                OpKind::Ret => {
                    let addr = self.pop_word(process)?;
                    if addr == RETURN_SENTINEL {
                        return Ok(self.regs.read(Reg::Rax));
                    }
                    if cfg.hijack_target == Some(addr) {
                        return Err(Fault::ControlFlowHijacked { addr });
                    }
                    match decoded.flat_of_addr(addr) {
                        Some(target) => flat = target as usize,
                        None => return Err(Fault::InvalidReturn { addr }),
                    }
                }
                OpKind::StackChkFail { fid } => {
                    return Err(Fault::CanaryViolation { function: self.func_name(program, *fid) });
                }
                OpKind::CheckCanary32 { fid } => {
                    if self.check_canary32(process) {
                        flat += 1;
                    } else {
                        return Err(Fault::CanaryViolation {
                            function: self.func_name(program, *fid),
                        });
                    }
                }
                OpKind::FellOffEnd { .. } => unreachable!("handled before charging"),
                OpKind::Prologue { dst, tls_offset, frame_offset } => {
                    // Component 1 (mov %fs:off,%dst) was charged as the head.
                    let canary = process.tls.read_word(*tls_offset).map_err(tls_fault)?;
                    self.regs.write(*dst, canary);
                    // Component 2: mov %dst,frame_offset(%rbp).
                    self.charge(Inst::MovRegToFrame { src: *dst, offset: *frame_offset }, cfg)?;
                    let rbp = self.regs.read(Reg::Rbp);
                    process
                        .memory
                        .write_u64(frame_addr(rbp, *frame_offset), canary)
                        .map_err(mem_fault)?;
                    flat += 2;
                }
                OpKind::CanaryGuard { dst, tls_offset, fid, resume } => {
                    flat =
                        self.canary_guard(program, process, *dst, *tls_offset, *fid, *resume, cfg)?;
                }
                OpKind::CanaryEpilogue { dst, frame_offset, tls_offset, fid, resume } => {
                    // Component 1 (mov frame(%rbp),%dst) was charged as the head.
                    let rbp = self.regs.read(Reg::Rbp);
                    let stored = process
                        .memory
                        .read_u64(frame_addr(rbp, *frame_offset))
                        .map_err(mem_fault)?;
                    self.regs.write(*dst, stored);
                    // Component 2: xor %fs:off,%dst (charged here; it is the
                    // head — and pre-charged — in the three-wide guard).
                    self.charge(Inst::XorTlsReg { dst: *dst, offset: *tls_offset }, cfg)?;
                    flat =
                        self.canary_guard(program, process, *dst, *tls_offset, *fid, *resume, cfg)?;
                }
            }
        }
    }

    /// Fused compare+guard: executes the (already charged) `xor
    /// %fs:off,%dst`, then the guard tail.
    #[allow(clippy::too_many_arguments)]
    fn canary_guard(
        &mut self,
        program: &Program,
        process: &mut Process,
        dst: Reg,
        tls_offset: u64,
        fid: FuncId,
        resume: u32,
        cfg: &ExecConfig,
    ) -> Result<usize, Fault> {
        let tls_word = process.tls.read_word(tls_offset).map_err(tls_fault)?;
        let v = self.regs.read(dst) ^ tls_word;
        self.regs.write(dst, v);
        self.zero_flag = v == 0;
        self.guard_tail(program, fid, resume, cfg)
    }

    /// The `je +1; call __stack_chk_fail` tail shared by both fused canary
    /// checks.  Returns the resume index on pass.
    fn guard_tail(
        &mut self,
        program: &Program,
        fid: FuncId,
        resume: u32,
        cfg: &ExecConfig,
    ) -> Result<usize, Fault> {
        self.charge(Inst::JeSkip(1), cfg)?;
        if self.zero_flag {
            return Ok(resume as usize);
        }
        self.charge(Inst::CallStackChkFail, cfg)?;
        Err(Fault::CanaryViolation { function: self.func_name(program, fid) })
    }

    /// Charges one fused-sequence component, mirroring the reference
    /// loop's order: budget check first, then the static cost.
    #[inline]
    fn charge(&mut self, component: Inst, cfg: &ExecConfig) -> Result<(), Fault> {
        if self.instructions >= cfg.max_instructions {
            return Err(Fault::InstructionLimit);
        }
        self.instructions += 1;
        self.cycles += component.cycles();
        Ok(())
    }

    /// The patched 32-bit canary check shared by both dispatchers (Fig.
    /// 3/4): `%rdi` carries the packed 32-bit canary pair `C0 || C1`; the
    /// check passes when `C0 xor C1` equals the low half of the TLS canary,
    /// or — for compatibility with plain SSP callers — when `%rdi` equals
    /// the full 64-bit TLS canary.  Sets the zero flag on pass.
    fn check_canary32(&mut self, process: &Process) -> bool {
        let rdi = self.regs.read(Reg::Rdi);
        let c0 = (rdi & 0xFFFF_FFFF) as u32;
        let c1 = (rdi >> 32) as u32;
        let tls_canary = process.tls.canary();
        let pass = (c0 ^ c1) == (tls_canary & 0xFFFF_FFFF) as u32 || rdi == tls_canary;
        if pass {
            self.zero_flag = true;
        }
        pass
    }

    /// Resolves the interned function name for a fault message — a
    /// reference-count bump, not an allocation, so the detection path of a
    /// byte-by-byte campaign stays allocation-free.
    fn func_name(&self, program: &Program, fid: FuncId) -> Arc<str> {
        program.function(fid).expect("decoded fid exists").name_interned()
    }

    #[inline]
    fn push_word(&mut self, process: &mut Process, value: u64) -> Result<(), Fault> {
        let old = self.regs.read(Reg::Rsp);
        // Covers both exhaustion cases in one compare: an Rsp below 8 (which
        // would wrap past zero on the decrement and surface as a spurious
        // MemoryFault) and a decremented Rsp below the stack limit.  The
        // limit sits far below `u64::MAX`, so `limit + 8` cannot overflow.
        if old < process.memory.stack_limit() + 8 {
            return Err(Fault::StackExhausted);
        }
        let rsp = old - 8;
        self.regs.write(Reg::Rsp, rsp);
        process.memory.write_u64(rsp, value).map_err(mem_fault)
    }

    #[inline]
    fn pop_word(&mut self, process: &mut Process) -> Result<u64, Fault> {
        let rsp = self.regs.read(Reg::Rsp);
        let value = process.memory.read_u64(rsp).map_err(mem_fault)?;
        self.regs.write(Reg::Rsp, rsp.wrapping_add(8));
        Ok(value)
    }

    #[allow(clippy::too_many_lines)]
    fn step(
        &mut self,
        program: &Program,
        process: &mut Process,
        fid: FuncId,
        idx: usize,
        inst: &Inst,
        _cfg: &ExecConfig,
    ) -> Result<Flow, Fault> {
        let rbp = self.regs.read(Reg::Rbp);
        match inst {
            Inst::PushReg(r) => {
                let v = self.regs.read(*r);
                self.push_word(process, v)?;
            }
            Inst::PopReg(r) => {
                let v = self.pop_word(process)?;
                self.regs.write(*r, v);
            }
            Inst::MovRegReg { dst, src } => {
                let v = self.regs.read(*src);
                self.regs.write(*dst, v);
            }
            Inst::SubRspImm(imm) => {
                let rsp = self.regs.read(Reg::Rsp).wrapping_sub(u64::from(*imm));
                if rsp < process.memory.stack_limit() {
                    return Err(Fault::StackExhausted);
                }
                self.regs.write(Reg::Rsp, rsp);
            }
            Inst::AddRspImm(imm) => {
                let rsp = self.regs.read(Reg::Rsp).wrapping_add(u64::from(*imm));
                self.regs.write(Reg::Rsp, rsp);
            }
            Inst::Leave => {
                self.regs.write(Reg::Rsp, rbp);
                let saved = self.pop_word(process)?;
                self.regs.write(Reg::Rbp, saved);
            }
            Inst::Ret => return Ok(Flow::Return),
            Inst::MovTlsToReg { dst, offset } => {
                let v = process.tls.read_word(*offset).map_err(tls_fault)?;
                self.regs.write(*dst, v);
            }
            Inst::MovRegToTls { src, offset } => {
                let v = self.regs.read(*src);
                process.tls.write_word(*offset, v).map_err(tls_fault)?;
            }
            Inst::MovRegToFrame { src, offset } => {
                let v = self.regs.read(*src);
                process.memory.write_u64(frame_addr(rbp, *offset), v).map_err(mem_fault)?;
            }
            Inst::MovFrameToReg { dst, offset } => {
                let v = process.memory.read_u64(frame_addr(rbp, *offset)).map_err(mem_fault)?;
                self.regs.write(*dst, v);
            }
            Inst::MovFrameToReg32 { dst, offset } => {
                let v = process.memory.read_u32(frame_addr(rbp, *offset)).map_err(mem_fault)?;
                self.regs.write32(*dst, v);
            }
            Inst::MovRegToFrame32 { src, offset } => {
                let v = self.regs.read32(*src);
                process.memory.write_u32(frame_addr(rbp, *offset), v).map_err(mem_fault)?;
            }
            Inst::MovImmToReg { dst, imm } => self.regs.write(*dst, *imm),
            Inst::MovImmToFrame { offset, imm } => {
                process.memory.write_u32(frame_addr(rbp, *offset), *imm).map_err(mem_fault)?;
            }
            Inst::LeaFrameToReg { dst, offset } => {
                self.regs.write(*dst, frame_addr(rbp, *offset));
            }
            Inst::MovMemToReg { dst, base, offset } => {
                let addr = frame_addr(self.regs.read(*base), *offset);
                let v = process.memory.read_u64(addr).map_err(mem_fault)?;
                self.regs.write(*dst, v);
            }
            Inst::MovRegToMem { src, base, offset } => {
                let addr = frame_addr(self.regs.read(*base), *offset);
                let v = self.regs.read(*src);
                process.memory.write_u64(addr, v).map_err(mem_fault)?;
            }
            Inst::XorRegReg { dst, src } => {
                let v = self.regs.read(*dst) ^ self.regs.read(*src);
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::XorTlsReg { dst, offset } => {
                let tls_word = process.tls.read_word(*offset).map_err(tls_fault)?;
                let v = self.regs.read(*dst) ^ tls_word;
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::AddRegReg { dst, src } => {
                let v = self.regs.read(*dst).wrapping_add(self.regs.read(*src));
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::ShlRegImm { dst, amount } => {
                let v = self.regs.read(*dst).wrapping_shl(u32::from(*amount));
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::ShrRegImm { dst, amount } => {
                let v = self.regs.read(*dst).wrapping_shr(u32::from(*amount));
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::OrRegReg { dst, src } => {
                let v = self.regs.read(*dst) | self.regs.read(*src);
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::CmpFrameReg { reg, offset } => {
                let mem_val =
                    process.memory.read_u64(frame_addr(rbp, *offset)).map_err(mem_fault)?;
                self.zero_flag = mem_val == self.regs.read(*reg);
            }
            Inst::CmpRegImm { reg, imm } => {
                self.zero_flag = self.regs.read(*reg) == *imm;
            }
            Inst::TestReg(r) => {
                self.zero_flag = self.regs.read(*r) == 0;
            }
            Inst::JeSkip(n) => {
                if self.zero_flag {
                    return Ok(Flow::Skip(*n));
                }
            }
            Inst::JneSkip(n) => {
                if !self.zero_flag {
                    return Ok(Flow::Skip(*n));
                }
            }
            Inst::JmpSkip(n) => return Ok(Flow::Skip(*n)),
            Inst::CallFn(target) => {
                let func = program.function(fid).expect("fid validated");
                let cur_addr = func.inst_addr(idx).expect("idx validated");
                let return_addr = cur_addr + inst.encoded_size();
                return Ok(Flow::Call { target: *target, return_addr });
            }
            Inst::CallStackChkFail => {
                return Err(Fault::CanaryViolation { function: self.func_name(program, fid) });
            }
            Inst::CallCheckCanary32 => {
                if !self.check_canary32(process) {
                    return Err(Fault::CanaryViolation { function: self.func_name(program, fid) });
                }
            }
            Inst::Nop => {}
            Inst::Rdrand(dst) => {
                // Surcharge: the fetch loop charged the static base; add the
                // retry excess so the total equals the device-reported cost
                // (zero surcharge when the first draw succeeds).
                let (value, total_cycles) = process.hwrng.rdrand_retrying();
                self.cycles += total_cycles.saturating_sub(inst.cycles());
                self.regs.write(*dst, value);
            }
            Inst::Rdtsc => {
                let (value, _) =
                    process.tsc.rdtsc(self.cycles).map_err(|_| Fault::EntropyFailure)?;
                self.regs.write(Reg::Rax, value);
            }
            Inst::AesEncryptFrame { nonce } => {
                let key_lo = self.regs.read(Reg::R12);
                let key_hi = self.regs.read(Reg::R13);
                let ret_addr = process.memory.read_u64(frame_addr(rbp, 8)).map_err(mem_fault)?;
                let nonce_val = self.regs.read(*nonce);
                let (lo, hi) =
                    Aes128::from_words(key_lo, key_hi).encrypt_words(nonce_val, ret_addr);
                self.regs.write(Reg::Rax, lo);
                self.regs.write(Reg::Rdx, hi);
            }
            Inst::RecordCanaryAddress { offset } => {
                process.canary_addresses.push(frame_addr(rbp, *offset));
            }
            Inst::PopCanaryAddress => {
                process.canary_addresses.pop();
            }
            Inst::LinkCanaryPush { offset } => {
                let addr = frame_addr(rbp, *offset);
                process.dcr_list.push(addr);
                process.tls.write_word(TLS_DCR_HEAD_OFFSET, addr).map_err(tls_fault)?;
            }
            Inst::LinkCanaryPop { .. } => {
                process.dcr_list.pop();
                let head = process.dcr_list.last().copied().unwrap_or(0);
                process.tls.write_word(TLS_DCR_HEAD_OFFSET, head).map_err(tls_fault)?;
            }
            Inst::CopyInputToFrame { offset } => {
                let dest = frame_addr(rbp, *offset);
                // Surcharge: per-word copy cost on top of the static base,
                // charged before the write (a faulting copy still paid for
                // the attempt).
                self.cycles += (process.input().len() as u64) / 8 + 1;
                process.copy_input_to_memory(dest, None).map_err(mem_fault)?;
            }
            Inst::CopyInputToFrameBounded { offset, max_len } => {
                let dest = frame_addr(rbp, *offset);
                let len = process.input().len().min(*max_len as usize);
                self.cycles += (len as u64) / 8 + 1;
                process.copy_input_to_memory(dest, Some(*max_len as usize)).map_err(mem_fault)?;
            }
            Inst::InputLenToReg(r) => {
                let len = process.input().len() as u64;
                self.regs.write(*r, len);
            }
            Inst::OutputReg(r) => {
                let bytes = self.regs.read(*r).to_le_bytes();
                process.push_output(&bytes);
            }
            Inst::Compute(_) => {}
        }
        Ok(Flow::Next)
    }

    /// Executes one straight-line instruction for the decoded dispatch loop.
    ///
    /// Behaviourally identical to the corresponding [`Cpu::step`] arms, but
    /// with no per-instruction function-name lookup and no input-buffer
    /// copies (the `strcpy` models go through
    /// [`Process::copy_input_to_memory`]).  Control-flow variants never
    /// reach here — the decoder lowers them to dedicated [`OpKind`]s.
    #[allow(clippy::too_many_lines)]
    fn exec_basic(&mut self, process: &mut Process, inst: &Inst) -> Result<(), Fault> {
        let rbp = self.regs.read(Reg::Rbp);
        match inst {
            Inst::PushReg(r) => {
                let v = self.regs.read(*r);
                self.push_word(process, v)?;
            }
            Inst::PopReg(r) => {
                let v = self.pop_word(process)?;
                self.regs.write(*r, v);
            }
            Inst::MovRegReg { dst, src } => {
                let v = self.regs.read(*src);
                self.regs.write(*dst, v);
            }
            Inst::SubRspImm(imm) => {
                let rsp = self.regs.read(Reg::Rsp).wrapping_sub(u64::from(*imm));
                if rsp < process.memory.stack_limit() {
                    return Err(Fault::StackExhausted);
                }
                self.regs.write(Reg::Rsp, rsp);
            }
            Inst::AddRspImm(imm) => {
                let rsp = self.regs.read(Reg::Rsp).wrapping_add(u64::from(*imm));
                self.regs.write(Reg::Rsp, rsp);
            }
            Inst::Leave => {
                self.regs.write(Reg::Rsp, rbp);
                let saved = self.pop_word(process)?;
                self.regs.write(Reg::Rbp, saved);
            }
            Inst::MovTlsToReg { dst, offset } => {
                let v = process.tls.read_word(*offset).map_err(tls_fault)?;
                self.regs.write(*dst, v);
            }
            Inst::MovRegToTls { src, offset } => {
                let v = self.regs.read(*src);
                process.tls.write_word(*offset, v).map_err(tls_fault)?;
            }
            Inst::MovRegToFrame { src, offset } => {
                let v = self.regs.read(*src);
                process.memory.write_u64(frame_addr(rbp, *offset), v).map_err(mem_fault)?;
            }
            Inst::MovFrameToReg { dst, offset } => {
                let v = process.memory.read_u64(frame_addr(rbp, *offset)).map_err(mem_fault)?;
                self.regs.write(*dst, v);
            }
            Inst::MovFrameToReg32 { dst, offset } => {
                let v = process.memory.read_u32(frame_addr(rbp, *offset)).map_err(mem_fault)?;
                self.regs.write32(*dst, v);
            }
            Inst::MovRegToFrame32 { src, offset } => {
                let v = self.regs.read32(*src);
                process.memory.write_u32(frame_addr(rbp, *offset), v).map_err(mem_fault)?;
            }
            Inst::MovImmToReg { dst, imm } => self.regs.write(*dst, *imm),
            Inst::MovImmToFrame { offset, imm } => {
                process.memory.write_u32(frame_addr(rbp, *offset), *imm).map_err(mem_fault)?;
            }
            Inst::LeaFrameToReg { dst, offset } => {
                self.regs.write(*dst, frame_addr(rbp, *offset));
            }
            Inst::MovMemToReg { dst, base, offset } => {
                let addr = frame_addr(self.regs.read(*base), *offset);
                let v = process.memory.read_u64(addr).map_err(mem_fault)?;
                self.regs.write(*dst, v);
            }
            Inst::MovRegToMem { src, base, offset } => {
                let addr = frame_addr(self.regs.read(*base), *offset);
                let v = self.regs.read(*src);
                process.memory.write_u64(addr, v).map_err(mem_fault)?;
            }
            Inst::XorRegReg { dst, src } => {
                let v = self.regs.read(*dst) ^ self.regs.read(*src);
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::XorTlsReg { dst, offset } => {
                let tls_word = process.tls.read_word(*offset).map_err(tls_fault)?;
                let v = self.regs.read(*dst) ^ tls_word;
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::AddRegReg { dst, src } => {
                let v = self.regs.read(*dst).wrapping_add(self.regs.read(*src));
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::ShlRegImm { dst, amount } => {
                let v = self.regs.read(*dst).wrapping_shl(u32::from(*amount));
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::ShrRegImm { dst, amount } => {
                let v = self.regs.read(*dst).wrapping_shr(u32::from(*amount));
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::OrRegReg { dst, src } => {
                let v = self.regs.read(*dst) | self.regs.read(*src);
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::CmpFrameReg { reg, offset } => {
                let mem_val =
                    process.memory.read_u64(frame_addr(rbp, *offset)).map_err(mem_fault)?;
                self.zero_flag = mem_val == self.regs.read(*reg);
            }
            Inst::CmpRegImm { reg, imm } => {
                self.zero_flag = self.regs.read(*reg) == *imm;
            }
            Inst::TestReg(r) => {
                self.zero_flag = self.regs.read(*r) == 0;
            }
            Inst::Nop => {}
            Inst::Rdrand(dst) => {
                // Surcharge: retry excess on top of the static base (see
                // the matching `step` arm).
                let (value, total_cycles) = process.hwrng.rdrand_retrying();
                self.cycles += total_cycles.saturating_sub(inst.cycles());
                self.regs.write(*dst, value);
            }
            Inst::Rdtsc => {
                let (value, _) =
                    process.tsc.rdtsc(self.cycles).map_err(|_| Fault::EntropyFailure)?;
                self.regs.write(Reg::Rax, value);
            }
            Inst::AesEncryptFrame { nonce } => {
                let key_lo = self.regs.read(Reg::R12);
                let key_hi = self.regs.read(Reg::R13);
                let ret_addr = process.memory.read_u64(frame_addr(rbp, 8)).map_err(mem_fault)?;
                let nonce_val = self.regs.read(*nonce);
                let (lo, hi) =
                    Aes128::from_words(key_lo, key_hi).encrypt_words(nonce_val, ret_addr);
                self.regs.write(Reg::Rax, lo);
                self.regs.write(Reg::Rdx, hi);
            }
            Inst::RecordCanaryAddress { offset } => {
                process.canary_addresses.push(frame_addr(rbp, *offset));
            }
            Inst::PopCanaryAddress => {
                process.canary_addresses.pop();
            }
            Inst::LinkCanaryPush { offset } => {
                let addr = frame_addr(rbp, *offset);
                process.dcr_list.push(addr);
                process.tls.write_word(TLS_DCR_HEAD_OFFSET, addr).map_err(tls_fault)?;
            }
            Inst::LinkCanaryPop { .. } => {
                process.dcr_list.pop();
                let head = process.dcr_list.last().copied().unwrap_or(0);
                process.tls.write_word(TLS_DCR_HEAD_OFFSET, head).map_err(tls_fault)?;
            }
            Inst::CopyInputToFrame { offset } => {
                let dest = frame_addr(rbp, *offset);
                self.cycles += (process.input().len() as u64) / 8 + 1;
                process.copy_input_to_memory(dest, None).map_err(mem_fault)?;
            }
            Inst::CopyInputToFrameBounded { offset, max_len } => {
                let dest = frame_addr(rbp, *offset);
                let len = process.input().len().min(*max_len as usize);
                self.cycles += (len as u64) / 8 + 1;
                process.copy_input_to_memory(dest, Some(*max_len as usize)).map_err(mem_fault)?;
            }
            Inst::InputLenToReg(r) => {
                let len = process.input().len() as u64;
                self.regs.write(*r, len);
            }
            Inst::OutputReg(r) => {
                let bytes = self.regs.read(*r).to_le_bytes();
                process.push_output(&bytes);
            }
            Inst::Compute(_) => {}
            Inst::Ret
            | Inst::JeSkip(_)
            | Inst::JneSkip(_)
            | Inst::JmpSkip(_)
            | Inst::CallFn(_)
            | Inst::CallStackChkFail
            | Inst::CallCheckCanary32 => {
                unreachable!("control flow is lowered to dedicated ops at decode time")
            }
        }
        Ok(())
    }
}

/// Internal control-flow outcome of a single instruction.
enum Flow {
    Next,
    Skip(usize),
    Call { target: FuncId, return_addr: u64 },
    Return,
}

fn frame_addr(base: u64, offset: i32) -> u64 {
    if offset >= 0 {
        base.wrapping_add(offset as u64)
    } else {
        base.wrapping_sub(offset.unsigned_abs() as u64)
    }
}

fn mem_fault(err: VmError) -> Fault {
    match err {
        VmError::UnmappedAddress { addr } | VmError::PartialAccess { addr, .. } => {
            Fault::MemoryFault { addr }
        }
        _ => Fault::MemoryFault { addr: 0 },
    }
}

fn tls_fault(err: VmError) -> Fault {
    match err {
        VmError::TlsOutOfRange { offset } => Fault::MemoryFault { addr: offset },
        _ => Fault::MemoryFault { addr: 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DEFAULT_STACK_SIZE;
    use crate::process::Pid;

    fn fresh_process() -> Process {
        Process::new(Pid(1), 7, DEFAULT_STACK_SIZE)
    }

    fn run_single(insts: Vec<Inst>, process: &mut Process) -> (Exit, Cpu) {
        let mut prog = Program::new();
        let f = prog.add_function("main", insts).unwrap();
        prog.set_entry(f);
        prog.finalize();
        let mut cpu = Cpu::new();
        let exit = cpu.run(&prog, process, f, &ExecConfig::default());
        (exit, cpu)
    }

    #[test]
    fn returns_rax_on_normal_exit() {
        let mut p = fresh_process();
        let (exit, _) =
            run_single(vec![Inst::MovImmToReg { dst: Reg::Rax, imm: 42 }, Inst::Ret], &mut p);
        assert_eq!(exit, Exit::Normal(42));
    }

    #[test]
    fn frame_setup_and_teardown() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x20),
            Inst::MovImmToReg { dst: Reg::Rax, imm: 5 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x10 },
            Inst::MovFrameToReg { dst: Reg::Rbx, offset: -0x10 },
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, cpu) = run_single(insts, &mut p);
        assert!(exit.is_normal());
        assert_eq!(cpu.regs().read(Reg::Rbx), 5);
    }

    #[test]
    fn ssp_epilogue_passes_with_intact_canary() {
        let mut p = fresh_process();
        p.tls.set_canary(0x1122_3344_5566_7788);
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            // epilogue
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_normal(), "intact canary must not trigger the protector: {exit:?}");
    }

    #[test]
    fn ssp_epilogue_detects_clobbered_canary() {
        let mut p = fresh_process();
        p.tls.set_canary(0x1122_3344_5566_7788);
        p.set_input(vec![0x41u8; 24]); // 16-byte buffer + 8 bytes into the canary
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x20),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            Inst::CopyInputToFrame { offset: -0x18 }, // buffer at rbp-0x18..rbp-0x8
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_detection(), "overflow must be detected: {exit:?}");
    }

    #[test]
    fn overflow_without_protection_hijacks_control_flow() {
        let mut p = fresh_process();
        // Craft input: 16 bytes of filler, 8 bytes saved rbp, then the
        // attacker's return address.
        let target = 0x41414141u64;
        let mut input = vec![0x41u8; 24];
        input.extend_from_slice(&target.to_le_bytes());
        p.set_input(input);
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::CopyInputToFrame { offset: -0x10 },
            Inst::Leave,
            Inst::Ret,
        ];
        let mut prog = Program::new();
        let f = prog.add_function("victim", insts).unwrap();
        prog.set_entry(f);
        prog.finalize();
        let mut cpu = Cpu::new();
        let cfg = ExecConfig { hijack_target: Some(target), ..ExecConfig::default() };
        let exit = cpu.run(&prog, &mut p, f, &cfg);
        assert!(exit.is_hijack(), "unprotected overflow must hijack: {exit:?}");
    }

    #[test]
    fn call_and_return_across_functions() {
        let mut prog = Program::new();
        let callee = prog
            .add_function("callee", vec![Inst::MovImmToReg { dst: Reg::Rax, imm: 99 }, Inst::Ret])
            .unwrap();
        let caller = prog
            .add_function(
                "caller",
                vec![
                    Inst::PushReg(Reg::Rbp),
                    Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
                    Inst::CallFn(callee),
                    Inst::Leave,
                    Inst::Ret,
                ],
            )
            .unwrap();
        prog.set_entry(caller);
        prog.finalize();
        let mut p = fresh_process();
        let mut cpu = Cpu::new();
        let exit = cpu.run(&prog, &mut p, caller, &ExecConfig::default());
        assert_eq!(exit, Exit::Normal(99));
    }

    #[test]
    fn instruction_limit_is_enforced() {
        let mut p = fresh_process();
        // An infinite loop: jmp back to itself is impossible with forward
        // skips, so use mutual recursion without returning.
        let mut prog = Program::new();
        let f = prog.add_function("loops", vec![Inst::Nop, Inst::JmpSkip(0)]).unwrap();
        // JmpSkip(0) just falls through; build a self-call instead.
        prog.replace_function_body(f, vec![Inst::CallFn(FuncId(0)), Inst::Ret]).unwrap();
        prog.set_entry(f);
        prog.finalize();
        let mut cpu = Cpu::new();
        let cfg = ExecConfig { max_instructions: 10_000, ..ExecConfig::default() };
        let exit = cpu.run(&prog, &mut p, f, &cfg);
        assert!(
            matches!(
                exit,
                Exit::Fault(Fault::InstructionLimit) | Exit::Fault(Fault::StackExhausted)
            ),
            "unbounded recursion must hit a limit: {exit:?}"
        );
    }

    #[test]
    fn rdrand_writes_register_and_charges_cycles() {
        let mut p = fresh_process();
        let (exit, cpu) = run_single(vec![Inst::Rdrand(Reg::Rax), Inst::Ret], &mut p);
        match exit {
            Exit::Normal(v) => assert_ne!(v, 0),
            other => panic!("unexpected exit {other:?}"),
        }
        assert!(cpu.cycles >= polycanary_crypto::cost::RDRAND_CYCLES);
    }

    #[test]
    fn rdtsc_is_monotonic_across_instructions() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x20),
            Inst::Rdtsc,
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            Inst::Rdtsc,
            Inst::MovRegReg { dst: Reg::Rbx, src: Reg::Rax },
            Inst::MovFrameToReg { dst: Reg::Rcx, offset: -0x8 },
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, cpu) = run_single(insts, &mut p);
        assert!(exit.is_normal());
        assert!(cpu.regs().read(Reg::Rbx) > cpu.regs().read(Reg::Rcx));
    }

    #[test]
    fn aes_encrypt_frame_is_deterministic_given_state() {
        let mut prog = Program::new();
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::MovImmToReg { dst: Reg::Rcx, imm: 1234 },
            Inst::AesEncryptFrame { nonce: Reg::Rcx },
            Inst::Leave,
            Inst::Ret,
        ];
        let f = prog.add_function("owf", insts).unwrap();
        prog.set_entry(f);
        prog.finalize();

        let run = || {
            let mut p = fresh_process();
            p.owf_key = Some((111, 222));
            let mut cpu = Cpu::new();
            let exit = cpu.run(&prog, &mut p, f, &ExecConfig::default());
            assert!(exit.is_normal());
            (cpu.regs().read(Reg::Rax), cpu.regs().read(Reg::Rdx))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bounded_copy_cannot_overflow() {
        let mut p = fresh_process();
        p.tls.set_canary(0xAAAA_BBBB_CCCC_DDDD);
        p.set_input(vec![0x42u8; 200]);
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x20),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            Inst::CopyInputToFrameBounded { offset: -0x18, max_len: 16 },
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_normal(), "bounded copy must not clobber the canary: {exit:?}");
    }

    #[test]
    fn canary_bookkeeping_pseudo_instructions_update_process_state() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::RecordCanaryAddress { offset: -0x8 },
            Inst::LinkCanaryPush { offset: -0x8 },
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_normal());
        assert_eq!(p.canary_addresses.len(), 1);
        assert_eq!(p.dcr_list.len(), 1);
        assert_eq!(p.tls.read_word(TLS_DCR_HEAD_OFFSET).unwrap(), p.dcr_list[0]);
    }

    #[test]
    fn memory_fault_on_wild_store() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::MovImmToReg { dst: Reg::Rbx, imm: 0x1234 },
            Inst::MovRegToMem { src: Reg::Rax, base: Reg::Rbx, offset: 0 },
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(matches!(exit, Exit::Fault(Fault::MemoryFault { .. })));
    }

    /// Runs `insts` through both dispatchers on identically-prepared
    /// processes and returns `(cached, reference)` outcomes.
    fn both_outcomes(
        insts: &[Inst],
        setup: impl Fn(&mut Process),
        cfg: &ExecConfig,
    ) -> (RunOutcome, RunOutcome) {
        let mut prog = Program::new();
        let f = prog.add_function("main", insts.to_vec()).unwrap();
        prog.set_entry(f);
        prog.finalize();
        let run = |reference: bool| {
            let mut p = fresh_process();
            setup(&mut p);
            let mut cpu = Cpu::new();
            let exit = if reference {
                cpu.run_reference(&prog, &mut p, f, cfg)
            } else {
                cpu.run(&prog, &mut p, f, cfg)
            };
            RunOutcome { exit, cycles: cpu.cycles, instructions: cpu.instructions }
        };
        (run(false), run(true))
    }

    #[test]
    fn call_to_unknown_function_id_faults_distinctly() {
        // Regression: this used to surface as InvalidReturn { addr: 0 },
        // indistinguishable from a genuine return to address 0.
        let insts = vec![Inst::CallFn(FuncId(9)), Inst::Ret];
        let (cached, reference) = both_outcomes(&insts, |_| {}, &ExecConfig::default());
        assert_eq!(cached.exit, Exit::Fault(Fault::UnknownFunction { id: 9 }));
        assert_eq!(cached, reference);
    }

    #[test]
    fn bad_entry_function_id_faults_distinctly() {
        let mut prog = Program::new();
        let f = prog.add_function("main", vec![Inst::Ret]).unwrap();
        prog.set_entry(f);
        prog.finalize();
        for reference in [false, true] {
            let mut p = fresh_process();
            let mut cpu = Cpu::new();
            let exit = if reference {
                cpu.run_reference(&prog, &mut p, FuncId(5), &ExecConfig::default())
            } else {
                cpu.run(&prog, &mut p, FuncId(5), &ExecConfig::default())
            };
            assert_eq!(exit, Exit::Fault(Fault::UnknownFunction { id: 5 }));
        }
        // An exhausted budget outranks the bad id, matching the reference
        // loop's check order.
        let cfg = ExecConfig { max_instructions: 0, ..ExecConfig::default() };
        let mut p = fresh_process();
        let exit = Cpu::new().run(&prog, &mut p, FuncId(5), &cfg);
        assert_eq!(exit, Exit::Fault(Fault::InstructionLimit));
    }

    #[test]
    fn genuine_return_to_address_zero_is_invalid_return() {
        // The other side of the UnknownFunction regression: a ret through a
        // zeroed return slot must still report InvalidReturn { addr: 0 }.
        let insts = vec![
            Inst::PopReg(Reg::Rbx), // discard the sentinel
            Inst::MovImmToReg { dst: Reg::Rcx, imm: 0 },
            Inst::PushReg(Reg::Rcx),
            Inst::Ret,
        ];
        let (cached, reference) = both_outcomes(&insts, |_| {}, &ExecConfig::default());
        assert_eq!(cached.exit, Exit::Fault(Fault::InvalidReturn { addr: 0 }));
        assert_eq!(cached, reference);
    }

    #[test]
    fn push_with_underflowing_rsp_is_stack_exhausted() {
        // Regression: Rsp below 8 used to wrap past zero on the decrement,
        // pass the stack-limit check at a huge address and surface as a
        // MemoryFault instead of StackExhausted.
        for rsp in [0u64, 4, 7] {
            let insts = vec![
                Inst::MovImmToReg { dst: Reg::Rsp, imm: rsp },
                Inst::PushReg(Reg::Rax),
                Inst::Ret,
            ];
            let (cached, reference) = both_outcomes(&insts, |_| {}, &ExecConfig::default());
            assert_eq!(cached.exit, Exit::Fault(Fault::StackExhausted), "rsp={rsp}");
            assert_eq!(cached, reference, "rsp={rsp}");
        }
    }

    #[test]
    fn rdrand_total_cost_is_pinned() {
        // Cost-model convention: static base from the fetch loop plus the
        // retry-excess surcharge.  Without failure injection the first draw
        // succeeds, so the total is exactly RDRAND_CYCLES.
        let insts = vec![Inst::Rdrand(Reg::Rax), Inst::Ret];
        let (cached, reference) = both_outcomes(&insts, |_| {}, &ExecConfig::default());
        let expected = polycanary_crypto::cost::RDRAND_CYCLES + Inst::Ret.cycles();
        assert_eq!(cached.cycles, expected);
        assert_eq!(cached, reference);
    }

    #[test]
    fn copy_surcharge_is_pinned() {
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x20),
            Inst::CopyInputToFrame { offset: -0x18 },
            Inst::Leave,
            Inst::Ret,
        ];
        let input_len = 16u64;
        let static_base: u64 = insts.iter().map(Inst::cycles).sum();
        let (cached, reference) = both_outcomes(
            &insts,
            |p| p.set_input(vec![0u8; input_len as usize]),
            &ExecConfig::default(),
        );
        assert_eq!(cached.cycles, static_base + input_len / 8 + 1);
        assert_eq!(cached, reference);
    }

    #[test]
    fn instruction_limit_mid_fused_sequence_matches_reference() {
        // The SSP prologue + epilogue fuse into superinstructions; cutting
        // the budget at every possible point must still produce the exact
        // reference counts (fused handlers charge per component).
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        for max in 0..=12 {
            for canary_ok in [true, false] {
                let cfg = ExecConfig { max_instructions: max, ..ExecConfig::default() };
                let setup = |p: &mut Process| {
                    p.tls.set_canary(0x1122_3344_5566_7788);
                    if !canary_ok {
                        // Clobber the stored canary via an oversized copy.
                        p.set_input(vec![0x41u8; 24]);
                    }
                };
                let insts = if canary_ok {
                    insts.clone()
                } else {
                    let mut v = insts.clone();
                    v.insert(5, Inst::CopyInputToFrame { offset: -0x10 });
                    v
                };
                let (cached, reference) = both_outcomes(&insts, setup, &cfg);
                assert_eq!(cached, reference, "max={max} canary_ok={canary_ok}");
            }
        }
    }

    #[test]
    fn jump_into_fused_sequence_executes_plain_components() {
        // Fusion is an overlay: branching into the middle of a fused canary
        // epilogue must execute the component instructions unchanged.
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            // Jump over the epilogue head and its xor, straight to the je.
            Inst::JmpSkip(2),
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        // zero_flag is false when the jmp lands on the je (SubRspImm does
        // not touch flags; the last flag writer is MovTlsToReg: none), so
        // the guard falls through into __stack_chk_fail.
        let (cached, reference) =
            both_outcomes(&insts, |p| p.tls.set_canary(0xAAAA), &ExecConfig::default());
        assert!(cached.exit.is_detection(), "{:?}", cached.exit);
        assert_eq!(cached, reference);
    }

    #[test]
    fn output_reg_reaches_process_output() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::MovImmToReg { dst: Reg::Rax, imm: 0x4847_4645_4443_4241 },
            Inst::OutputReg(Reg::Rax),
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_normal());
        assert_eq!(p.output(), b"ABCDEFGH");
    }
}
