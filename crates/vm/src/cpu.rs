//! The CPU interpreter.
//!
//! [`Cpu::run`] executes a finalized [`Program`] against a [`Process`],
//! charging cycle costs per instruction and faulting exactly where a real
//! machine (plus glibc's `__stack_chk_fail`) would: canary mismatches abort
//! the process, unmapped accesses segfault, and a `ret` through a corrupted
//! return address either lands on an invalid address or — when it matches the
//! attacker's chosen target — counts as a successful control-flow hijack.

use polycanary_crypto::Aes128;

use crate::error::{Fault, VmError};
use crate::inst::{FuncId, Inst};
use crate::process::Process;
use crate::program::Program;
use crate::reg::{Reg, RegisterFile};
use crate::tls::TLS_DCR_HEAD_OFFSET;

/// Synthetic return address pushed below the entry function; `ret`-ing to it
/// terminates the execution normally.
pub const RETURN_SENTINEL: u64 = 0xFFFF_FFFF_FFFF_FF00;

/// Configuration of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Upper bound on executed instructions (guards against runaway loops).
    pub max_instructions: u64,
    /// The attacker's desired return target.  A `ret` to this address is
    /// reported as [`Fault::ControlFlowHijacked`], i.e. a successful,
    /// undetected attack.
    pub hijack_target: Option<u64>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { max_instructions: 50_000_000, hijack_target: None }
    }
}

/// How an execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exit {
    /// The entry function returned; the payload is the value of `%rax`.
    Normal(u64),
    /// The process faulted.
    Fault(Fault),
}

impl Exit {
    /// Whether the execution completed without a fault.
    pub fn is_normal(&self) -> bool {
        matches!(self, Exit::Normal(_))
    }

    /// Whether the execution ended with the stack protector firing.
    pub fn is_detection(&self) -> bool {
        matches!(self, Exit::Fault(f) if f.is_detection())
    }

    /// Whether the execution ended with a successful control-flow hijack.
    pub fn is_hijack(&self) -> bool {
        matches!(self, Exit::Fault(f) if f.is_hijack())
    }
}

/// Result of one execution: how it ended plus the cost accounting used by
/// every performance experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// How the execution ended.
    pub exit: Exit,
    /// Total simulated cycles consumed.
    pub cycles: u64,
    /// Number of instructions executed.
    pub instructions: u64,
}

/// The CPU state of one execution.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: RegisterFile,
    zero_flag: bool,
    /// Cycles consumed so far.
    pub cycles: u64,
    /// Instructions executed so far.
    pub instructions: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a CPU with zeroed registers.
    pub fn new() -> Self {
        Cpu { regs: RegisterFile::new(), zero_flag: false, cycles: 0, instructions: 0 }
    }

    /// Read access to the register file (useful in tests and hooks).
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable access to the register file (used by startup hooks that park
    /// the P-SSP-OWF key in `r12:r13`).
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Runs `entry` to completion.
    ///
    /// The program must be finalized (addresses assigned); this is a
    /// programming error, not a simulated fault, hence the panic.
    ///
    /// # Panics
    ///
    /// Panics if the program has not been finalized.
    pub fn run(
        &mut self,
        program: &Program,
        process: &mut Process,
        entry: FuncId,
        cfg: &ExecConfig,
    ) -> Exit {
        assert!(program.is_finalized(), "program must be finalized before execution");

        // Loader-provided key registers for P-SSP-OWF.
        if let Some((lo, hi)) = process.owf_key {
            self.regs.write(Reg::R12, lo);
            self.regs.write(Reg::R13, hi);
        }

        let stack_top = process.memory.stack_top();
        self.regs.write(Reg::Rsp, stack_top);
        self.regs.write(Reg::Rbp, 0);

        // Push the sentinel return address for the entry function.
        if let Err(fault) = self.push_word(process, RETURN_SENTINEL) {
            return Exit::Fault(fault);
        }

        let mut fid = entry;
        let mut idx = 0usize;

        loop {
            if self.instructions >= cfg.max_instructions {
                return Exit::Fault(Fault::InstructionLimit);
            }
            let func = match program.function(fid) {
                Ok(f) => f,
                Err(_) => return Exit::Fault(Fault::InvalidReturn { addr: 0 }),
            };
            if idx >= func.insts().len() {
                // Fell off the end of a function without `ret`.
                return Exit::Fault(Fault::InvalidReturn {
                    addr: func.entry_addr() + func.encoded_size(),
                });
            }
            let inst = &func.insts()[idx];
            self.instructions += 1;
            self.cycles += inst.cycles();

            match self.step(program, process, fid, idx, inst, cfg) {
                Ok(Flow::Next) => idx += 1,
                Ok(Flow::Skip(n)) => idx += 1 + n,
                Ok(Flow::Call { target, return_addr }) => {
                    if let Err(fault) = self.push_word(process, return_addr) {
                        return Exit::Fault(fault);
                    }
                    fid = target;
                    idx = 0;
                }
                Ok(Flow::Return) => {
                    let addr = match self.pop_word(process) {
                        Ok(a) => a,
                        Err(fault) => return Exit::Fault(fault),
                    };
                    if addr == RETURN_SENTINEL {
                        return Exit::Normal(self.regs.read(Reg::Rax));
                    }
                    if cfg.hijack_target == Some(addr) {
                        return Exit::Fault(Fault::ControlFlowHijacked { addr });
                    }
                    match program.lookup_addr(addr) {
                        Some((f, i)) => {
                            fid = f;
                            idx = i;
                        }
                        None => return Exit::Fault(Fault::InvalidReturn { addr }),
                    }
                }
                Err(fault) => return Exit::Fault(fault),
            }
        }
    }

    fn push_word(&mut self, process: &mut Process, value: u64) -> Result<(), Fault> {
        let rsp = self.regs.read(Reg::Rsp).wrapping_sub(8);
        if rsp < process.memory.stack_limit() {
            return Err(Fault::StackExhausted);
        }
        self.regs.write(Reg::Rsp, rsp);
        process.memory.write_u64(rsp, value).map_err(mem_fault)
    }

    fn pop_word(&mut self, process: &mut Process) -> Result<u64, Fault> {
        let rsp = self.regs.read(Reg::Rsp);
        let value = process.memory.read_u64(rsp).map_err(mem_fault)?;
        self.regs.write(Reg::Rsp, rsp.wrapping_add(8));
        Ok(value)
    }

    #[allow(clippy::too_many_lines)]
    fn step(
        &mut self,
        program: &Program,
        process: &mut Process,
        fid: FuncId,
        idx: usize,
        inst: &Inst,
        _cfg: &ExecConfig,
    ) -> Result<Flow, Fault> {
        let rbp = self.regs.read(Reg::Rbp);
        let func_name = program.function(fid).expect("fid was validated by run loop").name();
        match inst {
            Inst::PushReg(r) => {
                let v = self.regs.read(*r);
                self.push_word(process, v)?;
            }
            Inst::PopReg(r) => {
                let v = self.pop_word(process)?;
                self.regs.write(*r, v);
            }
            Inst::MovRegReg { dst, src } => {
                let v = self.regs.read(*src);
                self.regs.write(*dst, v);
            }
            Inst::SubRspImm(imm) => {
                let rsp = self.regs.read(Reg::Rsp).wrapping_sub(u64::from(*imm));
                if rsp < process.memory.stack_limit() {
                    return Err(Fault::StackExhausted);
                }
                self.regs.write(Reg::Rsp, rsp);
            }
            Inst::AddRspImm(imm) => {
                let rsp = self.regs.read(Reg::Rsp).wrapping_add(u64::from(*imm));
                self.regs.write(Reg::Rsp, rsp);
            }
            Inst::Leave => {
                self.regs.write(Reg::Rsp, rbp);
                let saved = self.pop_word(process)?;
                self.regs.write(Reg::Rbp, saved);
            }
            Inst::Ret => return Ok(Flow::Return),
            Inst::MovTlsToReg { dst, offset } => {
                let v = process.tls.read_word(*offset).map_err(tls_fault)?;
                self.regs.write(*dst, v);
            }
            Inst::MovRegToTls { src, offset } => {
                let v = self.regs.read(*src);
                process.tls.write_word(*offset, v).map_err(tls_fault)?;
            }
            Inst::MovRegToFrame { src, offset } => {
                let v = self.regs.read(*src);
                process.memory.write_u64(frame_addr(rbp, *offset), v).map_err(mem_fault)?;
            }
            Inst::MovFrameToReg { dst, offset } => {
                let v = process.memory.read_u64(frame_addr(rbp, *offset)).map_err(mem_fault)?;
                self.regs.write(*dst, v);
            }
            Inst::MovFrameToReg32 { dst, offset } => {
                let v = process.memory.read_u32(frame_addr(rbp, *offset)).map_err(mem_fault)?;
                self.regs.write32(*dst, v);
            }
            Inst::MovRegToFrame32 { src, offset } => {
                let v = self.regs.read32(*src);
                process.memory.write_u32(frame_addr(rbp, *offset), v).map_err(mem_fault)?;
            }
            Inst::MovImmToReg { dst, imm } => self.regs.write(*dst, *imm),
            Inst::MovImmToFrame { offset, imm } => {
                process.memory.write_u32(frame_addr(rbp, *offset), *imm).map_err(mem_fault)?;
            }
            Inst::LeaFrameToReg { dst, offset } => {
                self.regs.write(*dst, frame_addr(rbp, *offset));
            }
            Inst::MovMemToReg { dst, base, offset } => {
                let addr = frame_addr(self.regs.read(*base), *offset);
                let v = process.memory.read_u64(addr).map_err(mem_fault)?;
                self.regs.write(*dst, v);
            }
            Inst::MovRegToMem { src, base, offset } => {
                let addr = frame_addr(self.regs.read(*base), *offset);
                let v = self.regs.read(*src);
                process.memory.write_u64(addr, v).map_err(mem_fault)?;
            }
            Inst::XorRegReg { dst, src } => {
                let v = self.regs.read(*dst) ^ self.regs.read(*src);
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::XorTlsReg { dst, offset } => {
                let tls_word = process.tls.read_word(*offset).map_err(tls_fault)?;
                let v = self.regs.read(*dst) ^ tls_word;
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::AddRegReg { dst, src } => {
                let v = self.regs.read(*dst).wrapping_add(self.regs.read(*src));
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::ShlRegImm { dst, amount } => {
                let v = self.regs.read(*dst).wrapping_shl(u32::from(*amount));
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::ShrRegImm { dst, amount } => {
                let v = self.regs.read(*dst).wrapping_shr(u32::from(*amount));
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::OrRegReg { dst, src } => {
                let v = self.regs.read(*dst) | self.regs.read(*src);
                self.regs.write(*dst, v);
                self.zero_flag = v == 0;
            }
            Inst::CmpFrameReg { reg, offset } => {
                let mem_val =
                    process.memory.read_u64(frame_addr(rbp, *offset)).map_err(mem_fault)?;
                self.zero_flag = mem_val == self.regs.read(*reg);
            }
            Inst::CmpRegImm { reg, imm } => {
                self.zero_flag = self.regs.read(*reg) == *imm;
            }
            Inst::TestReg(r) => {
                self.zero_flag = self.regs.read(*r) == 0;
            }
            Inst::JeSkip(n) => {
                if self.zero_flag {
                    return Ok(Flow::Skip(*n));
                }
            }
            Inst::JneSkip(n) => {
                if !self.zero_flag {
                    return Ok(Flow::Skip(*n));
                }
            }
            Inst::JmpSkip(n) => return Ok(Flow::Skip(*n)),
            Inst::CallFn(target) => {
                let func = program.function(fid).expect("fid validated");
                let cur_addr = func.inst_addr(idx).expect("idx validated");
                let return_addr = cur_addr + inst.encoded_size();
                return Ok(Flow::Call { target: *target, return_addr });
            }
            Inst::CallStackChkFail => {
                return Err(Fault::CanaryViolation { function: func_name.to_string() });
            }
            Inst::CallCheckCanary32 => {
                // Patched __stack_chk_fail of Fig. 3/4: rdi carries the packed
                // 32-bit canary pair (C0 || C1).  The check passes when
                // C0 xor C1 equals the low half of the TLS canary, or — for
                // compatibility with plain SSP callers — when rdi equals the
                // full 64-bit TLS canary.
                let rdi = self.regs.read(Reg::Rdi);
                let c0 = (rdi & 0xFFFF_FFFF) as u32;
                let c1 = (rdi >> 32) as u32;
                let tls_canary = process.tls.canary();
                let pass = (c0 ^ c1) == (tls_canary & 0xFFFF_FFFF) as u32 || rdi == tls_canary;
                if pass {
                    self.zero_flag = true;
                } else {
                    return Err(Fault::CanaryViolation { function: func_name.to_string() });
                }
            }
            Inst::Nop => {}
            Inst::Rdrand(dst) => {
                // `rdrand` retries on transient failure; the retry cost is
                // charged on top of the base cost already added by `run`.
                let (value, total_cycles) = process.hwrng.rdrand_retrying();
                self.cycles += total_cycles.saturating_sub(inst.cycles());
                self.regs.write(*dst, value);
            }
            Inst::Rdtsc => {
                let (value, _) =
                    process.tsc.rdtsc(self.cycles).map_err(|_| Fault::EntropyFailure)?;
                self.regs.write(Reg::Rax, value);
            }
            Inst::AesEncryptFrame { nonce } => {
                let key_lo = self.regs.read(Reg::R12);
                let key_hi = self.regs.read(Reg::R13);
                let ret_addr = process.memory.read_u64(frame_addr(rbp, 8)).map_err(mem_fault)?;
                let nonce_val = self.regs.read(*nonce);
                let (lo, hi) =
                    Aes128::from_words(key_lo, key_hi).encrypt_words(nonce_val, ret_addr);
                self.regs.write(Reg::Rax, lo);
                self.regs.write(Reg::Rdx, hi);
            }
            Inst::RecordCanaryAddress { offset } => {
                process.canary_addresses.push(frame_addr(rbp, *offset));
            }
            Inst::PopCanaryAddress => {
                process.canary_addresses.pop();
            }
            Inst::LinkCanaryPush { offset } => {
                let addr = frame_addr(rbp, *offset);
                process.dcr_list.push(addr);
                process.tls.write_word(TLS_DCR_HEAD_OFFSET, addr).map_err(tls_fault)?;
            }
            Inst::LinkCanaryPop { .. } => {
                process.dcr_list.pop();
                let head = process.dcr_list.last().copied().unwrap_or(0);
                process.tls.write_word(TLS_DCR_HEAD_OFFSET, head).map_err(tls_fault)?;
            }
            Inst::CopyInputToFrame { offset } => {
                let dest = frame_addr(rbp, *offset);
                let data = process.input().to_vec();
                self.cycles += (data.len() as u64) / 8 + 1;
                process.memory.write_bytes(dest, &data).map_err(mem_fault)?;
            }
            Inst::CopyInputToFrameBounded { offset, max_len } => {
                let dest = frame_addr(rbp, *offset);
                let len = process.input().len().min(*max_len as usize);
                let data = process.input()[..len].to_vec();
                self.cycles += (data.len() as u64) / 8 + 1;
                process.memory.write_bytes(dest, &data).map_err(mem_fault)?;
            }
            Inst::InputLenToReg(r) => {
                let len = process.input().len() as u64;
                self.regs.write(*r, len);
            }
            Inst::OutputReg(r) => {
                let bytes = self.regs.read(*r).to_le_bytes();
                process.push_output(&bytes);
            }
            Inst::Compute(_) => {}
        }
        Ok(Flow::Next)
    }
}

/// Internal control-flow outcome of a single instruction.
enum Flow {
    Next,
    Skip(usize),
    Call { target: FuncId, return_addr: u64 },
    Return,
}

fn frame_addr(base: u64, offset: i32) -> u64 {
    if offset >= 0 {
        base.wrapping_add(offset as u64)
    } else {
        base.wrapping_sub(offset.unsigned_abs() as u64)
    }
}

fn mem_fault(err: VmError) -> Fault {
    match err {
        VmError::UnmappedAddress { addr } | VmError::PartialAccess { addr, .. } => {
            Fault::MemoryFault { addr }
        }
        _ => Fault::MemoryFault { addr: 0 },
    }
}

fn tls_fault(err: VmError) -> Fault {
    match err {
        VmError::TlsOutOfRange { offset } => Fault::MemoryFault { addr: offset },
        _ => Fault::MemoryFault { addr: 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DEFAULT_STACK_SIZE;
    use crate::process::Pid;

    fn fresh_process() -> Process {
        Process::new(Pid(1), 7, DEFAULT_STACK_SIZE)
    }

    fn run_single(insts: Vec<Inst>, process: &mut Process) -> (Exit, Cpu) {
        let mut prog = Program::new();
        let f = prog.add_function("main", insts).unwrap();
        prog.set_entry(f);
        prog.finalize();
        let mut cpu = Cpu::new();
        let exit = cpu.run(&prog, process, f, &ExecConfig::default());
        (exit, cpu)
    }

    #[test]
    fn returns_rax_on_normal_exit() {
        let mut p = fresh_process();
        let (exit, _) =
            run_single(vec![Inst::MovImmToReg { dst: Reg::Rax, imm: 42 }, Inst::Ret], &mut p);
        assert_eq!(exit, Exit::Normal(42));
    }

    #[test]
    fn frame_setup_and_teardown() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x20),
            Inst::MovImmToReg { dst: Reg::Rax, imm: 5 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x10 },
            Inst::MovFrameToReg { dst: Reg::Rbx, offset: -0x10 },
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, cpu) = run_single(insts, &mut p);
        assert!(exit.is_normal());
        assert_eq!(cpu.regs().read(Reg::Rbx), 5);
    }

    #[test]
    fn ssp_epilogue_passes_with_intact_canary() {
        let mut p = fresh_process();
        p.tls.set_canary(0x1122_3344_5566_7788);
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            // epilogue
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_normal(), "intact canary must not trigger the protector: {exit:?}");
    }

    #[test]
    fn ssp_epilogue_detects_clobbered_canary() {
        let mut p = fresh_process();
        p.tls.set_canary(0x1122_3344_5566_7788);
        p.set_input(vec![0x41u8; 24]); // 16-byte buffer + 8 bytes into the canary
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x20),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            Inst::CopyInputToFrame { offset: -0x18 }, // buffer at rbp-0x18..rbp-0x8
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_detection(), "overflow must be detected: {exit:?}");
    }

    #[test]
    fn overflow_without_protection_hijacks_control_flow() {
        let mut p = fresh_process();
        // Craft input: 16 bytes of filler, 8 bytes saved rbp, then the
        // attacker's return address.
        let target = 0x41414141u64;
        let mut input = vec![0x41u8; 24];
        input.extend_from_slice(&target.to_le_bytes());
        p.set_input(input);
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::CopyInputToFrame { offset: -0x10 },
            Inst::Leave,
            Inst::Ret,
        ];
        let mut prog = Program::new();
        let f = prog.add_function("victim", insts).unwrap();
        prog.set_entry(f);
        prog.finalize();
        let mut cpu = Cpu::new();
        let cfg = ExecConfig { hijack_target: Some(target), ..ExecConfig::default() };
        let exit = cpu.run(&prog, &mut p, f, &cfg);
        assert!(exit.is_hijack(), "unprotected overflow must hijack: {exit:?}");
    }

    #[test]
    fn call_and_return_across_functions() {
        let mut prog = Program::new();
        let callee = prog
            .add_function("callee", vec![Inst::MovImmToReg { dst: Reg::Rax, imm: 99 }, Inst::Ret])
            .unwrap();
        let caller = prog
            .add_function(
                "caller",
                vec![
                    Inst::PushReg(Reg::Rbp),
                    Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
                    Inst::CallFn(callee),
                    Inst::Leave,
                    Inst::Ret,
                ],
            )
            .unwrap();
        prog.set_entry(caller);
        prog.finalize();
        let mut p = fresh_process();
        let mut cpu = Cpu::new();
        let exit = cpu.run(&prog, &mut p, caller, &ExecConfig::default());
        assert_eq!(exit, Exit::Normal(99));
    }

    #[test]
    fn instruction_limit_is_enforced() {
        let mut p = fresh_process();
        // An infinite loop: jmp back to itself is impossible with forward
        // skips, so use mutual recursion without returning.
        let mut prog = Program::new();
        let f = prog.add_function("loops", vec![Inst::Nop, Inst::JmpSkip(0)]).unwrap();
        // JmpSkip(0) just falls through; build a self-call instead.
        prog.replace_function_body(f, vec![Inst::CallFn(FuncId(0)), Inst::Ret]).unwrap();
        prog.set_entry(f);
        prog.finalize();
        let mut cpu = Cpu::new();
        let cfg = ExecConfig { max_instructions: 10_000, ..ExecConfig::default() };
        let exit = cpu.run(&prog, &mut p, f, &cfg);
        assert!(
            matches!(
                exit,
                Exit::Fault(Fault::InstructionLimit) | Exit::Fault(Fault::StackExhausted)
            ),
            "unbounded recursion must hit a limit: {exit:?}"
        );
    }

    #[test]
    fn rdrand_writes_register_and_charges_cycles() {
        let mut p = fresh_process();
        let (exit, cpu) = run_single(vec![Inst::Rdrand(Reg::Rax), Inst::Ret], &mut p);
        match exit {
            Exit::Normal(v) => assert_ne!(v, 0),
            other => panic!("unexpected exit {other:?}"),
        }
        assert!(cpu.cycles >= polycanary_crypto::cost::RDRAND_CYCLES);
    }

    #[test]
    fn rdtsc_is_monotonic_across_instructions() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x20),
            Inst::Rdtsc,
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            Inst::Rdtsc,
            Inst::MovRegReg { dst: Reg::Rbx, src: Reg::Rax },
            Inst::MovFrameToReg { dst: Reg::Rcx, offset: -0x8 },
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, cpu) = run_single(insts, &mut p);
        assert!(exit.is_normal());
        assert!(cpu.regs().read(Reg::Rbx) > cpu.regs().read(Reg::Rcx));
    }

    #[test]
    fn aes_encrypt_frame_is_deterministic_given_state() {
        let mut prog = Program::new();
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::MovImmToReg { dst: Reg::Rcx, imm: 1234 },
            Inst::AesEncryptFrame { nonce: Reg::Rcx },
            Inst::Leave,
            Inst::Ret,
        ];
        let f = prog.add_function("owf", insts).unwrap();
        prog.set_entry(f);
        prog.finalize();

        let run = || {
            let mut p = fresh_process();
            p.owf_key = Some((111, 222));
            let mut cpu = Cpu::new();
            let exit = cpu.run(&prog, &mut p, f, &ExecConfig::default());
            assert!(exit.is_normal());
            (cpu.regs().read(Reg::Rax), cpu.regs().read(Reg::Rdx))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bounded_copy_cannot_overflow() {
        let mut p = fresh_process();
        p.tls.set_canary(0xAAAA_BBBB_CCCC_DDDD);
        p.set_input(vec![0x42u8; 200]);
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x20),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            Inst::CopyInputToFrameBounded { offset: -0x18, max_len: 16 },
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_normal(), "bounded copy must not clobber the canary: {exit:?}");
    }

    #[test]
    fn canary_bookkeeping_pseudo_instructions_update_process_state() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::RecordCanaryAddress { offset: -0x8 },
            Inst::LinkCanaryPush { offset: -0x8 },
            Inst::Leave,
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_normal());
        assert_eq!(p.canary_addresses.len(), 1);
        assert_eq!(p.dcr_list.len(), 1);
        assert_eq!(p.tls.read_word(TLS_DCR_HEAD_OFFSET).unwrap(), p.dcr_list[0]);
    }

    #[test]
    fn memory_fault_on_wild_store() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::MovImmToReg { dst: Reg::Rbx, imm: 0x1234 },
            Inst::MovRegToMem { src: Reg::Rax, base: Reg::Rbx, offset: 0 },
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(matches!(exit, Exit::Fault(Fault::MemoryFault { .. })));
    }

    #[test]
    fn output_reg_reaches_process_output() {
        let mut p = fresh_process();
        let insts = vec![
            Inst::MovImmToReg { dst: Reg::Rax, imm: 0x4847_4645_4443_4241 },
            Inst::OutputReg(Reg::Rax),
            Inst::Ret,
        ];
        let (exit, _) = run_single(insts, &mut p);
        assert!(exit.is_normal());
        assert_eq!(p.output(), b"ABCDEFGH");
    }
}
