//! Immutable machine snapshots: build a victim once, boot it many times.
//!
//! Fleet-scale campaigns (10^5+ victims of the same binary) cannot afford
//! to re-compile the program and re-allocate a zeroed address space per
//! victim.  A [`Snapshot`] captures everything about a booted
//! [`Machine`](crate::machine::Machine) that is *seed-independent* — the
//! finalized program (shared by `Arc`), the execution configuration and
//! the pristine post-`init` memory image — so that
//! [`Machine::from_snapshot`](crate::machine::Machine::from_snapshot) plus
//! [`Machine::restore`](crate::machine::Machine::restore) reproduce
//! [`Machine::new`](crate::machine::Machine::new) plus
//! [`Machine::spawn`](crate::machine::Machine::spawn) bit for bit, at the
//! cost of two `Arc` bumps instead of a compile and a page allocation.
//!
//! Everything seed-*dependent* (the pid sequence, the loader's canary
//! draws, the per-process entropy devices, the runtime hooks' startup
//! effects) is deliberately **not** captured: it is re-derived from the
//! boot seed on every restore, which is exactly what makes a restored
//! victim indistinguishable from a freshly built one.
//!
//! The finalized program carries its pre-decoded dispatch stream (see
//! `crate::decode`), so sharing the program by `Arc` also shares the
//! decode cache: a snapshot-booted worker reaches its first guest
//! instruction without re-decoding — or re-walking — any setup.

use std::sync::Arc;

use crate::cpu::ExecConfig;
use crate::mem::Memory;
use crate::program::Program;

/// An immutable, cheaply clonable capture of a machine's seed-independent
/// boot state: finalized program, execution configuration and the pristine
/// memory image new processes start from.
///
/// Cloning a `Snapshot` — and restoring a process from one — shares the
/// program and the image pages by reference count; the copy-on-write
/// [`Memory`] unshares pages only when a process writes to them.
///
/// ```
/// use polycanary_vm::{Inst, Machine, NoHooks, Program, Reg, Snapshot};
///
/// let mut program = Program::new();
/// let main = program
///     .add_function("main", vec![Inst::MovImmToReg { dst: Reg::Rax, imm: 7 }, Inst::Ret])
///     .unwrap();
/// program.set_entry(main);
///
/// // The classic boot path and the snapshot path produce identical
/// // processes for the same seed.
/// let mut fresh = Machine::new(program.clone(), Box::new(NoHooks), 9);
/// let snapshot = fresh.snapshot();
/// let mut restored = Machine::from_snapshot(&snapshot, Box::new(NoHooks), 9);
/// let a = fresh.spawn();
/// let b = restored.restore(&snapshot);
/// assert_eq!(a.pid(), b.pid());
/// assert_eq!(a.tls.canary(), b.tls.canary());
/// assert!(a.memory == b.memory);
/// ```
#[derive(Debug, Clone)]
pub struct Snapshot {
    program: Arc<Program>,
    exec_config: ExecConfig,
    stack_size: u64,
    image: Memory,
}

impl Snapshot {
    /// Captures a snapshot directly from its parts, finalizing the program
    /// if needed.  Equivalent to booting a throwaway
    /// [`Machine`](crate::machine::Machine) with this configuration and
    /// calling [`Machine::snapshot`](crate::machine::Machine::snapshot).
    pub fn new(mut program: Program, exec_config: ExecConfig, stack_size: u64) -> Self {
        if !program.is_finalized() {
            program.finalize();
        }
        Snapshot::from_parts(Arc::new(program), exec_config, stack_size)
    }

    pub(crate) fn from_parts(
        program: Arc<Program>,
        exec_config: ExecConfig,
        stack_size: u64,
    ) -> Self {
        let image = Memory::with_stack_size(stack_size);
        Snapshot { program, exec_config, stack_size, image }
    }

    /// The finalized program this snapshot boots.
    pub fn program(&self) -> &Program {
        &self.program
    }

    pub(crate) fn program_arc(&self) -> Arc<Program> {
        Arc::clone(&self.program)
    }

    /// The execution configuration restored machines run under.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec_config
    }

    /// The stack size (bytes) of processes restored from this snapshot.
    pub fn stack_size(&self) -> u64 {
        self.stack_size
    }

    /// The pristine post-`init` memory image restored processes start
    /// from.  Restores clone it, which shares its pages copy-on-write.
    pub fn image(&self) -> &Memory {
        &self.image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::machine::{Machine, NoHooks};
    use crate::reg::Reg;

    fn trivial_program() -> Program {
        let mut prog = Program::new();
        let main = prog
            .add_function("main", vec![Inst::MovImmToReg { dst: Reg::Rax, imm: 7 }, Inst::Ret])
            .unwrap();
        prog.set_entry(main);
        prog
    }

    #[test]
    fn snapshot_finalizes_the_program() {
        let snapshot = Snapshot::new(trivial_program(), ExecConfig::default(), 8192);
        assert!(snapshot.program().is_finalized());
        assert_eq!(snapshot.stack_size(), 8192);
    }

    #[test]
    fn snapshot_clones_share_the_program_and_image_pages() {
        let snapshot = Snapshot::new(trivial_program(), ExecConfig::default(), 8192);
        let clone = snapshot.clone();
        assert!(Arc::ptr_eq(&snapshot.program, &clone.program));
        assert!(snapshot.image().shares_pages_with(clone.image()));
    }

    #[test]
    fn restored_image_clones_share_pages_until_written() {
        let snapshot = Snapshot::new(trivial_program(), ExecConfig::default(), 8192);
        let a = snapshot.image().clone();
        let mut b = snapshot.image().clone();
        assert!(a.shares_pages_with(&b));
        b.write_u8(b.stack_top() - 1, 0x41).unwrap();
        assert!(!snapshot.image().shares_pages_with(&b));
        assert!(snapshot.image().shares_pages_with(&a));
    }

    #[test]
    fn machine_snapshot_preserves_exec_config_and_stack_size() {
        let mut machine = Machine::new(trivial_program(), Box::new(NoHooks), 3);
        machine.exec_config.hijack_target = Some(0xBAD);
        machine.set_stack_size(16 * 1024);
        let snapshot = machine.snapshot();
        assert_eq!(snapshot.exec_config().hijack_target, Some(0xBAD));
        assert_eq!(snapshot.stack_size(), 16 * 1024);
        let restored = Machine::from_snapshot(&snapshot, Box::new(NoHooks), 3);
        assert_eq!(restored.exec_config.hijack_target, Some(0xBAD));
    }
}
