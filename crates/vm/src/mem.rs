//! Process memory: a stack segment and a globals segment.
//!
//! Stack buffer overflow is a *memory layout* phenomenon, so the simulator
//! models the stack as a real byte array at realistic virtual addresses with
//! the downward growth direction of x86-64.  Overflowing a local buffer
//! therefore overwrites — in this order — higher-addressed locals, the stack
//! canary slot(s), the saved frame pointer and finally the saved return
//! address, exactly as on the paper's platform (Figure 1).
//!
//! The globals segment hosts the per-thread global buffer of the §VII-C
//! layout-preserving variant (Figure 6) and any global state the synthetic
//! workloads need.
//!
//! Both segments are reference-counted pages with copy-on-write semantics:
//! cloning a [`Memory`] — which is what `fork()` and snapshot restores do —
//! only bumps two `Arc`s, and a segment is copied the first time either
//! side writes to it.  A forked worker that never touches its globals never
//! pays for them, which is what lets a fleet campaign boot 10^5 victims
//! without materialising 10^5 address spaces.

use std::sync::Arc;

use crate::error::VmError;

/// Highest stack address + 1 (the stack grows down from here).
pub const STACK_TOP: u64 = 0x7FFF_FFFF_F000;
/// Default stack segment size in bytes.
pub const DEFAULT_STACK_SIZE: u64 = 64 * 1024;
/// Base address of the globals segment.
pub const GLOBAL_BASE: u64 = 0x0060_0000;
/// Default globals segment size in bytes.
pub const DEFAULT_GLOBAL_SIZE: u64 = 64 * 1024;

/// One reference-counted segment of a process image.
///
/// A segment is `Shared` while it may alias another process (fresh images,
/// fork children, snapshot restores) and becomes `Owned` on the first
/// write.  The distinction is what keeps the interpreter's write gateway
/// atomics-free: `Arc::make_mut` performs a compare-and-swap on the weak
/// count on *every* call — ~10 ns per guest store even when the segment is
/// long since unshared — whereas an `Owned` segment hands out `&mut`
/// directly.  [`Pages::share`] converts back to `Shared` so `fork()` stays
/// an `Arc` bump per segment.
#[derive(Debug)]
enum Pages {
    Shared(Arc<Vec<u8>>),
    Owned(Vec<u8>),
}

impl Pages {
    fn new(size: usize) -> Self {
        Pages::Shared(Arc::new(vec![0u8; size]))
    }

    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            Pages::Shared(arc) => arc,
            Pages::Owned(vec) => vec,
        }
    }

    /// The single write gateway: the first write to a `Shared` segment
    /// copies it (the copy-on-write fault); an `Owned` segment is handed
    /// out with no refcount traffic at all.
    #[inline]
    fn bytes_mut(&mut self) -> &mut Vec<u8> {
        if let Pages::Shared(arc) = self {
            *self = Pages::Owned(arc.as_ref().clone());
        }
        match self {
            Pages::Owned(vec) => vec,
            Pages::Shared(_) => unreachable!("converted to Owned above"),
        }
    }

    /// Converts an `Owned` segment back to `Shared` (without copying) so a
    /// subsequent [`Clone`] is an `Arc` bump.  `fork()` calls this on the
    /// parent: the child then shares the parent's written frames — the
    /// §II-B caveat — and the byte copy is deferred to whichever side
    /// writes first.
    fn share(&mut self) {
        if let Pages::Owned(vec) = self {
            *self = Pages::Shared(Arc::new(std::mem::take(vec)));
        }
    }

    fn ptr_eq(&self, other: &Pages) -> bool {
        match (self, other) {
            (Pages::Shared(a), Pages::Shared(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Clone for Pages {
    fn clone(&self) -> Self {
        match self {
            Pages::Shared(arc) => Pages::Shared(Arc::clone(arc)),
            // Cloning an owned segment has to copy; fork avoids this by
            // calling `share` on the parent first.
            Pages::Owned(vec) => Pages::Shared(Arc::new(vec.clone())),
        }
    }
}

/// The memory of one simulated process (stack + globals).
///
/// Cloning a [`Memory`] models `fork()`: the child receives a copy-on-write
/// image which, for the purposes of canary semantics, behaves as an
/// independent byte-for-byte copy — crucially *including* the stack frames
/// that the parent pushed before forking (§II-B, "Caveat").  The clone
/// itself is an `Arc` bump per segment; the actual byte copy happens lazily
/// on the first write to each segment (see the private `Pages` state).
#[derive(Debug, Clone)]
pub struct Memory {
    stack: Pages,
    stack_size: u64,
    globals: Pages,
    global_size: u64,
}

impl PartialEq for Memory {
    /// Equality is by *contents*: two images are equal iff their segments
    /// hold the same bytes, regardless of whether those bytes are shared,
    /// owned or aliased.
    fn eq(&self, other: &Memory) -> bool {
        self.stack_size == other.stack_size
            && self.global_size == other.global_size
            && self.stack.bytes() == other.stack.bytes()
            && self.globals.bytes() == other.globals.bytes()
    }
}

impl Eq for Memory {}

impl Memory {
    /// Creates a memory image with the default segment sizes.
    pub fn new() -> Self {
        Self::with_stack_size(DEFAULT_STACK_SIZE)
    }

    /// Creates a memory image with a custom stack size (rounded up to 16).
    pub fn with_stack_size(stack_size: u64) -> Self {
        let stack_size = stack_size.max(4096).next_multiple_of(16);
        Memory {
            stack: Pages::new(stack_size as usize),
            stack_size,
            globals: Pages::new(DEFAULT_GLOBAL_SIZE as usize),
            global_size: DEFAULT_GLOBAL_SIZE,
        }
    }

    /// Re-shares any segment this process owns outright, so that a
    /// subsequent [`Clone`] — i.e. a `fork()` — is an `Arc` bump per
    /// segment instead of a byte copy.  The owned bytes are moved, not
    /// copied; the next write to either side pays the copy-on-write fault.
    pub fn share_pages(&mut self) {
        self.stack.share();
        self.globals.share();
    }

    /// Whether `self` and `other` still share both underlying segment
    /// allocations — i.e. neither side has written since the clone.  A
    /// diagnostic for the copy-on-write machinery; equality of *contents*
    /// is what `==` checks.
    pub fn shares_pages_with(&self, other: &Memory) -> bool {
        self.stack.ptr_eq(&other.stack) && self.globals.ptr_eq(&other.globals)
    }

    /// The highest valid stack address + 1 (initial `rsp`).
    pub fn stack_top(&self) -> u64 {
        STACK_TOP
    }

    /// The lowest mapped stack address.
    #[inline]
    pub fn stack_limit(&self) -> u64 {
        STACK_TOP - self.stack_size
    }

    /// The base address of the globals segment.
    pub fn global_base(&self) -> u64 {
        GLOBAL_BASE
    }

    /// The size in bytes of the globals segment.
    pub fn global_size(&self) -> u64 {
        self.global_size
    }

    /// Returns `true` if `addr` falls inside the stack segment.
    #[inline]
    pub fn is_stack_addr(&self, addr: u64) -> bool {
        addr >= self.stack_limit() && addr < STACK_TOP
    }

    /// Returns `true` if `addr` falls inside the globals segment.
    #[inline]
    pub fn is_global_addr(&self, addr: u64) -> bool {
        addr >= GLOBAL_BASE && addr < GLOBAL_BASE + self.global_size
    }

    #[inline]
    fn resolve(&self, addr: u64, len: usize) -> Result<(Segment, usize), VmError> {
        let end = addr.checked_add(len as u64).ok_or(VmError::UnmappedAddress { addr })?;
        if self.is_stack_addr(addr) {
            if end <= STACK_TOP {
                Ok((Segment::Stack, (addr - self.stack_limit()) as usize))
            } else {
                Err(VmError::PartialAccess { addr, len })
            }
        } else if self.is_global_addr(addr) {
            if end <= GLOBAL_BASE + self.global_size {
                Ok((Segment::Globals, (addr - GLOBAL_BASE) as usize))
            } else {
                Err(VmError::PartialAccess { addr, len })
            }
        } else {
            Err(VmError::UnmappedAddress { addr })
        }
    }

    #[inline]
    fn segment(&self, seg: Segment) -> &[u8] {
        match seg {
            Segment::Stack => self.stack.bytes(),
            Segment::Globals => self.globals.bytes(),
        }
    }

    /// The single write gateway: unshares the touched segment (and only
    /// that segment) before handing out the mutable bytes.
    #[inline]
    fn segment_mut(&mut self, seg: Segment) -> &mut Vec<u8> {
        match seg {
            Segment::Stack => self.stack.bytes_mut(),
            Segment::Globals => self.globals.bytes_mut(),
        }
    }

    /// Reads a 64-bit little-endian word.
    ///
    /// The fully-in-stack case — every push, pop and frame access of the
    /// interpreter — is answered with a single range check; everything else
    /// (globals, unmapped, straddling) falls back to the generic
    /// `Memory::resolve` path with identical semantics.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnmappedAddress`] or [`VmError::PartialAccess`] if
    /// the access is not fully inside a mapped segment.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> Result<u64, VmError> {
        let limit = self.stack_limit();
        if addr >= limit && addr <= STACK_TOP - 8 {
            let off = (addr - limit) as usize;
            if let Some(bytes) = self.stack.bytes().get(off..off + 8) {
                return Ok(u64::from_le_bytes(bytes.try_into().expect("slice length is 8")));
            }
        }
        let (seg, off) = self.resolve(addr, 8)?;
        let bytes = &self.segment(seg)[off..off + 8];
        Ok(u64::from_le_bytes(bytes.try_into().expect("slice length is 8")))
    }

    /// Writes a 64-bit little-endian word.
    ///
    /// Same in-stack fast path as [`Memory::read_u64`], taken only when the
    /// segment is already unshared (an owned stack is the steady state of a
    /// running process; the first write after a fork still pays the
    /// copy-on-write fault in the fallback).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnmappedAddress`] or [`VmError::PartialAccess`] if
    /// the access is not fully inside a mapped segment.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), VmError> {
        let limit = self.stack_limit();
        if addr >= limit && addr <= STACK_TOP - 8 {
            let off = (addr - limit) as usize;
            if let Pages::Owned(vec) = &mut self.stack {
                if let Some(chunk) = vec.get_mut(off..off + 8) {
                    chunk.copy_from_slice(&value.to_le_bytes());
                    return Ok(());
                }
            }
        }
        let (seg, off) = self.resolve(addr, 8)?;
        self.segment_mut(seg)[off..off + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Same as [`Memory::read_u64`].
    #[inline]
    pub fn read_u32(&self, addr: u64) -> Result<u32, VmError> {
        let (seg, off) = self.resolve(addr, 4)?;
        let bytes = &self.segment(seg)[off..off + 4];
        Ok(u32::from_le_bytes(bytes.try_into().expect("slice length is 4")))
    }

    /// Writes a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Same as [`Memory::write_u64`].
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) -> Result<(), VmError> {
        let (seg, off) = self.resolve(addr, 4)?;
        self.segment_mut(seg)[off..off + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnmappedAddress`] if `addr` is not mapped.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> Result<u8, VmError> {
        let (seg, off) = self.resolve(addr, 1)?;
        Ok(self.segment(seg)[off])
    }

    /// Writes a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnmappedAddress`] if `addr` is not mapped.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), VmError> {
        let (seg, off) = self.resolve(addr, 1)?;
        self.segment_mut(seg)[off] = value;
        Ok(())
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// This is the primitive behind the vulnerable `strcpy`/`read` model: the
    /// copy proceeds towards *higher* addresses and is bounded only by the
    /// mapped segment, so it can run over canaries and the saved return
    /// address.
    ///
    /// # Errors
    ///
    /// Returns an error if any byte of the destination range is unmapped; in
    /// that case no bytes are written (the fault is detected up front, which
    /// models the MMU fault terminating the process before the copy is
    /// observable).
    #[inline]
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), VmError> {
        if data.is_empty() {
            return Ok(());
        }
        let (seg, off) = self.resolve(addr, data.len())?;
        self.segment_mut(seg)[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error if any byte of the source range is unmapped.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, VmError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let (seg, off) = self.resolve(addr, len)?;
        Ok(self.segment(seg)[off..off + len].to_vec())
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Stack,
    Globals,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_word_roundtrip() {
        let mut mem = Memory::new();
        let addr = STACK_TOP - 0x100;
        mem.write_u64(addr, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.read_u64(addr).unwrap(), 0x1122_3344_5566_7788);
    }

    #[test]
    fn global_word_roundtrip() {
        let mut mem = Memory::new();
        mem.write_u64(GLOBAL_BASE + 64, 99).unwrap();
        assert_eq!(mem.read_u64(GLOBAL_BASE + 64).unwrap(), 99);
    }

    #[test]
    fn unmapped_access_is_error() {
        let mem = Memory::new();
        assert!(matches!(mem.read_u64(0x1000), Err(VmError::UnmappedAddress { .. })));
        assert!(matches!(mem.read_u64(0), Err(VmError::UnmappedAddress { .. })));
    }

    #[test]
    fn partial_access_at_stack_top_is_error() {
        let mut mem = Memory::new();
        assert!(mem.write_u64(STACK_TOP - 4, 1).is_err());
        assert!(mem.write_bytes(STACK_TOP - 2, &[0u8; 8]).is_err());
    }

    #[test]
    fn little_endian_byte_order() {
        let mut mem = Memory::new();
        let addr = STACK_TOP - 0x40;
        mem.write_u64(addr, 0x0807_0605_0403_0201).unwrap();
        for i in 0..8u64 {
            assert_eq!(mem.read_u8(addr + i).unwrap(), (i + 1) as u8);
        }
    }

    #[test]
    fn overflow_copy_clobbers_higher_addresses() {
        // Model of the attack: a 16-byte buffer at `buf`, the canary 8 bytes
        // above it; writing 24 bytes from `buf` overwrites the canary.
        let mut mem = Memory::new();
        let buf = STACK_TOP - 0x200;
        let canary_slot = buf + 16;
        mem.write_u64(canary_slot, 0xAAAA_BBBB_CCCC_DDDD).unwrap();
        mem.write_bytes(buf, &[0x41u8; 24]).unwrap();
        assert_eq!(mem.read_u64(canary_slot).unwrap(), 0x4141_4141_4141_4141);
    }

    #[test]
    fn clone_is_independent_after_fork() {
        let mut parent = Memory::new();
        let addr = STACK_TOP - 0x80;
        parent.write_u64(addr, 1).unwrap();
        let mut child = parent.clone();
        child.write_u64(addr, 2).unwrap();
        assert_eq!(parent.read_u64(addr).unwrap(), 1);
        assert_eq!(child.read_u64(addr).unwrap(), 2);
    }

    #[test]
    fn clone_shares_pages_until_first_write() {
        let parent = Memory::new();
        let mut child = parent.clone();
        assert!(parent.shares_pages_with(&child), "a fresh clone copies nothing");
        // A stack write unshares only the stack segment.
        child.write_u64(STACK_TOP - 0x80, 7).unwrap();
        assert!(!parent.shares_pages_with(&child));
        // The globals page is still the parent's allocation: a second clone
        // of the parent shares pages with the parent but not the child.
        assert!(parent.shares_pages_with(&parent.clone()));
        // Contents stay equal wherever untouched.
        assert_eq!(parent.read_u64(GLOBAL_BASE).unwrap(), child.read_u64(GLOBAL_BASE).unwrap());
    }

    #[test]
    fn equality_is_by_contents_not_by_sharing() {
        let a = Memory::new();
        let b = Memory::new();
        assert!(!a.shares_pages_with(&b), "independent images share nothing");
        assert_eq!(a, b, "but their zeroed contents are equal");
    }

    #[test]
    fn custom_stack_size_respected() {
        let mem = Memory::with_stack_size(8192);
        assert_eq!(mem.stack_top() - mem.stack_limit(), 8192);
        assert!(mem.is_stack_addr(STACK_TOP - 8192));
        assert!(!mem.is_stack_addr(STACK_TOP - 8192 - 1));
    }

    #[test]
    fn read_bytes_roundtrip() {
        let mut mem = Memory::new();
        let addr = GLOBAL_BASE + 100;
        mem.write_bytes(addr, b"polymorphic canary").unwrap();
        assert_eq!(mem.read_bytes(addr, 18).unwrap(), b"polymorphic canary");
    }

    #[test]
    fn empty_writes_and_reads_are_noops() {
        let mut mem = Memory::new();
        assert!(mem.write_bytes(0xdead, &[]).is_ok());
        assert_eq!(mem.read_bytes(0xdead, 0).unwrap(), Vec::<u8>::new());
    }

    // Pseudo-random property checks (crates.io is unavailable, so these are
    // driven by the workspace's own deterministic PRNG instead of proptest).

    #[test]
    fn u64_roundtrip_anywhere_in_stack() {
        use polycanary_crypto::prng::Prng;
        let mut rng = polycanary_crypto::SplitMix64::new(0xA11C);
        for _ in 0..256 {
            let offset = 8 + rng.next_u64() % (DEFAULT_STACK_SIZE - 16);
            let value = rng.next_u64();
            let mut mem = Memory::new();
            let addr = mem.stack_limit() + offset;
            mem.write_u64(addr, value).unwrap();
            assert_eq!(mem.read_u64(addr).unwrap(), value, "offset {offset}");
        }
    }

    #[test]
    fn byte_writes_equal_word_write() {
        use polycanary_crypto::prng::Prng;
        let mut rng = polycanary_crypto::SplitMix64::new(0xB22D);
        for _ in 0..256 {
            let value = rng.next_u64();
            let mut a = Memory::new();
            let mut b = Memory::new();
            let addr = STACK_TOP - 0x100;
            a.write_u64(addr, value).unwrap();
            for (i, byte) in value.to_le_bytes().iter().enumerate() {
                b.write_u8(addr + i as u64, *byte).unwrap();
            }
            assert_eq!(a.read_u64(addr).unwrap(), b.read_u64(addr).unwrap());
        }
    }
}
