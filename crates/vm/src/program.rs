//! Programs: collections of functions with assigned virtual addresses.
//!
//! A [`Program`] is the unit the compiler produces and the binary rewriter
//! consumes.  Functions are laid out contiguously in a simulated `.text`
//! section starting at [`CODE_BASE`]; every instruction receives a virtual
//! address derived from the encoded sizes of the instructions before it.
//! Return addresses pushed by `call` are therefore *real* addresses that an
//! overflow can overwrite, and the interpreter translates them back to
//! instruction positions when `ret` executes.

use std::collections::HashMap;
use std::sync::Arc;

use crate::decode::DecodedProgram;
use crate::error::VmError;
use crate::inst::{FuncId, Inst};

/// Base virtual address of the `.text` section.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Alignment of function entry points.
pub const FUNCTION_ALIGN: u64 = 16;

/// One function of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Interned so fault reporting (`__stack_chk_fail` names the detecting
    /// function in every [`Fault::CanaryViolation`](crate::error::Fault))
    /// is a reference-count bump, not a per-fault string allocation.
    name: Arc<str>,
    insts: Vec<Inst>,
    /// Entry address, assigned by [`Program::finalize`].
    entry_addr: u64,
    /// Address of each instruction, assigned by [`Program::finalize`].
    inst_addrs: Vec<u64>,
}

impl Function {
    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function's interned name, shared by reference count.
    pub fn name_interned(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// The function's instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The function's entry address (valid after finalization).
    pub fn entry_addr(&self) -> u64 {
        self.entry_addr
    }

    /// The address of instruction `index` (valid after finalization).
    pub fn inst_addr(&self, index: usize) -> Option<u64> {
        self.inst_addrs.get(index).copied()
    }

    /// Total encoded size of the function in bytes.
    pub fn encoded_size(&self) -> u64 {
        self.insts.iter().map(Inst::encoded_size).sum()
    }
}

/// A complete program: functions, entry point and the address map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    functions: Vec<Function>,
    by_name: HashMap<String, FuncId>,
    entry: Option<FuncId>,
    /// Map from instruction address to (function, instruction index).
    addr_map: HashMap<u64, (FuncId, usize)>,
    /// Extra sections appended by the binary rewriter (name → size in bytes).
    extra_sections: Vec<(String, u64)>,
    /// The flat dispatch cache, rebuilt by [`Program::finalize`] and cleared
    /// on any mutation.  Purely derived from the function bodies, so the
    /// derived equality over it cannot disagree for equal source programs.
    decoded: Option<DecodedProgram>,
    finalized: bool,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program {
            functions: Vec::new(),
            by_name: HashMap::new(),
            entry: None,
            addr_map: HashMap::new(),
            extra_sections: Vec::new(),
            decoded: None,
            finalized: false,
        }
    }

    /// Adds a function and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DuplicateFunction`] if a function with the same
    /// name already exists.
    pub fn add_function(
        &mut self,
        name: impl Into<String>,
        insts: Vec<Inst>,
    ) -> Result<FuncId, VmError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(VmError::DuplicateFunction { name });
        }
        let id = FuncId(self.functions.len());
        self.by_name.insert(name.clone(), id);
        self.functions.push(Function {
            name: Arc::from(name),
            insts,
            entry_addr: 0,
            inst_addrs: Vec::new(),
        });
        self.finalized = false;
        self.decoded = None;
        Ok(id)
    }

    /// Replaces the body of an existing function (used by the rewriter).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnknownFunction`] if `id` is out of range.
    pub fn replace_function_body(&mut self, id: FuncId, insts: Vec<Inst>) -> Result<(), VmError> {
        let func = self
            .functions
            .get_mut(id.0)
            .ok_or_else(|| VmError::UnknownFunction { name: format!("{id}") })?;
        func.insts = insts;
        self.finalized = false;
        self.decoded = None;
        Ok(())
    }

    /// Sets the program entry point.
    pub fn set_entry(&mut self, entry: FuncId) {
        self.entry = Some(entry);
    }

    /// The program entry point.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::MissingEntryPoint`] if no entry was set.
    pub fn entry(&self) -> Result<FuncId, VmError> {
        self.entry.ok_or(VmError::MissingEntryPoint)
    }

    /// Number of functions in the program.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Iterates over `(id, function)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions.iter().enumerate().map(|(i, f)| (FuncId(i), f))
    }

    /// Looks up a function by id.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnknownFunction`] if `id` is out of range.
    pub fn function(&self, id: FuncId) -> Result<&Function, VmError> {
        self.functions.get(id.0).ok_or_else(|| VmError::UnknownFunction { name: format!("{id}") })
    }

    /// Looks up a function id by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Records an extra section added by the binary rewriter (e.g. the
    /// section holding the customised `fork()` for statically linked code).
    pub fn add_extra_section(&mut self, name: impl Into<String>, size: u64) {
        self.extra_sections.push((name.into(), size));
    }

    /// Extra sections appended to the binary.
    pub fn extra_sections(&self) -> &[(String, u64)] {
        &self.extra_sections
    }

    /// Assigns addresses to every function and instruction.
    ///
    /// Calling `finalize` again after mutation recomputes the layout; the
    /// rewriter uses the before/after sizes to verify layout preservation.
    pub fn finalize(&mut self) {
        self.addr_map.clear();
        let mut cursor = CODE_BASE;
        for (idx, func) in self.functions.iter_mut().enumerate() {
            cursor = cursor.next_multiple_of(FUNCTION_ALIGN);
            func.entry_addr = cursor;
            func.inst_addrs.clear();
            for (inst_idx, inst) in func.insts.iter().enumerate() {
                func.inst_addrs.push(cursor);
                self.addr_map.insert(cursor, (FuncId(idx), inst_idx));
                cursor += inst.encoded_size();
            }
            // The address immediately after the last instruction maps to a
            // "one past the end" marker so a call as the final instruction
            // still has a valid return address (it behaves as a return).
            self.addr_map.insert(cursor, (FuncId(idx), func.insts.len()));
            cursor += 1;
        }
        // Addresses are assigned; flatten the bodies into the dispatch
        // cache.  The source `insts` are left untouched — the decode is a
        // pure acceleration that the verifier's source-body proofs ignore.
        self.decoded = Some(DecodedProgram::build(&self.functions));
        self.finalized = true;
    }

    /// Whether [`Program::finalize`] has been called since the last mutation.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// The flat dispatch cache ([`Some`] exactly when finalized).
    pub(crate) fn decoded(&self) -> Option<&DecodedProgram> {
        self.decoded.as_ref()
    }

    /// Translates a virtual address back to `(function, instruction index)`.
    ///
    /// Returns `None` for addresses that are not instruction boundaries —
    /// this is how a corrupted return address is detected as either an
    /// invalid return or a successful hijack.
    pub fn lookup_addr(&self, addr: u64) -> Option<(FuncId, usize)> {
        self.addr_map.get(&addr).copied()
    }

    /// Total encoded size of all original functions (the `.text` section).
    pub fn text_size(&self) -> u64 {
        self.functions.iter().map(Function::encoded_size).sum()
    }

    /// Total binary size: `.text` plus any extra sections.
    pub fn binary_size(&self) -> u64 {
        self.text_size() + self.extra_sections.iter().map(|(_, s)| s).sum::<u64>()
    }
}

impl Default for Program {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn tiny_function() -> Vec<Inst> {
        vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::Compute(10),
            Inst::Leave,
            Inst::Ret,
        ]
    }

    #[test]
    fn add_and_lookup_functions() {
        let mut prog = Program::new();
        let main = prog.add_function("main", tiny_function()).unwrap();
        let helper = prog.add_function("helper", tiny_function()).unwrap();
        assert_eq!(prog.len(), 2);
        assert_eq!(prog.function_by_name("main"), Some(main));
        assert_eq!(prog.function_by_name("helper"), Some(helper));
        assert_eq!(prog.function_by_name("missing"), None);
        assert_eq!(prog.function(main).unwrap().name(), "main");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut prog = Program::new();
        prog.add_function("main", tiny_function()).unwrap();
        let err = prog.add_function("main", tiny_function()).unwrap_err();
        assert_eq!(err, VmError::DuplicateFunction { name: "main".into() });
    }

    #[test]
    fn finalize_assigns_monotonic_addresses() {
        let mut prog = Program::new();
        let a = prog.add_function("a", tiny_function()).unwrap();
        let b = prog.add_function("b", tiny_function()).unwrap();
        prog.finalize();
        let fa = prog.function(a).unwrap();
        let fb = prog.function(b).unwrap();
        assert_eq!(fa.entry_addr(), CODE_BASE);
        assert!(fb.entry_addr() > fa.entry_addr());
        assert_eq!(fb.entry_addr() % FUNCTION_ALIGN, 0);
        // Instruction addresses strictly increase within a function.
        let addrs: Vec<_> = (0..fa.insts().len()).map(|i| fa.inst_addr(i).unwrap()).collect();
        assert!(addrs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lookup_addr_roundtrips() {
        let mut prog = Program::new();
        let a = prog.add_function("a", tiny_function()).unwrap();
        prog.finalize();
        let fa = prog.function(a).unwrap();
        for i in 0..fa.insts().len() {
            let addr = fa.inst_addr(i).unwrap();
            assert_eq!(prog.lookup_addr(addr), Some((a, i)));
        }
        // A misaligned address (mid-instruction) does not resolve.
        assert_eq!(prog.lookup_addr(fa.entry_addr() + 100_000), None);
    }

    #[test]
    fn entry_point_is_required() {
        let mut prog = Program::new();
        let a = prog.add_function("a", tiny_function()).unwrap();
        assert_eq!(prog.entry().unwrap_err(), VmError::MissingEntryPoint);
        prog.set_entry(a);
        assert_eq!(prog.entry().unwrap(), a);
    }

    #[test]
    fn text_size_is_sum_of_functions() {
        let mut prog = Program::new();
        prog.add_function("a", tiny_function()).unwrap();
        prog.add_function("b", tiny_function()).unwrap();
        let one: u64 = tiny_function().iter().map(Inst::encoded_size).sum();
        assert_eq!(prog.text_size(), 2 * one);
    }

    #[test]
    fn extra_sections_grow_binary_size() {
        let mut prog = Program::new();
        prog.add_function("a", tiny_function()).unwrap();
        let before = prog.binary_size();
        prog.add_extra_section(".pssp_static", 512);
        assert_eq!(prog.binary_size(), before + 512);
        assert_eq!(prog.extra_sections().len(), 1);
    }

    #[test]
    fn replace_body_invalidates_finalization() {
        let mut prog = Program::new();
        let a = prog.add_function("a", tiny_function()).unwrap();
        prog.finalize();
        assert!(prog.is_finalized());
        prog.replace_function_body(a, vec![Inst::Ret]).unwrap();
        assert!(!prog.is_finalized());
        prog.finalize();
        assert_eq!(prog.function(a).unwrap().insts().len(), 1);
    }

    #[test]
    fn decode_cache_tracks_finalization() {
        let mut prog = Program::new();
        let a = prog.add_function("a", tiny_function()).unwrap();
        assert!(prog.decoded().is_none());
        prog.finalize();
        assert!(prog.decoded().is_some());
        // Any mutation drops the cache until the next finalize.
        prog.replace_function_body(a, vec![Inst::Ret]).unwrap();
        assert!(prog.decoded().is_none());
        prog.finalize();
        assert!(prog.decoded().is_some());
        prog.add_function("b", tiny_function()).unwrap();
        assert!(prog.decoded().is_none());
    }

    #[test]
    fn finalize_leaves_source_bodies_untouched() {
        // The decode cache must be a pure acceleration: the `&[Inst]`
        // bodies the static verifier proves invariants over are
        // byte-identical before and after the cache is built.
        let mut prog = Program::new();
        let a = prog.add_function("a", tiny_function()).unwrap();
        let before = prog.function(a).unwrap().insts().to_vec();
        prog.finalize();
        assert_eq!(prog.function(a).unwrap().insts(), &before[..]);
    }

    #[test]
    fn replace_body_unknown_function_errors() {
        let mut prog = Program::new();
        assert!(prog.replace_function_body(FuncId(9), vec![]).is_err());
    }
}
