//! The instruction set of the simulated machine.
//!
//! The set is deliberately small: it contains exactly the instructions that
//! appear in the paper's prologue/epilogue listings (Codes 1–9), the handful
//! of pseudo-instructions needed to model library calls such as `strcpy`
//! (the overflow vector) and the bookkeeping that the DynaGuard / DCR
//! baselines perform, plus a generic [`Inst::Compute`] instruction standing
//! in for arbitrary function-body work.
//!
//! Every instruction has
//!
//! * an **encoded size** in bytes approximating its x86-64 encoding — used by
//!   the code-expansion experiment (Table II) and by the binary rewriter's
//!   layout-preservation checks (§V-C), and
//! * a **cycle cost** — used by the runtime-overhead experiments (Fig. 5,
//!   Tables III–V).

use std::fmt;

use polycanary_crypto::cost;

use crate::reg::Reg;

/// Identifier of a function within a [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub usize);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// One instruction of the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Inst {
    // ---- frame management -------------------------------------------------
    /// `push %reg`
    PushReg(Reg),
    /// `pop %reg`
    PopReg(Reg),
    /// `mov %src,%dst`
    MovRegReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `sub $imm,%rsp` — allocate the local frame.
    SubRspImm(u32),
    /// `add $imm,%rsp` — release stack space.
    AddRspImm(u32),
    /// `leaveq`
    Leave,
    /// `retq`
    Ret,

    // ---- data movement ----------------------------------------------------
    /// `mov %fs:offset,%dst` — load a 64-bit word from the TLS.
    MovTlsToReg {
        /// Destination register.
        dst: Reg,
        /// Offset from the TLS base (e.g. `0x28`).
        offset: u64,
    },
    /// `mov %src,%fs:offset` — store a 64-bit word into the TLS.
    MovRegToTls {
        /// Source register.
        src: Reg,
        /// Offset from the TLS base.
        offset: u64,
    },
    /// `mov %src,disp(%rbp)` — store a register into the current frame.
    MovRegToFrame {
        /// Source register.
        src: Reg,
        /// Displacement from `%rbp` (negative for locals, `+8` for the
        /// saved return address).
        offset: i32,
    },
    /// `mov disp(%rbp),%dst` — load a frame slot into a register.
    MovFrameToReg {
        /// Destination register.
        dst: Reg,
        /// Displacement from `%rbp`.
        offset: i32,
    },
    /// `mov disp(%rbp),%dst` / `mov %src,disp(%rbp)` 32-bit variants used by
    /// the binary rewriter's downgraded canaries.
    MovFrameToReg32 {
        /// Destination register (low 32 bits written, zero-extended).
        dst: Reg,
        /// Displacement from `%rbp`.
        offset: i32,
    },
    /// 32-bit store into a frame slot.
    MovRegToFrame32 {
        /// Source register (low 32 bits stored).
        src: Reg,
        /// Displacement from `%rbp`.
        offset: i32,
    },
    /// `mov $imm,%dst` (64-bit immediate).
    MovImmToReg {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `mov $imm,disp(%rbp)` (sign-extended 32-bit immediate).
    MovImmToFrame {
        /// Displacement from `%rbp`.
        offset: i32,
        /// Immediate value.
        imm: u32,
    },
    /// `lea disp(%rbp),%dst` — compute the address of a frame slot.
    LeaFrameToReg {
        /// Destination register.
        dst: Reg,
        /// Displacement from `%rbp`.
        offset: i32,
    },
    /// `mov disp(%base),%dst` — load through an arbitrary base register
    /// (used by the global-buffer variant of §VII-C).
    MovMemToReg {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Displacement from the base register.
        offset: i32,
    },
    /// `mov %src,disp(%base)` — store through an arbitrary base register.
    MovRegToMem {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Displacement from the base register.
        offset: i32,
    },

    // ---- arithmetic / logic ----------------------------------------------
    /// `xor %src,%dst`
    XorRegReg {
        /// Destination register (also left operand).
        dst: Reg,
        /// Source register (right operand).
        src: Reg,
    },
    /// `xor %fs:offset,%dst` — XOR a TLS word into a register and set ZF.
    XorTlsReg {
        /// Destination register.
        dst: Reg,
        /// TLS offset of the right operand.
        offset: u64,
    },
    /// `add %src,%dst`
    AddRegReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `shl $imm,%dst`
    ShlRegImm {
        /// Destination register.
        dst: Reg,
        /// Shift amount.
        amount: u8,
    },
    /// `shr $imm,%dst`
    ShrRegImm {
        /// Destination register.
        dst: Reg,
        /// Shift amount.
        amount: u8,
    },
    /// `or %src,%dst`
    OrRegReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `cmp %reg,disp(%rbp)` — compare a frame slot with a register, setting
    /// the zero flag.
    CmpFrameReg {
        /// Register operand.
        reg: Reg,
        /// Displacement from `%rbp`.
        offset: i32,
    },
    /// `cmp $imm,%reg` — compare a register with an immediate.
    CmpRegImm {
        /// Register operand.
        reg: Reg,
        /// Immediate operand.
        imm: u64,
    },
    /// `test %reg,%reg` — set ZF if the register is zero.
    TestReg(Reg),

    // ---- control flow ------------------------------------------------------
    /// `je` — skip the next `skip` instructions when the zero flag is set.
    JeSkip(usize),
    /// `jne` — skip the next `skip` instructions when the zero flag is clear.
    JneSkip(usize),
    /// `jmp` — unconditionally skip the next `skip` instructions.
    JmpSkip(usize),
    /// `callq <f>` — direct call to another function of the program.
    CallFn(FuncId),
    /// `callq <__stack_chk_fail@plt>` — abort the process reporting stack
    /// smashing (glibc behaviour).
    CallStackChkFail,
    /// Call into the *patched* `__stack_chk_fail` produced by the binary
    /// rewriter (Fig. 3/4 of the paper): `rdi` carries the packed 32-bit
    /// canary pair; the routine either sets ZF and returns or aborts.
    CallCheckCanary32,
    /// `nop`
    Nop,

    // ---- hardware ----------------------------------------------------------
    /// `rdrand %dst` — hardware random number (retried until success).
    Rdrand(Reg),
    /// `rdtsc` folded with the `shl`/`or` sequence of Code 8: leaves the full
    /// 64-bit time stamp in `%rax`.
    Rdtsc,
    /// The `AES_ENCRYPT_128` helper of Code 8/9: encrypts the 128-bit block
    /// `(nonce, saved return address)` under the key held in `r12:r13` and
    /// leaves the ciphertext in `(%rax, %rdx)`.
    AesEncryptFrame {
        /// Register holding the nonce (the TSC value).
        nonce: Reg,
    },

    // ---- canary bookkeeping pseudo-instructions (baselines) ----------------
    /// DynaGuard prologue bookkeeping: append the address `%rbp + offset`
    /// (the canary slot of the current frame) to the process's canary
    /// address buffer.
    RecordCanaryAddress {
        /// Displacement of the canary slot from `%rbp`.
        offset: i32,
    },
    /// DynaGuard epilogue bookkeeping: pop the most recent canary address.
    PopCanaryAddress,
    /// DCR prologue bookkeeping: link the canary at `%rbp + offset` into the
    /// in-stack linked list headed in the TLS.
    LinkCanaryPush {
        /// Displacement of the canary slot from `%rbp`.
        offset: i32,
    },
    /// DCR epilogue bookkeeping: unlink the canary at `%rbp + offset`.
    LinkCanaryPop {
        /// Displacement of the canary slot from `%rbp`.
        offset: i32,
    },

    // ---- library-call pseudo-instructions ----------------------------------
    /// An *unbounded* copy of the process input into the frame buffer at
    /// `%rbp + offset` (the `strcpy`/`gets`/`read` model).  This is the
    /// vulnerability every attack in the paper exploits.
    CopyInputToFrame {
        /// Displacement of the destination buffer from `%rbp`.
        offset: i32,
    },
    /// A *bounded* copy of at most `max_len` input bytes (the safe variant).
    CopyInputToFrameBounded {
        /// Displacement of the destination buffer from `%rbp`.
        offset: i32,
        /// Upper bound on the number of bytes copied.
        max_len: u32,
    },
    /// Load the length of the process input into a register.
    InputLenToReg(Reg),
    /// Emit one byte of the register to the process output stream (models
    /// `write(1, ..)`; used by victims that leak memory).
    OutputReg(Reg),

    // ---- workload body stand-in --------------------------------------------
    /// Consume `0` cycles of architectural state change but `cycles` cycles
    /// of simulated time: models an arbitrary straight-line computation of
    /// the benchmark body without simulating it instruction by instruction.
    Compute(u64),
}

impl Inst {
    /// Approximate encoded size of the instruction in bytes.
    ///
    /// The values follow common x86-64 encodings (REX prefixes for extended
    /// registers, disp8 vs disp32 forms) closely enough that relative code
    /// sizes — all that Table II reports — are meaningful.
    pub fn encoded_size(&self) -> u64 {
        fn disp_size(offset: i32) -> u64 {
            if (-128..=127).contains(&offset) {
                1
            } else {
                4
            }
        }
        match self {
            Inst::PushReg(r) | Inst::PopReg(r) => {
                if r.is_extended() {
                    2
                } else {
                    1
                }
            }
            Inst::MovRegReg { .. } => 3,
            Inst::SubRspImm(imm) | Inst::AddRspImm(imm) => {
                if *imm <= 127 {
                    4
                } else {
                    7
                }
            }
            Inst::Leave => 1,
            Inst::Ret => 1,
            Inst::MovTlsToReg { .. } | Inst::MovRegToTls { .. } => 9,
            Inst::MovRegToFrame { offset, .. } | Inst::MovFrameToReg { offset, .. } => {
                3 + disp_size(*offset)
            }
            Inst::MovFrameToReg32 { offset, .. } | Inst::MovRegToFrame32 { offset, .. } => {
                2 + disp_size(*offset)
            }
            Inst::MovImmToReg { .. } => 10,
            Inst::MovImmToFrame { offset, .. } => 7 + disp_size(*offset),
            Inst::LeaFrameToReg { offset, .. } => 3 + disp_size(*offset),
            Inst::MovMemToReg { offset, .. } | Inst::MovRegToMem { offset, .. } => {
                3 + disp_size(*offset)
            }
            Inst::XorRegReg { .. } => 3,
            Inst::XorTlsReg { .. } => 9,
            Inst::AddRegReg { .. } => 3,
            Inst::ShlRegImm { .. } | Inst::ShrRegImm { .. } => 4,
            Inst::OrRegReg { .. } => 3,
            Inst::CmpFrameReg { offset, .. } => 3 + disp_size(*offset),
            Inst::CmpRegImm { .. } => 7,
            Inst::TestReg(_) => 3,
            Inst::JeSkip(_) | Inst::JneSkip(_) | Inst::JmpSkip(_) => 2,
            Inst::CallFn(_) => 5,
            Inst::CallStackChkFail => 5,
            Inst::CallCheckCanary32 => 5,
            Inst::Nop => 1,
            Inst::Rdrand(_) => 4,
            // rdtsc (2) + shl $0x20,%rdx (4) + or %rdx,%rax (3)
            Inst::Rdtsc => 9,
            // movq/movhps/movq/punpckhdq/callq sequence of Code 8
            Inst::AesEncryptFrame { .. } => 24,
            Inst::RecordCanaryAddress { .. } => 12,
            Inst::PopCanaryAddress => 8,
            Inst::LinkCanaryPush { .. } => 14,
            Inst::LinkCanaryPop { .. } => 14,
            Inst::CopyInputToFrame { .. } => 12,
            Inst::CopyInputToFrameBounded { .. } => 15,
            Inst::InputLenToReg(_) => 5,
            Inst::OutputReg(_) => 8,
            Inst::Compute(_) => 16,
        }
    }

    /// Static cycle cost of executing the instruction once.
    ///
    /// # Cost-model convention
    ///
    /// The interpreter's fetch loop charges this static base for **every**
    /// executed instruction, before the instruction runs.  Instructions
    /// whose true cost is data-dependent add a *surcharge* on top during
    /// execution — the base is never subtracted or replaced:
    ///
    /// * [`Inst::Rdrand`] — surcharge is the device-reported total minus
    ///   this base, i.e. the cost of transparent retries; zero when the
    ///   first draw succeeds, so a clean `rdrand` costs exactly
    ///   `cost::RDRAND_CYCLES` in total.
    /// * [`Inst::CopyInputToFrame`] / [`Inst::CopyInputToFrameBounded`] —
    ///   surcharge is `copied_len / 8 + 1` (one cycle per word moved plus
    ///   the call overhead), charged before the write so a copy that
    ///   faults mid-way still paid for the attempt.
    ///
    /// Both dispatch paths (`Cpu::run` and `Cpu::run_reference`) follow
    /// this convention; the totals are pinned by tests in `cpu.rs` because
    /// these cycles feed every overhead figure the campaigns report.
    pub fn cycles(&self) -> u64 {
        match self {
            Inst::PushReg(_) | Inst::PopReg(_) => 1,
            Inst::MovRegReg { .. } => cost::MOV_CYCLES,
            Inst::SubRspImm(_) | Inst::AddRspImm(_) => cost::ALU_CYCLES,
            Inst::Leave => 2,
            Inst::Ret => 2,
            Inst::MovTlsToReg { .. } | Inst::MovRegToTls { .. } => 2,
            Inst::MovRegToFrame { .. }
            | Inst::MovFrameToReg { .. }
            | Inst::MovFrameToReg32 { .. }
            | Inst::MovRegToFrame32 { .. }
            | Inst::MovImmToFrame { .. }
            | Inst::MovMemToReg { .. }
            | Inst::MovRegToMem { .. } => cost::MOV_CYCLES,
            Inst::MovImmToReg { .. } | Inst::LeaFrameToReg { .. } => cost::MOV_CYCLES,
            Inst::XorRegReg { .. }
            | Inst::XorTlsReg { .. }
            | Inst::AddRegReg { .. }
            | Inst::ShlRegImm { .. }
            | Inst::ShrRegImm { .. }
            | Inst::OrRegReg { .. }
            | Inst::CmpFrameReg { .. }
            | Inst::CmpRegImm { .. }
            | Inst::TestReg(_) => cost::ALU_CYCLES,
            Inst::JeSkip(_) | Inst::JneSkip(_) | Inst::JmpSkip(_) => 1,
            Inst::CallFn(_) => 3,
            Inst::CallStackChkFail => 3,
            Inst::CallCheckCanary32 => 8,
            Inst::Nop => 1,
            Inst::Rdrand(_) => cost::RDRAND_CYCLES,
            Inst::Rdtsc => cost::RDTSC_CYCLES,
            Inst::AesEncryptFrame { .. } => cost::AES_BLOCK_CYCLES,
            Inst::RecordCanaryAddress { .. } => 6,
            Inst::PopCanaryAddress => 3,
            Inst::LinkCanaryPush { .. } => 9,
            Inst::LinkCanaryPop { .. } => 9,
            Inst::CopyInputToFrame { .. } | Inst::CopyInputToFrameBounded { .. } => 10,
            Inst::InputLenToReg(_) => 2,
            Inst::OutputReg(_) => 4,
            Inst::Compute(cycles) => *cycles,
        }
    }

    /// Whether this instruction transfers control to another function.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::CallFn(_))
    }

    /// Whether this instruction terminates the current function.
    pub fn is_ret(&self) -> bool {
        matches!(self, Inst::Ret)
    }

    // ---- CFG-support accessors --------------------------------------------
    //
    // Control-flow and memory-effect classification consumed by CFG builders
    // and dataflow passes (the `polycanary-verifier` crate); kept here so the
    // classification lives next to the instruction set and cannot drift when
    // variants are added.

    /// For a branch (`je`/`jne`/`jmp`), the number of following instructions
    /// skipped when the branch is taken: the taken-edge target of the
    /// instruction at index `i` is index `i + 1 + skip`.
    pub fn branch_skip(&self) -> Option<usize> {
        match self {
            Inst::JeSkip(n) | Inst::JneSkip(n) | Inst::JmpSkip(n) => Some(*n),
            _ => None,
        }
    }

    /// Whether this is a conditional branch (both the taken and the
    /// fall-through edge are possible).
    pub fn is_conditional_branch(&self) -> bool {
        matches!(self, Inst::JeSkip(_) | Inst::JneSkip(_))
    }

    /// Whether execution can continue at the next instruction.
    ///
    /// `ret` leaves the function, `jmp` always takes its skip edge, and
    /// `__stack_chk_fail` aborts the process ([`crate::error::Fault::CanaryViolation`]) —
    /// none of them has a fall-through successor.  Every other instruction
    /// (including [`Inst::CallCheckCanary32`], which returns with ZF set when
    /// the check passes) falls through.
    pub fn falls_through(&self) -> bool {
        !matches!(self, Inst::Ret | Inst::JmpSkip(_) | Inst::CallStackChkFail)
    }

    /// The `(offset, width)` in bytes of a frame store with a statically
    /// known extent: the instruction writes `[offset, offset + width)`
    /// relative to `%rbp`.
    ///
    /// The *unbounded* [`Inst::CopyInputToFrame`] is deliberately excluded —
    /// its extent depends on the process input, so it is a runtime overflow
    /// vector, not a statically decidable write.
    pub fn frame_store(&self) -> Option<(i32, u32)> {
        match self {
            Inst::MovRegToFrame { offset, .. } => Some((*offset, 8)),
            Inst::MovRegToFrame32 { offset, .. } | Inst::MovImmToFrame { offset, .. } => {
                Some((*offset, 4))
            }
            Inst::CopyInputToFrameBounded { offset, max_len } => Some((*offset, *max_len)),
            _ => None,
        }
    }

    /// The destination frame offset of an input-copy pseudo-instruction
    /// (bounded or unbounded) — the writes a stack protector guards against.
    pub fn input_copy_offset(&self) -> Option<i32> {
        match self {
            Inst::CopyInputToFrame { offset } | Inst::CopyInputToFrameBounded { offset, .. } => {
                Some(*offset)
            }
            _ => None,
        }
    }

    /// Whether executing the instruction (re)defines the zero flag.
    ///
    /// Mirrors the interpreter exactly: the ALU instructions compare/compute
    /// into ZF, and [`Inst::CallCheckCanary32`] sets ZF on a passing check
    /// (on a failing one it never returns).
    pub fn sets_zero_flag(&self) -> bool {
        matches!(
            self,
            Inst::XorRegReg { .. }
                | Inst::XorTlsReg { .. }
                | Inst::AddRegReg { .. }
                | Inst::ShlRegImm { .. }
                | Inst::ShrRegImm { .. }
                | Inst::OrRegReg { .. }
                | Inst::CmpFrameReg { .. }
                | Inst::CmpRegImm { .. }
                | Inst::TestReg(_)
                | Inst::CallCheckCanary32
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::PushReg(r) => write!(f, "push %{r}"),
            Inst::PopReg(r) => write!(f, "pop %{r}"),
            Inst::MovRegReg { dst, src } => write!(f, "mov %{src},%{dst}"),
            Inst::SubRspImm(imm) => write!(f, "sub ${imm:#x},%rsp"),
            Inst::AddRspImm(imm) => write!(f, "add ${imm:#x},%rsp"),
            Inst::Leave => write!(f, "leaveq"),
            Inst::Ret => write!(f, "retq"),
            Inst::MovTlsToReg { dst, offset } => write!(f, "mov %fs:{offset:#x},%{dst}"),
            Inst::MovRegToTls { src, offset } => write!(f, "mov %{src},%fs:{offset:#x}"),
            Inst::MovRegToFrame { src, offset } => write!(f, "mov %{src},{offset:#x}(%rbp)"),
            Inst::MovFrameToReg { dst, offset } => write!(f, "mov {offset:#x}(%rbp),%{dst}"),
            Inst::MovFrameToReg32 { dst, offset } => write!(f, "mov {offset:#x}(%rbp),%{dst}d"),
            Inst::MovRegToFrame32 { src, offset } => write!(f, "mov %{src}d,{offset:#x}(%rbp)"),
            Inst::MovImmToReg { dst, imm } => write!(f, "mov ${imm:#x},%{dst}"),
            Inst::MovImmToFrame { offset, imm } => write!(f, "movl ${imm:#x},{offset:#x}(%rbp)"),
            Inst::LeaFrameToReg { dst, offset } => write!(f, "lea {offset:#x}(%rbp),%{dst}"),
            Inst::MovMemToReg { dst, base, offset } => {
                write!(f, "mov {offset:#x}(%{base}),%{dst}")
            }
            Inst::MovRegToMem { src, base, offset } => {
                write!(f, "mov %{src},{offset:#x}(%{base})")
            }
            Inst::XorRegReg { dst, src } => write!(f, "xor %{src},%{dst}"),
            Inst::XorTlsReg { dst, offset } => write!(f, "xor %fs:{offset:#x},%{dst}"),
            Inst::AddRegReg { dst, src } => write!(f, "add %{src},%{dst}"),
            Inst::ShlRegImm { dst, amount } => write!(f, "shl ${amount},%{dst}"),
            Inst::ShrRegImm { dst, amount } => write!(f, "shr ${amount},%{dst}"),
            Inst::OrRegReg { dst, src } => write!(f, "or %{src},%{dst}"),
            Inst::CmpFrameReg { reg, offset } => write!(f, "cmp %{reg},{offset:#x}(%rbp)"),
            Inst::CmpRegImm { reg, imm } => write!(f, "cmp ${imm:#x},%{reg}"),
            Inst::TestReg(r) => write!(f, "test %{r},%{r}"),
            Inst::JeSkip(n) => write!(f, "je +{n}"),
            Inst::JneSkip(n) => write!(f, "jne +{n}"),
            Inst::JmpSkip(n) => write!(f, "jmp +{n}"),
            Inst::CallFn(id) => write!(f, "callq <{id}>"),
            Inst::CallStackChkFail => write!(f, "callq <__stack_chk_fail@plt>"),
            Inst::CallCheckCanary32 => write!(f, "callq <__stack_chk_fail@plt> ; patched check"),
            Inst::Nop => write!(f, "nop"),
            Inst::Rdrand(r) => write!(f, "rdrand %{r}"),
            Inst::Rdtsc => write!(f, "rdtsc ; shl $0x20,%rdx ; or %rdx,%rax"),
            Inst::AesEncryptFrame { nonce } => {
                write!(f, "callq <AES_ENCRYPT_128> ; nonce=%{nonce}")
            }
            Inst::RecordCanaryAddress { offset } => {
                write!(f, "dynaguard.record {offset:#x}(%rbp)")
            }
            Inst::PopCanaryAddress => write!(f, "dynaguard.pop"),
            Inst::LinkCanaryPush { offset } => write!(f, "dcr.link {offset:#x}(%rbp)"),
            Inst::LinkCanaryPop { offset } => write!(f, "dcr.unlink {offset:#x}(%rbp)"),
            Inst::CopyInputToFrame { offset } => {
                write!(f, "callq <strcpy> ; dst={offset:#x}(%rbp)")
            }
            Inst::CopyInputToFrameBounded { offset, max_len } => {
                write!(f, "callq <strncpy> ; dst={offset:#x}(%rbp) n={max_len}")
            }
            Inst::InputLenToReg(r) => write!(f, "callq <strlen> ; -> %{r}"),
            Inst::OutputReg(r) => write!(f, "callq <write> ; %{r}"),
            Inst::Compute(c) => write!(f, "<body: {c} cycles>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssp_prologue_size_matches_real_code() {
        // Code 1 of the paper: push %rbp; mov %rsp,%rbp; sub $0x10,%rsp;
        // mov %fs:0x28,%rax; mov %rax,-0x8(%rbp).
        let prologue = [
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
        ];
        let size: u64 = prologue.iter().map(Inst::encoded_size).sum();
        // The real sequence assembles to 1+3+4+9+4 = 21 bytes.
        assert_eq!(size, 21);
    }

    #[test]
    fn pssp_prologue_differs_only_by_tls_offset_size() {
        // §V-C: the instrumentation-based P-SSP prologue is identical to the
        // SSP prologue except for the TLS offset, so the encoded sizes must
        // be equal (layout preservation).
        let ssp = Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 };
        let pssp = Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x2a8 };
        assert_eq!(ssp.encoded_size(), pssp.encoded_size());
    }

    #[test]
    fn rewriter_epilogue_size_matches_ssp_epilogue() {
        // Code 2 (SSP epilogue) and Code 6 (instrumented epilogue) must have
        // the same total size for address-layout preservation.
        let ssp_epilogue = [
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let rewritten = [
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::PushReg(Reg::Rdi),
            Inst::PushReg(Reg::Rdx),
            Inst::PopReg(Reg::Rdi),
            Inst::CallCheckCanary32,
            Inst::PopReg(Reg::Rdi),
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ];
        let a: u64 = ssp_epilogue.iter().map(Inst::encoded_size).sum();
        let b: u64 = rewritten.iter().map(Inst::encoded_size).sum();
        assert_eq!(a, b, "rewritten epilogue must not change the code layout");
    }

    #[test]
    fn expensive_instructions_cost_more_than_moves() {
        assert!(
            Inst::Rdrand(Reg::Rax).cycles()
                > 100 * Inst::MovRegReg { dst: Reg::Rax, src: Reg::Rbx }.cycles()
        );
        assert!(Inst::AesEncryptFrame { nonce: Reg::Rax }.cycles() > 50);
        assert!(
            Inst::Rdrand(Reg::Rax).cycles() > Inst::AesEncryptFrame { nonce: Reg::Rax }.cycles()
        );
    }

    #[test]
    fn compute_cycles_are_pass_through() {
        assert_eq!(Inst::Compute(12345).cycles(), 12345);
    }

    #[test]
    fn extended_register_push_is_larger() {
        assert_eq!(Inst::PushReg(Reg::Rbp).encoded_size(), 1);
        assert_eq!(Inst::PushReg(Reg::R12).encoded_size(), 2);
    }

    #[test]
    fn large_displacements_use_disp32() {
        let near = Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 };
        let far = Inst::MovRegToFrame { src: Reg::Rax, offset: -0x400 };
        assert_eq!(near.encoded_size(), 4);
        assert_eq!(far.encoded_size(), 7);
    }

    #[test]
    fn display_is_att_flavoured() {
        let inst = Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 };
        assert_eq!(inst.to_string(), "mov %fs:0x28,%rax");
        let inst = Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 };
        assert_eq!(inst.to_string(), "xor %fs:0x28,%rdx");
    }

    #[test]
    fn call_and_ret_classification() {
        assert!(Inst::CallFn(FuncId(3)).is_call());
        assert!(!Inst::CallStackChkFail.is_call());
        assert!(Inst::Ret.is_ret());
        assert!(!Inst::Leave.is_ret());
    }

    /// Number of `Inst` variants, pinned by [`variant_ordinal`]'s exhaustive
    /// match below.
    const VARIANT_COUNT: usize = 46;

    /// Sequential ordinal of an instruction's variant.
    ///
    /// The match is exhaustive *without a wildcard arm* (the crate-internal
    /// view of the `#[non_exhaustive]` enum), so adding a variant fails this
    /// module at compile time until both this function and the sample list in
    /// `every_instruction_has_nonzero_size_and_cycles` are extended — a new
    /// instruction can't silently inherit an untested size or cycle cost.
    fn variant_ordinal(inst: &Inst) -> usize {
        match inst {
            Inst::PushReg(_) => 0,
            Inst::PopReg(_) => 1,
            Inst::MovRegReg { .. } => 2,
            Inst::SubRspImm(_) => 3,
            Inst::AddRspImm(_) => 4,
            Inst::Leave => 5,
            Inst::Ret => 6,
            Inst::MovTlsToReg { .. } => 7,
            Inst::MovRegToTls { .. } => 8,
            Inst::MovRegToFrame { .. } => 9,
            Inst::MovFrameToReg { .. } => 10,
            Inst::MovFrameToReg32 { .. } => 11,
            Inst::MovRegToFrame32 { .. } => 12,
            Inst::MovImmToReg { .. } => 13,
            Inst::MovImmToFrame { .. } => 14,
            Inst::LeaFrameToReg { .. } => 15,
            Inst::MovMemToReg { .. } => 16,
            Inst::MovRegToMem { .. } => 17,
            Inst::XorRegReg { .. } => 18,
            Inst::XorTlsReg { .. } => 19,
            Inst::AddRegReg { .. } => 20,
            Inst::ShlRegImm { .. } => 21,
            Inst::ShrRegImm { .. } => 22,
            Inst::OrRegReg { .. } => 23,
            Inst::CmpFrameReg { .. } => 24,
            Inst::CmpRegImm { .. } => 25,
            Inst::TestReg(_) => 26,
            Inst::JeSkip(_) => 27,
            Inst::JneSkip(_) => 28,
            Inst::JmpSkip(_) => 29,
            Inst::CallFn(_) => 30,
            Inst::CallStackChkFail => 31,
            Inst::CallCheckCanary32 => 32,
            Inst::Nop => 33,
            Inst::Rdrand(_) => 34,
            Inst::Rdtsc => 35,
            Inst::AesEncryptFrame { .. } => 36,
            Inst::RecordCanaryAddress { .. } => 37,
            Inst::PopCanaryAddress => 38,
            Inst::LinkCanaryPush { .. } => 39,
            Inst::LinkCanaryPop { .. } => 40,
            Inst::CopyInputToFrame { .. } => 41,
            Inst::CopyInputToFrameBounded { .. } => 42,
            Inst::InputLenToReg(_) => 43,
            Inst::OutputReg(_) => 44,
            Inst::Compute(_) => 45,
        }
    }

    #[test]
    fn every_instruction_has_nonzero_size_and_cycles() {
        let samples = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::PopReg(Reg::Rdi),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::AddRspImm(0x200),
            Inst::Leave,
            Inst::Ret,
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToTls { src: Reg::Rax, offset: 0x2a8 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -8 },
            Inst::MovFrameToReg { dst: Reg::Rax, offset: -8 },
            Inst::MovFrameToReg32 { dst: Reg::Rdi, offset: -8 },
            Inst::MovRegToFrame32 { src: Reg::Rdi, offset: -8 },
            Inst::MovImmToReg { dst: Reg::Rax, imm: 1 },
            Inst::MovImmToFrame { offset: -16, imm: 2 },
            Inst::LeaFrameToReg { dst: Reg::Rdi, offset: -64 },
            Inst::MovMemToReg { dst: Reg::Rax, base: Reg::Rbx, offset: 0 },
            Inst::MovRegToMem { src: Reg::Rax, base: Reg::Rbx, offset: 0 },
            Inst::XorRegReg { dst: Reg::Rdx, src: Reg::Rdi },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::AddRegReg { dst: Reg::Rax, src: Reg::Rbx },
            Inst::ShlRegImm { dst: Reg::Rdx, amount: 32 },
            Inst::ShrRegImm { dst: Reg::Rdi, amount: 32 },
            Inst::OrRegReg { dst: Reg::Rax, src: Reg::Rdx },
            Inst::CmpFrameReg { reg: Reg::Rax, offset: -24 },
            Inst::CmpRegImm { reg: Reg::Rax, imm: 0 },
            Inst::TestReg(Reg::Rax),
            Inst::JeSkip(1),
            Inst::JneSkip(2),
            Inst::JmpSkip(3),
            Inst::CallFn(FuncId(0)),
            Inst::CallStackChkFail,
            Inst::CallCheckCanary32,
            Inst::Nop,
            Inst::Rdrand(Reg::Rax),
            Inst::Rdtsc,
            Inst::AesEncryptFrame { nonce: Reg::Rax },
            Inst::RecordCanaryAddress { offset: -8 },
            Inst::PopCanaryAddress,
            Inst::LinkCanaryPush { offset: -8 },
            Inst::LinkCanaryPop { offset: -8 },
            Inst::CopyInputToFrame { offset: -64 },
            Inst::CopyInputToFrameBounded { offset: -64, max_len: 64 },
            Inst::InputLenToReg(Reg::Rax),
            Inst::OutputReg(Reg::Rax),
            Inst::Compute(100),
        ];
        let mut covered = [false; VARIANT_COUNT];
        for inst in samples {
            covered[variant_ordinal(&inst)] = true;
            assert!(inst.encoded_size() > 0, "{inst} has zero size");
            assert!(inst.cycles() > 0, "{inst} has zero cycles");
            // Display must never be empty (C-DEBUG-NONEMPTY analogue).
            assert!(!inst.to_string().is_empty());
        }
        let missing: Vec<usize> = (0..VARIANT_COUNT).filter(|&ordinal| !covered[ordinal]).collect();
        assert!(missing.is_empty(), "sample list misses variant ordinal(s) {missing:?}");
    }

    #[test]
    fn branch_skip_and_fall_through_classification() {
        assert_eq!(Inst::JeSkip(1).branch_skip(), Some(1));
        assert_eq!(Inst::JneSkip(2).branch_skip(), Some(2));
        assert_eq!(Inst::JmpSkip(3).branch_skip(), Some(3));
        assert_eq!(Inst::Nop.branch_skip(), None);
        assert!(Inst::JeSkip(1).is_conditional_branch());
        assert!(!Inst::JmpSkip(1).is_conditional_branch());
        // Fall-through: jmp always diverts, ret leaves, __stack_chk_fail
        // aborts; the patched 32-bit check *returns* on success.
        assert!(!Inst::JmpSkip(1).falls_through());
        assert!(!Inst::Ret.falls_through());
        assert!(!Inst::CallStackChkFail.falls_through());
        assert!(Inst::JeSkip(1).falls_through());
        assert!(Inst::CallCheckCanary32.falls_through());
        assert!(Inst::CallFn(FuncId(0)).falls_through());
    }

    #[test]
    fn frame_store_extents_match_interpreter_widths() {
        assert_eq!(Inst::MovRegToFrame { src: Reg::Rax, offset: -8 }.frame_store(), Some((-8, 8)));
        assert_eq!(
            Inst::MovRegToFrame32 { src: Reg::Rdi, offset: -8 }.frame_store(),
            Some((-8, 4))
        );
        assert_eq!(Inst::MovImmToFrame { offset: -16, imm: 7 }.frame_store(), Some((-16, 4)));
        assert_eq!(
            Inst::CopyInputToFrameBounded { offset: -64, max_len: 48 }.frame_store(),
            Some((-64, 48))
        );
        // The unbounded copy has no static extent — it is the overflow vector.
        assert_eq!(Inst::CopyInputToFrame { offset: -64 }.frame_store(), None);
        assert_eq!(Inst::CopyInputToFrame { offset: -64 }.input_copy_offset(), Some(-64));
        assert_eq!(
            Inst::CopyInputToFrameBounded { offset: -64, max_len: 48 }.input_copy_offset(),
            Some(-64)
        );
        assert_eq!(Inst::MovRegToFrame { src: Reg::Rax, offset: -8 }.input_copy_offset(), None);
    }

    #[test]
    fn zero_flag_setters_match_the_cpu() {
        for setter in [
            Inst::XorRegReg { dst: Reg::Rdx, src: Reg::Rdi },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::CmpFrameReg { reg: Reg::Rax, offset: -16 },
            Inst::CmpRegImm { reg: Reg::Rax, imm: 0 },
            Inst::TestReg(Reg::Rax),
            Inst::CallCheckCanary32,
        ] {
            assert!(setter.sets_zero_flag(), "{setter}");
        }
        for non_setter in [
            Inst::MovRegToFrame { src: Reg::Rax, offset: -8 },
            Inst::PushReg(Reg::Rdi),
            Inst::PopReg(Reg::Rdi),
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
        ] {
            assert!(!non_setter.sets_zero_flag(), "{non_setter}");
        }
    }
}
