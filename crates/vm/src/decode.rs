//! The pre-decoded program cache behind [`Cpu::run`](crate::cpu::Cpu::run).
//!
//! [`Program::finalize`](crate::program::Program::finalize) flattens every
//! function body into one contiguous stream of [`Op`]s so the interpreter's
//! hot loop is a plain fetch→dispatch over a single slice:
//!
//! * **absolute successor indices** — skip-relative branches (`je +n`) are
//!   decoded to absolute indices into the flat stream, and `call` targets to
//!   the callee's flat entry, so the loop never consults the function table
//!   or re-validates a `(function, index)` pair per instruction;
//! * **precomputed cycle costs** — each op carries the static cycle cost of
//!   its source instruction, charged without re-matching on the variant;
//! * **a one-past-the-end sentinel per function** — falling (or branching,
//!   or returning) past a function's last instruction lands on a
//!   [`OpKind::FellOffEnd`] op carrying the precomputed fault address, so
//!   the loop needs no per-instruction bounds re-check;
//! * **fused superinstructions** — the two sequences every attack workload
//!   hammers, the canary prologue store (`mov %fs:off,%r; mov %r,disp(%rbp)`)
//!   and the canary check (`[mov disp(%rbp),%r;] xor %fs:off,%r; je +1;
//!   call __stack_chk_fail`), are recognised at decode time and dispatched
//!   as single ops;
//! * **superblocks** — every remaining run of two or more consecutive
//!   straight-line instructions is fused under a single budget precheck
//!   ([`OpKind::Block`]), so the hot loop pays the fetch/limit/dispatch
//!   overhead once per run instead of once per instruction.
//!
//! Fusion is an **overlay**: the fused op replaces only the *head* of its
//! source sequence, while the component instructions keep their own ops at
//! the following indices.  A branch or corrupted return address landing in
//! the middle of a fused sequence therefore executes the plain component
//! ops — fusion never needs join-point analysis to be safe.  The fused
//! handlers in `cpu.rs` charge instructions and cycles per *component*
//! (checking the instruction limit before each one), so the decoded
//! dispatch produces byte-identical
//! [`RunOutcome`](crate::cpu::RunOutcome)s — exit, cycles, instruction
//! counts — to the reference interpreter even when the limit lands in the
//! middle of a fused sequence.  The `vm_dispatch` differential suite pins
//! this over PRNG-generated programs and every scheme × deployment cell.
//!
//! The cache is a pure acceleration, not a semantic fork: source
//! [`Function`] bodies are left untouched, which is what the static
//! verifier keeps proving its invariants against.

use std::collections::HashMap;

use crate::inst::{FuncId, Inst};
use crate::program::Function;
use crate::reg::Reg;

/// One decoded operation of the flat stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Op {
    /// Static cycle cost, precomputed from [`Inst::cycles`].  For fused
    /// superinstructions this is the *head component's* cost only; the
    /// dispatch handler charges the remaining components one by one.
    pub(crate) cycles: u64,
    /// What the dispatch loop executes.
    pub(crate) kind: OpKind,
}

/// Decoded operation kinds.  Control flow carries absolute flat indices;
/// everything straight-line stays as the source [`Inst`] and is executed by
/// the interpreter's shared straight-line executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// A straight-line instruction, executed via `Cpu::exec_basic`.
    Basic(Inst),
    /// `je` — jump to `target` when the zero flag is set.
    Je {
        /// Absolute flat index of the taken edge.
        target: u32,
    },
    /// `jne` — jump to `target` when the zero flag is clear.
    Jne {
        /// Absolute flat index of the taken edge.
        target: u32,
    },
    /// `jmp` — unconditional jump to `target`.
    Jmp {
        /// Absolute flat index of the target.
        target: u32,
    },
    /// `call` to a known function: push `return_addr`, continue at the
    /// callee's flat entry.
    Call {
        /// Absolute flat index of the callee's first instruction.
        target: u32,
        /// Precomputed return address (this instruction's address plus its
        /// encoded size).
        return_addr: u64,
    },
    /// `call` to a function id outside the program's function table.
    CallUnknown {
        /// The unresolvable function id.
        id: usize,
        /// Return address still pushed before the fault surfaces (the
        /// reference interpreter pushes before resolving the callee).
        return_addr: u64,
    },
    /// `ret`: pop, then sentinel / hijack / address-map resolution.
    Ret,
    /// `call __stack_chk_fail` — unconditional canary abort.
    StackChkFail {
        /// Function the check belongs to (for the fault message).
        fid: FuncId,
    },
    /// The patched 32-bit canary check of the binary rewriter.
    CheckCanary32 {
        /// Function the check belongs to (for the fault message).
        fid: FuncId,
    },
    /// One-past-the-end sentinel: executing past the last instruction of a
    /// function without `ret`.
    FellOffEnd {
        /// Precomputed fault address (function entry plus encoded size).
        addr: u64,
    },
    /// Fused canary prologue: `mov %fs:tls_offset,%dst` followed by
    /// `mov %dst,frame_offset(%rbp)`.
    Prologue {
        /// The staging register of the canary store.
        dst: Reg,
        /// TLS offset the canary is loaded from.
        tls_offset: u64,
        /// Frame displacement the canary is stored to.
        frame_offset: i32,
    },
    /// Fused canary compare+guard: `xor %fs:tls_offset,%dst; je +1;
    /// call __stack_chk_fail`.  Covers the tail of both the SSP epilogue
    /// and the split-canary (`xor %r,%r` preceded) epilogues.
    CanaryGuard {
        /// Register holding the value under test.
        dst: Reg,
        /// TLS offset of the reference canary.
        tls_offset: u64,
        /// Function the check belongs to (for the fault message).
        fid: FuncId,
        /// Absolute flat index to resume at when the check passes.
        resume: u32,
    },
    /// A superblock: a run of `len` consecutive straight-line instructions
    /// fused under a single budget precheck.  The head component is carried
    /// inline (its plain op was replaced by this overlay); the remaining
    /// `len - 1` components are read from the following ops, which stay
    /// plain [`OpKind::Basic`] so a branch into the middle of the run still
    /// lands on an executable op.
    Block {
        /// The head component (the instruction this op replaced).
        head: Inst,
        /// Total run length in instructions, including the head.
        len: u32,
    },
    /// Fully fused canary epilogue: `mov frame_offset(%rbp),%dst` followed
    /// by the compare+guard triple above.
    CanaryEpilogue {
        /// Register the stored canary is loaded into.
        dst: Reg,
        /// Frame displacement the canary is loaded from.
        frame_offset: i32,
        /// TLS offset of the reference canary.
        tls_offset: u64,
        /// Function the check belongs to (for the fault message).
        fid: FuncId,
        /// Absolute flat index to resume at when the check passes.
        resume: u32,
    },
}

/// A program flattened into one decoded op stream, built once at
/// [`Program::finalize`](crate::program::Program::finalize) and shared by
/// every machine booted from the same `Arc<Program>` — snapshot-booted
/// fleet victims never re-decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DecodedProgram {
    /// The flat op stream: per function, its decoded body followed by one
    /// [`OpKind::FellOffEnd`] sentinel.
    ops: Vec<Op>,
    /// Flat index of each function's first op (direct-index function table).
    func_start: Vec<u32>,
    /// Instruction address → flat index, including each function's
    /// one-past-the-end marker address (which maps to its sentinel).
    addr_to_flat: HashMap<u64, u32>,
    /// Lowest mapped instruction address — base of the dense table below.
    addr_base: u64,
    /// Dense mirror of `addr_to_flat`, indexed by `addr - addr_base`
    /// (`u32::MAX` marks unmapped slots).  Program addresses are assigned
    /// contiguously from `CODE_BASE`, so the table stays a few bytes per
    /// encoded instruction byte — and turns the `ret` path's address
    /// resolution into one bounds-checked array load instead of a hash
    /// lookup per return.
    addr_flat_dense: Vec<u32>,
}

impl DecodedProgram {
    /// Decodes finalized `functions` (addresses must be assigned).
    pub(crate) fn build(functions: &[Function]) -> Self {
        // Flat entry of every function first, so forward calls resolve in
        // the single decode pass below.
        let mut func_start = Vec::with_capacity(functions.len());
        let mut cursor = 0u32;
        for func in functions {
            func_start.push(cursor);
            cursor += func.insts().len() as u32 + 1;
        }

        let mut ops = Vec::with_capacity(cursor as usize);
        let mut addr_to_flat = HashMap::with_capacity(cursor as usize);
        for (fidx, func) in functions.iter().enumerate() {
            let fid = FuncId(fidx);
            let start = func_start[fidx];
            let insts = func.insts();
            let len = insts.len();
            // A branch target past the end of the function behaves exactly
            // like falling off the end, so it clamps to the sentinel.
            let clamp = |index: usize| start + index.min(len) as u32;
            for (i, inst) in insts.iter().enumerate() {
                let addr = func.inst_addr(i).expect("finalized function has inst addrs");
                addr_to_flat.insert(addr, start + i as u32);
                let kind = match fuse_at(insts, i, fid, &clamp) {
                    Some(fused) => fused,
                    None => match inst {
                        Inst::JeSkip(n) => OpKind::Je { target: clamp(i + 1 + n) },
                        Inst::JneSkip(n) => OpKind::Jne { target: clamp(i + 1 + n) },
                        Inst::JmpSkip(n) => OpKind::Jmp { target: clamp(i + 1 + n) },
                        Inst::CallFn(target) => {
                            let return_addr = addr + inst.encoded_size();
                            match func_start.get(target.0) {
                                Some(&callee) => OpKind::Call { target: callee, return_addr },
                                None => OpKind::CallUnknown { id: target.0, return_addr },
                            }
                        }
                        Inst::Ret => OpKind::Ret,
                        Inst::CallStackChkFail => OpKind::StackChkFail { fid },
                        Inst::CallCheckCanary32 => OpKind::CheckCanary32 { fid },
                        other => OpKind::Basic(other.clone()),
                    },
                };
                ops.push(Op { cycles: inst.cycles(), kind });
            }
            let end_addr = func.entry_addr() + func.encoded_size();
            addr_to_flat.insert(end_addr, start + len as u32);
            ops.push(Op { cycles: 0, kind: OpKind::FellOffEnd { addr: end_addr } });
        }
        fuse_superblocks(&mut ops);
        let addr_base = addr_to_flat.keys().min().copied().unwrap_or(0);
        let span = addr_to_flat.keys().max().map_or(0, |max| (max - addr_base) as usize + 1);
        let mut addr_flat_dense = vec![u32::MAX; span];
        for (&addr, &flat) in &addr_to_flat {
            addr_flat_dense[(addr - addr_base) as usize] = flat;
        }
        DecodedProgram { ops, func_start, addr_to_flat, addr_base, addr_flat_dense }
    }

    /// The flat op stream.
    pub(crate) fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Flat entry index of function `id`, or `None` when out of range.
    pub(crate) fn func_start(&self, id: FuncId) -> Option<u32> {
        self.func_start.get(id.0).copied()
    }

    /// Resolves an instruction (or one-past-the-end marker) address to its
    /// flat index — the `ret` path's replacement for the program address map.
    #[inline]
    pub(crate) fn flat_of_addr(&self, addr: u64) -> Option<u32> {
        let off = addr.checked_sub(self.addr_base)? as usize;
        match self.addr_flat_dense.get(off) {
            Some(&flat) if flat != u32::MAX => Some(flat),
            _ => None,
        }
    }
}

/// Second decode pass: collapses every run of two or more consecutive
/// [`OpKind::Basic`] ops into an [`OpKind::Block`] superblock.
///
/// Same overlay rule as canary fusion: only the run's head op is replaced
/// (carrying its own instruction inline), the tail components keep their
/// plain ops, so branch targets inside the run stay executable.  Runs never
/// cross control flow, fused canary ops or the [`OpKind::FellOffEnd`]
/// sentinel — none of those are `Basic` — so a block is always a single
/// straight-line stretch within one function.
fn fuse_superblocks(ops: &mut [Op]) {
    let mut i = 0;
    while i < ops.len() {
        if !matches!(ops[i].kind, OpKind::Basic(_)) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < ops.len() && matches!(ops[j].kind, OpKind::Basic(_)) {
            j += 1;
        }
        if j - i >= 2 {
            let OpKind::Basic(head) = ops[i].kind.clone() else { unreachable!("checked above") };
            ops[i].kind = OpKind::Block { head, len: (j - i) as u32 };
        }
        i = j;
    }
}

/// Recognises a fusable sequence whose head is at `insts[i]`.
///
/// Longest match wins: the four-wide canary epilogue is tried before the
/// three-wide compare+guard (whose pattern is the epilogue's suffix).  The
/// returned op replaces only the head; components keep their own ops.
fn fuse_at(insts: &[Inst], i: usize, fid: FuncId, clamp: &impl Fn(usize) -> u32) -> Option<OpKind> {
    match insts.get(i..) {
        Some(
            [Inst::MovFrameToReg { dst, offset }, Inst::XorTlsReg { dst: xdst, offset: tls_offset }, Inst::JeSkip(1), Inst::CallStackChkFail, ..],
        ) if dst == xdst => Some(OpKind::CanaryEpilogue {
            dst: *dst,
            frame_offset: *offset,
            tls_offset: *tls_offset,
            fid,
            // `je +1` at i+2 taken: i + 2 + 1 + 1.
            resume: clamp(i + 4),
        }),
        Some(
            [Inst::XorTlsReg { dst, offset: tls_offset }, Inst::JeSkip(1), Inst::CallStackChkFail, ..],
        ) => Some(OpKind::CanaryGuard {
            dst: *dst,
            tls_offset: *tls_offset,
            fid,
            resume: clamp(i + 3),
        }),
        Some(
            [Inst::MovTlsToReg { dst, offset: tls_offset }, Inst::MovRegToFrame { src, offset }, ..],
        ) if dst == src => {
            Some(OpKind::Prologue { dst: *dst, tls_offset: *tls_offset, frame_offset: *offset })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn decoded(insts: Vec<Inst>) -> (Program, DecodedProgram) {
        let mut prog = Program::new();
        let f = prog.add_function("main", insts).unwrap();
        prog.set_entry(f);
        prog.finalize();
        let d = prog.decoded().expect("finalize builds the cache").clone();
        (prog, d)
    }

    #[test]
    fn flat_layout_appends_one_sentinel_per_function() {
        let mut prog = Program::new();
        prog.add_function("a", vec![Inst::Nop, Inst::Ret]).unwrap();
        prog.add_function("b", vec![Inst::Ret]).unwrap();
        prog.finalize();
        let d = prog.decoded().unwrap();
        assert_eq!(d.ops().len(), 2 + 1 + 1 + 1);
        assert_eq!(d.func_start(FuncId(0)), Some(0));
        assert_eq!(d.func_start(FuncId(1)), Some(3));
        assert_eq!(d.func_start(FuncId(2)), None);
        assert!(matches!(d.ops()[2].kind, OpKind::FellOffEnd { .. }));
        assert!(matches!(d.ops()[4].kind, OpKind::FellOffEnd { .. }));
    }

    #[test]
    fn branch_targets_are_absolute_and_clamped() {
        let (_, d) = decoded(vec![Inst::JeSkip(1), Inst::Nop, Inst::JmpSkip(7), Inst::Ret]);
        assert_eq!(d.ops()[0].kind, OpKind::Je { target: 2 });
        // Target past the end clamps to the sentinel (index 4 = len).
        assert_eq!(d.ops()[2].kind, OpKind::Jmp { target: 4 });
    }

    #[test]
    fn call_targets_resolve_to_flat_entries() {
        let mut prog = Program::new();
        let callee = prog.add_function("callee", vec![Inst::Ret]).unwrap();
        prog.add_function("caller", vec![Inst::CallFn(callee), Inst::CallFn(FuncId(9)), Inst::Ret])
            .unwrap();
        prog.finalize();
        let d = prog.decoded().unwrap();
        let caller_start = d.func_start(FuncId(1)).unwrap() as usize;
        assert!(matches!(d.ops()[caller_start].kind, OpKind::Call { target: 0, .. }));
        assert!(matches!(d.ops()[caller_start + 1].kind, OpKind::CallUnknown { id: 9, .. }));
    }

    #[test]
    fn addr_map_covers_every_instruction_and_the_end_marker() {
        let (prog, d) = decoded(vec![Inst::Nop, Inst::Nop, Inst::Ret]);
        let func = prog.function(FuncId(0)).unwrap();
        for i in 0..3 {
            assert_eq!(d.flat_of_addr(func.inst_addr(i).unwrap()), Some(i as u32));
        }
        let end = func.entry_addr() + func.encoded_size();
        assert_eq!(d.flat_of_addr(end), Some(3));
        assert_eq!(d.flat_of_addr(end + 1), None);
    }

    #[test]
    fn ssp_prologue_and_epilogue_fuse_as_overlays() {
        let (_, d) = decoded(vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -0x8 },
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Leave,
            Inst::Ret,
        ]);
        assert!(matches!(
            d.ops()[3].kind,
            OpKind::Prologue { dst: Reg::Rax, tls_offset: 0x28, frame_offset: -0x8 }
        ));
        // The prologue's second component keeps its own op (overlay).
        assert!(matches!(d.ops()[4].kind, OpKind::Basic(Inst::MovRegToFrame { .. })));
        assert!(matches!(
            d.ops()[5].kind,
            OpKind::CanaryEpilogue { dst: Reg::Rdx, frame_offset: -0x8, resume: 9, .. }
        ));
        // The epilogue's interior also decodes individually: a jump into
        // the middle of the sequence executes plain ops (the xor head
        // itself re-fuses as a compare+guard, which is equivalent).
        assert!(matches!(d.ops()[6].kind, OpKind::CanaryGuard { dst: Reg::Rdx, resume: 9, .. }));
        assert!(matches!(d.ops()[7].kind, OpKind::Je { target: 9 }));
        assert!(matches!(d.ops()[8].kind, OpKind::StackChkFail { .. }));
    }

    #[test]
    fn split_canary_guard_fuses_without_a_frame_load() {
        // The split-canary epilogue xors two frame words first; only the
        // TLS compare + branch + abort tail fuses.
        let (_, d) = decoded(vec![
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -0x8 },
            Inst::MovFrameToReg { dst: Reg::Rdi, offset: -0x10 },
            Inst::XorRegReg { dst: Reg::Rdx, src: Reg::Rdi },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x28 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
            Inst::Ret,
        ]);
        // The three frame/xor ops ahead of the guard collapse into a
        // superblock whose head is the first frame load.
        assert!(matches!(
            d.ops()[0].kind,
            OpKind::Block { head: Inst::MovFrameToReg { .. }, len: 3 }
        ));
        assert!(matches!(d.ops()[1].kind, OpKind::Basic(Inst::MovFrameToReg { .. })));
        assert!(matches!(
            d.ops()[3].kind,
            OpKind::CanaryGuard { dst: Reg::Rdx, tls_offset: 0x28, resume: 6, .. }
        ));
    }

    #[test]
    fn prologue_only_fuses_matching_registers() {
        let (_, d) = decoded(vec![
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x28 },
            Inst::MovRegToFrame { src: Reg::Rbx, offset: -0x8 },
            Inst::Ret,
        ]);
        // Mismatched registers don't fuse as a canary prologue; the pair
        // still collapses into a plain superblock.
        assert!(matches!(
            d.ops()[0].kind,
            OpKind::Block { head: Inst::MovTlsToReg { .. }, len: 2 }
        ));
    }

    #[test]
    fn straight_line_runs_collapse_into_superblocks() {
        let (_, d) = decoded(vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::SubRspImm(0x10),
            Inst::JeSkip(1),
            Inst::Nop,
            Inst::Leave,
            Inst::Ret,
        ]);
        // The frame-setup triple fuses under one budget precheck…
        assert!(matches!(d.ops()[0].kind, OpKind::Block { head: Inst::PushReg(Reg::Rbp), len: 3 }));
        // …while its tail components keep plain ops for mid-run branch
        // targets (overlay, like canary fusion).
        assert!(matches!(d.ops()[1].kind, OpKind::Basic(Inst::MovRegReg { .. })));
        assert!(matches!(d.ops()[2].kind, OpKind::Basic(Inst::SubRspImm(_))));
        // Control flow breaks the run; the nop/leave pair after the branch
        // forms its own block, and the lone `ret` stays unfused.
        assert!(matches!(d.ops()[3].kind, OpKind::Je { .. }));
        assert!(matches!(d.ops()[4].kind, OpKind::Block { head: Inst::Nop, len: 2 }));
        assert!(matches!(d.ops()[5].kind, OpKind::Basic(Inst::Leave)));
        assert!(matches!(d.ops()[6].kind, OpKind::Ret));
    }
}
