//! Simulated 64-bit execution substrate for the polycanary workspace.
//!
//! The paper *To Detect Stack Buffer Overflow with Polymorphic Canaries*
//! (DSN 2018) evaluates its schemes on real x86-64 hardware with an LLVM
//! pass, a binary rewriter and an `LD_PRELOAD`-ed shared library.  This
//! crate provides the simulated machine that replaces that hardware/OS
//! substrate:
//!
//! * [`reg`], [`mem`], [`tls`] — registers, a downward-growing stack at
//!   realistic virtual addresses, and the TLS block holding the canary at
//!   `%fs:0x28` plus the P-SSP shadow canary at `%fs:0x2a8`.
//! * [`inst`], [`program`] — the instruction set (every instruction of the
//!   paper's Codes 1–9 plus a few pseudo-instructions), with encoded sizes
//!   and cycle costs, and programs with a real address layout.
//! * [`cpu`] — the interpreter, which faults exactly where glibc's
//!   `__stack_chk_fail` aborts and which recognises successful control-flow
//!   hijacks.
//! * [`process`], [`machine`] — processes with `fork()` TLS-cloning
//!   semantics and the runtime-hook mechanism corresponding to the P-SSP
//!   shared library.
//!
//! # Quick example
//!
//! ```
//! use polycanary_vm::inst::Inst;
//! use polycanary_vm::machine::{Machine, NoHooks};
//! use polycanary_vm::program::Program;
//! use polycanary_vm::reg::Reg;
//!
//! let mut program = Program::new();
//! let main = program
//!     .add_function("main", vec![Inst::MovImmToReg { dst: Reg::Rax, imm: 1 }, Inst::Ret])?;
//! program.set_entry(main);
//!
//! let mut machine = Machine::new(program, Box::new(NoHooks), 0xC0FFEE);
//! let (outcome, _process) = machine.spawn_and_run()?;
//! assert!(outcome.exit.is_normal());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
mod decode;
pub mod error;
pub mod inst;
pub mod machine;
pub mod mem;
pub mod process;
pub mod program;
pub mod reg;
pub mod snapshot;
pub mod tls;

pub use cpu::{Cpu, ExecConfig, Exit, RunOutcome, RETURN_SENTINEL};
pub use error::{Fault, VmError};
pub use inst::{FuncId, Inst};
pub use machine::{Machine, NoHooks, RunStats, RuntimeHooks};
pub use mem::Memory;
pub use process::{Pid, Process};
pub use program::Program;
pub use reg::{Reg, RegisterFile};
pub use snapshot::Snapshot;
pub use tls::{
    Tls, TLS_CANARY_OFFSET, TLS_DCR_HEAD_OFFSET, TLS_DYNAGUARD_CAB_OFFSET, TLS_SHADOW_C0_OFFSET,
    TLS_SHADOW_C1_OFFSET, TLS_SHADOW_PACKED32_OFFSET,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let mut program = Program::new();
        let f = program.add_function("f", vec![Inst::Ret]).unwrap();
        program.set_entry(f);
        let mut machine = Machine::new(program, Box::new(NoHooks), 1);
        let (outcome, process) = machine.spawn_and_run().unwrap();
        assert!(outcome.exit.is_normal());
        assert_ne!(process.tls.canary(), 0);
    }
}
