//! Thread Local Storage block.
//!
//! On x86-64 Linux the stack canary lives in the TLS at `%fs:0x28`.  The
//! P-SSP shared library additionally stores the *shadow* canary pair
//! `(C0, C1)` at `%fs:0x2a8`–`%fs:0x2b7` (§V-A of the paper).  This module
//! models the TLS block as a small byte array addressed by offset, and
//! exposes the canonical offsets as constants so every crate in the
//! workspace refers to the same layout.

use crate::error::VmError;

/// Offset of the classic SSP canary `C` (`%fs:0x28`).
pub const TLS_CANARY_OFFSET: u64 = 0x28;
/// Offset of the first shadow canary word `C0` (`%fs:0x2a8`).
pub const TLS_SHADOW_C0_OFFSET: u64 = 0x2a8;
/// Offset of the second shadow canary word `C1` (`%fs:0x2b0`).
pub const TLS_SHADOW_C1_OFFSET: u64 = 0x2b0;
/// Offset of the packed 32-bit shadow canary used by the binary rewriter
/// (the low word holds `C0 || C1` as two 32-bit halves).
pub const TLS_SHADOW_PACKED32_OFFSET: u64 = 0x2b8;
/// Offset of DynaGuard's pointer to its canary address buffer (CAB).
pub const TLS_DYNAGUARD_CAB_OFFSET: u64 = 0x2c0;
/// Offset of DCR's pointer to the head of its in-stack canary linked list.
pub const TLS_DCR_HEAD_OFFSET: u64 = 0x2c8;
/// Total size of the modelled TLS block in bytes.
pub const TLS_SIZE: u64 = 0x400;

/// A thread's TLS block.
///
/// Cloning a [`Tls`] is exactly what `fork()` does to the child's TLS: a
/// byte-for-byte copy of the parent's block (§II-B of the paper explains why
/// this is the root cause of the byte-by-byte attack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tls {
    bytes: Vec<u8>,
}

impl Tls {
    /// Creates a zeroed TLS block.
    pub fn new() -> Self {
        Tls { bytes: vec![0u8; TLS_SIZE as usize] }
    }

    /// Reads a 64-bit word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TlsOutOfRange`] if the access crosses the block.
    #[inline]
    pub fn read_word(&self, offset: u64) -> Result<u64, VmError> {
        let start = self.check(offset, 8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes[start..start + 8]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a 64-bit word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TlsOutOfRange`] if the access crosses the block.
    #[inline]
    pub fn write_word(&mut self, offset: u64, value: u64) -> Result<(), VmError> {
        let start = self.check(offset, 8)?;
        self.bytes[start..start + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a 32-bit word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TlsOutOfRange`] if the access crosses the block.
    pub fn read_u32(&self, offset: u64) -> Result<u32, VmError> {
        let start = self.check(offset, 4)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.bytes[start..start + 4]);
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a 32-bit word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TlsOutOfRange`] if the access crosses the block.
    pub fn write_u32(&mut self, offset: u64, value: u32) -> Result<(), VmError> {
        let start = self.check(offset, 4)?;
        self.bytes[start..start + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Convenience accessor for the SSP canary `C`.
    pub fn canary(&self) -> u64 {
        self.read_word(TLS_CANARY_OFFSET).expect("canonical offset is in range")
    }

    /// Convenience setter for the SSP canary `C`.
    pub fn set_canary(&mut self, value: u64) {
        self.write_word(TLS_CANARY_OFFSET, value).expect("canonical offset is in range");
    }

    /// Convenience accessor for the shadow canary pair `(C0, C1)`.
    pub fn shadow_canary(&self) -> (u64, u64) {
        (
            self.read_word(TLS_SHADOW_C0_OFFSET).expect("canonical offset is in range"),
            self.read_word(TLS_SHADOW_C1_OFFSET).expect("canonical offset is in range"),
        )
    }

    /// Convenience setter for the shadow canary pair `(C0, C1)`.
    pub fn set_shadow_canary(&mut self, c0: u64, c1: u64) {
        self.write_word(TLS_SHADOW_C0_OFFSET, c0).expect("canonical offset is in range");
        self.write_word(TLS_SHADOW_C1_OFFSET, c1).expect("canonical offset is in range");
    }

    #[inline]
    fn check(&self, offset: u64, len: u64) -> Result<usize, VmError> {
        if offset.checked_add(len).map(|end| end <= TLS_SIZE).unwrap_or(false) {
            Ok(offset as usize)
        } else {
            Err(VmError::TlsOutOfRange { offset })
        }
    }
}

impl Default for Tls {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_offsets_are_distinct_and_word_aligned() {
        let offsets = [
            TLS_CANARY_OFFSET,
            TLS_SHADOW_C0_OFFSET,
            TLS_SHADOW_C1_OFFSET,
            TLS_SHADOW_PACKED32_OFFSET,
            TLS_DYNAGUARD_CAB_OFFSET,
            TLS_DCR_HEAD_OFFSET,
        ];
        for (i, a) in offsets.iter().enumerate() {
            assert_eq!(a % 8, 0);
            assert!(a + 8 <= TLS_SIZE);
            for b in offsets.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // The paper stores C0 at %fs:0x2a8 and C1 immediately after.
        assert_eq!(TLS_SHADOW_C1_OFFSET, TLS_SHADOW_C0_OFFSET + 8);
    }

    #[test]
    fn word_roundtrip() {
        let mut tls = Tls::new();
        tls.write_word(0x28, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(tls.read_word(0x28).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn u32_roundtrip() {
        let mut tls = Tls::new();
        tls.write_u32(0x2b8, 0x1234_5678).unwrap();
        assert_eq!(tls.read_u32(0x2b8).unwrap(), 0x1234_5678);
    }

    #[test]
    fn out_of_range_is_reported() {
        let mut tls = Tls::new();
        assert_eq!(
            tls.read_word(TLS_SIZE - 4).unwrap_err(),
            VmError::TlsOutOfRange { offset: TLS_SIZE - 4 }
        );
        assert!(tls.write_word(TLS_SIZE, 0).is_err());
        assert!(tls.read_word(u64::MAX - 2).is_err());
    }

    #[test]
    fn canary_helpers_use_canonical_offset() {
        let mut tls = Tls::new();
        tls.set_canary(42);
        assert_eq!(tls.read_word(TLS_CANARY_OFFSET).unwrap(), 42);
        assert_eq!(tls.canary(), 42);
    }

    #[test]
    fn shadow_canary_helpers_roundtrip() {
        let mut tls = Tls::new();
        tls.set_shadow_canary(11, 22);
        assert_eq!(tls.shadow_canary(), (11, 22));
        assert_eq!(tls.read_word(TLS_SHADOW_C0_OFFSET).unwrap(), 11);
        assert_eq!(tls.read_word(TLS_SHADOW_C1_OFFSET).unwrap(), 22);
    }

    #[test]
    fn clone_models_fork_semantics() {
        let mut parent = Tls::new();
        parent.set_canary(7777);
        parent.set_shadow_canary(1, 2);
        let mut child = parent.clone();
        assert_eq!(child.canary(), 7777);
        // Changing the child must not affect the parent (separate address spaces).
        child.set_shadow_canary(3, 4);
        assert_eq!(parent.shadow_canary(), (1, 2));
        assert_eq!(child.shadow_canary(), (3, 4));
        // The TLS canary itself is shared *by value* after fork: both see 7777
        // until somebody rewrites it (RAF-SSP does; P-SSP never does).
        assert_eq!(parent.canary(), child.canary());
    }
}
