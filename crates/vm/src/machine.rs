//! The machine runtime: loader, fork handling and runtime hooks.
//!
//! The paper's deployment story has three runtime pieces outside the
//! compiler: the OS loader initialising the TLS canary, glibc's
//! `fork`/`pthread_create`, and the P-SSP shared library that overrides them
//! (via `LD_PRELOAD`) to refresh the TLS *shadow* canary in the child
//! (§V-A).  [`Machine`] models the first two and exposes the third as the
//! [`RuntimeHooks`] trait, implemented per scheme in `polycanary-core`.

use std::sync::Arc;

use polycanary_crypto::{Prng, SplitMix64};

use crate::cpu::{Cpu, ExecConfig, Exit, RunOutcome};
use crate::error::VmError;
use crate::inst::FuncId;
use crate::mem::DEFAULT_STACK_SIZE;
use crate::process::{Pid, Process};
use crate::program::Program;
use crate::snapshot::Snapshot;

/// Runtime hooks corresponding to the P-SSP shared library of §V-A.
///
/// * [`RuntimeHooks::on_startup`] models the `setup_p-ssp` constructor that
///   runs before `main`.
/// * [`RuntimeHooks::on_fork_child`] models the wrapped `fork()` — it runs in
///   (i.e. receives) the child process only, after the TLS has been cloned.
/// * [`RuntimeHooks::on_thread_create`] models the wrapped `pthread_create`.
///
/// The default implementations do nothing, which is exactly the behaviour of
/// an uninstrumented (plain SSP) runtime.
pub trait RuntimeHooks: Send {
    /// Called once per process before its first instruction executes.
    fn on_startup(&mut self, _process: &mut Process, _cpu: &mut Cpu) {}

    /// Called on the child process immediately after a fork.
    fn on_fork_child(&mut self, _child: &mut Process) {}

    /// Called on a newly spawned thread's context.
    fn on_thread_create(&mut self, _thread: &mut Process) {}

    /// Human-readable name of the runtime (used in experiment output).
    fn name(&self) -> &'static str {
        "default-runtime"
    }
}

/// The glibc-only runtime: no shadow canary handling at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl RuntimeHooks for NoHooks {
    fn name(&self) -> &'static str {
        "glibc"
    }
}

/// A machine: a finalized program plus the runtime that launches processes.
///
/// The program is shared by `Arc`, so machines booted from the same
/// [`Snapshot`] — one per victim in a fleet campaign — share a single
/// compiled copy.
pub struct Machine {
    program: Arc<Program>,
    hooks: Box<dyn RuntimeHooks>,
    loader_rng: SplitMix64,
    next_pid: u64,
    stack_size: u64,
    forks: u64,
    /// Execution configuration applied to every run.
    pub exec_config: ExecConfig,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("functions", &self.program.len())
            .field("runtime", &self.hooks.name())
            .field("next_pid", &self.next_pid)
            .finish()
    }
}

impl Machine {
    /// Creates a machine for `program` using the given runtime hooks.
    ///
    /// `seed` drives the loader's canary choice and all per-process entropy,
    /// making every experiment reproducible.
    ///
    /// The program is finalized if it was not already.
    pub fn new(mut program: Program, hooks: Box<dyn RuntimeHooks>, seed: u64) -> Self {
        if !program.is_finalized() {
            program.finalize();
        }
        Machine {
            program: Arc::new(program),
            hooks,
            loader_rng: SplitMix64::new(seed),
            next_pid: 1,
            stack_size: DEFAULT_STACK_SIZE,
            forks: 0,
            exec_config: ExecConfig::default(),
        }
    }

    /// Boots a machine from a [`Snapshot`] instead of a program: the
    /// compiled program and the execution configuration are shared from the
    /// snapshot (no re-finalization, no copy), while the seed-dependent
    /// state — pid sequence, loader RNG — starts fresh from `seed`, exactly
    /// as in [`Machine::new`].  For any given `(program, seed)` the two
    /// boot paths are indistinguishable.
    pub fn from_snapshot(snapshot: &Snapshot, hooks: Box<dyn RuntimeHooks>, seed: u64) -> Self {
        Machine {
            program: snapshot.program_arc(),
            hooks,
            loader_rng: SplitMix64::new(seed),
            next_pid: 1,
            stack_size: snapshot.stack_size(),
            forks: 0,
            exec_config: snapshot.exec_config().clone(),
        }
    }

    /// Captures this machine's seed-independent boot state: the shared
    /// program, the execution configuration and the current stack size.
    /// See [`Snapshot`] for the restore contract.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_parts(Arc::clone(&self.program), self.exec_config.clone(), self.stack_size)
    }

    /// The fast path of [`Machine::spawn`]: launches a new top-level
    /// process whose memory image is *cloned* from the snapshot (an `Arc`
    /// bump per segment, copy-on-write thereafter) instead of freshly
    /// allocated and zeroed.  Everything seed-dependent — the pid, the
    /// loader's canary draw, the entropy devices, the startup hook — runs
    /// exactly as in `spawn`, so for equal machine state the two paths
    /// return bit-identical processes.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Process {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let seed = self.loader_rng.next_u64();
        let mut process = Process::from_image(pid, seed, snapshot.image().clone());
        process.tls.set_canary(self.loader_rng.next_u64());
        let mut cpu = Cpu::new();
        self.hooks.on_startup(&mut process, &mut cpu);
        process
    }

    /// Sets the stack size used for newly spawned processes.
    pub fn set_stack_size(&mut self, bytes: u64) {
        self.stack_size = bytes;
    }

    /// The program loaded into this machine.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The runtime hooks (shared library) attached to this machine.
    pub fn hooks_name(&self) -> &'static str {
        self.hooks.name()
    }

    /// Spawns a new top-level process: the loader picks a fresh TLS canary
    /// (as glibc does at program startup) and the runtime's startup hook
    /// runs (the P-SSP constructor, when installed).
    pub fn spawn(&mut self) -> Process {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let seed = self.loader_rng.next_u64();
        let mut process = Process::new(pid, seed, self.stack_size);
        // glibc: the canary has its lowest byte zeroed (a terminator canary)
        // in some configurations; the paper treats it as a full random word,
        // which we follow.
        process.tls.set_canary(self.loader_rng.next_u64());
        let mut cpu = Cpu::new();
        self.hooks.on_startup(&mut process, &mut cpu);
        process
    }

    /// Forks `parent`, returning the child.  The child's TLS and memory are
    /// cloned first (kernel behaviour), then the runtime's fork hook runs on
    /// the child (the wrapped `fork()` of the P-SSP shared library).
    pub fn fork(&mut self, parent: &mut Process) -> Process {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.forks += 1;
        let mut child = parent.fork(pid);
        self.hooks.on_fork_child(&mut child);
        child
    }

    /// Total number of forks this machine has performed, over all parents.
    /// A forking server's connection loop forks one worker per accepted
    /// connection, so this counter doubles as its connections-served gauge.
    pub fn forks(&self) -> u64 {
        self.forks
    }

    /// Spawns a thread sharing the parent's program.  Threads get their own
    /// TLS (cloned then refreshed by the hook), which matches how glibc
    /// allocates a new TCB per thread.
    pub fn spawn_thread(&mut self, parent: &mut Process) -> Process {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let mut thread = parent.fork(pid);
        self.hooks.on_thread_create(&mut thread);
        thread
    }

    /// Runs the program's entry function in `process`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::MissingEntryPoint`] if the program has no entry.
    pub fn run(&self, process: &mut Process) -> Result<RunOutcome, VmError> {
        let entry = self.program.entry()?;
        Ok(self.run_function_id(process, entry))
    }

    /// Runs a specific function by name in `process`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnknownFunction`] if no such function exists.
    pub fn run_function(&self, process: &mut Process, name: &str) -> Result<RunOutcome, VmError> {
        let id = self
            .program
            .function_by_name(name)
            .ok_or_else(|| VmError::UnknownFunction { name: name.to_string() })?;
        Ok(self.run_function_id(process, id))
    }

    /// Runs a specific function by id in `process`.
    pub fn run_function_id(&self, process: &mut Process, id: FuncId) -> RunOutcome {
        let mut cpu = Cpu::new();
        let exit = cpu.run(&self.program, process, id, &self.exec_config);
        RunOutcome { exit, cycles: cpu.cycles, instructions: cpu.instructions }
    }

    /// Convenience wrapper: spawn a process, run the entry point and return
    /// both the outcome and the final process state.
    pub fn spawn_and_run(&mut self) -> Result<(RunOutcome, Process), VmError> {
        let mut process = self.spawn();
        let outcome = self.run(&mut process)?;
        Ok((outcome, process))
    }
}

/// Summary statistics over a set of run outcomes, used by the workload and
/// benchmark crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of runs that exited normally.
    pub normal: u64,
    /// Number of runs ending in canary detection.
    pub detected: u64,
    /// Number of runs ending in control-flow hijack.
    pub hijacked: u64,
    /// Number of runs ending in any other fault.
    pub other_faults: u64,
    /// Total cycles across all runs.
    pub total_cycles: u64,
    /// Total instructions across all runs.
    pub total_instructions: u64,
}

impl RunStats {
    /// Accumulates one outcome.
    pub fn record(&mut self, outcome: &RunOutcome) {
        match &outcome.exit {
            Exit::Normal(_) => self.normal += 1,
            Exit::Fault(f) if f.is_detection() => self.detected += 1,
            Exit::Fault(f) if f.is_hijack() => self.hijacked += 1,
            Exit::Fault(_) => self.other_faults += 1,
        }
        self.total_cycles += outcome.cycles;
        self.total_instructions += outcome.instructions;
    }

    /// Total number of recorded runs.
    pub fn runs(&self) -> u64 {
        self.normal + self.detected + self.hijacked + self.other_faults
    }

    /// Mean cycles per run (0 if no runs were recorded).
    pub fn mean_cycles(&self) -> f64 {
        if self.runs() == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.runs() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::reg::Reg;

    fn trivial_program() -> Program {
        let mut prog = Program::new();
        let main = prog
            .add_function("main", vec![Inst::MovImmToReg { dst: Reg::Rax, imm: 7 }, Inst::Ret])
            .unwrap();
        prog.set_entry(main);
        prog
    }

    #[test]
    fn spawn_assigns_fresh_pids_and_canaries() {
        let mut machine = Machine::new(trivial_program(), Box::new(NoHooks), 1);
        let a = machine.spawn();
        let b = machine.spawn();
        assert_ne!(a.pid(), b.pid());
        assert_ne!(a.tls.canary(), 0);
        assert_ne!(a.tls.canary(), b.tls.canary());
    }

    #[test]
    fn spawn_is_reproducible_from_seed() {
        let mut m1 = Machine::new(trivial_program(), Box::new(NoHooks), 99);
        let mut m2 = Machine::new(trivial_program(), Box::new(NoHooks), 99);
        assert_eq!(m1.spawn().tls.canary(), m2.spawn().tls.canary());
    }

    #[test]
    fn run_executes_entry() {
        let mut machine = Machine::new(trivial_program(), Box::new(NoHooks), 1);
        let (outcome, _) = machine.spawn_and_run().unwrap();
        assert_eq!(outcome.exit, Exit::Normal(7));
        assert!(outcome.cycles > 0);
        assert_eq!(outcome.instructions, 2);
    }

    #[test]
    fn fork_preserves_canary_with_default_runtime() {
        let mut machine = Machine::new(trivial_program(), Box::new(NoHooks), 5);
        let mut parent = machine.spawn();
        let child = machine.fork(&mut parent);
        assert_eq!(parent.tls.canary(), child.tls.canary());
        assert_ne!(parent.pid(), child.pid());
    }

    #[test]
    fn machine_counts_forks_across_all_parents() {
        let mut machine = Machine::new(trivial_program(), Box::new(NoHooks), 5);
        assert_eq!(machine.forks(), 0);
        let mut a = machine.spawn();
        let mut b = machine.spawn();
        let _ = machine.fork(&mut a);
        let _ = machine.fork(&mut b);
        let _ = machine.fork(&mut a);
        assert_eq!(machine.forks(), 3);
        // Spawning fresh top-level processes is not a fork.
        let _ = machine.spawn();
        assert_eq!(machine.forks(), 3);
    }

    #[test]
    fn run_function_by_name_and_unknown_function() {
        let machine = Machine::new(trivial_program(), Box::new(NoHooks), 5);
        let mut p = Process::new(Pid(1), 0, DEFAULT_STACK_SIZE);
        assert!(machine.run_function(&mut p, "main").is_ok());
        assert!(matches!(
            machine.run_function(&mut p, "nope"),
            Err(VmError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn hooks_are_invoked() {
        #[derive(Default)]
        struct Counting {
            startups: u64,
            forks: u64,
        }
        impl RuntimeHooks for Counting {
            fn on_startup(&mut self, process: &mut Process, _cpu: &mut Cpu) {
                self.startups += 1;
                process.tls.set_shadow_canary(1, 2);
            }
            fn on_fork_child(&mut self, child: &mut Process) {
                self.forks += 1;
                child.tls.set_shadow_canary(3, 4);
            }
            fn name(&self) -> &'static str {
                "counting"
            }
        }
        let mut machine = Machine::new(trivial_program(), Box::new(Counting::default()), 5);
        let mut parent = machine.spawn();
        assert_eq!(parent.tls.shadow_canary(), (1, 2));
        let child = machine.fork(&mut parent);
        assert_eq!(child.tls.shadow_canary(), (3, 4));
        // Parent's shadow canary is untouched by the child's fork hook.
        assert_eq!(parent.tls.shadow_canary(), (1, 2));
        assert_eq!(machine.hooks_name(), "counting");
    }

    #[test]
    fn restore_matches_spawn_bit_for_bit() {
        let mut fresh = Machine::new(trivial_program(), Box::new(NoHooks), 77);
        let snapshot = fresh.snapshot();
        let mut restored = Machine::from_snapshot(&snapshot, Box::new(NoHooks), 77);
        // The pid sequence, loader canaries and memory images all agree —
        // across several draws, not just the first.
        for _ in 0..3 {
            let mut a = fresh.spawn();
            let mut b = restored.restore(&snapshot);
            assert_eq!(a.pid(), b.pid());
            assert_eq!(a.tls.canary(), b.tls.canary());
            assert_eq!(a.memory, b.memory);
            let ran_a = fresh.run(&mut a).unwrap();
            let ran_b = restored.run(&mut b).unwrap();
            assert_eq!(ran_a.exit, ran_b.exit);
            assert_eq!(ran_a.instructions, ran_b.instructions);
        }
    }

    #[test]
    fn restore_runs_the_startup_hook() {
        struct ShadowHook;
        impl RuntimeHooks for ShadowHook {
            fn on_startup(&mut self, process: &mut Process, _cpu: &mut Cpu) {
                process.tls.set_shadow_canary(11, 22);
            }
        }
        let machine = Machine::new(trivial_program(), Box::new(NoHooks), 4);
        let snapshot = machine.snapshot();
        let mut booted = Machine::from_snapshot(&snapshot, Box::new(ShadowHook), 4);
        let process = booted.restore(&snapshot);
        assert_eq!(process.tls.shadow_canary(), (11, 22));
    }

    #[test]
    fn restored_processes_share_image_pages_until_written() {
        let machine = Machine::new(trivial_program(), Box::new(NoHooks), 8);
        let snapshot = machine.snapshot();
        let mut booted = Machine::from_snapshot(&snapshot, Box::new(NoHooks), 8);
        let a = booted.restore(&snapshot);
        let b = booted.restore(&snapshot);
        // Neither process has written yet: both still share the snapshot's
        // pristine image pages — the allocation-free boot the fleet engine
        // depends on.
        assert!(a.memory.shares_pages_with(snapshot.image()));
        assert!(b.memory.shares_pages_with(snapshot.image()));
    }

    #[test]
    fn run_stats_classify_outcomes() {
        let mut stats = RunStats::default();
        stats.record(&RunOutcome { exit: Exit::Normal(0), cycles: 100, instructions: 10 });
        stats.record(&RunOutcome {
            exit: Exit::Fault(crate::error::Fault::CanaryViolation { function: "f".into() }),
            cycles: 50,
            instructions: 5,
        });
        stats.record(&RunOutcome {
            exit: Exit::Fault(crate::error::Fault::ControlFlowHijacked { addr: 1 }),
            cycles: 50,
            instructions: 5,
        });
        assert_eq!(stats.runs(), 3);
        assert_eq!(stats.normal, 1);
        assert_eq!(stats.detected, 1);
        assert_eq!(stats.hijacked, 1);
        assert!((stats.mean_cycles() - 200.0 / 3.0).abs() < 1e-9);
    }
}
