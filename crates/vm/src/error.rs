//! Errors and faults produced by the simulated machine.

use std::fmt;
use std::sync::Arc;

/// Recoverable errors returned by VM building blocks (memory, TLS, program
/// construction).  These indicate misuse of the simulator API, not behaviour
/// of the simulated program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// A memory access referenced an address outside every mapped segment.
    UnmappedAddress {
        /// The offending virtual address.
        addr: u64,
    },
    /// A memory access crossed the end of a mapped segment.
    PartialAccess {
        /// The starting virtual address of the access.
        addr: u64,
        /// The length of the access in bytes.
        len: usize,
    },
    /// A TLS access was outside the TLS block.
    TlsOutOfRange {
        /// The offending offset from the TLS base.
        offset: u64,
    },
    /// A function id did not refer to a function of the program.
    UnknownFunction {
        /// The name or index that failed to resolve.
        name: String,
    },
    /// The program has no entry point set.
    MissingEntryPoint,
    /// Two functions were given the same name.
    DuplicateFunction {
        /// The duplicated name.
        name: String,
    },
    /// A rewrite changed the encoded size of a function, which would shift
    /// the address layout of the binary (§V-C challenge 2).
    LayoutChanged {
        /// The function whose size changed.
        function: String,
        /// Encoded size before the rewrite.
        before: u64,
        /// Encoded size after the rewrite.
        after: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UnmappedAddress { addr } => write!(f, "unmapped address {addr:#x}"),
            VmError::PartialAccess { addr, len } => {
                write!(f, "access of {len} bytes at {addr:#x} crosses a segment boundary")
            }
            VmError::TlsOutOfRange { offset } => write!(f, "TLS offset {offset:#x} out of range"),
            VmError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            VmError::MissingEntryPoint => write!(f, "program has no entry point"),
            VmError::DuplicateFunction { name } => write!(f, "duplicate function `{name}`"),
            VmError::LayoutChanged { function, before, after } => write!(
                f,
                "rewrite changed encoded size of `{function}` from {before} to {after} bytes"
            ),
        }
    }
}

impl std::error::Error for VmError {}

/// Reasons a simulated process stops abnormally.
///
/// A [`Fault`] is behaviour *of the simulated program* (e.g. the stack
/// protector fired), as opposed to [`VmError`] which indicates misuse of the
/// simulator itself.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// `__stack_chk_fail` (or the patched canary checker) detected a
    /// mismatching canary and aborted the process.
    CanaryViolation {
        /// Name of the function whose epilogue detected the mismatch.
        /// Interned (shared with the program's function table): a
        /// byte-by-byte campaign constructs one of these per probe, so
        /// building the fault must not allocate.
        function: Arc<str>,
    },
    /// A local-variable canary check (P-SSP-LV) detected corruption of a
    /// critical variable's guard before function return.
    LocalVariableViolation {
        /// Name of the function whose check detected the mismatch
        /// (interned, like [`Fault::CanaryViolation::function`]).
        function: Arc<str>,
        /// Index of the critical variable whose canary was corrupted.
        variable_index: usize,
    },
    /// A load or store touched an unmapped address.
    MemoryFault {
        /// The offending address.
        addr: u64,
    },
    /// A `ret` popped an address that does not map to any instruction.
    InvalidReturn {
        /// The popped return address.
        addr: u64,
    },
    /// Control was transferred (via `call` or a bad entry point) to a
    /// function id that does not exist in the program — as opposed to
    /// [`Fault::InvalidReturn`], which is a `ret` to a non-instruction
    /// *address*.  The two used to be conflated (an unknown id was reported
    /// as a return to address 0); carrying the id keeps a linker-level bug
    /// distinguishable from a genuine corrupted return address.
    UnknownFunction {
        /// The function id that failed to resolve.
        id: usize,
    },
    /// A `ret` transferred control to the attacker's chosen target address:
    /// the attack succeeded without being detected.
    ControlFlowHijacked {
        /// The address control flow was diverted to.
        addr: u64,
    },
    /// The stack pointer moved below the stack segment.
    StackExhausted,
    /// The instruction budget of the execution was exceeded.
    InstructionLimit,
    /// The simulated `rdrand` failed permanently (only possible when failure
    /// injection is configured with no retry).
    EntropyFailure,
}

impl Fault {
    /// Returns `true` if this fault corresponds to the stack protector
    /// detecting an attack (either the return-address canary or a
    /// local-variable canary).
    pub fn is_detection(&self) -> bool {
        matches!(self, Fault::CanaryViolation { .. } | Fault::LocalVariableViolation { .. })
    }

    /// Returns `true` if this fault means the attacker achieved control-flow
    /// hijacking without detection.
    pub fn is_hijack(&self) -> bool {
        matches!(self, Fault::ControlFlowHijacked { .. })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::CanaryViolation { function } => {
                write!(f, "stack smashing detected in `{function}`")
            }
            Fault::LocalVariableViolation { function, variable_index } => {
                write!(f, "local variable canary {variable_index} corrupted in `{function}`")
            }
            Fault::MemoryFault { addr } => write!(f, "segmentation fault at {addr:#x}"),
            Fault::InvalidReturn { addr } => write!(f, "return to invalid address {addr:#x}"),
            Fault::UnknownFunction { id } => write!(f, "call to unknown function fn#{id}"),
            Fault::ControlFlowHijacked { addr } => {
                write!(f, "control flow hijacked to {addr:#x}")
            }
            Fault::StackExhausted => write!(f, "stack exhausted"),
            Fault::InstructionLimit => write!(f, "instruction limit exceeded"),
            Fault::EntropyFailure => write!(f, "hardware entropy source failed"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_classification() {
        assert!(Fault::CanaryViolation { function: "f".into() }.is_detection());
        assert!(Fault::LocalVariableViolation { function: "f".into(), variable_index: 0 }
            .is_detection());
        assert!(!Fault::CanaryViolation { function: "f".into() }.is_hijack());
        assert!(Fault::ControlFlowHijacked { addr: 0x41414141 }.is_hijack());
        assert!(!Fault::ControlFlowHijacked { addr: 0x41414141 }.is_detection());
        assert!(!Fault::StackExhausted.is_detection());
        assert!(!Fault::UnknownFunction { id: 7 }.is_detection());
        assert!(!Fault::UnknownFunction { id: 7 }.is_hijack());
    }

    #[test]
    fn unknown_function_is_not_an_invalid_return() {
        // The regression the fault exists for: a call to a bad function id
        // must stay distinguishable from a return to address 0.
        assert_ne!(Fault::UnknownFunction { id: 0 }, Fault::InvalidReturn { addr: 0 });
        assert!(Fault::UnknownFunction { id: 3 }.to_string().contains("fn#3"));
    }

    #[test]
    fn display_messages_are_informative() {
        let f = Fault::CanaryViolation { function: "handle_request".into() };
        assert!(f.to_string().contains("handle_request"));
        let e = VmError::UnmappedAddress { addr: 0xdead };
        assert!(e.to_string().contains("0xdead"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<VmError>();
        assert_err::<Fault>();
    }
}
