//! General-purpose registers of the simulated machine.

use std::fmt;

/// The sixteen general-purpose 64-bit registers of x86-64.
///
/// The simulated instruction set only needs the registers that appear in the
/// paper's prologue/epilogue listings (`rax`, `rbp`, `rsp`, `rdx`, `rdi`,
/// `rcx`, `r12`, `r13`), but the full set is modelled so workload bodies and
/// future extensions are not artificially constrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Reg {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All registers, in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rbx,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rsi,
        Reg::Rdi,
        Reg::Rbp,
        Reg::Rsp,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Index of the register in the register file.
    ///
    /// The discriminant *is* the encoding-order index; the
    /// `all_indexes_are_unique_and_dense` test pins the correspondence so
    /// reordering [`Reg::ALL`] without reordering the enum cannot slip by.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the register needs a REX prefix byte in its encoding
    /// (`r8`–`r15`), which makes `push`/`pop` one byte longer.
    pub fn is_extended(self) -> bool {
        matches!(
            self,
            Reg::R8 | Reg::R9 | Reg::R10 | Reg::R11 | Reg::R12 | Reg::R13 | Reg::R14 | Reg::R15
        )
    }

    /// Whether the register is callee-saved under the System V AMD64 ABI.
    ///
    /// The P-SSP-OWF extension parks its AES key in `r12`/`r13` precisely
    /// because they are callee-saved (§V-E3 of the paper).
    pub fn is_callee_saved(self) -> bool {
        matches!(self, Reg::Rbx | Reg::Rbp | Reg::R12 | Reg::R13 | Reg::R14 | Reg::R15)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Reg::Rax => "rax",
            Reg::Rbx => "rbx",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::Rbp => "rbp",
            Reg::Rsp => "rsp",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        };
        f.write_str(name)
    }
}

/// The register file of one executing CPU context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    values: [u64; 16],
}

impl RegisterFile {
    /// Creates a register file with all registers zeroed.
    pub fn new() -> Self {
        RegisterFile { values: [0; 16] }
    }

    /// Reads a register.
    #[inline]
    pub fn read(&self, reg: Reg) -> u64 {
        self.values[reg.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn write(&mut self, reg: Reg, value: u64) {
        self.values[reg.index()] = value;
    }

    /// Reads the low 32 bits of a register.
    pub fn read32(&self, reg: Reg) -> u32 {
        self.values[reg.index()] as u32
    }

    /// Writes the low 32 bits of a register, zero-extending as x86-64 does.
    pub fn write32(&mut self, reg: Reg, value: u32) {
        self.values[reg.index()] = value as u64;
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut rf = RegisterFile::new();
        for (i, reg) in Reg::ALL.iter().enumerate() {
            rf.write(*reg, i as u64 * 1000 + 7);
        }
        for (i, reg) in Reg::ALL.iter().enumerate() {
            assert_eq!(rf.read(*reg), i as u64 * 1000 + 7);
        }
    }

    #[test]
    fn write32_zero_extends() {
        let mut rf = RegisterFile::new();
        rf.write(Reg::Rax, u64::MAX);
        rf.write32(Reg::Rax, 0x1234_5678);
        assert_eq!(rf.read(Reg::Rax), 0x1234_5678);
        assert_eq!(rf.read32(Reg::Rax), 0x1234_5678);
    }

    #[test]
    fn extended_registers_flagged() {
        assert!(Reg::R12.is_extended());
        assert!(!Reg::Rax.is_extended());
    }

    #[test]
    fn owf_key_registers_are_callee_saved() {
        assert!(Reg::R12.is_callee_saved());
        assert!(Reg::R13.is_callee_saved());
        assert!(!Reg::Rdi.is_callee_saved());
    }

    #[test]
    fn display_matches_att_names() {
        assert_eq!(Reg::Rbp.to_string(), "rbp");
        assert_eq!(Reg::R13.to_string(), "r13");
    }

    #[test]
    fn all_indexes_are_unique_and_dense() {
        let mut seen = [false; 16];
        for reg in Reg::ALL {
            assert!(!seen[reg.index()]);
            seen[reg.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
