//! Simulated processes and fork semantics.
//!
//! The byte-by-byte attack of §II-B exists because `fork()` clones the
//! parent's TLS — and therefore its canary — into every worker child.  The
//! [`Process`] type models exactly the state that matters for that argument:
//! the memory image (stack + globals), the TLS block, the per-process
//! hardware entropy devices and the attacker-facing input/output channels.

use polycanary_crypto::{HardwareRng, TimeStampCounter};

use crate::mem::Memory;
use crate::tls::Tls;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// One simulated process (or thread — the paper treats Linux threads as
/// processes sharing a program, which is how the simulator models them too).
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    /// The process's memory image.
    pub memory: Memory,
    /// The thread local storage block.
    pub tls: Tls,
    /// Hardware random number generator (`rdrand`) device state.
    pub hwrng: HardwareRng,
    /// Time stamp counter device state.
    pub tsc: TimeStampCounter,
    /// DynaGuard's canary address buffer (CAB): addresses of every live
    /// stack canary, maintained by the `RecordCanaryAddress` /
    /// `PopCanaryAddress` pseudo-instructions.
    pub canary_addresses: Vec<u64>,
    /// DCR's canary list.  The real system threads this list through the
    /// canaries on the stack; the simulator keeps it as a side table with
    /// the head mirrored in the TLS, which preserves the fork-time
    /// re-randomisation walk the scheme performs.
    pub dcr_list: Vec<u64>,
    /// AES key parked in the callee-saved registers `r12:r13` by the
    /// P-SSP-OWF startup hook; `None` for all other schemes.
    pub owf_key: Option<(u64, u64)>,
    input: Vec<u8>,
    output: Vec<u8>,
    /// Number of times this process has forked children.
    forks: u64,
}

impl Process {
    /// Creates a fresh process with a zeroed memory image.
    ///
    /// `seed` parameterises the per-process hardware entropy devices so that
    /// runs are reproducible; the *TLS canary itself* is set by the loader
    /// (see `Machine::spawn`), not here.
    pub fn new(pid: Pid, seed: u64, stack_size: u64) -> Self {
        Process::from_image(pid, seed, Memory::with_stack_size(stack_size))
    }

    /// Creates a process from a pre-built memory image — the snapshot
    /// restore path, where `image` is a copy-on-write clone of a pristine
    /// captured image rather than a fresh allocation.
    ///
    /// Everything besides the image matches [`Process::new`] exactly; with
    /// an all-zero image the two constructors are indistinguishable, which
    /// is what makes `Machine::restore` bit-identical to `Machine::spawn`.
    pub fn from_image(pid: Pid, seed: u64, image: Memory) -> Self {
        Process {
            pid,
            memory: image,
            tls: Tls::new(),
            hwrng: HardwareRng::new(seed ^ pid.0.rotate_left(17)),
            tsc: TimeStampCounter::new(seed & 0xFFFF),
            canary_addresses: Vec::new(),
            dcr_list: Vec::new(),
            owf_key: None,
            input: Vec::new(),
            output: Vec::new(),
            forks: 0,
        }
    }

    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Forks this process: the child receives a byte-for-byte copy of the
    /// memory image and the TLS (including the canary), mirroring `fork(2)`.
    ///
    /// The child's hardware RNG stream is split so that parent and child do
    /// not draw identical "random" values — on real hardware `rdrand` is a
    /// shared physical device, so the streams are naturally distinct.
    pub fn fork(&mut self, child_pid: Pid) -> Process {
        self.forks += 1;
        // Re-share any segment this process owns outright, so the clone
        // below is an `Arc` bump per segment (kernel COW) even when the
        // parent has already written its stack.
        self.memory.share_pages();
        Process {
            pid: child_pid,
            memory: self.memory.clone(),
            tls: self.tls.clone(),
            hwrng: self.hwrng.split(),
            tsc: self.tsc.clone(),
            canary_addresses: self.canary_addresses.clone(),
            dcr_list: self.dcr_list.clone(),
            owf_key: self.owf_key,
            input: Vec::new(),
            output: Vec::new(),
            forks: 0,
        }
    }

    /// Number of children forked from this process so far.
    pub fn fork_count(&self) -> u64 {
        self.forks
    }

    /// Sets the attacker/client-controlled input delivered to the next
    /// request-handling function.
    pub fn set_input(&mut self, input: impl Into<Vec<u8>>) {
        self.input = input.into();
    }

    /// The current input buffer.
    pub fn input(&self) -> &[u8] {
        &self.input
    }

    /// Copies the input buffer (truncated to `max_len`, when given) into
    /// memory at `addr`.
    ///
    /// This is the allocation-free form of the `strcpy`/`strncpy` model
    /// instructions: the input and the memory image are distinct fields, so
    /// the copy can borrow both at once where external callers (the CPU
    /// interpreter) cannot.
    ///
    /// # Errors
    ///
    /// Propagates the memory error when the destination range is not mapped.
    pub fn copy_input_to_memory(
        &mut self,
        addr: u64,
        max_len: Option<usize>,
    ) -> Result<(), crate::error::VmError> {
        let len = match max_len {
            Some(m) => self.input.len().min(m),
            None => self.input.len(),
        };
        self.memory.write_bytes(addr, &self.input[..len])
    }

    /// Appends bytes to the output channel (used by `OutputReg`).
    pub fn push_output(&mut self, bytes: &[u8]) {
        self.output.extend_from_slice(bytes);
    }

    /// Takes and clears the accumulated output.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.output)
    }

    /// The accumulated output without clearing it.
    pub fn output(&self) -> &[u8] {
        &self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DEFAULT_STACK_SIZE;

    #[test]
    fn fork_clones_tls_and_memory() {
        let mut parent = Process::new(Pid(1), 42, DEFAULT_STACK_SIZE);
        parent.tls.set_canary(0xAABB_CCDD_EEFF_0011);
        let addr = parent.memory.stack_top() - 0x80;
        parent.memory.write_u64(addr, 777).unwrap();

        let child = parent.fork(Pid(2));
        assert_eq!(child.tls.canary(), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(child.memory.read_u64(addr).unwrap(), 777);
        assert_eq!(child.pid(), Pid(2));
        assert_eq!(parent.fork_count(), 1);
    }

    #[test]
    fn fork_isolates_subsequent_writes() {
        let mut parent = Process::new(Pid(1), 42, DEFAULT_STACK_SIZE);
        let mut child = parent.fork(Pid(2));
        child.tls.set_canary(123);
        parent.tls.set_canary(456);
        assert_eq!(child.tls.canary(), 123);
        assert_eq!(parent.tls.canary(), 456);
    }

    #[test]
    fn fork_splits_hardware_rng_streams() {
        let mut parent = Process::new(Pid(1), 42, DEFAULT_STACK_SIZE);
        let mut child = parent.fork(Pid(2));
        for _ in 0..32 {
            assert_ne!(
                parent.hwrng.rdrand_retrying().0,
                child.hwrng.rdrand_retrying().0,
                "parent and child must not draw identical rdrand values"
            );
        }
    }

    #[test]
    fn input_is_not_inherited_across_fork() {
        let mut parent = Process::new(Pid(1), 1, DEFAULT_STACK_SIZE);
        parent.set_input(vec![1, 2, 3]);
        let child = parent.fork(Pid(2));
        assert!(child.input().is_empty());
        assert_eq!(parent.input(), &[1, 2, 3]);
    }

    #[test]
    fn output_channel_accumulates_and_drains() {
        let mut p = Process::new(Pid(1), 1, DEFAULT_STACK_SIZE);
        p.push_output(b"hello ");
        p.push_output(b"world");
        assert_eq!(p.output(), b"hello world");
        assert_eq!(p.take_output(), b"hello world");
        assert!(p.output().is_empty());
    }

    #[test]
    fn canary_bookkeeping_state_is_cloned_on_fork() {
        let mut parent = Process::new(Pid(1), 1, DEFAULT_STACK_SIZE);
        parent.canary_addresses.push(0x7fff_0000);
        parent.dcr_list.push(0x7fff_0008);
        parent.owf_key = Some((1, 2));
        let child = parent.fork(Pid(2));
        assert_eq!(child.canary_addresses, vec![0x7fff_0000]);
        assert_eq!(child.dcr_list, vec![0x7fff_0008]);
        assert_eq!(child.owf_key, Some((1, 2)));
    }
}
