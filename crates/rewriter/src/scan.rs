//! Pattern scanning: locating SSP prologues and epilogues in compiled code.
//!
//! The paper's rewriter assumes its input was compiled with
//! `-fstack-protector` and therefore already contains the canary-handling
//! instruction sequences of Codes 1–2; instrumentation amounts to finding
//! and replacing exactly those sequences (§V-C).  This module implements the
//! finding part.

use polycanary_vm::inst::Inst;
use polycanary_vm::tls::TLS_CANARY_OFFSET;

/// Location of an SSP prologue canary-store inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrologueSite {
    /// Index of the `mov %fs:0x28,%rax` instruction.
    pub tls_load_index: usize,
    /// Index of the `mov %rax,-0x8(%rbp)` instruction.
    pub store_index: usize,
}

/// Location of an SSP epilogue check inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpilogueSite {
    /// Index of the first instruction of the check (the frame load).
    pub start_index: usize,
    /// Number of instructions forming the check (frame load, TLS XOR,
    /// conditional skip, `__stack_chk_fail` call).
    pub len: usize,
}

/// All SSP instrumentation sites found in one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SspSites {
    /// Prologue canary stores.
    pub prologues: Vec<PrologueSite>,
    /// Epilogue canary checks.
    pub epilogues: Vec<EpilogueSite>,
}

impl SspSites {
    /// Whether the function carries any SSP instrumentation at all.
    ///
    /// Note that this is deliberately an *or*: a prologue-only (or
    /// epilogue-only) function still counts as instrumented, so the rewriter
    /// sees it — and can then reject it via [`SspSites::is_balanced`] instead
    /// of silently skipping a half-protected function.
    pub fn is_instrumented(&self) -> bool {
        !self.prologues.is_empty() || !self.epilogues.is_empty()
    }

    /// Whether every prologue has a matching epilogue: the site counts are
    /// equal.  A mismatch (e.g. two prologues guarding one check) means the
    /// function cannot be upgraded consistently.
    pub fn is_balanced(&self) -> bool {
        self.prologues.len() == self.epilogues.len()
    }
}

/// Scans a function body for SSP prologue and epilogue patterns.
pub fn scan_function(insts: &[Inst]) -> SspSites {
    let mut sites = SspSites::default();

    for (i, window) in insts.windows(2).enumerate() {
        if let (Inst::MovTlsToReg { offset, .. }, Inst::MovRegToFrame { offset: -8, .. }) =
            (&window[0], &window[1])
        {
            if *offset == TLS_CANARY_OFFSET {
                sites.prologues.push(PrologueSite { tls_load_index: i, store_index: i + 1 });
            }
        }
    }

    for (i, window) in insts.windows(4).enumerate() {
        let is_epilogue = matches!(
            (&window[0], &window[1], &window[2], &window[3]),
            (
                Inst::MovFrameToReg { offset: -8, .. },
                Inst::XorTlsReg { offset: TLS_CANARY_OFFSET, .. },
                Inst::JeSkip(1),
                Inst::CallStackChkFail,
            )
        );
        if is_epilogue {
            sites.epilogues.push(EpilogueSite { start_index: i, len: 4 });
        }
    }

    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycanary_compiler::codegen::Compiler;
    use polycanary_compiler::ir::{FunctionBuilder, ModuleBuilder};
    use polycanary_core::scheme::SchemeKind;
    use polycanary_vm::reg::Reg;

    fn ssp_function_insts() -> Vec<Inst> {
        let module = ModuleBuilder::new()
            .function(
                FunctionBuilder::new("victim")
                    .buffer("buf", 32)
                    .vulnerable_copy("buf")
                    .returns(0)
                    .build(),
            )
            .build()
            .unwrap();
        let compiled = Compiler::new(SchemeKind::Ssp).compile(&module).unwrap();
        let id = compiled.by_name["victim"];
        compiled.program.function(id).unwrap().insts().to_vec()
    }

    #[test]
    fn finds_prologue_and_epilogue_in_ssp_output() {
        let sites = scan_function(&ssp_function_insts());
        assert_eq!(sites.prologues.len(), 1);
        assert_eq!(sites.epilogues.len(), 1);
        assert!(sites.is_instrumented());
    }

    #[test]
    fn prologue_site_points_at_the_tls_load() {
        let insts = ssp_function_insts();
        let sites = scan_function(&insts);
        let site = sites.prologues[0];
        assert!(matches!(insts[site.tls_load_index], Inst::MovTlsToReg { offset: 0x28, .. }));
        assert!(matches!(insts[site.store_index], Inst::MovRegToFrame { offset: -8, .. }));
    }

    #[test]
    fn unprotected_code_has_no_sites() {
        let insts = vec![
            Inst::PushReg(Reg::Rbp),
            Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp },
            Inst::Compute(100),
            Inst::Leave,
            Inst::Ret,
        ];
        let sites = scan_function(&insts);
        assert!(!sites.is_instrumented());
    }

    #[test]
    fn pssp_output_is_not_mistaken_for_ssp() {
        // P-SSP prologues read %fs:0x2a8, not %fs:0x28, so the scanner must
        // not match them (the rewriter only upgrades SSP binaries).
        let module = ModuleBuilder::new()
            .function(
                FunctionBuilder::new("victim").buffer("buf", 32).vulnerable_copy("buf").build(),
            )
            .build()
            .unwrap();
        let compiled = Compiler::new(SchemeKind::Pssp).compile(&module).unwrap();
        let id = compiled.by_name["victim"];
        let sites = scan_function(compiled.program.function(id).unwrap().insts());
        assert!(sites.prologues.is_empty());
    }

    #[test]
    fn multiple_epilogues_are_all_found() {
        // A function with two return paths has two epilogue checks.
        let mut insts = ssp_function_insts();
        let extra = ssp_function_insts();
        insts.extend(extra);
        let sites = scan_function(&insts);
        assert_eq!(sites.prologues.len(), 2);
        assert_eq!(sites.epilogues.len(), 2);
        assert!(sites.is_balanced());
    }

    #[test]
    fn adjacent_prologue_sites_are_both_found() {
        // Two back-to-back prologue pairs: the 2-instruction windows overlap
        // ([store, load] between the pairs must not confuse the scanner).
        let insts = vec![
            Inst::MovTlsToReg { dst: Reg::Rax, offset: TLS_CANARY_OFFSET },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -8 },
            Inst::MovTlsToReg { dst: Reg::Rax, offset: TLS_CANARY_OFFSET },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -8 },
        ];
        let sites = scan_function(&insts);
        assert_eq!(sites.prologues.len(), 2);
        assert_eq!(sites.prologues[0], PrologueSite { tls_load_index: 0, store_index: 1 });
        assert_eq!(sites.prologues[1], PrologueSite { tls_load_index: 2, store_index: 3 });
    }

    #[test]
    fn epilogue_as_the_final_instructions_is_found() {
        // The 4-instruction check sitting flush at the end of the body (no
        // trailing leave/ret) must still match — the window scan must reach
        // the last full window.
        let insts = vec![
            Inst::Compute(10),
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: TLS_CANARY_OFFSET },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
        ];
        let sites = scan_function(&insts);
        assert_eq!(sites.epilogues.len(), 1);
        assert_eq!(sites.epilogues[0], EpilogueSite { start_index: 1, len: 4 });
    }

    #[test]
    fn non_canary_tls_offset_does_not_match() {
        // Same shapes, wrong TLS word (0x30 is not the canary): neither the
        // prologue nor the epilogue pattern may fire.
        let insts = vec![
            Inst::MovTlsToReg { dst: Reg::Rax, offset: 0x30 },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -8 },
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -8 },
            Inst::XorTlsReg { dst: Reg::Rdx, offset: 0x30 },
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
        ];
        let sites = scan_function(&insts);
        assert!(!sites.is_instrumented());
    }

    #[test]
    fn unbalanced_sites_are_instrumented_but_not_balanced() {
        // Prologue without an epilogue: instrumented (the rewriter must see
        // it) but unbalanced (the rewriter must reject it).
        let insts = vec![
            Inst::MovTlsToReg { dst: Reg::Rax, offset: TLS_CANARY_OFFSET },
            Inst::MovRegToFrame { src: Reg::Rax, offset: -8 },
            Inst::Leave,
            Inst::Ret,
        ];
        let sites = scan_function(&insts);
        assert!(sites.is_instrumented());
        assert!(!sites.is_balanced());
    }
}
