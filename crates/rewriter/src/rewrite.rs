//! The SSP → P-SSP binary rewriter (§V-C/§V-D of the paper).
//!
//! The rewriter takes a program compiled with classic SSP and upgrades its
//! canary handling to polymorphic canaries under two hard constraints:
//!
//! 1. **stack-layout preservation** — local variables keep their
//!    `%rbp`-relative offsets, which forces the 64-bit canary to be
//!    downgraded to a packed pair of 32-bit halves occupying the original
//!    single canary slot, and
//! 2. **address-layout preservation** — no function may change size, so the
//!    replacement prologue/epilogue sequences are byte-size-identical to the
//!    originals, and the extra checking logic is folded into a patched
//!    `__stack_chk_fail` (Figs. 3–4).
//!
//! Statically linked binaries additionally need the customised `fork()` and
//!    `__stack_chk_fail()` added in a fresh section reached through `jmp`
//!    hooks, which is what Dyninst does for the paper (§V-D); that is
//!    modelled as an extra section recorded on the program.

use polycanary_vm::inst::Inst;
use polycanary_vm::machine::Machine;
use polycanary_vm::program::Program;
use polycanary_vm::reg::Reg;
use polycanary_vm::tls::TLS_SHADOW_C0_OFFSET;

use polycanary_core::scheme::SchemeKind;

use crate::error::RewriteError;
use crate::scan::scan_function;

/// How the target binary links against glibc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkMode {
    /// Dynamically linked: `fork` and `__stack_chk_fail` are patched in the
    /// shared library, the binary itself does not grow (Table II: 0 %).
    #[default]
    Dynamic,
    /// Statically linked: the customised `fork()` and `__stack_chk_fail()`
    /// are appended in a new section (Table II: ≈ 2.78 %).
    Static,
}

/// Size in bytes of the section holding the customised glibc functions for
/// statically linked binaries (two smallish functions, cf. the 16 KB shared
/// library compiled from ~358 lines in §V-A — only the two functions are
/// needed here).
pub const STATIC_SECTION_BYTES: u64 = 640;

/// Summary of one rewriting run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteReport {
    /// Number of functions inspected.
    pub functions_scanned: usize,
    /// Number of functions whose instrumentation was upgraded.
    pub functions_rewritten: usize,
    /// Number of prologue sites patched.
    pub prologues_patched: usize,
    /// Number of epilogue sites patched.
    pub epilogues_patched: usize,
    /// Binary size before rewriting (bytes).
    pub size_before: u64,
    /// Binary size after rewriting (bytes), including any extra section.
    pub size_after: u64,
    /// Link mode the rewrite was performed for.
    pub link_mode: LinkMode,
}

impl RewriteReport {
    /// Code expansion in percent (Table II, instrumentation columns).
    pub fn expansion_percent(&self) -> f64 {
        if self.size_before == 0 {
            0.0
        } else {
            (self.size_after as f64 - self.size_before as f64) / self.size_before as f64 * 100.0
        }
    }
}

/// The binary rewriter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rewriter {
    link_mode: LinkMode,
}

impl Rewriter {
    /// Creates a rewriter for dynamically linked binaries.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the link mode of the target binary.
    #[must_use]
    pub fn with_link_mode(mut self, mode: LinkMode) -> Self {
        self.link_mode = mode;
        self
    }

    /// Rewrites `program` in place, upgrading every SSP site to P-SSP.
    ///
    /// # Errors
    ///
    /// * [`RewriteError::NotSspProtected`] if no SSP instrumentation exists.
    /// * [`RewriteError::InconsistentInstrumentation`] if a function's
    ///   prologue and epilogue counts differ (prologues without epilogues,
    ///   the reverse, or a count mismatch such as two prologues guarding a
    ///   single check) — the diagnostic carries both per-function counts.
    /// * [`RewriteError::LayoutChanged`] if a replacement would alter a
    ///   function's encoded size (this is a bug guard; the shipped
    ///   replacement sequences are size-preserving by construction).
    pub fn rewrite(&self, program: &mut Program) -> Result<RewriteReport, RewriteError> {
        let size_before = program.binary_size();
        let mut report = RewriteReport {
            functions_scanned: 0,
            functions_rewritten: 0,
            prologues_patched: 0,
            epilogues_patched: 0,
            size_before,
            size_after: size_before,
            link_mode: self.link_mode,
        };

        let function_ids: Vec<_> = program.iter().map(|(id, _)| id).collect();
        for id in function_ids {
            report.functions_scanned += 1;
            let func = program.function(id).expect("id comes from iteration");
            let name = func.name().to_string();
            let original_size = func.encoded_size();
            let insts = func.insts().to_vec();
            let sites = scan_function(&insts);
            if !sites.is_instrumented() {
                continue;
            }
            if !sites.is_balanced() {
                return Err(RewriteError::InconsistentInstrumentation {
                    function: name,
                    prologues: sites.prologues.len(),
                    epilogues: sites.epilogues.len(),
                });
            }

            let rewritten = rewrite_function(&insts, &sites);
            let new_size: u64 = rewritten.iter().map(Inst::encoded_size).sum();
            if new_size != original_size {
                return Err(RewriteError::LayoutChanged {
                    function: name,
                    before: original_size,
                    after: new_size,
                });
            }
            report.prologues_patched += sites.prologues.len();
            report.epilogues_patched += sites.epilogues.len();
            report.functions_rewritten += 1;
            program
                .replace_function_body(id, rewritten)
                .expect("function id is valid during rewriting");
        }

        if report.functions_rewritten == 0 {
            return Err(RewriteError::NotSspProtected);
        }

        if self.link_mode == LinkMode::Static {
            // §V-D: Dyninst appends a new code section holding the customised
            // fork() and __stack_chk_fail() and hooks the originals with jmp.
            program.add_extra_section(".pssp_static_glibc", STATIC_SECTION_BYTES);
        }

        program.finalize();
        report.size_after = program.binary_size();
        Ok(report)
    }
}

/// Produces the rewritten instruction stream for one function.
fn rewrite_function(insts: &[Inst], sites: &crate::scan::SspSites) -> Vec<Inst> {
    let mut out = insts.to_vec();

    // Prologue: only the TLS offset changes (Code 5) — same encoded size.
    for site in &sites.prologues {
        if let Inst::MovTlsToReg { dst, .. } = out[site.tls_load_index] {
            out[site.tls_load_index] = Inst::MovTlsToReg { dst, offset: TLS_SHADOW_C0_OFFSET };
        }
    }

    // Epilogue: replace the 4-instruction SSP check with the size-identical
    // Code 6 sequence.  Replacements are applied back-to-front so earlier
    // indices stay valid.
    let mut epilogues = sites.epilogues.clone();
    epilogues.sort_by_key(|s| std::cmp::Reverse(s.start_index));
    for site in epilogues {
        let replacement = vec![
            Inst::MovFrameToReg { dst: Reg::Rdx, offset: -8 },
            Inst::PushReg(Reg::Rdi),
            Inst::PushReg(Reg::Rdx),
            Inst::PopReg(Reg::Rdi),
            Inst::CallCheckCanary32,
            Inst::PopReg(Reg::Rdi),
            Inst::JeSkip(1),
            Inst::CallStackChkFail,
        ];
        out.splice(site.start_index..site.start_index + site.len, replacement);
    }
    out
}

/// Convenience wrapper: rewrites an SSP-compiled program and wraps it into a
/// [`Machine`] running under the 32-bit P-SSP shared-library runtime, which
/// is how an instrumented binary is actually launched (`LD_PRELOAD`).
///
/// # Errors
///
/// Propagates [`RewriteError`] from the rewriting step.
pub fn instrument_and_load(
    mut program: Program,
    link_mode: LinkMode,
    seed: u64,
) -> Result<(Machine, RewriteReport), RewriteError> {
    let report = Rewriter::new().with_link_mode(link_mode).rewrite(&mut program)?;
    let hooks = SchemeKind::PsspBin32.scheme().runtime_hooks(seed ^ 0x32B1_7C0D_E000_0001);
    Ok((Machine::new(program, hooks, seed), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycanary_compiler::codegen::Compiler;
    use polycanary_compiler::ir::{FunctionBuilder, ModuleBuilder, ModuleDef};
    use polycanary_vm::cpu::Exit;

    fn server_module() -> ModuleDef {
        ModuleBuilder::new()
            .function(
                FunctionBuilder::new("handle_request")
                    .buffer("buf", 64)
                    .vulnerable_copy("buf")
                    .compute(300)
                    .returns(0)
                    .build(),
            )
            .function(
                FunctionBuilder::new("main").scalar("s").call("handle_request").returns(0).build(),
            )
            .entry("main")
            .build()
            .unwrap()
    }

    fn ssp_program() -> Program {
        Compiler::new(SchemeKind::Ssp).compile(&server_module()).unwrap().program
    }

    #[test]
    fn rewriting_preserves_every_function_size() {
        let mut program = ssp_program();
        let sizes_before: Vec<_> =
            program.iter().map(|(_, f)| (f.name().to_string(), f.encoded_size())).collect();
        let report = Rewriter::new().rewrite(&mut program).unwrap();
        assert!(report.functions_rewritten >= 1);
        for (name, before) in sizes_before {
            let id = program.function_by_name(&name).unwrap();
            assert_eq!(program.function(id).unwrap().encoded_size(), before, "{name}");
        }
        assert_eq!(report.expansion_percent(), 0.0);
    }

    #[test]
    fn dynamic_link_mode_has_zero_expansion_static_has_some() {
        let mut dynamic = ssp_program();
        let report =
            Rewriter::new().with_link_mode(LinkMode::Dynamic).rewrite(&mut dynamic).unwrap();
        assert_eq!(report.expansion_percent(), 0.0);

        let mut statically = ssp_program();
        let report =
            Rewriter::new().with_link_mode(LinkMode::Static).rewrite(&mut statically).unwrap();
        assert!(report.expansion_percent() > 0.0);
        assert_eq!(report.size_after - report.size_before, STATIC_SECTION_BYTES);
    }

    #[test]
    fn rewritten_binary_runs_benign_requests_normally() {
        let (mut machine, _report) =
            instrument_and_load(ssp_program(), LinkMode::Dynamic, 77).unwrap();
        let mut process = machine.spawn();
        process.set_input(vec![0x55u8; 32]);
        let outcome = machine.run(&mut process).unwrap();
        assert!(outcome.exit.is_normal(), "{:?}", outcome.exit);
    }

    #[test]
    fn rewritten_binary_detects_overflows() {
        let (mut machine, _report) =
            instrument_and_load(ssp_program(), LinkMode::Dynamic, 77).unwrap();
        let mut process = machine.spawn();
        process.set_input(vec![0x41u8; 64 + 32]);
        let outcome = machine.run(&mut process).unwrap();
        assert!(outcome.exit.is_detection(), "{:?}", outcome.exit);
    }

    #[test]
    fn rewritten_binary_remains_compatible_with_plain_ssp_runtime_check() {
        // Compatibility direction of §V-C: SSP code calling the patched
        // __stack_chk_fail must still be diagnosed correctly.  Here we check
        // the inverse deployment property instead: running the *original*
        // SSP binary under the 32-bit runtime does not break, because the
        // original code never consults the shadow canary.
        let program = ssp_program();
        let hooks = SchemeKind::PsspBin32.scheme().runtime_hooks(3);
        let mut machine = Machine::new(program, hooks, 3);
        let mut process = machine.spawn();
        process.set_input(vec![1, 2, 3]);
        assert!(machine.run(&mut process).unwrap().exit.is_normal());
    }

    #[test]
    fn unprotected_program_is_rejected() {
        let module = ModuleBuilder::new()
            .function(FunctionBuilder::new("main").scalar("x").compute(5).returns(0).build())
            .build()
            .unwrap();
        let mut program = Compiler::new(SchemeKind::Ssp).compile(&module).unwrap().program;
        let err = Rewriter::new().rewrite(&mut program).unwrap_err();
        assert_eq!(err, RewriteError::NotSspProtected);
    }

    #[test]
    fn count_mismatched_instrumentation_is_rejected() {
        // Two prologues guarding a single epilogue: previously only the
        // empty-vs-nonempty mismatch was caught; the balance check must
        // reject any count difference and name both counts.
        let mut program = ssp_program();
        let id = program.function_by_name("handle_request").unwrap();
        let mut insts = program.function(id).unwrap().insts().to_vec();
        let sites = scan_function(&insts);
        let prologue = sites.prologues[0];
        let extra =
            vec![insts[prologue.tls_load_index].clone(), insts[prologue.store_index].clone()];
        insts.splice(prologue.store_index + 1..prologue.store_index + 1, extra);
        program.replace_function_body(id, insts).unwrap();
        program.finalize();
        let err = Rewriter::new().rewrite(&mut program).unwrap_err();
        assert_eq!(
            err,
            RewriteError::InconsistentInstrumentation {
                function: "handle_request".into(),
                prologues: 2,
                epilogues: 1,
            }
        );
    }

    #[test]
    fn prologue_offset_is_redirected_to_the_shadow_canary() {
        let mut program = ssp_program();
        Rewriter::new().rewrite(&mut program).unwrap();
        let id = program.function_by_name("handle_request").unwrap();
        let insts = program.function(id).unwrap().insts();
        assert!(insts.iter().any(
            |i| matches!(i, Inst::MovTlsToReg { offset, .. } if *offset == TLS_SHADOW_C0_OFFSET)
        ));
        assert!(
            !insts.iter().any(|i| matches!(i, Inst::XorTlsReg { .. })),
            "the old inline check must be gone"
        );
        assert!(insts.iter().any(|i| matches!(i, Inst::CallCheckCanary32)));
    }

    #[test]
    fn byte_by_byte_resistance_of_the_rewritten_binary() {
        // Every fork refreshes the packed 32-bit pair, so a partial-overwrite
        // guess that was accepted once is rejected on the next fork with
        // overwhelming probability.  Smoke-test one round here; the full
        // attack comparison lives in the attacks crate.
        let (mut machine, _) = instrument_and_load(ssp_program(), LinkMode::Dynamic, 9).unwrap();
        let mut parent = machine.spawn();
        let mut child_a = machine.fork(&mut parent);
        let mut child_b = machine.fork(&mut parent);
        let a = child_a.tls.read_word(TLS_SHADOW_C0_OFFSET).unwrap();
        let b = child_b.tls.read_word(TLS_SHADOW_C0_OFFSET).unwrap();
        assert_ne!(a, b, "two workers must not share a packed canary pair");
        // Both children still execute normally.
        child_a.set_input(vec![0u8; 8]);
        child_b.set_input(vec![0u8; 8]);
        assert!(matches!(machine.run(&mut child_a).unwrap().exit, Exit::Normal(_)));
        assert!(matches!(machine.run(&mut child_b).unwrap().exit, Exit::Normal(_)));
    }
}
