//! Static binary instrumentation upgrading SSP binaries to P-SSP.
//!
//! The paper ships two deployment vehicles for P-SSP: an LLVM plugin (the
//! `polycanary-compiler` crate) and a ~1100-line binary rewriter that patches
//! existing `-fstack-protector` binaries (§V-C/§V-D).  This crate is the
//! second vehicle for the simulated substrate:
//!
//! * [`scan`] locates the SSP prologue/epilogue instruction patterns,
//! * [`rewrite`] replaces them with size-identical P-SSP sequences (32-bit
//!   packed canaries, patched `__stack_chk_fail`) and — for statically
//!   linked binaries — appends the extra section holding the customised
//!   glibc functions.
//!
//! # Quick example
//!
//! ```
//! use polycanary_compiler::{Compiler, FunctionBuilder, ModuleBuilder};
//! use polycanary_core::scheme::SchemeKind;
//! use polycanary_rewriter::{LinkMode, Rewriter};
//!
//! // A legacy binary compiled with -fstack-protector (classic SSP).
//! let module = ModuleBuilder::new()
//!     .function(
//!         FunctionBuilder::new("handler").buffer("buf", 32).vulnerable_copy("buf").build(),
//!     )
//!     .build()?;
//! let mut program = Compiler::new(SchemeKind::Ssp).compile(&module)?.program;
//!
//! // Upgrade it to P-SSP in place; the layout is preserved.
//! let report = Rewriter::new().with_link_mode(LinkMode::Dynamic).rewrite(&mut program)?;
//! assert_eq!(report.expansion_percent(), 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod rewrite;
pub mod scan;

pub use error::RewriteError;
pub use rewrite::{instrument_and_load, LinkMode, RewriteReport, Rewriter, STATIC_SECTION_BYTES};
pub use scan::{scan_function, EpilogueSite, PrologueSite, SspSites};
