//! Rewriter error type.

use std::fmt;

/// Errors reported by the static binary instrumentation tool.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RewriteError {
    /// The instrumentation would change a function's encoded size, shifting
    /// the address layout of the binary (§V-C, challenge 2).
    LayoutChanged {
        /// The function whose size would change.
        function: String,
        /// Encoded size before the rewrite, in bytes.
        before: u64,
        /// Encoded size after the rewrite, in bytes.
        after: u64,
    },
    /// A function contains an SSP prologue but no matching epilogue (or the
    /// other way round), so the rewriter cannot upgrade it consistently.
    InconsistentInstrumentation {
        /// The function with mismatched prologue/epilogue counts.
        function: String,
        /// Number of SSP prologues found.
        prologues: usize,
        /// Number of SSP epilogues found.
        epilogues: usize,
    },
    /// The target program was not compiled with SSP at all; the rewriter
    /// requires `-fstack-protector` output as its input (§V-C).
    NotSspProtected,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::LayoutChanged { function, before, after } => write!(
                f,
                "rewriting `{function}` would change its size from {before} to {after} bytes"
            ),
            RewriteError::InconsistentInstrumentation { function, prologues, epilogues } => {
                write!(
                    f,
                    "function `{function}` has {prologues} SSP prologue(s) but {epilogues} epilogue(s)"
                )
            }
            RewriteError::NotSspProtected => {
                write!(f, "target binary contains no SSP instrumentation to upgrade")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = RewriteError::LayoutChanged { function: "f".into(), before: 10, after: 12 };
        assert!(e.to_string().contains("f") && e.to_string().contains("12"));
        assert!(RewriteError::NotSspProtected.to_string().contains("SSP"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<RewriteError>();
    }
}
