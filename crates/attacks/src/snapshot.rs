//! Snapshot-keyed victim construction for fleet-scale campaigns.
//!
//! Building a [`ForkingServer`](crate::server::ForkingServer) victim means
//! compiling (or rewriting) the victim binary and booting a machine — by far
//! the most expensive part of a campaign run, and *identical* for every seed
//! that shares a scheme × deployment × buffer-size configuration.  This
//! module hoists that seed-independent work into a [`VictimSnapshot`]
//! (wrapping a VM [`Snapshot`]) and memoizes snapshots per campaign in a
//! [`SnapshotCache`], so a 10^5-victim fleet compiles each distinct victim
//! binary exactly once and boots every server from the captured image.
//!
//! Equivalence with the from-scratch path is a hard invariant: for any seed,
//! `ForkingServer::from_snapshot(&VictimSnapshot::build(key), seed)` behaves
//! bit-for-bit like `ForkingServer::new(config)` — same geometry, same
//! canaries, same attack verdicts.  The `fleet_engine` integration tests pin
//! this for every scheme × deployment cell.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use polycanary_compiler::codegen::Compiler;
use polycanary_core::scheme::SchemeKind;
use polycanary_rewriter::{LinkMode, Rewriter};
use polycanary_vm::cpu::ExecConfig;
use polycanary_vm::snapshot::Snapshot;

use crate::victim::{victim_module, Deployment, FrameGeometry, VictimConfig, HIJACK_TARGET};

/// Stack size of fleet victims.  Attack campaigns fork thousands of
/// workers; a small stack keeps the per-fork memory copy cheap without
/// affecting any result.
pub(crate) const WORKER_STACK_SIZE: u64 = 16 * 1024;

/// The seed-independent part of a [`VictimConfig`]: everything that decides
/// which victim *binary* is built.  Two configs with equal keys differ only
/// in their boot seed and therefore share one [`VictimSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VictimKey {
    /// The protection scheme of the victim binary.
    pub scheme: SchemeKind,
    /// Deployment vehicle (compiler plugin or binary rewriter).
    pub deployment: Deployment,
    /// Size of the vulnerable stack buffer in bytes.
    pub buffer_size: u32,
    /// Victim-program generator id (`0` = the canonical module).
    pub program: u64,
}

impl VictimKey {
    /// Extracts the snapshot key of a victim configuration (drops the seed).
    pub fn of(config: &VictimConfig) -> Self {
        VictimKey {
            scheme: config.scheme,
            deployment: config.deployment,
            buffer_size: config.buffer_size,
            program: config.program,
        }
    }

    /// Reconstitutes a full victim configuration by attaching a boot seed.
    pub fn config_with_seed(&self, seed: u64) -> VictimConfig {
        VictimConfig {
            scheme: self.scheme,
            buffer_size: self.buffer_size,
            deployment: self.deployment,
            seed,
            program: self.program,
        }
    }
}

/// A pre-built victim: the compiled (or rewritten) binary captured as a VM
/// [`Snapshot`], plus the attacker-visible frame geometry and the scheme
/// that governs the final binary's runtime behaviour.
///
/// Building one performs the whole seed-independent boot pipeline once;
/// [`ForkingServer::from_snapshot`](crate::server::ForkingServer::from_snapshot)
/// then boots servers from it for any number of seeds, each bit-identical
/// to a from-scratch [`ForkingServer::new`](crate::server::ForkingServer::new).
#[derive(Debug, Clone)]
pub struct VictimSnapshot {
    key: VictimKey,
    snapshot: Snapshot,
    geometry: FrameGeometry,
    runtime_scheme: SchemeKind,
}

impl VictimSnapshot {
    /// Compiles (or rewrites) the victim binary for `key` and captures it.
    pub fn build(key: VictimKey) -> Self {
        let module = victim_module(key.buffer_size, key.program);
        let (program, runtime_scheme) = match key.deployment {
            Deployment::Compiler => {
                let compiled = Compiler::new(key.scheme)
                    .compile(&module)
                    .expect("victim module always compiles");
                (compiled.program, key.scheme)
            }
            Deployment::BinaryRewriter => {
                let compiled = Compiler::new(SchemeKind::Ssp)
                    .compile(&module)
                    .expect("victim module always compiles");
                let mut program = compiled.program;
                Rewriter::new()
                    .with_link_mode(LinkMode::Dynamic)
                    .rewrite(&mut program)
                    .expect("SSP victim is always rewritable");
                (program, SchemeKind::PsspBin32)
            }
        };

        // The geometry follows the scheme that actually governs the final
        // binary (the rewriter keeps SSP's single-slot layout).
        let canary_words = match key.deployment {
            Deployment::Compiler => key.scheme.scheme().canary_region_words(),
            Deployment::BinaryRewriter => 1,
        };
        let geometry = FrameGeometry {
            filler_len: key.buffer_size as usize,
            canary_region_len: (canary_words as usize) * 8,
        };

        let exec_config =
            ExecConfig { hijack_target: Some(HIJACK_TARGET), ..ExecConfig::default() };
        let snapshot = Snapshot::new(program, exec_config, WORKER_STACK_SIZE);
        VictimSnapshot { key, snapshot, geometry, runtime_scheme }
    }

    /// The key this victim was built for.
    pub fn key(&self) -> VictimKey {
        self.key
    }

    /// The captured VM snapshot (program + exec config + pristine image).
    pub fn vm_snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The attacker-visible frame geometry of the built binary.
    pub fn geometry(&self) -> FrameGeometry {
        self.geometry
    }

    /// The scheme governing the final binary at runtime.  Equals the key's
    /// scheme under compiler deployment; under the binary rewriter the
    /// deployed scheme is always [`SchemeKind::PsspBin32`].
    pub fn runtime_scheme(&self) -> SchemeKind {
        self.runtime_scheme
    }
}

/// Per-campaign memo of victim snapshots: one [`VictimSnapshot`] per
/// distinct [`VictimKey`], built on first request and shared (by `Arc`)
/// with every subsequent victim of the same configuration.
///
/// The cache is thread-safe so sharded campaign workers can pull victims
/// concurrently; the build happens under the map lock, so concurrent
/// requests for the same key never build twice.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    map: Mutex<HashMap<VictimKey, Arc<VictimSnapshot>>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> Self {
        SnapshotCache::default()
    }

    /// The snapshot for `key`, building it on first request.
    pub fn get(&self, key: VictimKey) -> Arc<VictimSnapshot> {
        let mut map = self.map.lock().expect("no builder panicked in the cache");
        if let Some(existing) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(existing);
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(VictimSnapshot::build(key));
        map.insert(key, Arc::clone(&built));
        built
    }

    /// Number of snapshots built (== distinct keys requested so far).
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of requests served from the memo without building.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_drops_only_the_seed() {
        let config = VictimConfig::new(SchemeKind::Pssp, 1234)
            .with_buffer_size(96)
            .with_deployment(Deployment::Compiler);
        let key = VictimKey::of(&config);
        assert_eq!(key.config_with_seed(1234), config);
        assert_eq!(key, VictimKey::of(&key.config_with_seed(999)));
    }

    #[test]
    fn snapshot_captures_geometry_and_runtime_scheme() {
        let compiled = VictimSnapshot::build(VictimKey {
            scheme: SchemeKind::PsspOwf,
            deployment: Deployment::Compiler,
            buffer_size: 64,
            program: 0,
        });
        assert_eq!(compiled.geometry().canary_region_len, 24);
        assert_eq!(compiled.runtime_scheme(), SchemeKind::PsspOwf);
        assert_eq!(compiled.vm_snapshot().exec_config().hijack_target, Some(HIJACK_TARGET));
        assert_eq!(compiled.vm_snapshot().stack_size(), WORKER_STACK_SIZE);

        let rewritten = VictimSnapshot::build(VictimKey {
            scheme: SchemeKind::PsspBin32,
            deployment: Deployment::BinaryRewriter,
            buffer_size: 64,
            program: 0,
        });
        assert_eq!(rewritten.geometry().canary_region_len, 8, "rewriter keeps SSP layout");
        assert_eq!(rewritten.runtime_scheme(), SchemeKind::PsspBin32);
    }

    #[test]
    fn cache_builds_each_key_once_and_counts_hits() {
        let cache = SnapshotCache::new();
        let key_a = VictimKey {
            scheme: SchemeKind::Ssp,
            deployment: Deployment::Compiler,
            buffer_size: 64,
            program: 0,
        };
        let key_b = VictimKey {
            scheme: SchemeKind::Pssp,
            deployment: Deployment::Compiler,
            buffer_size: 64,
            program: 0,
        };
        let first = cache.get(key_a);
        let again = cache.get(key_a);
        assert!(Arc::ptr_eq(&first, &again), "same key shares one snapshot");
        let _ = cache.get(key_b);
        let _ = cache.get(key_b);
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.hits(), 2);
    }
}
