//! The long-lived forking-server victim and its connection loop.
//!
//! The paper's core threat model (§II) is a server where "a parent process
//! keeps forking out child processes to ... serve new requests sent by
//! external entities", and where a crashed worker is simply replaced by a
//! fresh fork.  [`ForkingServer`] is that victim as a *long-lived* object:
//! it owns the parent VM process for its whole lifetime and serves attacker
//! connections by forking workers from it.  Each [`Connection`] is one
//! forked worker; the worker inherits the parent's TLS byte-for-byte
//! (kernel `fork(2)` semantics) and then the scheme's runtime hook runs, so
//! the stack canaries the worker presents are either *inherited* or
//! *re-randomized* exactly per the scheme's
//! [`ForkCanaryPolicy`].
//!
//! [`ForkCanaryPolicy`]: polycanary_core::scheme::ForkCanaryPolicy
//!
//! That reconnect loop is what the attacks drive: a byte-by-byte guess is
//! one connection carrying one request (a crash is a connection reset, a
//! response confirms the guess), while the canary-reuse attack sends a
//! disclosure and the overflow over a single keep-alive connection.  The
//! server keeps attacker-observable operational counters — connections
//! served, requests handled, workers crashed — which the `server-attack`
//! experiment exports and the test battery pins.
//!
//! # Example
//!
//! ```
//! use polycanary_attacks::server::{ForkingServer, VictimConfig};
//! use polycanary_core::scheme::{ForkCanaryPolicy, SchemeKind};
//!
//! let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 7));
//! assert_eq!(server.canary_policy(), ForkCanaryPolicy::Inherited);
//!
//! // One keep-alive connection serving two benign requests.
//! let mut conn = server.connect();
//! assert!(conn.send(b"GET / HTTP/1.1").survived());
//! assert!(conn.send(b"GET /again").survived());
//! drop(conn);
//! assert_eq!(server.connections_served(), 1);
//! assert_eq!(server.requests_served(), 2);
//! ```

use polycanary_core::record::Record;
use polycanary_core::scheme::{ForkCanaryPolicy, SchemeKind};
use polycanary_vm::cpu::Exit;
use polycanary_vm::inst::FuncId;
use polycanary_vm::machine::Machine;
use polycanary_vm::process::Process;

use crate::oracle::{OverflowOracle, RequestOutcome};
use crate::snapshot::{VictimKey, VictimSnapshot};
pub use crate::victim::{Deployment, FrameGeometry, VictimConfig, HIJACK_TARGET};

/// A forking worker-per-connection server protected by a configurable
/// scheme.  See the [module docs](self) for the threat model.
pub struct ForkingServer {
    machine: Machine,
    parent: Process,
    geometry: FrameGeometry,
    config: VictimConfig,
    policy: ForkCanaryPolicy,
    /// Endpoint function ids resolved once at boot, so the per-request path
    /// from fork to first guest instruction does no by-name lookups.
    handle_fn: FuncId,
    leak_fn: FuncId,
    connections: u64,
    requests: u64,
    crashed_workers: u64,
}

impl std::fmt::Debug for ForkingServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkingServer")
            .field("scheme", &self.config.scheme)
            .field("policy", &self.policy)
            .field("connections", &self.connections)
            .field("requests", &self.requests)
            .field("crashed_workers", &self.crashed_workers)
            .finish()
    }
}

impl ForkingServer {
    /// Builds and "boots" the victim server: compiles (or rewrites) the
    /// victim binary, spawns the parent process — whose loader-drawn TLS
    /// canary every worker will inherit — and starts accepting connections.
    ///
    /// This is the from-scratch path; fleet campaigns that boot many
    /// servers of one configuration build the binary once with
    /// [`VictimSnapshot::build`] and boot each server through
    /// [`ForkingServer::from_snapshot`], which is bit-identical.
    pub fn new(config: VictimConfig) -> Self {
        ForkingServer::from_snapshot(&VictimSnapshot::build(VictimKey::of(&config)), config.seed)
    }

    /// Boots a victim server from a pre-built [`VictimSnapshot`], skipping
    /// the compile/rewrite pipeline.  For any seed this is bit-identical to
    /// [`ForkingServer::new`] with the corresponding [`VictimConfig`]: the
    /// parent process is restored from the captured image and the loader's
    /// canary draws, the runtime hooks and all per-process entropy are
    /// re-derived from `seed` exactly as a fresh boot would.
    pub fn from_snapshot(victim: &VictimSnapshot, seed: u64) -> Self {
        let config = victim.key().config_with_seed(seed);
        let runtime_scheme = victim.runtime_scheme();
        let hooks = runtime_scheme.scheme().runtime_hooks(seed ^ 0xA77C_0DE5);
        let mut machine = Machine::from_snapshot(victim.vm_snapshot(), hooks, seed);
        let parent = machine.restore(victim.vm_snapshot());
        let endpoint = |name: &str| {
            machine.program().function_by_name(name).expect("victim binary defines the endpoint")
        };
        let (handle_fn, leak_fn) = (endpoint("handle_request"), endpoint("leak_status"));
        ForkingServer {
            machine,
            parent,
            geometry: victim.geometry(),
            config,
            policy: runtime_scheme.fork_canary_policy(),
            handle_fn,
            leak_fn,
            connections: 0,
            requests: 0,
            crashed_workers: 0,
        }
    }

    /// The victim's frame geometry (the attacker derives this from the
    /// binary, which is not secret in the adversary model).
    pub fn geometry(&self) -> FrameGeometry {
        self.geometry
    }

    /// The scheme protecting the victim.
    pub fn scheme(&self) -> SchemeKind {
        self.config.scheme
    }

    /// Whether a freshly forked worker presents the parent's stack canaries
    /// or re-randomized ones — the property that decides the byte-by-byte
    /// attack, derived from the scheme governing the deployed binary.
    pub fn canary_policy(&self) -> ForkCanaryPolicy {
        self.policy
    }

    /// Number of connections accepted (= workers forked) so far.
    pub fn connections_served(&self) -> u64 {
        self.connections
    }

    /// Number of requests handled over all connections so far.
    pub fn requests_served(&self) -> u64 {
        self.requests
    }

    /// Number of workers that crashed (and were replaced) so far.
    pub fn crashed_workers(&self) -> u64 {
        self.crashed_workers
    }

    /// Accepts one attacker connection: the parent forks a worker (TLS
    /// cloned, then the scheme's fork hook runs in the child) and the
    /// connection stays open until a request crashes the worker or the
    /// connection is dropped.  A crashed worker is "replaced" implicitly —
    /// the next `connect` forks a fresh worker from the same parent, which
    /// is exactly the loop the byte-by-byte attack exploits.
    pub fn connect(&mut self) -> Connection<'_> {
        self.connections += 1;
        let worker = self.machine.fork(&mut self.parent);
        Connection { server: self, worker, open: true }
    }

    /// Serves one request on a fresh single-request connection — the
    /// reconnect loop of the byte-by-byte and exhaustive attacks, where
    /// every probe is its own connection.
    pub fn serve(&mut self, payload: &[u8]) -> RequestOutcome {
        self.connect().send(payload)
    }

    /// Serves one "status" request against the leaky endpoint on a fresh
    /// connection and returns the bytes the worker wrote back — including,
    /// due to the over-read bug, the canary region of the leaking frame.
    pub fn serve_leak(&mut self, payload: &[u8]) -> (RequestOutcome, Vec<u8>) {
        self.connect().send_leak(payload)
    }

    /// Serves a disclosure request and a follow-up overflow *over one
    /// keep-alive connection* (i.e. in the same worker), modelling the
    /// canary-reuse attacker.  The overflow payload is built by
    /// `build_overflow` from the leaked bytes.  Returns the leaked bytes
    /// and the outcome of the overflow (or of the leak, if it crashed).
    pub fn serve_leak_then_overflow(
        &mut self,
        leak_payload: &[u8],
        build_overflow: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> (Vec<u8>, RequestOutcome) {
        let mut conn = self.connect();
        let (leak_outcome, leaked) = conn.send_leak(leak_payload);
        if leak_outcome != RequestOutcome::Survived {
            return (leaked, leak_outcome);
        }
        let overflow_payload = build_overflow(&leaked);
        let outcome = conn.send(&overflow_payload);
        (leaked, outcome)
    }

    /// The server's operational counters as a self-describing record, for
    /// JSON/CSV export next to the campaign reports.
    pub fn stats_record(&self) -> Record {
        Record::new()
            .field("scheme", self.config.scheme.name())
            .field("deployment", self.config.deployment.label())
            .field("fork_canary_policy", self.policy.label())
            .field("seed", self.config.seed)
            .field("connections", self.connections)
            .field("requests", self.requests)
            .field("crashed_workers", self.crashed_workers)
            .field("forks", self.machine.forks())
    }

    /// Total forks the underlying machine performed — equals
    /// [`ForkingServer::connections_served`] because the server forks
    /// exactly one worker per accepted connection.
    pub fn forked_workers(&self) -> u64 {
        self.machine.forks()
    }

    fn run_in(&mut self, worker: &mut Process, endpoint: FuncId, payload: &[u8]) -> RequestOutcome {
        self.requests += 1;
        worker.set_input(payload.to_vec());
        let outcome = self.machine.run_function_id(worker, endpoint);
        let classified = classify(outcome.exit);
        if classified != RequestOutcome::Survived {
            self.crashed_workers += 1;
        }
        classified
    }
}

impl OverflowOracle for ForkingServer {
    fn attempt(&mut self, payload: &[u8]) -> RequestOutcome {
        self.serve(payload)
    }

    fn trials(&self) -> u64 {
        self.connections
    }
}

/// One attacker connection: a forked worker serving requests until it
/// crashes (connection reset) or the attacker disconnects (drop).
///
/// The worker was forked when the connection was accepted, so its canaries
/// are frozen for the connection's lifetime under per-fork schemes — which
/// is why the reuse attack works against basic P-SSP over a keep-alive
/// connection — while per-call schemes re-randomize on every request.
#[derive(Debug)]
pub struct Connection<'s> {
    server: &'s mut ForkingServer,
    worker: Process,
    open: bool,
}

impl Connection<'_> {
    /// Whether the worker behind this connection is still alive.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Sends one request body to the vulnerable `handle_request` endpoint
    /// and reports the worker's fate.  A request on an already-reset
    /// connection is refused as [`RequestOutcome::Crashed`] without
    /// reaching any worker.
    pub fn send(&mut self, payload: &[u8]) -> RequestOutcome {
        if !self.open {
            return RequestOutcome::Crashed;
        }
        let endpoint = self.server.handle_fn;
        let outcome = self.server.run_in(&mut self.worker, endpoint, payload);
        if outcome != RequestOutcome::Survived {
            self.open = false;
        }
        outcome
    }

    /// Sends one request to the leaky `leak_status` endpoint and returns
    /// the worker's fate plus the over-read bytes it echoed back.
    pub fn send_leak(&mut self, payload: &[u8]) -> (RequestOutcome, Vec<u8>) {
        if !self.open {
            return (RequestOutcome::Crashed, Vec::new());
        }
        let endpoint = self.server.leak_fn;
        let outcome = self.server.run_in(&mut self.worker, endpoint, payload);
        let leaked = self.worker.take_output();
        if outcome != RequestOutcome::Survived {
            self.open = false;
        }
        (outcome, leaked)
    }
}

fn classify(exit: Exit) -> RequestOutcome {
    match exit {
        Exit::Normal(_) => RequestOutcome::Survived,
        Exit::Fault(fault) if fault.is_detection() => RequestOutcome::Detected,
        Exit::Fault(fault) if fault.is_hijack() => RequestOutcome::Hijacked,
        Exit::Fault(_) => RequestOutcome::Crashed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_requests_survive_under_every_scheme() {
        for kind in SchemeKind::ALL {
            let mut server = ForkingServer::new(VictimConfig::new(kind, 11));
            assert_eq!(server.serve(b"GET / HTTP/1.1"), RequestOutcome::Survived, "{kind}");
            assert_eq!(server.crashed_workers(), 0);
        }
    }

    #[test]
    fn smashing_requests_are_detected_by_protected_schemes() {
        for kind in SchemeKind::ALL {
            let mut server = ForkingServer::new(VictimConfig::new(kind, 11));
            let payload = vec![0x41u8; server.geometry().full_overwrite_len()];
            let outcome = server.serve(&payload);
            if kind == SchemeKind::Native {
                assert_ne!(outcome, RequestOutcome::Detected);
            } else {
                assert_eq!(outcome, RequestOutcome::Detected, "{kind}");
            }
        }
    }

    #[test]
    fn unprotected_server_is_hijacked_by_a_crafted_payload() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Native, 11));
        let geom = server.geometry();
        let mut payload = vec![0x41u8; geom.filler_len + geom.canary_region_len + 8];
        payload.extend_from_slice(&HIJACK_TARGET.to_le_bytes());
        assert_eq!(server.serve(&payload), RequestOutcome::Hijacked);
    }

    #[test]
    fn geometry_reflects_the_scheme_layout() {
        let ssp = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 1)).geometry();
        let pssp = ForkingServer::new(VictimConfig::new(SchemeKind::Pssp, 1)).geometry();
        let owf = ForkingServer::new(VictimConfig::new(SchemeKind::PsspOwf, 1)).geometry();
        assert_eq!(ssp.canary_region_len, 8);
        assert_eq!(pssp.canary_region_len, 16);
        assert_eq!(owf.canary_region_len, 24);
        assert!(ssp.full_overwrite_len() < pssp.full_overwrite_len());
    }

    #[test]
    fn rewriter_deployment_keeps_ssp_geometry_and_rerandomizes() {
        let config =
            VictimConfig::new(SchemeKind::PsspBin32, 1).with_deployment(Deployment::BinaryRewriter);
        let server = ForkingServer::new(config);
        assert_eq!(server.geometry().canary_region_len, 8);
        // The policy reflects the scheme governing the *rewritten* binary.
        assert_eq!(server.canary_policy(), ForkCanaryPolicy::Rerandomized);
    }

    #[test]
    fn leak_endpoint_discloses_stack_words() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 5));
        let (outcome, leaked) = server.serve_leak(b"status");
        assert_eq!(outcome, RequestOutcome::Survived);
        // buffer_size/8 + 3 words were leaked.
        assert_eq!(leaked.len(), (64 / 8 + 3) * 8);
    }

    #[test]
    fn crashed_worker_counter_tracks_detections() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 5));
        let len = server.geometry().full_overwrite_len();
        let _ = server.serve(&vec![0x41u8; len]);
        let _ = server.serve(b"ok");
        assert_eq!(server.crashed_workers(), 1);
        assert_eq!(server.trials(), 2);
        assert_eq!(server.connections_served(), 2);
        assert_eq!(server.requests_served(), 2);
        assert_eq!(server.forked_workers(), 2);
    }

    #[test]
    fn custom_buffer_size_changes_filler_length() {
        let server =
            ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 5).with_buffer_size(128));
        assert_eq!(server.geometry().filler_len, 128);
    }

    #[test]
    fn keep_alive_connection_serves_many_requests_in_one_worker() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Pssp, 9));
        let mut conn = server.connect();
        for _ in 0..5 {
            assert_eq!(conn.send(b"ping"), RequestOutcome::Survived);
            assert!(conn.is_open());
        }
        drop(conn);
        assert_eq!(server.connections_served(), 1, "keep-alive reuses one worker");
        assert_eq!(server.requests_served(), 5);
        assert_eq!(server.forked_workers(), 1);
    }

    #[test]
    fn crashed_connection_is_reset_and_refuses_further_requests() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 9));
        let smash = vec![0x41u8; 64 + 8 + 8 + 8];
        let mut conn = server.connect();
        assert_eq!(conn.send(&smash), RequestOutcome::Detected);
        assert!(!conn.is_open());
        // The worker is gone; the attacker only sees resets from now on.
        assert_eq!(conn.send(b"hello?"), RequestOutcome::Crashed);
        assert_eq!(conn.send_leak(b"status").0, RequestOutcome::Crashed);
        drop(conn);
        // The refused requests never reached a worker.
        assert_eq!(server.requests_served(), 1);
        assert_eq!(server.crashed_workers(), 1);
        // The parent is unharmed: the next connection serves normally.
        assert_eq!(server.serve(b"ok"), RequestOutcome::Survived);
    }

    #[test]
    fn static_canary_workers_inherit_identical_canaries_across_connections() {
        // The root cause of the byte-by-byte attack, observed through the
        // reconnect loop itself: under SSP, the canary region a worker
        // accepts is identical on every connection (it is the parent's),
        // while under P-SSP two connections never agree.
        let leak_canary = |server: &mut ForkingServer| -> Vec<u8> {
            let geom = server.geometry();
            let (outcome, leaked) = server.serve_leak(b"status");
            assert_eq!(outcome, RequestOutcome::Survived);
            leaked[geom.filler_len..geom.filler_len + geom.canary_region_len].to_vec()
        };
        let mut ssp = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 21));
        assert_eq!(leak_canary(&mut ssp), leak_canary(&mut ssp), "SSP inherits");
        let mut pssp = ForkingServer::new(VictimConfig::new(SchemeKind::Pssp, 21));
        assert_ne!(leak_canary(&mut pssp), leak_canary(&mut pssp), "P-SSP re-randomizes");
        assert_eq!(ssp.canary_policy(), ForkCanaryPolicy::Inherited);
        assert_eq!(pssp.canary_policy(), ForkCanaryPolicy::Rerandomized);
    }

    #[test]
    fn stats_record_reports_the_operational_counters() {
        use polycanary_core::record::Value;

        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 3));
        let _ = server.serve(b"a");
        let mut conn = server.connect();
        let _ = conn.send(b"b");
        let _ = conn.send(b"c");
        drop(conn);
        let rec = server.stats_record();
        assert_eq!(rec.get("scheme"), Some(&Value::Str("SSP".into())));
        assert_eq!(rec.get("fork_canary_policy"), Some(&Value::Str("inherited".into())));
        assert_eq!(rec.get("connections"), Some(&Value::UInt(2)));
        assert_eq!(rec.get("requests"), Some(&Value::UInt(3)));
        assert_eq!(rec.get("forks"), Some(&Value::UInt(2)));
    }
}
