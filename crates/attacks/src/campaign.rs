//! Multi-seed attack campaigns with parallel fan-out.
//!
//! A single attack run (one victim seed, one strategy) is an anecdote: the
//! byte-by-byte attack against SSP may be lucky or unlucky by hundreds of
//! requests depending on the canary the loader drew.  The paper's §VI-C
//! claims are statistical — *SSP falls in about a thousand requests, P-SSP
//! survives* — so this module provides the statistically robust version:
//! a [`Campaign`] replays one strategy against **N independent victims**
//! (same binary, different loader seeds) and aggregates success rate and the
//! request-count distribution (min / median / p95 / max, mean ± std-dev).
//!
//! Victims are completely independent, so campaigns fan out over the shared
//! parallel [`JobPool`], using its sharded executor
//! ([`JobPool::run_sharded`]): workers pull contiguous chunks of victim
//! indices from an atomic cursor, and the stop rule is evaluated
//! *event-driven* on seed-ordered result prefixes as results arrive.  Every
//! run is deterministic in its seed, which makes the aggregate
//! deterministic too: the report is identical whatever the worker-thread
//! count (only `wall_time` and the speculation telemetry vary).  An
//! adaptive [`StopRule`] can end a campaign early — cancelling every shard
//! not yet claimed — once a Wilson-interval bound settles the [`Verdict`],
//! or, under [`StopRule::Sprt`], once Wald's sequential probability-ratio
//! test crosses a decision boundary (one run sooner on unanimous
//! populations).
//!
//! Fleet scale comes from snapshot-keyed victim construction: all victims
//! sharing a scheme × deployment × buffer-size configuration are built from
//! one memoized [`VictimSnapshot`](crate::snapshot::VictimSnapshot) (see
//! [`SnapshotCache`]), and seeds are drawn lazily per index — a
//! 10^5-victim campaign allocates nothing proportional to the fleet size
//! beyond the runs it actually reports.
//!
//! # Example
//!
//! ```
//! use polycanary_attacks::campaign::{AttackKind, Campaign};
//! use polycanary_core::scheme::SchemeKind;
//!
//! // Byte-by-byte vs classic SSP over 8 victim seeds: falls every time.
//! let report = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, SchemeKind::Ssp)
//!     .with_seed_range(0xA77A, 8)
//!     .run();
//! assert_eq!(report.success_rate(), 1.0);
//! let stats = report.trial_stats().unwrap();
//! assert!(stats.min >= 64 && stats.max <= 8 * 256 + 1);
//! ```

use std::collections::HashSet;
use std::time::{Duration, Instant};

use polycanary_core::record::Record;
use polycanary_core::scheme::SchemeKind;

use crate::byte_by_byte::ByteByByteAttack;
use crate::exhaustive::ExhaustiveAttack;
use crate::pool::JobPool;
use crate::population::Population;
use crate::reuse::CanaryReuseAttack;
use crate::snapshot::{SnapshotCache, VictimKey};
use crate::stats::{AttackResult, AttackSummary};
use crate::victim::{Deployment, ForkingServer, VictimConfig};

/// Strategy selector: which attack a campaign replays against every victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// The BROP-style byte-by-byte attack of §II-B.
    ByteByByte {
        /// Oracle-query budget per victim.
        budget: u64,
    },
    /// Whole-word exhaustive guessing (§III-C1).
    Exhaustive {
        /// Oracle-query budget per victim.
        budget: u64,
    },
    /// The canary-disclosure-and-reuse attack (§IV-C).
    Reuse,
}

impl AttackKind {
    /// Strategy name as used in [`AttackResult::strategy`].
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::ByteByByte { .. } => "byte-by-byte",
            AttackKind::Exhaustive { .. } => "exhaustive",
            AttackKind::Reuse => "canary-reuse",
        }
    }

    /// Runs this strategy once against a fresh victim built from scratch
    /// for `victim` (compile + boot — the anecdote path).
    pub fn run_once(&self, victim: VictimConfig) -> AttackResult {
        let mut server = ForkingServer::new(victim);
        self.drive(&mut server, victim.scheme)
    }

    /// Runs this strategy once against a victim booted from `cache` — the
    /// campaign path, where every victim sharing a configuration boots from
    /// one memoized snapshot.  Bit-identical to [`AttackKind::run_once`]
    /// for any seed; only the construction cost differs.
    pub fn run_once_with(&self, cache: &SnapshotCache, victim: VictimConfig) -> AttackResult {
        let snapshot = cache.get(VictimKey::of(&victim));
        let mut server = ForkingServer::from_snapshot(&snapshot, victim.seed);
        self.drive(&mut server, victim.scheme)
    }

    fn drive(&self, server: &mut ForkingServer, scheme: SchemeKind) -> AttackResult {
        match *self {
            AttackKind::ByteByByte { budget } => {
                let geometry = server.geometry();
                ByteByByteAttack::with_budget(budget).run(server, geometry, scheme)
            }
            AttackKind::Exhaustive { budget } => {
                let geometry = server.geometry();
                ExhaustiveAttack::with_budget(budget).run(server, geometry, scheme)
            }
            AttackKind::Reuse => CanaryReuseAttack::default().run(server),
        }
    }
}

/// Wilson score interval for a binomial proportion: the plausible range of
/// the true success rate after observing `successes` out of `n` runs, at
/// normal quantile `z` (1.96 ≈ 95 % confidence).  Returns `(0, 1)` for
/// `n == 0`.
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let centre = p + z2 / (2.0 * nf);
    let margin = z * ((p * (1.0 - p) + z2 / (4.0 * nf)) / nf).sqrt();
    (((centre - margin) / denom).max(0.0), ((centre + margin) / denom).min(1.0))
}

/// Statistical verdict of a campaign: does the attack break the scheme?
///
/// The verdict is the Wilson interval of the success rate tested against
/// 1/2 at 95 % confidence.  For populations whose outcome tends one way —
/// every cell in the paper's tables is unanimous — adaptive
/// (early-stopped) and exhaustive campaigns agree on it; for per-seed
/// success rates near the threshold the early stop carries the usual
/// repeated-testing error probability of the configured interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The success rate is provably above 1/2 — the scheme falls.
    Breaks,
    /// The success rate is provably below 1/2 — the scheme resists.
    Resists,
    /// Too few runs (or too mixed an outcome) to settle either way.
    Inconclusive,
}

impl Verdict {
    /// Display label ("breaks" / "resists" / "inconclusive").
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Breaks => "breaks",
            Verdict::Resists => "resists",
            Verdict::Inconclusive => "inconclusive",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Adaptive-budget policy: when may a campaign stop before exhausting its
/// seed list?
///
/// Stop decisions are evaluated event-driven on seed-ordered result
/// prefixes (per completed run, as results arrive at the sharded
/// executor's coordinator), never on worker finish order, so a campaign's
/// report stays deterministic in the seed list and independent of the
/// worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Run every configured seed (the default).
    Exhaustive,
    /// Stop once the Wilson interval of the success rate at quantile `z`
    /// lies entirely above or entirely below `threshold` — i.e. once the
    /// [`Verdict`] is settled.
    WilsonSettled {
        /// Normal quantile of the interval (1.96 ≈ 95 % confidence).
        z: f64,
        /// Success-rate boundary the interval must clear.
        threshold: f64,
        /// Historical scheduling-batch size, kept for configuration
        /// compatibility.  The sharded executor evaluates the rule after
        /// every completed run regardless; use
        /// [`Campaign::with_shard_size`] to tune scheduling granularity.
        batch: usize,
    },
    /// Wald's sequential probability-ratio test: stop as soon as the
    /// accumulated log-likelihood ratio between "the attack breaks the
    /// scheme" (success rate [`SPRT_P1`]) and "the scheme resists" (success
    /// rate [`SPRT_P0`]) crosses the boundary for error rates `alpha` /
    /// `beta`.  On unanimous populations this settles in
    /// `ceil(ln((1-beta)/alpha) / ln(p1/p0))` runs — 3 at the default 5 %
    /// error rates, versus 4 for [`StopRule::settled`] — which is why
    /// mixed-rate sweeps prefer it: no run is spent past the point where
    /// the evidence is already conclusive.
    Sprt {
        /// Type-I error bound: probability of declaring "breaks" when the
        /// true success rate is [`SPRT_P0`].
        alpha: f64,
        /// Type-II error bound: probability of declaring "resists" when the
        /// true success rate is [`SPRT_P1`].
        beta: f64,
    },
}

/// SPRT null-hypothesis success rate ("the scheme resists"): the lower edge
/// of the indifference region around the 1/2 verdict threshold.
pub const SPRT_P0: f64 = 0.2;
/// SPRT alternative-hypothesis success rate ("the attack breaks the
/// scheme"): the upper edge of the indifference region.
pub const SPRT_P1: f64 = 0.8;

impl StopRule {
    /// The standard adaptive rule: 95 % Wilson interval against a success
    /// rate of 1/2 — four unanimous runs settle the verdict either way.
    pub fn settled() -> Self {
        StopRule::WilsonSettled { z: 1.96, threshold: 0.5, batch: 4 }
    }

    /// The standard sequential rule: Wald SPRT at 5 % error rates both
    /// ways — three unanimous runs settle the verdict either way.
    pub fn sprt() -> Self {
        StopRule::Sprt { alpha: 0.05, beta: 0.05 }
    }

    /// Display label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            StopRule::Exhaustive => "exhaustive",
            StopRule::WilsonSettled { .. } => "wilson-settled",
            StopRule::Sprt { .. } => "sprt",
        }
    }

    /// The early verdict this rule reaches after observing `successes` out
    /// of `runs` completed runs, if the evidence suffices — `None` keeps
    /// the campaign running.
    pub fn decision(&self, successes: u64, runs: u64) -> Option<Verdict> {
        if runs == 0 {
            return None;
        }
        match *self {
            StopRule::Exhaustive => None,
            StopRule::WilsonSettled { z, threshold, .. } => {
                let (low, high) = wilson_interval(successes, runs, z);
                if low > threshold {
                    Some(Verdict::Breaks)
                } else if high < threshold {
                    Some(Verdict::Resists)
                } else {
                    None
                }
            }
            StopRule::Sprt { alpha, beta } => {
                let s = successes as f64;
                let f = (runs - successes) as f64;
                let llr =
                    s * (SPRT_P1 / SPRT_P0).ln() + f * ((1.0 - SPRT_P1) / (1.0 - SPRT_P0)).ln();
                if llr >= ((1.0 - beta) / alpha).ln() {
                    Some(Verdict::Breaks)
                } else if llr <= (beta / (1.0 - alpha)).ln() {
                    Some(Verdict::Resists)
                } else {
                    None
                }
            }
        }
    }

    /// Whether a campaign that observed `successes` out of `runs` completed
    /// runs may stop early.
    pub fn should_stop(&self, successes: u64, runs: u64) -> bool {
        self.decision(successes, runs).is_some()
    }

    /// Default shard size (contiguous victim indices per worker claim) for
    /// campaigns under this rule: large shards amortize scheduling for
    /// exhaustive sweeps, single-victim shards keep an adaptive campaign's
    /// speculative overshoot past the settle point bounded by the worker
    /// count.
    fn default_shard_size(&self) -> usize {
        match *self {
            StopRule::Exhaustive => 64,
            StopRule::WilsonSettled { .. } | StopRule::Sprt { .. } => 1,
        }
    }
}

/// One completed attack run within a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRun {
    /// The victim's loader seed.
    pub seed: u64,
    /// The attack outcome against that victim.
    pub result: AttackResult,
}

/// Request-count distribution over a set of runs.
///
/// Percentiles use the nearest-rank definition on the sorted sample, so
/// every reported value is an actually observed request count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStats {
    /// Smallest observed request count.
    pub min: u64,
    /// Nearest-rank 50th percentile.
    pub median: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
    /// Largest observed request count.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl TrialStats {
    /// Computes the distribution of `samples`; `None` when empty.
    pub fn from_samples(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let nearest_rank = |q: f64| -> u64 {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
        let variance = sorted
            .iter()
            .map(|&t| {
                let d = t as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / sorted.len() as f64;
        Some(TrialStats {
            min: sorted[0],
            median: nearest_rank(0.50),
            p95: nearest_rank(0.95),
            max: *sorted.last().expect("non-empty"),
            mean,
            std_dev: variance.sqrt(),
        })
    }
}

impl std::fmt::Display for TrialStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.0} ± {:.0} (min {}, median {}, p95 {}, max {})",
            self.mean, self.std_dev, self.min, self.median, self.p95, self.max
        )
    }
}

/// Aggregate outcome of a [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Strategy name.
    pub attack: &'static str,
    /// Scheme of the fleet's dominant (heaviest) [`Population`] member —
    /// for uniform populations, the scheme protecting every victim.
    pub scheme: SchemeKind,
    /// Deployment vehicle of the dominant population member.
    pub deployment: Deployment,
    /// The victim fleet the campaign attacked; per-victim schemes of a
    /// mixed fleet are in each run's [`AttackResult::scheme`].
    pub population: Population,
    /// Per-seed runs, in the order the seeds were configured (not the order
    /// workers finished them), so reports are reproducible.  Under an
    /// adaptive [`StopRule`] this may be a prefix of the configured seeds.
    pub runs: Vec<CampaignRun>,
    /// Number of seeds the campaign was configured with; `runs.len()` falls
    /// short of this exactly when a stop rule fired early.
    pub configured_seeds: usize,
    /// The adaptive-budget policy the campaign ran under; its Wilson
    /// parameters also define [`CampaignReport::verdict`].
    pub stop_rule: StopRule,
    /// Contiguous victim indices per worker shard claim (part of the
    /// campaign configuration, so deterministic).
    pub shard_size: usize,
    /// Victim servers actually booted, **including** speculative boots past
    /// the settle point whose results were discarded.  Scheduling
    /// telemetry: varies with worker timing, so it is not exported in
    /// [`CampaignReport::record`] — but it is always strictly less than the
    /// configured seed count when a stop rule cancelled shards.
    pub victims_built: usize,
    /// Shards workers claimed (same telemetry caveat as
    /// [`CampaignReport::victims_built`]).
    pub shards_claimed: usize,
    /// Victim snapshots built by the campaign's [`SnapshotCache`] — one per
    /// distinct scheme × deployment × buffer-size configuration attacked
    /// (telemetry; the deterministic equivalent is
    /// [`CampaignReport::snapshot_configs`]).
    pub snapshot_builds: u64,
    /// Victim boots served from the memo without building (telemetry; the
    /// deterministic equivalent is [`CampaignReport::snapshot_reuses`]).
    pub snapshot_hits: u64,
    /// Wall-clock time of the whole fan-out.
    pub wall_time: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl CampaignReport {
    /// Number of runs.
    pub fn campaigns(&self) -> u64 {
        self.runs.len() as u64
    }

    /// Number of runs that ended in an undetected hijack.
    pub fn successes(&self) -> u64 {
        self.runs.iter().filter(|r| r.result.success).count() as u64
    }

    /// Fraction of runs that succeeded, in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.successes() as f64 / self.campaigns() as f64
        }
    }

    /// Whether the attack succeeded against every victim seed.
    ///
    /// Vacuously **false** on an empty report: zero runs prove nothing, so
    /// [`CampaignReport::all_succeeded`] and
    /// [`CampaignReport::none_succeeded`] are both `false` there (rather
    /// than the classical vacuous truth) — an empty campaign never
    /// certifies a scheme as broken *or* as resistant.
    pub fn all_succeeded(&self) -> bool {
        !self.runs.is_empty() && self.successes() == self.campaigns()
    }

    /// Whether the attack failed against every victim seed.
    ///
    /// Vacuously **false** on an empty report, mirroring
    /// [`CampaignReport::all_succeeded`] — see there.
    pub fn none_succeeded(&self) -> bool {
        !self.runs.is_empty() && self.successes() == 0
    }

    /// Statistical verdict of the campaign, designed so adaptive and
    /// exhaustive campaigns over the same victim population agree whenever
    /// the population's outcome is settled rather than mixed (see
    /// [`Verdict`] for the caveat near the threshold).
    ///
    /// Judges with the same test the campaign's [`StopRule`] stopped on (so
    /// a campaign an adaptive rule declared settled never reads back as
    /// inconclusive); exhaustive campaigns — and adaptive ones that ran out
    /// of seeds undecided — use the standard 95 % Wilson interval against a
    /// success rate of 1/2.
    pub fn verdict(&self) -> Verdict {
        if self.runs.is_empty() {
            return Verdict::Inconclusive;
        }
        if let Some(verdict) = self.stop_rule.decision(self.successes(), self.campaigns()) {
            return verdict;
        }
        // Undecided after every seed: judge with the configured Wilson
        // parameters where the rule has them, the standard 95 % test
        // against 1/2 otherwise (exhaustive and SPRT campaigns).
        let (z, threshold) = match self.stop_rule {
            StopRule::WilsonSettled { z, threshold, .. } => (z, threshold),
            StopRule::Exhaustive | StopRule::Sprt { .. } => (1.96, 0.5),
        };
        let (low, high) = wilson_interval(self.successes(), self.campaigns(), z);
        if low > threshold {
            Verdict::Breaks
        } else if high < threshold {
            Verdict::Resists
        } else {
            Verdict::Inconclusive
        }
    }

    /// Total oracle requests sent over all runs — the attacker-effort cost
    /// an adaptive stop rule reduces.
    pub fn total_requests(&self) -> u64 {
        self.runs.iter().map(|r| r.result.trials).sum()
    }

    /// Whether a stop rule ended the campaign before its full seed list.
    pub fn stopped_early(&self) -> bool {
        self.runs.len() < self.configured_seeds
    }

    /// Configured victims the stop rule cancelled before they were ever
    /// scheduled — the victim-construction work an adaptive campaign saved
    /// versus an exhaustive one.  Deterministic (unlike
    /// [`CampaignReport::victims_built`], which counts speculation).
    pub fn victims_cancelled(&self) -> usize {
        self.configured_seeds - self.runs.len()
    }

    /// Distinct victim configurations (scheme × deployment × buffer size)
    /// among the reported runs — the number of snapshots a fleet campaign
    /// needs to build.  Deterministic: derived from the runs' seed-selected
    /// population members (at their original victim indices, so rollout
    /// fleets resolve the stage each run drew under), not from cache timing.
    pub fn snapshot_configs(&self) -> usize {
        self.runs
            .iter()
            .enumerate()
            .map(|(index, run)| {
                let member = self.population.member_at(index, run.seed);
                (member.scheme, member.deployment, member.buffer_size)
            })
            .collect::<HashSet<_>>()
            .len()
    }

    /// Reported victim boots served by snapshot reuse instead of a fresh
    /// compile: `completed seeds − distinct configurations`.  Deterministic
    /// companion to [`CampaignReport::snapshot_hits`].
    pub fn snapshot_reuses(&self) -> usize {
        self.runs.len() - self.snapshot_configs()
    }

    /// Request-count distribution over **all** runs.
    pub fn trial_stats(&self) -> Option<TrialStats> {
        TrialStats::from_samples(&self.runs.iter().map(|r| r.result.trials).collect::<Vec<_>>())
    }

    /// Request-count distribution over the **successful** runs only.
    pub fn success_trial_stats(&self) -> Option<TrialStats> {
        TrialStats::from_samples(
            &self
                .runs
                .iter()
                .filter(|r| r.result.success)
                .map(|r| r.result.trials)
                .collect::<Vec<_>>(),
        )
    }

    /// Bridges into the pre-existing scalar [`AttackSummary`] type.
    pub fn summary(&self) -> AttackSummary {
        let mut summary = AttackSummary::default();
        for run in &self.runs {
            summary.record(&run.result);
        }
        summary
    }

    /// The self-describing record form of this report, including the
    /// per-seed runs, for JSON/CSV export.
    pub fn record(&self) -> Record {
        let runs: Vec<Record> = self
            .runs
            .iter()
            .map(|run| {
                let mut rec = Record::new()
                    .field("seed", run.seed)
                    .field("success", run.result.success)
                    .field("requests", run.result.trials);
                if let Some(outcome) = run.result.final_outcome {
                    rec.push("final_outcome", format!("{outcome:?}"));
                }
                rec
            })
            .collect();
        let mut rec = Record::new()
            .field("attack", self.attack)
            .field("scheme", self.scheme.name())
            .field("deployment", self.deployment.label())
            .field("population", self.population.label());
        if !self.population.is_uniform() {
            rec.push("population_mix", self.population.record());
        }
        let mut rec = rec
            .field("stop_rule", self.stop_rule.label())
            .field("configured_seeds", self.configured_seeds)
            .field("completed_seeds", self.runs.len())
            .field("stopped_early", self.stopped_early())
            .field("successes", self.successes())
            .field("success_rate", self.success_rate())
            .field("verdict", self.verdict().label())
            .field("total_requests", self.total_requests())
            .field("shard_size", self.shard_size)
            .field("victims_cancelled", self.victims_cancelled())
            .field("snapshot_configs", self.snapshot_configs())
            .field("snapshot_reuses", self.snapshot_reuses())
            .field("wall_ms", self.wall_time.as_secs_f64() * 1_000.0)
            .field("workers", self.workers);
        if let Some(stats) = self.success_trial_stats() {
            rec.push("success_requests_mean", stats.mean);
            rec.push("success_requests_median", stats.median);
            rec.push("success_requests_p95", stats.p95);
            rec.push("success_requests_max", stats.max);
        }
        rec.field("runs", runs)
    }
}

/// Driver replaying one attack strategy against N independently seeded
/// victims, fanned out over scoped worker threads.
///
/// Reports are a pure function of the seed list — the worker count only
/// changes wall time:
///
/// ```
/// use polycanary_attacks::campaign::{AttackKind, Campaign};
/// use polycanary_core::scheme::SchemeKind;
///
/// let report = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, SchemeKind::Ssp)
///     .with_seed_range(0xA77A, 4)
///     .with_workers(2)
///     .run();
/// assert_eq!(report.success_rate(), 1.0); // classic SSP falls in every seed
/// assert!(report.trial_stats().unwrap().mean > 64.0);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    attack: AttackKind,
    population: Population,
    buffer_size: u32,
    program: u64,
    seeds: SeedSource,
    workers: Option<usize>,
    stop_rule: StopRule,
    shard_size: Option<usize>,
}

/// Where a campaign's victim seeds come from: an explicit list, or a lazy
/// per-index derivation that allocates nothing proportional to the fleet
/// size — the representation behind [`Campaign::with_seeds`] and
/// [`Campaign::with_seed_range`] respectively.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SeedSource {
    /// Caller-supplied seeds, materialized.
    Explicit(Vec<u64>),
    /// `count` seeds derived on demand from `base` via [`derive_seed`] —
    /// how a 10^5-victim fleet stays allocation-free until results exist.
    Derived { base: u64, count: usize },
}

impl SeedSource {
    fn len(&self) -> usize {
        match self {
            SeedSource::Explicit(seeds) => seeds.len(),
            SeedSource::Derived { count, .. } => *count,
        }
    }

    fn get(&self, index: usize) -> u64 {
        match self {
            SeedSource::Explicit(seeds) => seeds[index],
            SeedSource::Derived { base, count } => {
                assert!(index < *count, "seed index {index} out of range {count}");
                derive_seed(*base, index as u64)
            }
        }
    }
}

/// Default number of victim seeds per campaign — enough for the §VI-C
/// tables to report a spread rather than an anecdote.
pub const DEFAULT_SEEDS: usize = 32;

impl Campaign {
    /// A campaign of `attack` against compiler-deployed victims protected by
    /// `scheme` (a uniform [`Population`]), with [`DEFAULT_SEEDS`] seeds and
    /// one worker per CPU.
    pub fn new(attack: AttackKind, scheme: SchemeKind) -> Self {
        Campaign::against(attack, Population::uniform(scheme))
    }

    /// A campaign of `attack` against an arbitrary victim fleet — a
    /// uniform population reproduces the paper's tables, a mixed one
    /// produces the in-between success rates that exercise the sequential
    /// stop rules' indifference region.
    pub fn against(attack: AttackKind, population: Population) -> Self {
        Campaign {
            attack,
            population,
            buffer_size: 64,
            program: 0,
            seeds: SeedSource::Derived { base: 0x00DD_5EED, count: DEFAULT_SEEDS },
            workers: None,
            stop_rule: StopRule::Exhaustive,
            shard_size: None,
        }
    }

    /// Replaces the victim fleet.
    #[must_use]
    pub fn with_population(mut self, population: Population) -> Self {
        self.population = population;
        self
    }

    /// Selects the deployment vehicle of every victim (every population
    /// member).
    #[must_use]
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        self.population = self.population.with_deployment(deployment);
        self
    }

    /// Overrides the vulnerable buffer size of every victim (population
    /// members with an explicit buffer override keep theirs).
    #[must_use]
    pub fn with_buffer_size(mut self, size: u32) -> Self {
        self.buffer_size = size;
        self
    }

    /// Selects a generated victim-program variant for every victim
    /// (`0`, the default, is the canonical hand-written server).
    #[must_use]
    pub fn with_program(mut self, program: u64) -> Self {
        self.program = program;
        self
    }

    /// Uses exactly these victim seeds (duplicates allowed; report order is
    /// this order).
    #[must_use]
    pub fn with_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = SeedSource::Explicit(seeds.into_iter().collect());
        self
    }

    /// Uses `count` seeds derived deterministically from `base`.
    ///
    /// The seeds are drawn lazily per index ([`derive_seed`]), so this is
    /// how fleet campaigns scale: `count` can be 10^5+ without allocating a
    /// seed list.
    #[must_use]
    pub fn with_seed_range(mut self, base: u64, count: usize) -> Self {
        self.seeds = SeedSource::Derived { base, count };
        self
    }

    /// Overrides the worker-thread count (default: one per available CPU,
    /// capped at the seed count; `0` is treated as `1`).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Selects the adaptive-budget policy (default:
    /// [`StopRule::Exhaustive`]).
    #[must_use]
    pub fn with_stop_rule(mut self, stop_rule: StopRule) -> Self {
        self.stop_rule = stop_rule;
        self
    }

    /// Overrides the scheduling shard size — contiguous victim indices per
    /// worker claim (`0` is treated as `1`).  The default depends on the
    /// stop rule: 64 for exhaustive sweeps, 1 for adaptive campaigns so
    /// cancellation waste stays bounded by the worker count.  Results are
    /// identical for any shard size; only scheduling telemetry varies.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = Some(shard_size.max(1));
        self
    }

    /// The configured victim seeds, materialized for inspection.
    ///
    /// This allocates a list proportional to the seed count — fine for
    /// tests and table-sized campaigns; fleet-scale callers should use
    /// [`Campaign::seed_at`] / [`Campaign::seed_count`] instead, which
    /// never materialize the range.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.seeds.len()).map(|i| self.seeds.get(i)).collect()
    }

    /// The victim seed at `index` (lazy; panics when out of range).
    pub fn seed_at(&self, index: usize) -> u64 {
        self.seeds.get(index)
    }

    /// Number of configured victim seeds.
    pub fn seed_count(&self) -> usize {
        self.seeds.len()
    }

    /// The configured victim fleet.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The victim a given seed produces — exposed so experiments and tests
    /// can assert properties (e.g. the frame geometry) of exactly the
    /// binaries the campaign attacks.  For mixed populations the seed also
    /// selects the population member (see [`Population::member_for`]).
    /// Rollout fleets additionally need the victim's position — use
    /// [`Campaign::victim_config_at`] there.
    pub fn victim_config(&self, seed: u64) -> VictimConfig {
        self.config_for(self.population.member_for(seed), seed)
    }

    /// The victim built at position `index` with `seed` — identical to
    /// [`Campaign::victim_config`] for static fleets; under a
    /// [`RolloutCurve`](crate::population::RolloutCurve) the member draw
    /// uses the stage weights in force at `index`.
    pub fn victim_config_at(&self, index: usize, seed: u64) -> VictimConfig {
        self.config_for(self.population.member_at(index, seed), seed)
    }

    fn config_for(&self, member: &crate::population::PopulationMember, seed: u64) -> VictimConfig {
        VictimConfig::new(member.scheme, seed)
            .with_deployment(member.deployment)
            .with_buffer_size(member.buffer_size.unwrap_or(self.buffer_size))
            .with_program(self.program)
    }

    /// Runs the campaign, fanning the per-seed runs out over the sharded
    /// [`JobPool`] executor ([`JobPool::run_sharded`]).
    ///
    /// Workers pull shards of victim indices ([`Campaign::with_shard_size`])
    /// and boot each victim from the campaign's [`SnapshotCache`], so each
    /// distinct victim configuration is compiled exactly once.  Under an
    /// adaptive [`StopRule`] the rule is evaluated event-driven on every
    /// seed-ordered result prefix, and the first settling prefix cancels
    /// all unscheduled shards; results a parallel worker computed past that
    /// point are discarded, exactly as if the campaign had run serially and
    /// stopped there.  Because the prefix walk never depends on worker
    /// finish order, the report stays deterministic in the seed list
    /// whatever the parallelism.
    pub fn run(&self) -> CampaignReport {
        let total = self.seeds.len();
        let shard_size = self.shard_size.unwrap_or_else(|| self.stop_rule.default_shard_size());
        let workers =
            self.workers.map(JobPool::with_workers).unwrap_or_default().resolved_workers(total);
        let pool = JobPool::with_workers(workers);
        let cache = SnapshotCache::new();
        let started = Instant::now();

        let mut successes = 0u64;
        let outcome = pool.run_sharded(
            total,
            shard_size,
            |index| {
                let seed = self.seeds.get(index);
                CampaignRun {
                    seed,
                    result: self.attack.run_once_with(&cache, self.victim_config_at(index, seed)),
                }
            },
            |index, run: &CampaignRun| {
                successes += u64::from(run.result.success);
                self.stop_rule.should_stop(successes, index as u64 + 1)
            },
        );

        let dominant = *self.population.dominant();
        CampaignReport {
            attack: self.attack.name(),
            scheme: dominant.scheme,
            deployment: dominant.deployment,
            population: self.population.clone(),
            runs: outcome.results,
            configured_seeds: total,
            stop_rule: self.stop_rule,
            shard_size,
            victims_built: outcome.executed,
            shards_claimed: outcome.shards_claimed,
            snapshot_builds: cache.builds(),
            snapshot_hits: cache.hits(),
            wall_time: started.elapsed(),
            workers,
        }
    }
}

/// Derives the `index`-th victim seed of the range based at `base`
/// (SplitMix64-style odd-constant stride so nearby bases do not share
/// seeds) — the lazy per-index form [`Campaign::with_seed_range`] draws
/// from.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    (base ^ 0x5851_F42D_4C95_7F2D)
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .rotate_left(17)
}

/// Derives `count` well-spread victim seeds from `base` (the materialized
/// form of [`derive_seed`]).
pub fn derive_seeds(base: u64, count: usize) -> Vec<u64> {
    (0..count as u64).map(|i| derive_seed(base, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RequestOutcome;

    #[test]
    fn derive_seeds_is_deterministic_and_distinct() {
        let a = derive_seeds(7, 64);
        let b = derive_seeds(7, 64);
        assert_eq!(a, b);
        let mut unique = a.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 64, "derived seeds must be pairwise distinct");
        assert_ne!(derive_seeds(8, 4), derive_seeds(7, 4));
        // The lazy per-index form is the same function.
        for (i, &seed) in a.iter().enumerate() {
            assert_eq!(derive_seed(7, i as u64), seed);
        }
    }

    #[test]
    fn seed_ranges_are_lazy_and_indexable_at_fleet_scale() {
        // A 10^6-victim campaign configures instantly and draws any seed
        // without materializing the range.
        let fleet =
            Campaign::new(AttackKind::Reuse, SchemeKind::Ssp).with_seed_range(0xF1EE7, 1_000_000);
        assert_eq!(fleet.seed_count(), 1_000_000);
        assert_eq!(fleet.seed_at(0), derive_seed(0xF1EE7, 0));
        assert_eq!(fleet.seed_at(999_999), derive_seed(0xF1EE7, 999_999));
        // Explicit lists still answer identically.
        let explicit = Campaign::new(AttackKind::Reuse, SchemeKind::Ssp).with_seeds([5, 6, 7]);
        assert_eq!(explicit.seed_count(), 3);
        assert_eq!(explicit.seed_at(1), 6);
        assert_eq!(explicit.seeds(), vec![5, 6, 7]);
    }

    #[test]
    fn campaign_builds_one_snapshot_per_victim_configuration() {
        let uniform = Campaign::new(AttackKind::Exhaustive { budget: 20 }, SchemeKind::Pssp)
            .with_seed_range(11, 6)
            .with_workers(1)
            .run();
        assert_eq!(uniform.snapshot_builds, 1, "uniform fleet compiles once");
        assert_eq!(uniform.snapshot_hits, 5);
        assert_eq!(uniform.snapshot_configs(), 1);
        assert_eq!(uniform.snapshot_reuses(), 5);
        assert_eq!(uniform.victims_built, 6);

        let mixed = Campaign::against(
            AttackKind::Exhaustive { budget: 20 },
            Population::mixed("half", [(1, SchemeKind::Ssp), (1, SchemeKind::Pssp)]),
        )
        .with_seed_range(0x417C, 12)
        .with_workers(1)
        .run();
        assert_eq!(mixed.snapshot_configs(), 2, "one snapshot per member configuration");
        assert_eq!(mixed.snapshot_builds, 2);
        assert_eq!(mixed.snapshot_hits as usize, 12 - 2);
    }

    #[test]
    fn adaptive_campaign_cancels_unscheduled_victim_constructions() {
        let report = Campaign::new(AttackKind::Exhaustive { budget: 50 }, SchemeKind::Pssp)
            .with_seed_range(13, 64)
            .with_stop_rule(StopRule::sprt())
            .with_workers(1)
            .run();
        assert_eq!(report.campaigns(), 3, "unanimous SPRT settles in 3");
        assert_eq!(report.victims_built, 3, "serial runs never speculate");
        assert_eq!(report.victims_cancelled(), 61);
        assert_eq!(report.shard_size, 1, "adaptive campaigns default to unit shards");
        // Exhaustive shard-size default amortizes scheduling instead.
        let exhaustive = Campaign::new(AttackKind::Exhaustive { budget: 20 }, SchemeKind::Pssp)
            .with_seed_range(13, 8)
            .run();
        assert_eq!(exhaustive.shard_size, 64);
        assert_eq!(exhaustive.victims_cancelled(), 0);
    }

    #[test]
    fn snapshot_boot_matches_from_scratch_boot_per_seed() {
        // run_once and run_once_with are pinned bit-identical for every
        // attack kind (the fleet_engine battery covers every scheme cell).
        let cache = SnapshotCache::new();
        for attack in [
            AttackKind::ByteByByte { budget: 3_000 },
            AttackKind::Exhaustive { budget: 50 },
            AttackKind::Reuse,
        ] {
            let victim = VictimConfig::new(SchemeKind::Ssp, 0xD15EA5E);
            assert_eq!(
                attack.run_once(victim),
                attack.run_once_with(&cache, victim),
                "{} must not depend on the construction path",
                attack.name()
            );
        }
    }

    #[test]
    fn same_seed_same_attack_is_bitwise_reproducible() {
        // Determinism at the single-run level: one victim seed, one
        // strategy, identical request count and outcome every time.
        for attack in [
            AttackKind::ByteByByte { budget: 3_000 },
            AttackKind::Exhaustive { budget: 50 },
            AttackKind::Reuse,
        ] {
            let victim = VictimConfig::new(SchemeKind::Ssp, 0xD15EA5E);
            let first = attack.run_once(victim);
            let second = attack.run_once(victim);
            assert_eq!(first, second, "{} must be deterministic in the seed", attack.name());
        }
    }

    #[test]
    fn report_is_independent_of_worker_count() {
        let base = Campaign::new(AttackKind::ByteByByte { budget: 3_000 }, SchemeKind::Ssp)
            .with_seed_range(42, 6);
        let serial = base.clone().with_workers(1).run();
        let parallel = base.clone().with_workers(4).run();
        let oversubscribed = base.with_workers(64).run();
        assert_eq!(serial.runs, parallel.runs);
        assert_eq!(serial.runs, oversubscribed.runs);
        assert_eq!(parallel.workers, 4);
        // 64 workers for 6 seeds is clamped to the seed count.
        assert_eq!(oversubscribed.workers, 6);
    }

    #[test]
    fn ssp_falls_in_every_seed_and_pssp_in_none() {
        let ssp = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, SchemeKind::Ssp)
            .with_seed_range(1, 8)
            .run();
        assert!(ssp.all_succeeded(), "SSP must fall in every seed: {ssp:?}");
        let stats = ssp.success_trial_stats().expect("all succeeded");
        assert!(stats.min >= 64 && stats.max <= 8 * 256 + 1, "{stats}");
        assert!(stats.min <= stats.median && stats.median <= stats.p95 && stats.p95 <= stats.max);

        let pssp = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, SchemeKind::Pssp)
            .with_seed_range(1, 8)
            .run();
        assert!(pssp.none_succeeded(), "P-SSP must survive every seed");
        assert!(pssp.success_trial_stats().is_none());
        assert_eq!(pssp.success_rate(), 0.0);
    }

    #[test]
    fn reuse_campaign_only_owf_resists() {
        let pssp = Campaign::new(AttackKind::Reuse, SchemeKind::Pssp).with_seed_range(3, 6).run();
        assert!(pssp.all_succeeded());
        let owf = Campaign::new(AttackKind::Reuse, SchemeKind::PsspOwf).with_seed_range(3, 6).run();
        assert!(owf.none_succeeded());
        assert_eq!(
            owf.runs[0].result.final_outcome,
            Some(RequestOutcome::Detected),
            "OWF detects the replayed canary"
        );
    }

    #[test]
    fn exhaustive_campaign_never_breaks_either_scheme_in_small_budgets() {
        for scheme in [SchemeKind::Ssp, SchemeKind::Pssp] {
            let report = Campaign::new(AttackKind::Exhaustive { budget: 200 }, scheme)
                .with_seed_range(9, 4)
                .run();
            assert!(report.none_succeeded(), "{scheme}");
            let stats = report.trial_stats().expect("has runs");
            assert_eq!(stats.min, 200);
            assert_eq!(stats.max, 200);
            assert_eq!(stats.std_dev, 0.0);
        }
    }

    #[test]
    fn trial_stats_nearest_rank_percentiles() {
        let stats = TrialStats::from_samples(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]).unwrap();
        assert_eq!(stats.min, 10);
        assert_eq!(stats.median, 50); // nearest-rank: ceil(0.5 * 10) = 5th value
        assert_eq!(stats.p95, 100); // ceil(0.95 * 10) = 10th value
        assert_eq!(stats.max, 100);
        assert!((stats.mean - 55.0).abs() < 1e-9);
        assert_eq!(TrialStats::from_samples(&[]), None);
        let single = TrialStats::from_samples(&[7]).unwrap();
        assert_eq!((single.min, single.median, single.p95, single.max), (7, 7, 7, 7));
    }

    #[test]
    fn wilson_interval_is_sane() {
        // n = 0 is the whole unit interval.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        // Unanimous success over 4 runs clears 1/2 from above ...
        let (low, _) = wilson_interval(4, 4, 1.96);
        assert!(low > 0.5, "low = {low}");
        // ... unanimous failure clears it from below ...
        let (_, high) = wilson_interval(0, 4, 1.96);
        assert!(high < 0.5, "high = {high}");
        // ... and a 3/4 split settles nothing.
        let (low, high) = wilson_interval(3, 4, 1.96);
        assert!(low < 0.5 && high > 0.5, "({low}, {high})");
        // The interval always brackets the point estimate.
        let (low, high) = wilson_interval(7, 20, 1.96);
        assert!(low < 0.35 && 0.35 < high);
    }

    #[test]
    fn empty_report_is_vacuously_unsettled() {
        let report =
            Campaign::new(AttackKind::Reuse, SchemeKind::Ssp).with_seeds(std::iter::empty()).run();
        assert_eq!(report.campaigns(), 0);
        // Zero runs prove nothing: neither "all" nor "none" succeeded.
        assert!(!report.all_succeeded());
        assert!(!report.none_succeeded());
        assert_eq!(report.verdict(), Verdict::Inconclusive);
        assert_eq!(report.success_rate(), 0.0);
        assert_eq!(report.total_requests(), 0);
        assert!(!report.stopped_early());
    }

    #[test]
    fn adaptive_campaign_agrees_with_exhaustive_and_spends_less() {
        let base = Campaign::new(AttackKind::ByteByByte { budget: 3_000 }, SchemeKind::Ssp)
            .with_seed_range(2, 12);
        let exhaustive = base.clone().run();
        let adaptive = base.with_stop_rule(StopRule::settled()).run();
        assert_eq!(exhaustive.verdict(), Verdict::Breaks);
        assert_eq!(adaptive.verdict(), exhaustive.verdict(), "verdicts must agree");
        assert!(adaptive.stopped_early(), "unanimous SSP breaks settle early");
        assert_eq!(adaptive.configured_seeds, 12);
        assert!(
            adaptive.total_requests() < exhaustive.total_requests(),
            "{} vs {}",
            adaptive.total_requests(),
            exhaustive.total_requests()
        );
        // The adaptive runs are a prefix of the exhaustive ones.
        assert_eq!(adaptive.runs[..], exhaustive.runs[..adaptive.runs.len()]);
    }

    #[test]
    fn adaptive_stop_is_independent_of_worker_count() {
        let base = Campaign::new(AttackKind::Exhaustive { budget: 100 }, SchemeKind::Pssp)
            .with_seed_range(6, 10)
            .with_stop_rule(StopRule::settled());
        let serial = base.clone().with_workers(1).run();
        let parallel = base.with_workers(8).run();
        assert_eq!(serial.runs, parallel.runs);
        assert_eq!(serial.verdict(), Verdict::Resists);
        assert!(serial.stopped_early());
    }

    #[test]
    fn mixed_outcomes_never_stop_the_settled_rule() {
        let rule = StopRule::settled();
        assert!(!rule.should_stop(0, 0));
        assert!(!rule.should_stop(2, 4));
        assert!(!rule.should_stop(3, 4));
        assert!(rule.should_stop(4, 4));
        assert!(rule.should_stop(0, 4));
        assert_eq!(StopRule::Exhaustive.label(), "exhaustive");
        assert_eq!(rule.label(), "wilson-settled");
        assert_eq!(StopRule::sprt().label(), "sprt");
    }

    #[test]
    fn sprt_decides_one_run_before_wilson_on_unanimous_evidence() {
        let sprt = StopRule::sprt();
        let wilson = StopRule::settled();
        // Unanimous successes: SPRT needs 3 runs, Wilson needs 4.
        assert_eq!(sprt.decision(2, 2), None);
        assert_eq!(sprt.decision(3, 3), Some(Verdict::Breaks));
        assert_eq!(wilson.decision(3, 3), None);
        assert_eq!(wilson.decision(4, 4), Some(Verdict::Breaks));
        // Symmetrically for unanimous failures.
        assert_eq!(sprt.decision(0, 2), None);
        assert_eq!(sprt.decision(0, 3), Some(Verdict::Resists));
        assert_eq!(wilson.decision(0, 4), Some(Verdict::Resists));
        // Mixed evidence keeps the test running.
        assert_eq!(sprt.decision(2, 4), None);
        assert_eq!(sprt.decision(3, 5), None);
        // But a strong majority eventually crosses the boundary.
        assert_eq!(sprt.decision(9, 10), Some(Verdict::Breaks));
        assert_eq!(sprt.decision(1, 10), Some(Verdict::Resists));
        assert!(!sprt.should_stop(0, 0));
    }

    #[test]
    fn sprt_campaign_agrees_with_exhaustive_and_spends_less_than_wilson() {
        for (scheme, expected) in
            [(SchemeKind::Ssp, Verdict::Breaks), (SchemeKind::Pssp, Verdict::Resists)]
        {
            let base = Campaign::new(AttackKind::ByteByByte { budget: 3_000 }, scheme)
                .with_seed_range(4, 10);
            let exhaustive = base.clone().run();
            let wilson = base.clone().with_stop_rule(StopRule::settled()).run();
            let sprt = base.with_stop_rule(StopRule::sprt()).run();
            assert_eq!(exhaustive.verdict(), expected, "{scheme}");
            assert_eq!(sprt.verdict(), expected, "{scheme}");
            assert_eq!(wilson.verdict(), expected, "{scheme}");
            // Unanimous population: SPRT settles after 3 runs, Wilson after 4.
            assert_eq!(sprt.campaigns(), 3, "{scheme}");
            assert_eq!(wilson.campaigns(), 4, "{scheme}");
            assert!(
                sprt.total_requests() < wilson.total_requests(),
                "{scheme}: {} vs {}",
                sprt.total_requests(),
                wilson.total_requests()
            );
            // The SPRT runs are a prefix of the exhaustive ones.
            assert_eq!(sprt.runs[..], exhaustive.runs[..3]);
            assert!(sprt.stopped_early());
        }
    }

    #[test]
    fn sprt_stop_is_independent_of_worker_count() {
        let base = Campaign::new(AttackKind::Exhaustive { budget: 100 }, SchemeKind::Pssp)
            .with_seed_range(6, 10)
            .with_stop_rule(StopRule::sprt());
        let serial = base.clone().with_workers(1).run();
        let parallel = base.with_workers(8).run();
        assert_eq!(serial.runs, parallel.runs);
        assert_eq!(serial.verdict(), Verdict::Resists);
        assert_eq!(serial.stop_rule.label(), "sprt");
        assert!(serial.stopped_early());
    }

    #[test]
    fn verdict_matches_the_rule_that_stopped_the_campaign() {
        let dummy_runs = |successes: usize, failures: usize| -> Vec<CampaignRun> {
            (0..successes + failures)
                .map(|i| CampaignRun {
                    seed: i as u64,
                    result: AttackResult {
                        strategy: "byte-by-byte",
                        scheme: SchemeKind::Ssp,
                        success: i < successes,
                        trials: 10,
                        recovered_canary: None,
                        final_outcome: None,
                    },
                })
                .collect()
        };
        // A lax custom rule (z = 1.0) stops on a 6/8 split that the
        // standard 95 % test would call inconclusive; the report's verdict
        // must agree with the rule that stopped it.
        let lax = StopRule::WilsonSettled { z: 1.0, threshold: 0.5, batch: 8 };
        assert!(lax.should_stop(6, 8));
        let report = CampaignReport {
            attack: "byte-by-byte",
            scheme: SchemeKind::Ssp,
            deployment: Deployment::Compiler,
            population: Population::uniform(SchemeKind::Ssp),
            runs: dummy_runs(6, 2),
            configured_seeds: 16,
            stop_rule: lax,
            shard_size: 1,
            victims_built: 8,
            shards_claimed: 8,
            snapshot_builds: 1,
            snapshot_hits: 7,
            wall_time: Duration::ZERO,
            workers: 1,
        };
        assert_eq!(report.verdict(), Verdict::Breaks);
        let exhaustive = CampaignReport { stop_rule: StopRule::Exhaustive, ..report.clone() };
        assert_eq!(exhaustive.verdict(), Verdict::Inconclusive);
        // A custom Wilson threshold keeps judging undecided campaigns: a
        // 6/8 split is nowhere near "breaks above 90 %", so the fallback
        // must use the configured bar, not the 1/2 default.
        let strict = CampaignReport {
            stop_rule: StopRule::WilsonSettled { z: 1.96, threshold: 0.9, batch: 8 },
            ..report
        };
        assert_eq!(strict.verdict(), Verdict::Inconclusive);
    }

    #[test]
    fn report_record_includes_per_seed_runs() {
        use polycanary_core::record::Value;

        let report = Campaign::new(AttackKind::Exhaustive { budget: 20 }, SchemeKind::Pssp)
            .with_seed_range(1, 4)
            .run();
        let rec = report.record();
        assert_eq!(rec.get("scheme"), Some(&Value::Str("P-SSP".into())));
        assert_eq!(rec.get("completed_seeds"), Some(&Value::UInt(4)));
        assert_eq!(rec.get("verdict"), Some(&Value::Str("resists".into())));
        let Some(Value::List(runs)) = rec.get("runs") else {
            panic!("record must nest the per-seed runs: {rec:?}")
        };
        assert_eq!(runs.len(), 4);
        let Value::Record(first) = &runs[0] else { panic!("runs are records") };
        assert_eq!(first.get("seed"), Some(&Value::UInt(report.runs[0].seed)));
        assert_eq!(first.get("requests"), Some(&Value::UInt(20)));
    }

    #[test]
    fn mixed_population_campaign_is_non_degenerate_and_reproducible() {
        let fleet = Population::mixed("half", [(1, SchemeKind::Ssp), (1, SchemeKind::Pssp)]);
        let base = Campaign::against(AttackKind::ByteByByte { budget: 3_000 }, fleet.clone())
            .with_seed_range(0x417C, 12);
        let once = base.clone().run();
        let twice = base.run();
        assert_eq!(once.runs, twice.runs);
        // A genuinely mixed fleet produces an in-between success rate.
        assert!(once.successes() > 0 && once.successes() < once.campaigns(), "{once:?}");
        assert_eq!(once.population, fleet);
        // Per-run schemes reflect each seed's member draw.
        for run in &once.runs {
            assert_eq!(run.result.scheme, fleet.member_for(run.seed).scheme);
            assert_eq!(
                run.result.success,
                run.result.scheme == SchemeKind::Ssp,
                "SSP victims fall, P-SSP victims survive: {run:?}"
            );
        }
    }

    #[test]
    fn mixed_population_record_labels_the_fleet() {
        use polycanary_core::record::Value;

        let report = Campaign::against(
            AttackKind::Exhaustive { budget: 20 },
            Population::mixed("half", [(1, SchemeKind::Ssp), (1, SchemeKind::Pssp)]),
        )
        .with_seed_range(3, 4)
        .run();
        let rec = report.record();
        assert_eq!(rec.get("population"), Some(&Value::Str("half".into())));
        let Some(Value::Record(mix)) = rec.get("population_mix") else {
            panic!("mixed campaigns export their member mix: {rec:?}")
        };
        let Some(Value::List(members)) = mix.get("members") else { panic!("members nest") };
        assert_eq!(members.len(), 2);
        // Uniform campaigns stay lean: label only, no mix record.
        let uniform = Campaign::new(AttackKind::Exhaustive { budget: 20 }, SchemeKind::Pssp)
            .with_seed_range(3, 2)
            .run()
            .record();
        assert_eq!(uniform.get("population"), Some(&Value::Str("P-SSP".into())));
        assert!(uniform.get("population_mix").is_none());
    }

    #[test]
    fn rollout_campaign_is_index_aware_and_worker_count_independent() {
        use crate::population::{PopulationMember, RolloutCurve};

        // A rollout that starts all-SSP and flips to all-P-SSP after 4
        // victims: the early runs fall, the late runs resist, whatever the
        // worker count.
        let fleet = Population::from_members(
            "staged-patch",
            [PopulationMember::new(1, SchemeKind::Pssp), PopulationMember::new(1, SchemeKind::Ssp)],
        )
        .with_rollout(RolloutCurve::new(4, vec![vec![0, 1], vec![1, 0]]));
        let base = Campaign::against(AttackKind::ByteByByte { budget: 3_000 }, fleet.clone())
            .with_seed_range(0x5107, 8);
        let serial = base.clone().with_workers(1).run();
        let parallel = base.with_workers(8).run();
        assert_eq!(serial.runs, parallel.runs);
        for (index, run) in serial.runs.iter().enumerate() {
            let expected = if index < 4 { SchemeKind::Ssp } else { SchemeKind::Pssp };
            assert_eq!(run.result.scheme, expected, "victim {index}");
            assert_eq!(run.result.success, expected == SchemeKind::Ssp, "victim {index}");
        }
        assert_eq!(serial.snapshot_configs(), 2);
    }

    #[test]
    fn member_buffer_overrides_and_programs_reach_the_victim_config() {
        use crate::population::PopulationMember;

        let fleet = Population::from_members(
            "hetero",
            [
                PopulationMember::new(1, SchemeKind::Pssp).with_buffer_size(128),
                PopulationMember::new(1, SchemeKind::Ssp),
            ],
        );
        let campaign = Campaign::against(AttackKind::Reuse, fleet)
            .with_buffer_size(32)
            .with_program(0xDEAD_BEEF);
        for seed in campaign.seeds().into_iter().take(8) {
            let config = campaign.victim_config(seed);
            let expected = match config.scheme {
                SchemeKind::Pssp => 128, // member override wins
                _ => 32,                 // campaign default fills in
            };
            assert_eq!(config.buffer_size, expected);
            assert_eq!(config.program, 0xDEAD_BEEF);
        }
    }

    #[test]
    fn generated_victim_programs_keep_the_paper_verdicts() {
        // The PRNG program axis varies the binary's static shape, not the
        // vulnerable endpoints: SSP still falls, P-SSP still resists.
        let ssp = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, SchemeKind::Ssp)
            .with_program(0xC0FFEE)
            .with_seed_range(1, 4)
            .run();
        assert!(ssp.all_succeeded(), "{ssp:?}");
        let pssp = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, SchemeKind::Pssp)
            .with_program(0xC0FFEE)
            .with_seed_range(1, 4)
            .run();
        assert!(pssp.none_succeeded(), "{pssp:?}");
    }

    #[test]
    fn rewriter_deployment_campaign_resists_byte_by_byte() {
        let report = Campaign::new(AttackKind::ByteByByte { budget: 2_000 }, SchemeKind::PsspBin32)
            .with_deployment(Deployment::BinaryRewriter)
            .with_seed_range(5, 4)
            .run();
        assert!(report.none_succeeded(), "rewritten binaries must resist: {report:?}");
    }
}
