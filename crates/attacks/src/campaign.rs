//! Multi-seed attack campaigns with parallel fan-out.
//!
//! A single attack run (one victim seed, one strategy) is an anecdote: the
//! byte-by-byte attack against SSP may be lucky or unlucky by hundreds of
//! requests depending on the canary the loader drew.  The paper's §VI-C
//! claims are statistical — *SSP falls in about a thousand requests, P-SSP
//! survives* — so this module provides the statistically robust version:
//! a [`Campaign`] replays one strategy against **N independent victims**
//! (same binary, different loader seeds) and aggregates success rate and the
//! request-count distribution (min / median / p95 / max, mean ± std-dev).
//!
//! Victims are completely independent, so campaigns fan out over a work
//! queue drained by scoped worker threads ([`std::thread::scope`]).  Every
//! run is deterministic in its seed, which makes the aggregate deterministic
//! too: the report is identical whatever the worker-thread count (only
//! `wall_time` varies).
//!
//! # Example
//!
//! ```
//! use polycanary_attacks::campaign::{AttackKind, Campaign};
//! use polycanary_core::scheme::SchemeKind;
//!
//! // Byte-by-byte vs classic SSP over 8 victim seeds: falls every time.
//! let report = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, SchemeKind::Ssp)
//!     .with_seed_range(0xA77A, 8)
//!     .run();
//! assert_eq!(report.success_rate(), 1.0);
//! let stats = report.trial_stats().unwrap();
//! assert!(stats.min >= 64 && stats.max <= 8 * 256 + 1);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use polycanary_core::scheme::SchemeKind;

use crate::byte_by_byte::ByteByByteAttack;
use crate::exhaustive::ExhaustiveAttack;
use crate::reuse::CanaryReuseAttack;
use crate::stats::{AttackResult, AttackSummary};
use crate::victim::{Deployment, ForkingServer, VictimConfig};

/// Strategy selector: which attack a campaign replays against every victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// The BROP-style byte-by-byte attack of §II-B.
    ByteByByte {
        /// Oracle-query budget per victim.
        budget: u64,
    },
    /// Whole-word exhaustive guessing (§III-C1).
    Exhaustive {
        /// Oracle-query budget per victim.
        budget: u64,
    },
    /// The canary-disclosure-and-reuse attack (§IV-C).
    Reuse,
}

impl AttackKind {
    /// Strategy name as used in [`AttackResult::strategy`].
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::ByteByByte { .. } => "byte-by-byte",
            AttackKind::Exhaustive { .. } => "exhaustive",
            AttackKind::Reuse => "canary-reuse",
        }
    }

    /// Runs this strategy once against a fresh victim built from `victim`.
    pub fn run_once(&self, victim: VictimConfig) -> AttackResult {
        let scheme = victim.scheme;
        let mut server = ForkingServer::new(victim);
        match *self {
            AttackKind::ByteByByte { budget } => {
                let geometry = server.geometry();
                ByteByByteAttack::with_budget(budget).run(&mut server, geometry, scheme)
            }
            AttackKind::Exhaustive { budget } => {
                let geometry = server.geometry();
                ExhaustiveAttack::with_budget(budget).run(&mut server, geometry, scheme)
            }
            AttackKind::Reuse => CanaryReuseAttack::default().run(&mut server),
        }
    }
}

/// One completed attack run within a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRun {
    /// The victim's loader seed.
    pub seed: u64,
    /// The attack outcome against that victim.
    pub result: AttackResult,
}

/// Request-count distribution over a set of runs.
///
/// Percentiles use the nearest-rank definition on the sorted sample, so
/// every reported value is an actually observed request count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStats {
    /// Smallest observed request count.
    pub min: u64,
    /// Nearest-rank 50th percentile.
    pub median: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
    /// Largest observed request count.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl TrialStats {
    /// Computes the distribution of `samples`; `None` when empty.
    pub fn from_samples(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let nearest_rank = |q: f64| -> u64 {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
        let variance = sorted
            .iter()
            .map(|&t| {
                let d = t as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / sorted.len() as f64;
        Some(TrialStats {
            min: sorted[0],
            median: nearest_rank(0.50),
            p95: nearest_rank(0.95),
            max: *sorted.last().expect("non-empty"),
            mean,
            std_dev: variance.sqrt(),
        })
    }
}

impl std::fmt::Display for TrialStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.0} ± {:.0} (min {}, median {}, p95 {}, max {})",
            self.mean, self.std_dev, self.min, self.median, self.p95, self.max
        )
    }
}

/// Aggregate outcome of a [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Strategy name.
    pub attack: &'static str,
    /// Scheme protecting every victim.
    pub scheme: SchemeKind,
    /// Per-seed runs, in the order the seeds were configured (not the order
    /// workers finished them), so reports are reproducible.
    pub runs: Vec<CampaignRun>,
    /// Wall-clock time of the whole fan-out.
    pub wall_time: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl CampaignReport {
    /// Number of runs.
    pub fn campaigns(&self) -> u64 {
        self.runs.len() as u64
    }

    /// Number of runs that ended in an undetected hijack.
    pub fn successes(&self) -> u64 {
        self.runs.iter().filter(|r| r.result.success).count() as u64
    }

    /// Fraction of runs that succeeded, in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.successes() as f64 / self.campaigns() as f64
        }
    }

    /// Whether the attack succeeded against every victim seed.
    pub fn all_succeeded(&self) -> bool {
        !self.runs.is_empty() && self.successes() == self.campaigns()
    }

    /// Whether the attack failed against every victim seed.
    pub fn none_succeeded(&self) -> bool {
        self.successes() == 0
    }

    /// Request-count distribution over **all** runs.
    pub fn trial_stats(&self) -> Option<TrialStats> {
        TrialStats::from_samples(&self.runs.iter().map(|r| r.result.trials).collect::<Vec<_>>())
    }

    /// Request-count distribution over the **successful** runs only.
    pub fn success_trial_stats(&self) -> Option<TrialStats> {
        TrialStats::from_samples(
            &self
                .runs
                .iter()
                .filter(|r| r.result.success)
                .map(|r| r.result.trials)
                .collect::<Vec<_>>(),
        )
    }

    /// Bridges into the pre-existing scalar [`AttackSummary`] type.
    pub fn summary(&self) -> AttackSummary {
        let mut summary = AttackSummary::default();
        for run in &self.runs {
            summary.record(&run.result);
        }
        summary
    }
}

/// Driver replaying one attack strategy against N independently seeded
/// victims, fanned out over scoped worker threads.
#[derive(Debug, Clone)]
pub struct Campaign {
    attack: AttackKind,
    scheme: SchemeKind,
    deployment: Deployment,
    buffer_size: u32,
    seeds: Vec<u64>,
    workers: Option<usize>,
}

/// Default number of victim seeds per campaign — enough for the §VI-C
/// tables to report a spread rather than an anecdote.
pub const DEFAULT_SEEDS: usize = 32;

impl Campaign {
    /// A campaign of `attack` against compiler-deployed victims protected by
    /// `scheme`, with [`DEFAULT_SEEDS`] seeds and one worker per CPU.
    pub fn new(attack: AttackKind, scheme: SchemeKind) -> Self {
        Campaign {
            attack,
            scheme,
            deployment: Deployment::default(),
            buffer_size: 64,
            seeds: derive_seeds(0x00DD_5EED, DEFAULT_SEEDS),
            workers: None,
        }
    }

    /// Selects the deployment vehicle of every victim.
    #[must_use]
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Overrides the vulnerable buffer size of every victim.
    #[must_use]
    pub fn with_buffer_size(mut self, size: u32) -> Self {
        self.buffer_size = size;
        self
    }

    /// Uses exactly these victim seeds (duplicates allowed; report order is
    /// this order).
    #[must_use]
    pub fn with_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Uses `count` seeds derived deterministically from `base`.
    #[must_use]
    pub fn with_seed_range(mut self, base: u64, count: usize) -> Self {
        self.seeds = derive_seeds(base, count);
        self
    }

    /// Overrides the worker-thread count (default: one per available CPU,
    /// capped at the seed count; `0` is treated as `1`).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The configured victim seeds.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    fn victim_config(&self, seed: u64) -> VictimConfig {
        VictimConfig::new(self.scheme, seed)
            .with_deployment(self.deployment)
            .with_buffer_size(self.buffer_size)
    }

    /// Runs the whole campaign, fanning the per-seed runs out over a work
    /// queue drained by scoped worker threads.
    pub fn run(&self) -> CampaignReport {
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .min(self.seeds.len())
            .max(1);
        let started = Instant::now();

        // Work queue: a shared cursor over the seed list.  Workers claim the
        // next unclaimed index, attack that victim, and deposit the result
        // under its index so the report order matches the seed order no
        // matter which worker finishes first.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<AttackResult>>> =
            self.seeds.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&seed) = self.seeds.get(index) else { break };
                    let result = self.attack.run_once(self.victim_config(seed));
                    *slots[index].lock().expect("no worker panicked holding the slot") =
                        Some(result);
                });
            }
        });

        let runs = self
            .seeds
            .iter()
            .zip(slots)
            .map(|(&seed, slot)| CampaignRun {
                seed,
                result: slot
                    .into_inner()
                    .expect("worker scope completed")
                    .expect("every index was claimed exactly once"),
            })
            .collect();

        CampaignReport {
            attack: self.attack.name(),
            scheme: self.scheme,
            runs,
            wall_time: started.elapsed(),
            workers,
        }
    }
}

/// Derives `count` well-spread victim seeds from `base` (SplitMix64-style
/// odd-constant stride so nearby bases do not share seeds).
pub fn derive_seeds(base: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| {
            (base ^ 0x5851_F42D_4C95_7F2D)
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .rotate_left(17)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RequestOutcome;

    #[test]
    fn derive_seeds_is_deterministic_and_distinct() {
        let a = derive_seeds(7, 64);
        let b = derive_seeds(7, 64);
        assert_eq!(a, b);
        let mut unique = a.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 64, "derived seeds must be pairwise distinct");
        assert_ne!(derive_seeds(8, 4), derive_seeds(7, 4));
    }

    #[test]
    fn same_seed_same_attack_is_bitwise_reproducible() {
        // Determinism at the single-run level: one victim seed, one
        // strategy, identical request count and outcome every time.
        for attack in [
            AttackKind::ByteByByte { budget: 3_000 },
            AttackKind::Exhaustive { budget: 50 },
            AttackKind::Reuse,
        ] {
            let victim = VictimConfig::new(SchemeKind::Ssp, 0xD15EA5E);
            let first = attack.run_once(victim);
            let second = attack.run_once(victim);
            assert_eq!(first, second, "{} must be deterministic in the seed", attack.name());
        }
    }

    #[test]
    fn report_is_independent_of_worker_count() {
        let base = Campaign::new(AttackKind::ByteByByte { budget: 3_000 }, SchemeKind::Ssp)
            .with_seed_range(42, 6);
        let serial = base.clone().with_workers(1).run();
        let parallel = base.clone().with_workers(4).run();
        let oversubscribed = base.with_workers(64).run();
        assert_eq!(serial.runs, parallel.runs);
        assert_eq!(serial.runs, oversubscribed.runs);
        assert_eq!(parallel.workers, 4);
        // 64 workers for 6 seeds is clamped to the seed count.
        assert_eq!(oversubscribed.workers, 6);
    }

    #[test]
    fn ssp_falls_in_every_seed_and_pssp_in_none() {
        let ssp = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, SchemeKind::Ssp)
            .with_seed_range(1, 8)
            .run();
        assert!(ssp.all_succeeded(), "SSP must fall in every seed: {ssp:?}");
        let stats = ssp.success_trial_stats().expect("all succeeded");
        assert!(stats.min >= 64 && stats.max <= 8 * 256 + 1, "{stats}");
        assert!(stats.min <= stats.median && stats.median <= stats.p95 && stats.p95 <= stats.max);

        let pssp = Campaign::new(AttackKind::ByteByByte { budget: 4_000 }, SchemeKind::Pssp)
            .with_seed_range(1, 8)
            .run();
        assert!(pssp.none_succeeded(), "P-SSP must survive every seed");
        assert!(pssp.success_trial_stats().is_none());
        assert_eq!(pssp.success_rate(), 0.0);
    }

    #[test]
    fn reuse_campaign_only_owf_resists() {
        let pssp = Campaign::new(AttackKind::Reuse, SchemeKind::Pssp).with_seed_range(3, 6).run();
        assert!(pssp.all_succeeded());
        let owf = Campaign::new(AttackKind::Reuse, SchemeKind::PsspOwf).with_seed_range(3, 6).run();
        assert!(owf.none_succeeded());
        assert_eq!(
            owf.runs[0].result.final_outcome,
            Some(RequestOutcome::Detected),
            "OWF detects the replayed canary"
        );
    }

    #[test]
    fn exhaustive_campaign_never_breaks_either_scheme_in_small_budgets() {
        for scheme in [SchemeKind::Ssp, SchemeKind::Pssp] {
            let report = Campaign::new(AttackKind::Exhaustive { budget: 200 }, scheme)
                .with_seed_range(9, 4)
                .run();
            assert!(report.none_succeeded(), "{scheme}");
            let stats = report.trial_stats().expect("has runs");
            assert_eq!(stats.min, 200);
            assert_eq!(stats.max, 200);
            assert_eq!(stats.std_dev, 0.0);
        }
    }

    #[test]
    fn trial_stats_nearest_rank_percentiles() {
        let stats = TrialStats::from_samples(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]).unwrap();
        assert_eq!(stats.min, 10);
        assert_eq!(stats.median, 50); // nearest-rank: ceil(0.5 * 10) = 5th value
        assert_eq!(stats.p95, 100); // ceil(0.95 * 10) = 10th value
        assert_eq!(stats.max, 100);
        assert!((stats.mean - 55.0).abs() < 1e-9);
        assert_eq!(TrialStats::from_samples(&[]), None);
        let single = TrialStats::from_samples(&[7]).unwrap();
        assert_eq!((single.min, single.median, single.p95, single.max), (7, 7, 7, 7));
    }

    #[test]
    fn rewriter_deployment_campaign_resists_byte_by_byte() {
        let report = Campaign::new(AttackKind::ByteByByte { budget: 2_000 }, SchemeKind::PsspBin32)
            .with_deployment(Deployment::BinaryRewriter)
            .with_seed_range(5, 4)
            .run();
        assert!(report.none_succeeded(), "rewritten binaries must resist: {report:?}");
    }
}
