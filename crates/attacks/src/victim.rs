//! Victim definition: the vulnerable binary and its frame geometry.
//!
//! The byte-by-byte attack of §II-B targets applications where "a parent
//! process keeps forking out child processes to ... serve new requests sent
//! by external entities", and where a crashed worker is simply replaced by a
//! fresh fork.  This module defines *what* such a victim is — the MiniC
//! module with the unbounded `strcpy`-style overflow (plus an over-read
//! disclosure bug for the exposure experiments), the deployment vehicle and
//! the attacker-visible frame geometry.  The long-lived server that *runs*
//! the victim and serves attacker connections lives in [`crate::server`];
//! its [`ForkingServer`] is re-exported here for convenience.

use polycanary_compiler::ir::{FunctionBuilder, ModuleBuilder, ModuleDef};
use polycanary_core::scheme::SchemeKind;

pub use crate::server::{Connection, ForkingServer};

/// The return address the attacker tries to divert control flow to.
pub const HIJACK_TARGET: u64 = 0x0BAD_C0DE_0000_1000;

/// Geometry of the vulnerable frame, as the attacker (who has the binary,
/// per the adversary model of §III-A) would derive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameGeometry {
    /// Bytes from the start of the vulnerable buffer up to the first canary
    /// byte (filler the attacker must write before reaching the canary).
    pub filler_len: usize,
    /// Total size in bytes of the canary region between the buffer and the
    /// saved frame pointer.
    pub canary_region_len: usize,
}

impl FrameGeometry {
    /// Total overwrite length needed to reach and replace the return address:
    /// filler + canaries + saved `%rbp` + return address.
    pub fn full_overwrite_len(&self) -> usize {
        self.filler_len + self.canary_region_len + 8 + 8
    }
}

/// How the victim binary was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Deployment {
    /// Compiled with the scheme's compiler plugin.
    #[default]
    Compiler,
    /// Compiled with classic SSP and then upgraded by the binary rewriter
    /// (only meaningful together with [`SchemeKind::PsspBin32`]).
    BinaryRewriter,
}

impl Deployment {
    /// Display label used in reports and serialized records.
    pub fn label(&self) -> &'static str {
        match self {
            Deployment::Compiler => "compiler",
            Deployment::BinaryRewriter => "binary-rewriter",
        }
    }
}

/// Configuration of a [`ForkingServer`] victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimConfig {
    /// The protection scheme of the victim binary.
    pub scheme: SchemeKind,
    /// Size of the vulnerable stack buffer in bytes.
    pub buffer_size: u32,
    /// Deployment vehicle.
    pub deployment: Deployment,
    /// Seed for all randomness (loader canary, shared library, rdrand).
    pub seed: u64,
}

impl VictimConfig {
    /// A victim protected by `scheme` with the default 64-byte buffer.
    pub fn new(scheme: SchemeKind, seed: u64) -> Self {
        VictimConfig { scheme, buffer_size: 64, deployment: Deployment::Compiler, seed }
    }

    /// Selects the binary-rewriter deployment.
    #[must_use]
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Overrides the vulnerable buffer size.
    #[must_use]
    pub fn with_buffer_size(mut self, size: u32) -> Self {
        self.buffer_size = size;
        self
    }
}

/// The MiniC source of the victim server.
pub(crate) fn victim_module(buffer_size: u32) -> ModuleDef {
    ModuleBuilder::new()
        .function(
            FunctionBuilder::new("handle_request")
                .buffer("request_buf", buffer_size)
                .vulnerable_copy("request_buf")
                .compute(150)
                .returns(0)
                .build(),
        )
        .function(
            // A helper with a memory-disclosure over-read, used by the
            // exposure-resilience experiments: it copies the request into its
            // own buffer (bounded) and then echoes too many stack words back —
            // enough extra words to cover the largest canary region (P-SSP-OWF
            // uses three words).
            FunctionBuilder::new("leak_status")
                .buffer("status_buf", buffer_size)
                .safe_copy("status_buf")
                .leak("status_buf", buffer_size / 8 + 3)
                .returns(0)
                .build(),
        )
        .function(
            FunctionBuilder::new("main").scalar("s").call("handle_request").returns(0).build(),
        )
        .entry("main")
        .build()
        .expect("victim module is statically well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_overwrite_reaches_past_the_return_address() {
        let geom = FrameGeometry { filler_len: 64, canary_region_len: 16 };
        assert_eq!(geom.full_overwrite_len(), 64 + 16 + 8 + 8);
    }

    #[test]
    fn victim_config_builder_sets_every_field() {
        let config = VictimConfig::new(SchemeKind::Pssp, 9)
            .with_deployment(Deployment::BinaryRewriter)
            .with_buffer_size(128);
        assert_eq!(config.scheme, SchemeKind::Pssp);
        assert_eq!(config.seed, 9);
        assert_eq!(config.deployment, Deployment::BinaryRewriter);
        assert_eq!(config.buffer_size, 128);
        assert_eq!(Deployment::Compiler.label(), "compiler");
        assert_eq!(Deployment::BinaryRewriter.label(), "binary-rewriter");
    }
}
