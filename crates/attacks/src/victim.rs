//! Victim definition: the vulnerable binary and its frame geometry.
//!
//! The byte-by-byte attack of §II-B targets applications where "a parent
//! process keeps forking out child processes to ... serve new requests sent
//! by external entities", and where a crashed worker is simply replaced by a
//! fresh fork.  This module defines *what* such a victim is — the MiniC
//! module with the unbounded `strcpy`-style overflow (plus an over-read
//! disclosure bug for the exposure experiments), the deployment vehicle and
//! the attacker-visible frame geometry.  The long-lived server that *runs*
//! the victim and serves attacker connections lives in [`crate::server`];
//! its [`ForkingServer`] is re-exported here for convenience.

use polycanary_compiler::ir::{FunctionBuilder, ModuleBuilder, ModuleDef};
use polycanary_core::scheme::SchemeKind;

pub use crate::server::{Connection, ForkingServer};

/// The return address the attacker tries to divert control flow to.
pub const HIJACK_TARGET: u64 = 0x0BAD_C0DE_0000_1000;

/// Geometry of the vulnerable frame, as the attacker (who has the binary,
/// per the adversary model of §III-A) would derive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameGeometry {
    /// Bytes from the start of the vulnerable buffer up to the first canary
    /// byte (filler the attacker must write before reaching the canary).
    pub filler_len: usize,
    /// Total size in bytes of the canary region between the buffer and the
    /// saved frame pointer.
    pub canary_region_len: usize,
}

impl FrameGeometry {
    /// Total overwrite length needed to reach and replace the return address:
    /// filler + canaries + saved `%rbp` + return address.
    pub fn full_overwrite_len(&self) -> usize {
        self.filler_len + self.canary_region_len + 8 + 8
    }
}

/// How the victim binary was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Deployment {
    /// Compiled with the scheme's compiler plugin.
    #[default]
    Compiler,
    /// Compiled with classic SSP and then upgraded by the binary rewriter
    /// (only meaningful together with [`SchemeKind::PsspBin32`]).
    BinaryRewriter,
}

impl Deployment {
    /// Display label used in reports and serialized records.
    pub fn label(&self) -> &'static str {
        match self {
            Deployment::Compiler => "compiler",
            Deployment::BinaryRewriter => "binary-rewriter",
        }
    }
}

/// Configuration of a [`ForkingServer`] victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimConfig {
    /// The protection scheme of the victim binary.
    pub scheme: SchemeKind,
    /// Size of the vulnerable stack buffer in bytes.
    pub buffer_size: u32,
    /// Deployment vehicle.
    pub deployment: Deployment,
    /// Seed for all randomness (loader canary, shared library, rdrand).
    pub seed: u64,
    /// Victim-program generator id: `0` is the canonical hand-written
    /// server of §II-B; any other value selects a PRNG-derived variant
    /// with the same vulnerable endpoints (see [`victim_module`]).
    pub program: u64,
}

impl VictimConfig {
    /// A victim protected by `scheme` with the default 64-byte buffer.
    pub fn new(scheme: SchemeKind, seed: u64) -> Self {
        VictimConfig { scheme, buffer_size: 64, deployment: Deployment::Compiler, seed, program: 0 }
    }

    /// Selects the binary-rewriter deployment.
    #[must_use]
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Overrides the vulnerable buffer size.
    #[must_use]
    pub fn with_buffer_size(mut self, size: u32) -> Self {
        self.buffer_size = size;
        self
    }

    /// Selects a generated victim-program variant (`0` = canonical).
    #[must_use]
    pub fn with_program(mut self, program: u64) -> Self {
        self.program = program;
        self
    }
}

/// The MiniC source of the victim server.
///
/// `program == 0` yields the canonical hand-written module of §II-B,
/// byte-for-byte identical to what every experiment before the scenario
/// grammar attacked.  A non-zero `program` seeds a SplitMix64 PRNG that
/// surrounds the same vulnerable endpoints with extra *safe* helper
/// functions (protected buffers, bounded fills, pure compute — never a
/// `vulnerable_copy` or a `leak`), so the attacker-relevant geometry and
/// verdicts are unchanged while the static shape of the binary varies.
/// Every generated variant must pass the verifier's five invariant
/// checks at any opt level; `tests/scenario_grammar.rs` pins that.
pub fn victim_module(buffer_size: u32, program: u64) -> ModuleDef {
    let mut builder = ModuleBuilder::new().function(
        FunctionBuilder::new("handle_request")
            .buffer("request_buf", buffer_size)
            .vulnerable_copy("request_buf")
            .compute(150)
            .returns(0)
            .build(),
    );
    builder = builder.function(
        // A helper with a memory-disclosure over-read, used by the
        // exposure-resilience experiments: it copies the request into its
        // own buffer (bounded) and then echoes too many stack words back —
        // enough extra words to cover the largest canary region (P-SSP-OWF
        // uses three words).
        FunctionBuilder::new("leak_status")
            .buffer("status_buf", buffer_size)
            .safe_copy("status_buf")
            .leak("status_buf", buffer_size / 8 + 3)
            .returns(0)
            .build(),
    );

    let mut main = FunctionBuilder::new("main").scalar("s");
    if program != 0 {
        let mut rng = SplitMix(program);
        let helpers = 1 + rng.below(3) as usize;
        for index in 0..helpers {
            let name = format!("gen_helper_{index}");
            let mut helper = FunctionBuilder::new(&name);
            // Safe constructs only: a protected buffer (exercising the
            // scheme's prologue/epilogue), an optional bounded fill, and
            // some pure compute.  Nothing reads attacker input or echoes
            // stack memory, so request/response traffic is untouched.
            if rng.below(2) == 0 {
                let size = 8 * (1 + rng.below(8) as u32);
                helper = helper.buffer("gen_buf", size);
                if rng.below(2) == 0 {
                    helper = helper.zero_fill("gen_buf");
                }
            } else {
                helper = helper.scalar("gen_s");
            }
            helper = helper.compute(10 + rng.below(40));
            builder = builder.function(helper.returns(rng.next()).build());
            main = main.call(&name);
        }
    }
    builder
        .function(main.call("handle_request").returns(0).build())
        .entry("main")
        .build()
        .expect("victim module is statically well-formed")
}

/// SplitMix64 — the same tiny PRNG the campaign seed derivation uses.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_overwrite_reaches_past_the_return_address() {
        let geom = FrameGeometry { filler_len: 64, canary_region_len: 16 };
        assert_eq!(geom.full_overwrite_len(), 64 + 16 + 8 + 8);
    }

    #[test]
    fn victim_config_builder_sets_every_field() {
        let config = VictimConfig::new(SchemeKind::Pssp, 9)
            .with_deployment(Deployment::BinaryRewriter)
            .with_buffer_size(128)
            .with_program(0xC0FFEE);
        assert_eq!(config.scheme, SchemeKind::Pssp);
        assert_eq!(config.seed, 9);
        assert_eq!(config.deployment, Deployment::BinaryRewriter);
        assert_eq!(config.buffer_size, 128);
        assert_eq!(config.program, 0xC0FFEE);
        assert_eq!(Deployment::Compiler.label(), "compiler");
        assert_eq!(Deployment::BinaryRewriter.label(), "binary-rewriter");
    }

    #[test]
    fn program_zero_is_the_canonical_three_function_module() {
        let module = victim_module(64, 0);
        let names: Vec<&str> = module.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["handle_request", "leak_status", "main"]);
    }

    #[test]
    fn generated_programs_are_deterministic_and_keep_the_endpoints() {
        let a = victim_module(64, 0xDEAD_BEEF);
        let b = victim_module(64, 0xDEAD_BEEF);
        assert_eq!(a, b, "same program id must generate the same module");
        let names: Vec<&str> = a.functions.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"handle_request"));
        assert!(names.contains(&"leak_status"));
        assert!(names.contains(&"main"));
        assert!(
            names.iter().any(|n| n.starts_with("gen_helper_")),
            "non-zero program ids add generated helpers"
        );
        assert_ne!(a, victim_module(64, 0xFEED_FACE), "distinct ids vary the module");
    }
}
