//! Victim harness: a forking network server with a stack-overflow bug.
//!
//! The byte-by-byte attack of §II-B targets applications where "a parent
//! process keeps forking out child processes to ... serve new requests sent
//! by external entities", and where a crashed worker is simply replaced by a
//! fresh fork.  [`ForkingServer`] models exactly that: each request is
//! handled by a freshly forked worker whose `handle_request` function copies
//! the attacker-controlled request body into a fixed-size stack buffer with
//! no bounds check.

use polycanary_compiler::codegen::Compiler;
use polycanary_compiler::ir::{FunctionBuilder, ModuleBuilder, ModuleDef};
use polycanary_core::scheme::SchemeKind;
use polycanary_rewriter::{LinkMode, Rewriter};
use polycanary_vm::cpu::Exit;
use polycanary_vm::machine::Machine;
use polycanary_vm::process::Process;

use crate::oracle::{OverflowOracle, RequestOutcome};

/// The return address the attacker tries to divert control flow to.
pub const HIJACK_TARGET: u64 = 0x0BAD_C0DE_0000_1000;

/// Geometry of the vulnerable frame, as the attacker (who has the binary,
/// per the adversary model of §III-A) would derive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameGeometry {
    /// Bytes from the start of the vulnerable buffer up to the first canary
    /// byte (filler the attacker must write before reaching the canary).
    pub filler_len: usize,
    /// Total size in bytes of the canary region between the buffer and the
    /// saved frame pointer.
    pub canary_region_len: usize,
}

impl FrameGeometry {
    /// Total overwrite length needed to reach and replace the return address:
    /// filler + canaries + saved `%rbp` + return address.
    pub fn full_overwrite_len(&self) -> usize {
        self.filler_len + self.canary_region_len + 8 + 8
    }
}

/// How the victim binary was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Deployment {
    /// Compiled with the scheme's compiler plugin.
    #[default]
    Compiler,
    /// Compiled with classic SSP and then upgraded by the binary rewriter
    /// (only meaningful together with [`SchemeKind::PsspBin32`]).
    BinaryRewriter,
}

impl Deployment {
    /// Display label used in reports and serialized records.
    pub fn label(&self) -> &'static str {
        match self {
            Deployment::Compiler => "compiler",
            Deployment::BinaryRewriter => "binary-rewriter",
        }
    }
}

/// Configuration of a [`ForkingServer`] victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimConfig {
    /// The protection scheme of the victim binary.
    pub scheme: SchemeKind,
    /// Size of the vulnerable stack buffer in bytes.
    pub buffer_size: u32,
    /// Deployment vehicle.
    pub deployment: Deployment,
    /// Seed for all randomness (loader canary, shared library, rdrand).
    pub seed: u64,
}

impl VictimConfig {
    /// A victim protected by `scheme` with the default 64-byte buffer.
    pub fn new(scheme: SchemeKind, seed: u64) -> Self {
        VictimConfig { scheme, buffer_size: 64, deployment: Deployment::Compiler, seed }
    }

    /// Selects the binary-rewriter deployment.
    #[must_use]
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Overrides the vulnerable buffer size.
    #[must_use]
    pub fn with_buffer_size(mut self, size: u32) -> Self {
        self.buffer_size = size;
        self
    }
}

/// The MiniC source of the victim server.
fn victim_module(buffer_size: u32) -> ModuleDef {
    ModuleBuilder::new()
        .function(
            FunctionBuilder::new("handle_request")
                .buffer("request_buf", buffer_size)
                .vulnerable_copy("request_buf")
                .compute(150)
                .returns(0)
                .build(),
        )
        .function(
            // A helper with a memory-disclosure over-read, used by the
            // exposure-resilience experiments: it copies the request into its
            // own buffer (bounded) and then echoes too many stack words back —
            // enough extra words to cover the largest canary region (P-SSP-OWF
            // uses three words).
            FunctionBuilder::new("leak_status")
                .buffer("status_buf", buffer_size)
                .safe_copy("status_buf")
                .leak("status_buf", buffer_size / 8 + 3)
                .returns(0)
                .build(),
        )
        .function(
            FunctionBuilder::new("main").scalar("s").call("handle_request").returns(0).build(),
        )
        .entry("main")
        .build()
        .expect("victim module is statically well-formed")
}

/// A forking worker-per-request server protected by a configurable scheme.
pub struct ForkingServer {
    machine: Machine,
    parent: Process,
    geometry: FrameGeometry,
    config: VictimConfig,
    trials: u64,
    crashed_workers: u64,
}

impl std::fmt::Debug for ForkingServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkingServer")
            .field("scheme", &self.config.scheme)
            .field("trials", &self.trials)
            .field("crashed_workers", &self.crashed_workers)
            .finish()
    }
}

impl ForkingServer {
    /// Builds and "boots" the victim server.
    pub fn new(config: VictimConfig) -> Self {
        let module = victim_module(config.buffer_size);
        let (program, scheme_for_runtime) = match config.deployment {
            Deployment::Compiler => {
                let compiled = Compiler::new(config.scheme)
                    .compile(&module)
                    .expect("victim module always compiles");
                (compiled.program, config.scheme)
            }
            Deployment::BinaryRewriter => {
                let compiled = Compiler::new(SchemeKind::Ssp)
                    .compile(&module)
                    .expect("victim module always compiles");
                let mut program = compiled.program;
                Rewriter::new()
                    .with_link_mode(LinkMode::Dynamic)
                    .rewrite(&mut program)
                    .expect("SSP victim is always rewritable");
                (program, SchemeKind::PsspBin32)
            }
        };

        // Recompute the geometry from the scheme that actually governs the
        // final binary (the rewriter keeps SSP's single-slot layout).
        let canary_words = match config.deployment {
            Deployment::Compiler => config.scheme.scheme().canary_region_words(),
            Deployment::BinaryRewriter => 1,
        };
        let geometry = FrameGeometry {
            filler_len: config.buffer_size as usize,
            canary_region_len: (canary_words as usize) * 8,
        };

        let hooks = scheme_for_runtime.scheme().runtime_hooks(config.seed ^ 0xA77C_0DE5);
        let mut machine = Machine::new(program, hooks, config.seed);
        machine.exec_config.hijack_target = Some(HIJACK_TARGET);
        // Attack campaigns fork thousands of workers; a small stack keeps the
        // per-fork memory copy cheap without affecting any result.
        machine.set_stack_size(16 * 1024);
        let parent = machine.spawn();
        ForkingServer { machine, parent, geometry, config, trials: 0, crashed_workers: 0 }
    }

    /// The victim's frame geometry (the attacker derives this from the
    /// binary, which is not secret in the adversary model).
    pub fn geometry(&self) -> FrameGeometry {
        self.geometry
    }

    /// The scheme protecting the victim.
    pub fn scheme(&self) -> SchemeKind {
        self.config.scheme
    }

    /// Number of workers that crashed (and were replaced) so far.
    pub fn crashed_workers(&self) -> u64 {
        self.crashed_workers
    }

    /// Serves one request in a freshly forked worker and reports how the
    /// worker fared.  Crashed workers are "replaced" implicitly: the next
    /// request forks a new worker from the same parent, which is exactly the
    /// behaviour the byte-by-byte attack exploits.
    pub fn serve(&mut self, payload: &[u8]) -> RequestOutcome {
        self.trials += 1;
        let mut worker = self.machine.fork(&mut self.parent);
        worker.set_input(payload.to_vec());
        let outcome = self
            .machine
            .run_function(&mut worker, "handle_request")
            .expect("handle_request exists in the victim binary");
        let classified = classify(outcome.exit);
        if classified != RequestOutcome::Survived {
            self.crashed_workers += 1;
        }
        classified
    }

    /// Serves one "status" request against the leaky endpoint and returns the
    /// bytes the worker wrote back — including, due to the over-read bug, the
    /// canary region of the leaking frame.  Used by the canary-reuse attack.
    pub fn serve_leak(&mut self, payload: &[u8]) -> (RequestOutcome, Vec<u8>) {
        self.trials += 1;
        let mut worker = self.machine.fork(&mut self.parent);
        worker.set_input(payload.to_vec());
        let outcome = self
            .machine
            .run_function(&mut worker, "leak_status")
            .expect("leak_status exists in the victim binary");
        let classified = classify(outcome.exit);
        if classified != RequestOutcome::Survived {
            self.crashed_workers += 1;
        }
        (classified, worker.take_output())
    }

    /// Serves a disclosure request and a follow-up overflow *in the same
    /// worker*, modelling an attacker who first triggers the over-read bug
    /// and then the overflow bug over one keep-alive connection.  The
    /// overflow payload is built by `build_overflow` from the leaked bytes.
    /// Returns the leaked bytes and the outcome of the overflow.
    pub fn serve_leak_then_overflow(
        &mut self,
        leak_payload: &[u8],
        build_overflow: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> (Vec<u8>, RequestOutcome) {
        self.trials += 1;
        let mut worker = self.machine.fork(&mut self.parent);
        worker.set_input(leak_payload.to_vec());
        let leak_outcome = self
            .machine
            .run_function(&mut worker, "leak_status")
            .expect("leak_status exists in the victim binary");
        let leaked = worker.take_output();
        if !leak_outcome.exit.is_normal() {
            self.crashed_workers += 1;
            return (leaked, classify(leak_outcome.exit));
        }
        let overflow_payload = build_overflow(&leaked);
        worker.set_input(overflow_payload);
        let outcome = self
            .machine
            .run_function(&mut worker, "handle_request")
            .expect("handle_request exists in the victim binary");
        let classified = classify(outcome.exit);
        if classified != RequestOutcome::Survived {
            self.crashed_workers += 1;
        }
        (leaked, classified)
    }
}

impl OverflowOracle for ForkingServer {
    fn attempt(&mut self, payload: &[u8]) -> RequestOutcome {
        self.serve(payload)
    }

    fn trials(&self) -> u64 {
        self.trials
    }
}

fn classify(exit: Exit) -> RequestOutcome {
    match exit {
        Exit::Normal(_) => RequestOutcome::Survived,
        Exit::Fault(fault) if fault.is_detection() => RequestOutcome::Detected,
        Exit::Fault(fault) if fault.is_hijack() => RequestOutcome::Hijacked,
        Exit::Fault(_) => RequestOutcome::Crashed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_requests_survive_under_every_scheme() {
        for kind in SchemeKind::ALL {
            let mut server = ForkingServer::new(VictimConfig::new(kind, 11));
            assert_eq!(server.serve(b"GET / HTTP/1.1"), RequestOutcome::Survived, "{kind}");
            assert_eq!(server.crashed_workers(), 0);
        }
    }

    #[test]
    fn smashing_requests_are_detected_by_protected_schemes() {
        for kind in SchemeKind::ALL {
            let mut server = ForkingServer::new(VictimConfig::new(kind, 11));
            let payload = vec![0x41u8; server.geometry().full_overwrite_len()];
            let outcome = server.serve(&payload);
            if kind == SchemeKind::Native {
                assert_ne!(outcome, RequestOutcome::Detected);
            } else {
                assert_eq!(outcome, RequestOutcome::Detected, "{kind}");
            }
        }
    }

    #[test]
    fn unprotected_server_is_hijacked_by_a_crafted_payload() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Native, 11));
        let geom = server.geometry();
        let mut payload = vec![0x41u8; geom.filler_len + geom.canary_region_len + 8];
        payload.extend_from_slice(&HIJACK_TARGET.to_le_bytes());
        assert_eq!(server.serve(&payload), RequestOutcome::Hijacked);
    }

    #[test]
    fn geometry_reflects_the_scheme_layout() {
        let ssp = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 1)).geometry();
        let pssp = ForkingServer::new(VictimConfig::new(SchemeKind::Pssp, 1)).geometry();
        let owf = ForkingServer::new(VictimConfig::new(SchemeKind::PsspOwf, 1)).geometry();
        assert_eq!(ssp.canary_region_len, 8);
        assert_eq!(pssp.canary_region_len, 16);
        assert_eq!(owf.canary_region_len, 24);
        assert!(ssp.full_overwrite_len() < pssp.full_overwrite_len());
    }

    #[test]
    fn rewriter_deployment_keeps_ssp_geometry() {
        let config =
            VictimConfig::new(SchemeKind::PsspBin32, 1).with_deployment(Deployment::BinaryRewriter);
        let server = ForkingServer::new(config);
        assert_eq!(server.geometry().canary_region_len, 8);
    }

    #[test]
    fn leak_endpoint_discloses_stack_words() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 5));
        let (outcome, leaked) = server.serve_leak(b"status");
        assert_eq!(outcome, RequestOutcome::Survived);
        // buffer_size/8 + 3 words were leaked.
        assert_eq!(leaked.len(), (64 / 8 + 3) * 8);
    }

    #[test]
    fn crashed_worker_counter_tracks_detections() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 5));
        let len = server.geometry().full_overwrite_len();
        let _ = server.serve(&vec![0x41u8; len]);
        let _ = server.serve(b"ok");
        assert_eq!(server.crashed_workers(), 1);
        assert_eq!(server.trials(), 2);
    }

    #[test]
    fn custom_buffer_size_changes_filler_length() {
        let server =
            ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 5).with_buffer_size(128));
        assert_eq!(server.geometry().filler_len, 128);
    }
}
