//! The byte-by-byte (BROP-style) attack of §II-B.
//!
//! The attacker overwrites the canary one byte at a time, starting from the
//! lowest address.  A surviving worker confirms the guessed byte; a crashed
//! worker is replaced by a fresh fork and the attacker tries the next value.
//! Against SSP all workers share one canary, so confirmed bytes stay valid
//! and the full canary falls after roughly 8 · 2⁷ = 1024 requests.  Against
//! P-SSP every fork carries a fresh split pair, so "confirmed" bytes are
//! stale by the next request and the attack never converges.

use polycanary_core::scheme::SchemeKind;

use crate::oracle::OverflowOracle;
use crate::stats::AttackResult;
use crate::victim::{FrameGeometry, HIJACK_TARGET};

/// Filler byte used to reach the canary (any value works; 'A' is tradition).
const FILLER: u8 = 0x41;

/// Configuration of the byte-by-byte strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteByByteAttack {
    /// Abort the campaign after this many oracle queries.
    pub max_trials: u64,
    /// The address the final exploit diverts control flow to.
    pub hijack_target: u64,
}

impl Default for ByteByByteAttack {
    fn default() -> Self {
        ByteByByteAttack { max_trials: 50_000, hijack_target: HIJACK_TARGET }
    }
}

impl ByteByByteAttack {
    /// Creates the strategy with a custom trial budget.
    pub fn with_budget(max_trials: u64) -> Self {
        ByteByByteAttack { max_trials, ..Self::default() }
    }

    /// Runs the campaign against `oracle`.
    ///
    /// `scheme` is only recorded in the result for reporting; the strategy
    /// itself is oblivious to the defence, exactly like a real attacker.
    pub fn run(
        &self,
        oracle: &mut dyn OverflowOracle,
        geometry: FrameGeometry,
        scheme: SchemeKind,
    ) -> AttackResult {
        let mut recovered: Vec<u8> = Vec::with_capacity(geometry.canary_region_len);
        let mut trials = 0u64;

        for _byte_index in 0..geometry.canary_region_len {
            let mut found = None;
            for guess in 0..=255u8 {
                if trials >= self.max_trials {
                    return AttackResult::exhausted("byte-by-byte", scheme, trials);
                }
                let mut payload = vec![FILLER; geometry.filler_len];
                payload.extend_from_slice(&recovered);
                payload.push(guess);
                trials += 1;
                if oracle.attempt(&payload).survived() {
                    found = Some(guess);
                    break;
                }
            }
            match found {
                Some(byte) => recovered.push(byte),
                None => {
                    // No value survived a full sweep: the canary changed under
                    // our feet (re-randomization) — the attack cannot make
                    // progress on this byte.
                    return AttackResult {
                        strategy: "byte-by-byte",
                        scheme,
                        success: false,
                        trials,
                        recovered_canary: Some(recovered),
                        final_outcome: None,
                    };
                }
            }
        }

        // All canary bytes "recovered": fire the real exploit, overwriting the
        // saved frame pointer and the return address.
        let mut payload = vec![FILLER; geometry.filler_len];
        payload.extend_from_slice(&recovered);
        payload.extend_from_slice(&[FILLER; 8]); // saved %rbp — value irrelevant
        payload.extend_from_slice(&self.hijack_target.to_le_bytes());
        trials += 1;
        let outcome = oracle.attempt(&payload);

        AttackResult {
            strategy: "byte-by-byte",
            scheme,
            success: outcome.hijacked(),
            trials,
            recovered_canary: Some(recovered),
            final_outcome: Some(outcome),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RequestOutcome;
    use crate::victim::{ForkingServer, VictimConfig};

    /// Synthetic oracle with a fixed canary, for fast deterministic tests of
    /// the strategy logic itself.
    struct FixedCanaryOracle {
        canary: [u8; 8],
        filler_len: usize,
        trials: u64,
    }

    impl OverflowOracle for FixedCanaryOracle {
        fn attempt(&mut self, payload: &[u8]) -> RequestOutcome {
            self.trials += 1;
            let overwrite = &payload[self.filler_len..];
            let touched = overwrite.len().min(8);
            if overwrite[..touched] == self.canary[..touched] {
                if overwrite.len() > 16 {
                    RequestOutcome::Hijacked
                } else {
                    RequestOutcome::Survived
                }
            } else {
                RequestOutcome::Detected
            }
        }

        fn trials(&self) -> u64 {
            self.trials
        }
    }

    #[test]
    fn recovers_a_fixed_canary_byte_by_byte() {
        let canary = [0x11, 0x22, 0x00, 0x44, 0x55, 0x66, 0x77, 0x7f];
        let mut oracle = FixedCanaryOracle { canary, filler_len: 16, trials: 0 };
        let geometry = FrameGeometry { filler_len: 16, canary_region_len: 8 };
        let result = ByteByByteAttack::default().run(&mut oracle, geometry, SchemeKind::Ssp);
        assert!(result.success);
        assert_eq!(result.recovered_canary.as_deref(), Some(&canary[..]));
        // Sum of the byte values + 8 confirmations + 1 exploit.
        let expected: u64 = canary.iter().map(|&b| u64::from(b) + 1).sum::<u64>() + 1;
        assert_eq!(result.trials, expected);
    }

    #[test]
    fn respects_the_trial_budget() {
        let canary = [0xFF; 8];
        let mut oracle = FixedCanaryOracle { canary, filler_len: 16, trials: 0 };
        let geometry = FrameGeometry { filler_len: 16, canary_region_len: 8 };
        let result = ByteByByteAttack::with_budget(100).run(&mut oracle, geometry, SchemeKind::Ssp);
        assert!(!result.success);
        assert!(result.trials <= 100);
    }

    #[test]
    fn defeats_ssp_on_the_real_forking_server_in_about_a_thousand_trials() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 0xA77A));
        let geometry = server.geometry();
        let result = ByteByByteAttack::default().run(&mut server, geometry, SchemeKind::Ssp);
        assert!(result.success, "SSP must fall to the byte-by-byte attack: {result:?}");
        // §II-B: about 8 * 2^7 = 1024 expected; allow generous slack since a
        // single canary sample can be lucky or unlucky.
        assert!(
            result.trials >= 64 && result.trials <= 8 * 256 + 1,
            "unexpected trial count {}",
            result.trials
        );
    }

    #[test]
    fn fails_against_pssp_on_the_real_forking_server() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Pssp, 0xA77A));
        let geometry = server.geometry();
        let result =
            ByteByByteAttack::with_budget(12_000).run(&mut server, geometry, SchemeKind::Pssp);
        assert!(!result.success, "P-SSP must defeat the byte-by-byte attack");
    }

    #[test]
    fn fails_against_pssp_nt_on_the_real_forking_server() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::PsspNt, 7));
        let geometry = server.geometry();
        let result =
            ByteByByteAttack::with_budget(8_000).run(&mut server, geometry, SchemeKind::PsspNt);
        assert!(!result.success);
    }
}
