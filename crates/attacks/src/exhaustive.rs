//! Exhaustive (whole-word) canary guessing, §III-C1.
//!
//! The most primitive strategy: guess the entire canary region in one shot
//! and fire the full exploit.  The paper's analysis shows P-SSP is exactly as
//! strong as SSP against this attacker — both force an expected 2⁶³ guesses —
//! because the attacker effectively guesses the 64-bit TLS canary either way.
//! For the split canary the attacker generates a random pair whose XOR equals
//! the guess, mirroring the strategy described in the paper.

use polycanary_core::scheme::SchemeKind;
use polycanary_crypto::{Prng, Xoshiro256StarStar};

use crate::oracle::OverflowOracle;
use crate::stats::AttackResult;
use crate::victim::{FrameGeometry, HIJACK_TARGET};

/// Configuration of the exhaustive-guessing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveAttack {
    /// Abort after this many oracle queries.
    pub max_trials: u64,
    /// Seed of the attacker's own randomness.
    pub seed: u64,
    /// The address the exploit diverts control flow to.
    pub hijack_target: u64,
}

impl Default for ExhaustiveAttack {
    fn default() -> Self {
        ExhaustiveAttack { max_trials: 10_000, seed: 0xBAD_5EED, hijack_target: HIJACK_TARGET }
    }
}

impl ExhaustiveAttack {
    /// Creates the strategy with a custom trial budget.
    pub fn with_budget(max_trials: u64) -> Self {
        ExhaustiveAttack { max_trials, ..Self::default() }
    }

    /// Runs the campaign against `oracle`.
    pub fn run(
        &self,
        oracle: &mut dyn OverflowOracle,
        geometry: FrameGeometry,
        scheme: SchemeKind,
    ) -> AttackResult {
        let mut rng = Xoshiro256StarStar::new(self.seed);
        for trial in 1..=self.max_trials {
            // Guess the TLS canary, then fabricate a canary-region image
            // consistent with that guess: for a single-slot scheme this is
            // the guess itself, for a split scheme a random pair XORing to
            // the guess (§III-C1).
            let guessed_tls_canary = rng.next_u64();
            let mut region = Vec::with_capacity(geometry.canary_region_len);
            let words = geometry.canary_region_len / 8;
            let mut acc = guessed_tls_canary;
            for w in 0..words {
                let value = if w + 1 == words { acc } else { rng.next_u64() };
                acc ^= value;
                region.extend_from_slice(&value.to_le_bytes());
            }

            let mut payload = vec![0x41u8; geometry.filler_len];
            payload.extend_from_slice(&region);
            payload.extend_from_slice(&[0x41u8; 8]);
            payload.extend_from_slice(&self.hijack_target.to_le_bytes());

            if oracle.attempt(&payload).hijacked() {
                return AttackResult {
                    strategy: "exhaustive",
                    scheme,
                    success: true,
                    trials: trial,
                    recovered_canary: Some(region),
                    final_outcome: None,
                };
            }
        }
        AttackResult::exhausted("exhaustive", scheme, self.max_trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RequestOutcome;
    use crate::victim::{ForkingServer, VictimConfig};

    #[test]
    fn both_ssp_and_pssp_resist_a_bounded_exhaustive_search() {
        // §III-C1: P-SSP and SSP have identical strength against exhaustive
        // search; with a realistic (64-bit) canary a small budget never wins.
        for kind in [SchemeKind::Ssp, SchemeKind::Pssp] {
            let mut server = ForkingServer::new(VictimConfig::new(kind, 33));
            let geometry = server.geometry();
            let result = ExhaustiveAttack::with_budget(300).run(&mut server, geometry, kind);
            assert!(!result.success, "{kind} fell to a 300-trial exhaustive search");
            assert_eq!(result.trials, 300);
        }
    }

    #[test]
    fn succeeds_immediately_against_an_unprotected_victim() {
        let mut server = ForkingServer::new(VictimConfig::new(SchemeKind::Native, 33));
        let geometry = server.geometry();
        let result =
            ExhaustiveAttack::with_budget(5).run(&mut server, geometry, SchemeKind::Native);
        assert!(result.success);
        assert_eq!(result.trials, 1);
    }

    #[test]
    fn split_guess_is_internally_consistent() {
        // The fabricated region for a two-word scheme must XOR to the guessed
        // TLS canary — verify through a capturing oracle.
        struct Capture {
            last: Vec<u8>,
            trials: u64,
        }
        impl OverflowOracle for Capture {
            fn attempt(&mut self, payload: &[u8]) -> RequestOutcome {
                self.last = payload.to_vec();
                self.trials += 1;
                RequestOutcome::Detected
            }
            fn trials(&self) -> u64 {
                self.trials
            }
        }
        let mut oracle = Capture { last: Vec::new(), trials: 0 };
        let geometry = FrameGeometry { filler_len: 8, canary_region_len: 16 };
        let _ = ExhaustiveAttack::with_budget(1).run(&mut oracle, geometry, SchemeKind::Pssp);
        let region = &oracle.last[8..24];
        let c1 = u64::from_le_bytes(region[..8].try_into().unwrap());
        let c0 = u64::from_le_bytes(region[8..].try_into().unwrap());
        // The two halves XOR to *some* 64-bit guess; they are not both zero.
        assert_ne!(c0 ^ c1, 0);
    }
}
