//! Reusable parallel work-queue executor.
//!
//! Every experiment in the evaluation fans the same shape of work out: a
//! list of independent jobs (victim seeds, table cells, benchmark programs)
//! whose results must be reported **in input order** no matter which worker
//! finishes first.  [`JobPool`] is that executor, extracted from the
//! campaign engine so Table I rows, Table III/IV cells and the Fig. 5
//! program sweep can all share it: scoped worker threads drain an atomic
//! cursor over the job list and deposit each result under its input index.
//!
//! Because jobs are pure functions of their input, the output vector is
//! identical whatever the worker count — parallelism only changes wall
//! time, never results.
//!
//! # Example
//!
//! ```
//! use polycanary_attacks::pool::JobPool;
//!
//! let squares = JobPool::with_workers(3).run(&[1u64, 2, 3, 4], |_, &n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width pool of scoped worker threads draining an indexed work
/// queue.  Construction is cheap — threads are only spawned inside
/// [`JobPool::run`] and join before it returns.
///
/// ```
/// use polycanary_attacks::pool::JobPool;
///
/// let pool = JobPool::with_workers(4);
/// let doubled = pool.run(&["a", "bb"], |index, item| format!("{index}:{item}{item}"));
/// assert_eq!(doubled, vec!["0:aa", "1:bbbb"]); // input order, any worker count
/// assert_eq!(pool.resolved_workers(2), 2);     // width capped at the job count
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPool {
    workers: usize,
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::new()
    }
}

impl JobPool {
    /// A pool with one worker per available CPU.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        JobPool { workers }
    }

    /// A pool with exactly `workers` threads (`0` is treated as `1`).
    pub fn with_workers(workers: usize) -> Self {
        JobPool { workers: workers.max(1) }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker count actually used for `jobs` jobs: the configured width
    /// capped at the job count (never below 1).
    pub fn resolved_workers(&self, jobs: usize) -> usize {
        self.workers.min(jobs).max(1)
    }

    /// Worker count for pools nested inside a fan-out over `outer_jobs`
    /// jobs on this pool: the CPUs are split between the outer fan-out and
    /// each job's inner pool so nesting does not oversubscribe (results
    /// are identical either way — only wall time changes).
    pub fn nested_workers(&self, outer_jobs: usize) -> usize {
        (self.workers / self.resolved_workers(outer_jobs)).max(1)
    }

    /// Runs `job(index, &item)` for every item and returns the results in
    /// input order.  `job` must be a pure function of its inputs for the
    /// determinism guarantee to hold (the pool guarantees only ordering).
    pub fn run<T, R, F>(&self, items: &[T], job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.resolved_workers(items.len());
        if items.is_empty() {
            return Vec::new();
        }
        if workers == 1 {
            // Serial fast path: same results, no thread overhead.
            return items.iter().enumerate().map(|(i, item)| job(i, item)).collect();
        }

        // Work queue: a shared cursor over the job list.  Workers claim the
        // next unclaimed index, run that job, and deposit the result under
        // its index so the output order matches the input order no matter
        // which worker finishes first.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    let result = job(index, item);
                    *slots[index].lock().expect("no worker panicked holding the slot") =
                        Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker scope completed")
                    .expect("every index was claimed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|n| n * 3 + 1).collect();
        for workers in [1, 2, 5, 64] {
            let got = JobPool::with_workers(workers).run(&items, |_, &n| n * 3 + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn job_receives_its_input_index() {
        let items = ["a", "b", "c"];
        let got = JobPool::with_workers(2).run(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_and_zero_workers_are_well_defined() {
        let empty: Vec<u64> = Vec::new();
        assert!(JobPool::with_workers(0).run(&empty, |_, &n| n).is_empty());
        assert_eq!(JobPool::with_workers(0).workers(), 1);
        assert_eq!(JobPool::with_workers(8).resolved_workers(3), 3);
        assert_eq!(JobPool::with_workers(8).resolved_workers(0), 1);
    }

    #[test]
    fn nested_workers_split_the_pool_without_oversubscribing() {
        let pool = JobPool::with_workers(8);
        // 4 outer jobs on 8 CPUs leave 2 workers per inner pool ...
        assert_eq!(pool.nested_workers(4), 2);
        // ... more outer jobs than CPUs leave serial inner pools ...
        assert_eq!(pool.nested_workers(16), 1);
        // ... and a single outer job keeps the whole pool.
        assert_eq!(pool.nested_workers(1), 8);
        assert_eq!(pool.nested_workers(0), 8);
        assert_eq!(JobPool::with_workers(1).nested_workers(5), 1);
    }
}
