//! Reusable parallel work-queue executor.
//!
//! Every experiment in the evaluation fans the same shape of work out: a
//! list of independent jobs (victim seeds, table cells, benchmark programs)
//! whose results must be reported **in input order** no matter which worker
//! finishes first.  [`JobPool`] is that executor, extracted from the
//! campaign engine so Table I rows, Table III/IV cells and the Fig. 5
//! program sweep can all share it: scoped worker threads drain an atomic
//! cursor over the job list and deposit each result under its input index.
//!
//! Because jobs are pure functions of their input, the output vector is
//! identical whatever the worker count — parallelism only changes wall
//! time, never results.
//!
//! # Example
//!
//! ```
//! use polycanary_attacks::pool::JobPool;
//!
//! let squares = JobPool::with_workers(3).run(&[1u64, 2, 3, 4], |_, &n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome of a [`JobPool::run_sharded`] fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome<R> {
    /// Results of the settled prefix, in job-index order.  This is the
    /// *deterministic* part of the outcome: for a pure `job` and a pure
    /// `settle`, `results` is identical whatever the worker count or shard
    /// size.
    pub results: Vec<R>,
    /// Number of jobs actually executed, including speculative work past
    /// the settle point that was discarded.  Scheduling telemetry: in
    /// parallel runs this varies with timing, so it must not flow into
    /// deterministic reports.
    pub executed: usize,
    /// Number of shards workers claimed (same caveat as `executed`).
    pub shards_claimed: usize,
    /// `Some(n)` when `settle` fired at prefix length `n` and the remaining
    /// shards were cancelled; `None` when every job's result was kept.
    pub settled_at: Option<usize>,
}

/// A fixed-width pool of scoped worker threads draining an indexed work
/// queue.  Construction is cheap — threads are only spawned inside
/// [`JobPool::run`] and join before it returns.
///
/// ```
/// use polycanary_attacks::pool::JobPool;
///
/// let pool = JobPool::with_workers(4);
/// let doubled = pool.run(&["a", "bb"], |index, item| format!("{index}:{item}{item}"));
/// assert_eq!(doubled, vec!["0:aa", "1:bbbb"]); // input order, any worker count
/// assert_eq!(pool.resolved_workers(2), 2);     // width capped at the job count
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPool {
    workers: usize,
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::new()
    }
}

impl JobPool {
    /// A pool with one worker per available CPU.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        JobPool { workers }
    }

    /// A pool with exactly `workers` threads (`0` is treated as `1`).
    pub fn with_workers(workers: usize) -> Self {
        JobPool { workers: workers.max(1) }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker count actually used for `jobs` jobs: the configured width
    /// capped at the job count (never below 1).
    pub fn resolved_workers(&self, jobs: usize) -> usize {
        self.workers.min(jobs).max(1)
    }

    /// Worker count for pools nested inside a fan-out over `outer_jobs`
    /// jobs on this pool: the CPUs are split between the outer fan-out and
    /// each job's inner pool so nesting does not oversubscribe (results
    /// are identical either way — only wall time changes).
    pub fn nested_workers(&self, outer_jobs: usize) -> usize {
        (self.workers / self.resolved_workers(outer_jobs)).max(1)
    }

    /// Runs `job(index, &item)` for every item and returns the results in
    /// input order.  `job` must be a pure function of its inputs for the
    /// determinism guarantee to hold (the pool guarantees only ordering).
    pub fn run<T, R, F>(&self, items: &[T], job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.resolved_workers(items.len());
        if items.is_empty() {
            return Vec::new();
        }
        if workers == 1 {
            // Serial fast path: same results, no thread overhead.
            return items.iter().enumerate().map(|(i, item)| job(i, item)).collect();
        }

        // Work queue: a shared cursor over the job list.  Workers claim the
        // next unclaimed index, run that job, and deposit the result under
        // its index so the output order matches the input order no matter
        // which worker finishes first.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    let result = job(index, item);
                    *slots[index].lock().expect("no worker panicked holding the slot") =
                        Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker scope completed")
                    .expect("every index was claimed exactly once")
            })
            .collect()
    }

    /// Runs `jobs` indexed jobs in shards of `shard_size` contiguous
    /// indices, with event-driven early stopping: `settle(index, &result)`
    /// is invoked exactly once per job **in strict index order on the
    /// contiguous prefix of completed results** (never on worker finish
    /// order), and the first `true` it returns cancels every shard not yet
    /// claimed and truncates the results at that prefix.
    ///
    /// The scheduling contract, in full:
    ///
    /// * Workers claim whole shards from an atomic cursor and execute their
    ///   indices in order, bailing out between jobs once a settle boundary
    ///   is published.
    /// * `settle` runs under the coordinator lock, so it may carry state
    ///   (e.g. a success counter) without further synchronisation; it sees
    ///   each prefix exactly once, in order, regardless of parallelism.
    /// * `results` contains the jobs before the settle point and nothing
    ///   else — speculative results computed past it are discarded, exactly
    ///   as if the run had been serial and stopped there.  Only
    ///   [`ShardOutcome::executed`] / [`ShardOutcome::shards_claimed`]
    ///   reveal the speculation, and those are telemetry, not results.
    ///
    /// ```
    /// use polycanary_attacks::pool::JobPool;
    ///
    /// // Square 0..10, stopping once a square reaches 9: the settled
    /// // prefix is the same for every worker count and shard size.
    /// for workers in [1, 4] {
    ///     let outcome =
    ///         JobPool::with_workers(workers).run_sharded(10, 2, |i| i * i, |_, &sq| sq >= 9);
    ///     assert_eq!(outcome.results, vec![0, 1, 4, 9]);
    ///     assert_eq!(outcome.settled_at, Some(4));
    /// }
    /// ```
    pub fn run_sharded<R, F, S>(
        &self,
        jobs: usize,
        shard_size: usize,
        job: F,
        mut settle: S,
    ) -> ShardOutcome<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        S: FnMut(usize, &R) -> bool + Send,
    {
        let shard_size = shard_size.max(1);
        if jobs == 0 {
            return ShardOutcome {
                results: Vec::new(),
                executed: 0,
                shards_claimed: 0,
                settled_at: None,
            };
        }
        let workers = self.resolved_workers(jobs);
        if workers == 1 {
            // Serial fast path: execute in index order, settle as results
            // arrive, stop at the boundary.
            let mut results = Vec::new();
            let mut settled_at = None;
            for index in 0..jobs {
                let result = job(index);
                let stop = settle(index, &result);
                results.push(result);
                if stop {
                    settled_at = Some(index + 1);
                    break;
                }
            }
            let executed = results.len();
            return ShardOutcome {
                results,
                executed,
                shards_claimed: executed.div_ceil(shard_size),
                settled_at,
            };
        }

        // Parallel path.  Workers claim whole shards from `next_shard`;
        // `boundary` is the first index no new work may start at (published
        // once `settle` fires).  The coordinator owns the seed-ordered
        // prefix walk: results are deposited under their index and consumed
        // in strictly increasing order, so `settle` observes exactly the
        // sequence a serial run would have produced.
        struct Coordinator<R, S> {
            pending: HashMap<usize, R>,
            ordered: Vec<R>,
            settled_at: Option<usize>,
            executed: usize,
            settle: S,
        }
        let boundary = AtomicUsize::new(jobs);
        let next_shard = AtomicUsize::new(0);
        let shards_claimed = AtomicUsize::new(0);
        let coordinator = Mutex::new(Coordinator {
            pending: HashMap::new(),
            ordered: Vec::new(),
            settled_at: None,
            executed: 0,
            settle,
        });

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let shard = next_shard.fetch_add(1, Ordering::Relaxed);
                    let Some(start) = shard.checked_mul(shard_size).filter(|&s| s < jobs) else {
                        break;
                    };
                    if start >= boundary.load(Ordering::Acquire) {
                        break;
                    }
                    shards_claimed.fetch_add(1, Ordering::Relaxed);
                    let end = (start + shard_size).min(jobs);
                    for index in start..end {
                        if index >= boundary.load(Ordering::Acquire) {
                            break;
                        }
                        let result = job(index);
                        let mut coord =
                            coordinator.lock().expect("no worker panicked in the coordinator");
                        coord.executed += 1;
                        if coord.settled_at.is_some_and(|limit| index >= limit) {
                            continue; // speculative result past the stop point
                        }
                        coord.pending.insert(index, result);
                        // Advance the contiguous prefix as far as it goes.
                        while coord.settled_at.is_none() {
                            let at = coord.ordered.len();
                            let Some(next) = coord.pending.remove(&at) else { break };
                            let stop = (coord.settle)(at, &next);
                            coord.ordered.push(next);
                            if stop {
                                coord.settled_at = Some(at + 1);
                                boundary.store(at + 1, Ordering::Release);
                                coord.pending.clear();
                            }
                        }
                    }
                });
            }
        });

        let coordinator = coordinator.into_inner().expect("worker scope completed");
        ShardOutcome {
            results: coordinator.ordered,
            executed: coordinator.executed,
            shards_claimed: shards_claimed.into_inner(),
            settled_at: coordinator.settled_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|n| n * 3 + 1).collect();
        for workers in [1, 2, 5, 64] {
            let got = JobPool::with_workers(workers).run(&items, |_, &n| n * 3 + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn job_receives_its_input_index() {
        let items = ["a", "b", "c"];
        let got = JobPool::with_workers(2).run(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_and_zero_workers_are_well_defined() {
        let empty: Vec<u64> = Vec::new();
        assert!(JobPool::with_workers(0).run(&empty, |_, &n| n).is_empty());
        assert_eq!(JobPool::with_workers(0).workers(), 1);
        assert_eq!(JobPool::with_workers(8).resolved_workers(3), 3);
        assert_eq!(JobPool::with_workers(8).resolved_workers(0), 1);
    }

    #[test]
    fn sharded_results_match_serial_for_any_worker_count_and_shard_size() {
        let serial = JobPool::with_workers(1).run_sharded(50, 1, |i| i * 7, |_, &r| r >= 210);
        assert_eq!(serial.results, (0..=30).map(|i| i * 7).collect::<Vec<_>>());
        assert_eq!(serial.settled_at, Some(31));
        assert_eq!(serial.executed, 31);
        for workers in [2, 4, 8] {
            for shard_size in [1, 3, 16, 100] {
                let got = JobPool::with_workers(workers).run_sharded(
                    50,
                    shard_size,
                    |i| i * 7,
                    |_, &r| r >= 210,
                );
                assert_eq!(
                    got.results, serial.results,
                    "workers = {workers}, shard_size = {shard_size}"
                );
                assert_eq!(got.settled_at, Some(31));
                assert!(got.executed >= 31, "speculation may overshoot, never undershoot");
            }
        }
    }

    #[test]
    fn sharded_run_without_settling_keeps_every_result() {
        for workers in [1, 4] {
            let got = JobPool::with_workers(workers).run_sharded(17, 4, |i| i + 1, |_, _| false);
            assert_eq!(got.results, (1..=17).collect::<Vec<_>>(), "workers = {workers}");
            assert_eq!(got.settled_at, None);
            assert_eq!(got.executed, 17);
        }
    }

    #[test]
    fn sharded_settle_sees_strict_prefix_order_even_in_parallel() {
        // The settle closure records the indices it observes; the contract
        // says they are exactly 0..settled_at in order, whatever the
        // worker count.
        for workers in [1, 8] {
            let mut seen = Vec::new();
            let outcome = JobPool::with_workers(workers).run_sharded(
                40,
                2,
                |i| i,
                |index, _| {
                    seen.push(index);
                    index == 9
                },
            );
            assert_eq!(seen, (0..=9).collect::<Vec<_>>(), "workers = {workers}");
            assert_eq!(outcome.settled_at, Some(10));
        }
    }

    #[test]
    fn sharded_cancellation_bounds_speculation_by_claimed_shards() {
        // Settling on the very first job cancels all unclaimed shards:
        // with W workers and shard size 1 at most W shards are in flight,
        // far fewer than the 1000 jobs requested.
        let outcome = JobPool::with_workers(4).run_sharded(1000, 1, |i| i, |index, _| index == 0);
        assert_eq!(outcome.results, vec![0]);
        assert_eq!(outcome.settled_at, Some(1));
        assert!(
            outcome.executed < 1000,
            "cancellation must prevent exhaustive execution (executed {})",
            outcome.executed
        );
    }

    #[test]
    fn sharded_edge_cases_are_well_defined() {
        // Empty input.
        let empty = JobPool::with_workers(4).run_sharded(0, 8, |i| i, |_, _| true);
        assert!(empty.results.is_empty());
        assert_eq!(empty.executed, 0);
        assert_eq!(empty.shards_claimed, 0);
        assert_eq!(empty.settled_at, None);
        // Shard size 0 behaves as 1.
        let unit = JobPool::with_workers(1).run_sharded(3, 0, |i| i, |_, _| false);
        assert_eq!(unit.results, vec![0, 1, 2]);
        assert_eq!(unit.shards_claimed, 3);
    }

    #[test]
    fn nested_workers_split_the_pool_without_oversubscribing() {
        let pool = JobPool::with_workers(8);
        // 4 outer jobs on 8 CPUs leave 2 workers per inner pool ...
        assert_eq!(pool.nested_workers(4), 2);
        // ... more outer jobs than CPUs leave serial inner pools ...
        assert_eq!(pool.nested_workers(16), 1);
        // ... and a single outer job keeps the whole pool.
        assert_eq!(pool.nested_workers(1), 8);
        assert_eq!(pool.nested_workers(0), 8);
        assert_eq!(JobPool::with_workers(1).nested_workers(5), 1);
    }
}
