//! Victim populations: the fleet a campaign attacks.
//!
//! The paper's tables campaign one attack against N victims that all run
//! the *same* defence — unanimous populations whose success rate is 0 or 1.
//! Real fleets are rarely unanimous: a partially rolled-out patch leaves,
//! say, 70 % of the servers on P-SSP and 30 % on classic SSP, and the
//! campaign's empirical success rate lands *between* the endpoints — right
//! where the sequential stop rules' indifference region and error budgets
//! actually matter.  A [`Population`] describes such a fleet as a weighted
//! mix of [`PopulationMember`]s; every victim seed deterministically draws
//! one member, so mixed campaigns stay bitwise reproducible and
//! worker-count independent like uniform ones.
//!
//! # Example
//!
//! ```
//! use polycanary_attacks::population::Population;
//! use polycanary_core::scheme::SchemeKind;
//!
//! // A fleet where the P-SSP rollout reached 70 % of the servers.
//! let fleet = Population::mixed("patched-70", [
//!     (7, SchemeKind::Pssp),
//!     (3, SchemeKind::Ssp),
//! ]);
//! assert!(!fleet.is_uniform());
//! // The same seed always maps to the same member.
//! assert_eq!(fleet.member_for(42).scheme, fleet.member_for(42).scheme);
//! ```

use polycanary_core::record::Record;
use polycanary_core::scheme::SchemeKind;

use crate::victim::Deployment;

/// One slice of a [`Population`]: a defence configuration plus the weight
/// of the fleet running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationMember {
    /// Relative share of the fleet (weights need not sum to anything
    /// particular; only ratios matter).
    pub weight: u32,
    /// The protection scheme of this slice's victims.
    pub scheme: SchemeKind,
    /// Deployment vehicle of this slice's victims.
    pub deployment: Deployment,
}

impl PopulationMember {
    /// The self-describing record form of this member.
    pub fn record(&self) -> Record {
        Record::new()
            .field("weight", self.weight)
            .field("scheme", self.scheme.name())
            .field("deployment", self.deployment.label())
    }
}

/// A weighted victim fleet: every campaign seed deterministically draws one
/// [`PopulationMember`] whose scheme/deployment builds that seed's victim.
///
/// Member selection hashes the victim *seed* (not its position in the seed
/// list) together with a salt derived from the fleet's label and member
/// mix, so the victim a seed produces is a pure function of (fleet, seed) —
/// reports stay reproducible under re-ordered or truncated seed lists,
/// different fleets sample their members independently even over the same
/// seed list, and the empirical mix of a campaign converges on the
/// configured weights as the seed count grows.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    label: String,
    members: Vec<PopulationMember>,
    salt: u64,
}

impl Population {
    /// The degenerate fleet every paper table uses: all victims run
    /// `scheme` via the compiler deployment.
    pub fn uniform(scheme: SchemeKind) -> Self {
        Population::build(
            scheme.name().to_string(),
            vec![PopulationMember { weight: 1, scheme, deployment: Deployment::default() }],
        )
    }

    /// A mixed fleet from `(weight, scheme)` parts, all compiler-deployed.
    ///
    /// # Panics
    ///
    /// Panics when no part has a positive weight — an unsampleable fleet is
    /// a configuration bug, not a runtime condition.
    pub fn mixed(
        label: impl Into<String>,
        parts: impl IntoIterator<Item = (u32, SchemeKind)>,
    ) -> Self {
        let members: Vec<PopulationMember> = parts
            .into_iter()
            .filter(|(weight, _)| *weight > 0)
            .map(|(weight, scheme)| PopulationMember {
                weight,
                scheme,
                deployment: Deployment::default(),
            })
            .collect();
        assert!(!members.is_empty(), "a population needs at least one positively weighted member");
        Population::build(label.into(), members)
    }

    /// Finalizes a fleet: the member-draw salt folds the label and the
    /// member mix (FNV-1a), so two different fleets never share a ticket
    /// sequence over the same seed list.
    fn build(label: String, members: Vec<PopulationMember>) -> Self {
        let mut salt = 0xCBF2_9CE4_8422_2325u64;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                salt = (salt ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(label.as_bytes());
        for member in &members {
            fold(&member.weight.to_le_bytes());
            fold(member.scheme.name().as_bytes());
            fold(member.deployment.label().as_bytes());
        }
        Population { label, members, salt }
    }

    /// Display label of the fleet ("P-SSP" for uniform populations).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The configured members.
    pub fn members(&self) -> &[PopulationMember] {
        &self.members
    }

    /// Whether every victim runs the same configuration.
    pub fn is_uniform(&self) -> bool {
        self.members.len() == 1
    }

    /// The heaviest member (first on ties) — the fleet's headline
    /// configuration, used for a report's scalar `scheme` / `deployment`
    /// fields.
    pub fn dominant(&self) -> &PopulationMember {
        self.members.iter().max_by_key(|m| m.weight).expect("populations are constructed non-empty")
    }

    /// Selects the deployment vehicle of **every** member (used by uniform
    /// campaigns switching to the binary rewriter).  The result is a
    /// different fleet, so its member-draw salt is recomputed.
    #[must_use]
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        for member in &mut self.members {
            member.deployment = deployment;
        }
        Population::build(self.label, self.members)
    }

    /// The member the victim with `seed` draws: the fleet-salted seed is
    /// hashed through a SplitMix64 finalizer and reduced against the
    /// cumulative weights, so nearby seeds land on independent members,
    /// different fleets draw independently over the same seed list, and
    /// every (fleet, seed) draw is fixed forever.
    pub fn member_for(&self, seed: u64) -> &PopulationMember {
        let total: u64 = self.members.iter().map(|m| u64::from(m.weight)).sum();
        let mut ticket = mix64(seed ^ self.salt) % total;
        for member in &self.members {
            let weight = u64::from(member.weight);
            if ticket < weight {
                return member;
            }
            ticket -= weight;
        }
        unreachable!("ticket < total weight by construction")
    }

    /// The self-describing record form of this fleet: label plus the
    /// weighted member mix.
    pub fn record(&self) -> Record {
        Record::new()
            .field("label", self.label.as_str())
            .field("members", self.members.iter().map(PopulationMember::record).collect::<Vec<_>>())
    }
}

/// SplitMix64 finalizer: a cheap bijective scrambler whose output bits are
/// individually well mixed, so `mix64(seed) % total_weight` is unbiased
/// enough for fleet sampling even over structured seed sequences.
fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::derive_seeds;

    #[test]
    fn uniform_population_always_draws_its_only_member() {
        let pop = Population::uniform(SchemeKind::Pssp);
        assert!(pop.is_uniform());
        assert_eq!(pop.label(), "P-SSP");
        assert_eq!(pop.dominant().scheme, SchemeKind::Pssp);
        for seed in [0, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(pop.member_for(seed).scheme, SchemeKind::Pssp);
        }
    }

    #[test]
    fn member_draws_are_deterministic_in_the_seed() {
        let pop = Population::mixed("mix", [(7, SchemeKind::Pssp), (3, SchemeKind::Ssp)]);
        for seed in derive_seeds(0xF00, 64) {
            assert_eq!(pop.member_for(seed), pop.member_for(seed));
        }
    }

    #[test]
    fn mixed_draws_approximate_the_configured_weights() {
        let pop = Population::mixed("patched-70", [(7, SchemeKind::Pssp), (3, SchemeKind::Ssp)]);
        let seeds = derive_seeds(0xA5A5, 1_000);
        let patched =
            seeds.iter().filter(|&&s| pop.member_for(s).scheme == SchemeKind::Pssp).count();
        // 70 % ± a generous sampling margin over 1000 draws.
        assert!((620..=780).contains(&patched), "patched share {patched}/1000");
    }

    #[test]
    fn different_fleets_draw_independently_over_the_same_seeds() {
        let a = Population::mixed("fleet-a", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]);
        let b = Population::mixed("fleet-b", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]);
        let seeds = derive_seeds(1, 64);
        let draws =
            |p: &Population| seeds.iter().map(|&s| p.member_for(s).scheme).collect::<Vec<_>>();
        // Same mix, different identity: the salted tickets decorrelate.
        assert_ne!(draws(&a), draws(&b));
        // Same identity: the draw sequence is stable.
        let a_again = Population::mixed("fleet-a", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]);
        assert_eq!(draws(&a), draws(&a_again));
    }

    #[test]
    fn zero_weight_members_are_never_drawn() {
        let pop =
            Population::mixed("effectively-uniform", [(0, SchemeKind::Ssp), (4, SchemeKind::Pssp)]);
        assert!(pop.is_uniform());
        assert_eq!(pop.member_for(99).scheme, SchemeKind::Pssp);
    }

    #[test]
    #[should_panic(expected = "positively weighted")]
    fn all_zero_weights_are_rejected() {
        let _ = Population::mixed("empty", [(0, SchemeKind::Ssp)]);
    }

    #[test]
    fn with_deployment_rewrites_every_member_and_the_salt() {
        let compiler = Population::mixed("mix", [(1, SchemeKind::PsspBin32), (1, SchemeKind::Ssp)]);
        let rewriter = compiler.clone().with_deployment(Deployment::BinaryRewriter);
        assert!(rewriter.members().iter().all(|m| m.deployment == Deployment::BinaryRewriter));
        // A deployment change makes a different fleet, so its draw sequence
        // decorrelates from the original — the documented invariant that two
        // different fleets never share a ticket sequence.
        let seeds = derive_seeds(3, 64);
        let draws =
            |p: &Population| seeds.iter().map(|&s| p.member_for(s).scheme).collect::<Vec<_>>();
        assert_ne!(draws(&compiler), draws(&rewriter));
    }

    #[test]
    fn population_record_nests_the_member_mix() {
        use polycanary_core::record::Value;

        let rec = Population::mixed("half", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]).record();
        assert_eq!(rec.get("label"), Some(&Value::Str("half".into())));
        let Some(Value::List(members)) = rec.get("members") else { panic!("members: {rec:?}") };
        assert_eq!(members.len(), 2);
        let Value::Record(first) = &members[0] else { panic!("member records") };
        assert_eq!(first.get("weight"), Some(&Value::UInt(1)));
    }
}
