//! Victim populations: the fleet a campaign attacks.
//!
//! The paper's tables campaign one attack against N victims that all run
//! the *same* defence — unanimous populations whose success rate is 0 or 1.
//! Real fleets are rarely unanimous: a partially rolled-out patch leaves,
//! say, 70 % of the servers on P-SSP and 30 % on classic SSP, and the
//! campaign's empirical success rate lands *between* the endpoints — right
//! where the sequential stop rules' indifference region and error budgets
//! actually matter.  A [`Population`] describes such a fleet as a weighted
//! mix of [`PopulationMember`]s; every victim seed deterministically draws
//! one member, so mixed campaigns stay bitwise reproducible and
//! worker-count independent like uniform ones.
//!
//! # Example
//!
//! ```
//! use polycanary_attacks::population::Population;
//! use polycanary_core::scheme::SchemeKind;
//!
//! // A fleet where the P-SSP rollout reached 70 % of the servers.
//! let fleet = Population::mixed("patched-70", [
//!     (7, SchemeKind::Pssp),
//!     (3, SchemeKind::Ssp),
//! ]);
//! assert!(!fleet.is_uniform());
//! // The same seed always maps to the same member.
//! assert_eq!(fleet.member_for(42).scheme, fleet.member_for(42).scheme);
//! ```

use polycanary_core::record::{Record, Value};
use polycanary_core::scheme::SchemeKind;

use crate::victim::Deployment;

/// One slice of a [`Population`]: a defence configuration plus the weight
/// of the fleet running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationMember {
    /// Relative share of the fleet (weights need not sum to anything
    /// particular; only ratios matter).
    pub weight: u32,
    /// The protection scheme of this slice's victims.
    pub scheme: SchemeKind,
    /// Deployment vehicle of this slice's victims.
    pub deployment: Deployment,
    /// Vulnerable-buffer size of this slice's victims; `None` inherits the
    /// campaign-wide buffer size, so heterogeneous fleets can mix frame
    /// geometries (not just schemes and deployments).
    pub buffer_size: Option<u32>,
}

impl PopulationMember {
    /// A compiler-deployed member inheriting the campaign buffer size.
    pub fn new(weight: u32, scheme: SchemeKind) -> Self {
        PopulationMember { weight, scheme, deployment: Deployment::default(), buffer_size: None }
    }

    /// Selects this member's deployment vehicle.
    #[must_use]
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Overrides this member's vulnerable-buffer size.
    #[must_use]
    pub fn with_buffer_size(mut self, size: u32) -> Self {
        self.buffer_size = Some(size);
        self
    }

    /// The self-describing record form of this member.
    pub fn record(&self) -> Record {
        let record = Record::new()
            .field("weight", self.weight)
            .field("scheme", self.scheme.name())
            .field("deployment", self.deployment.label());
        match self.buffer_size {
            Some(size) => record.field("buffer_size", size),
            None => record,
        }
    }
}

/// A time-varying reweighting of a [`Population`]: the fleet's member
/// weights change as the campaign progresses, modelling a staged patch
/// rollout (day 1: 10 % patched, day 2: 90 %, day 3: 100 %).
///
/// The campaign's victim index is divided into consecutive *batches* of
/// `batch` victims; batch `k` draws members with `stages[k]`'s weights
/// (the last stage persists once the schedule is exhausted).  Because the
/// stage is a pure function of the victim index and the draw is a pure
/// function of (fleet, seed), rollout campaigns stay bitwise reproducible
/// and worker-count independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutCurve {
    batch: usize,
    stages: Vec<Vec<u32>>,
}

impl RolloutCurve {
    /// A rollout schedule: `stages[k]` holds the member weights in force
    /// for victims `k*batch .. (k+1)*batch`; the final stage applies to
    /// every victim beyond the schedule.
    ///
    /// # Panics
    ///
    /// Panics when `batch` is zero, `stages` is empty, or any stage has no
    /// positive weight — all configuration bugs, not runtime conditions.
    pub fn new(batch: usize, stages: Vec<Vec<u32>>) -> Self {
        assert!(batch > 0, "a rollout batch must cover at least one victim");
        assert!(!stages.is_empty(), "a rollout curve needs at least one stage");
        for (index, stage) in stages.iter().enumerate() {
            assert!(
                stage.iter().any(|&w| w > 0),
                "rollout stage {index} has no positively weighted member"
            );
        }
        RolloutCurve { batch, stages }
    }

    /// Victims per stage.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The per-stage weight vectors.
    pub fn stages(&self) -> &[Vec<u32>] {
        &self.stages
    }

    /// The weights in force for the victim at `index` (the last stage
    /// persists past the end of the schedule).
    pub fn stage_for(&self, index: usize) -> &[u32] {
        let stage = (index / self.batch).min(self.stages.len() - 1);
        &self.stages[stage]
    }

    /// The self-describing record form of this curve.
    pub fn record(&self) -> Record {
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|stage| Value::List(stage.iter().map(|&w| Value::from(u64::from(w))).collect()))
            .collect();
        Record::new().field("batch", self.batch as u64).field("stages", stages)
    }
}

/// A weighted victim fleet: every campaign seed deterministically draws one
/// [`PopulationMember`] whose scheme/deployment builds that seed's victim.
///
/// Member selection hashes the victim *seed* (not its position in the seed
/// list) together with a salt derived from the fleet's label and member
/// mix, so the victim a seed produces is a pure function of (fleet, seed) —
/// reports stay reproducible under re-ordered or truncated seed lists,
/// different fleets sample their members independently even over the same
/// seed list, and the empirical mix of a campaign converges on the
/// configured weights as the seed count grows.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    label: String,
    members: Vec<PopulationMember>,
    rollout: Option<RolloutCurve>,
    salt: u64,
}

impl Population {
    /// The degenerate fleet every paper table uses: all victims run
    /// `scheme` via the compiler deployment.
    pub fn uniform(scheme: SchemeKind) -> Self {
        Population::build(scheme.name().to_string(), vec![PopulationMember::new(1, scheme)], None)
    }

    /// A mixed fleet from `(weight, scheme)` parts, all compiler-deployed.
    ///
    /// # Panics
    ///
    /// Panics when no part has a positive weight — an unsampleable fleet is
    /// a configuration bug, not a runtime condition.
    pub fn mixed(
        label: impl Into<String>,
        parts: impl IntoIterator<Item = (u32, SchemeKind)>,
    ) -> Self {
        let members: Vec<PopulationMember> = parts
            .into_iter()
            .filter(|(weight, _)| *weight > 0)
            .map(|(weight, scheme)| PopulationMember::new(weight, scheme))
            .collect();
        assert!(!members.is_empty(), "a population needs at least one positively weighted member");
        Population::build(label.into(), members, None)
    }

    /// A fleet from fully specified members, each free to pick its own
    /// scheme, deployment *and* buffer size — the constructor heterogeneous
    /// scenario-grammar populations use.
    ///
    /// # Panics
    ///
    /// Panics when no member has a positive weight.
    pub fn from_members(
        label: impl Into<String>,
        members: impl IntoIterator<Item = PopulationMember>,
    ) -> Self {
        let members: Vec<PopulationMember> = members.into_iter().filter(|m| m.weight > 0).collect();
        assert!(!members.is_empty(), "a population needs at least one positively weighted member");
        Population::build(label.into(), members, None)
    }

    /// Attaches a time-varying [`RolloutCurve`]: member draws switch from
    /// the static weights to the curve's per-batch stage weights.  The
    /// result is a different fleet, so its member-draw salt is recomputed.
    ///
    /// # Panics
    ///
    /// Panics when any stage's weight vector does not have exactly one
    /// weight per member.
    #[must_use]
    pub fn with_rollout(self, curve: RolloutCurve) -> Self {
        for (index, stage) in curve.stages().iter().enumerate() {
            assert_eq!(
                stage.len(),
                self.members.len(),
                "rollout stage {index} must weight all {} members",
                self.members.len()
            );
        }
        Population::build(self.label, self.members, Some(curve))
    }

    /// Finalizes a fleet: the member-draw salt folds the label, the member
    /// mix and any rollout curve (FNV-1a), so two different fleets never
    /// share a ticket sequence over the same seed list.
    fn build(label: String, members: Vec<PopulationMember>, rollout: Option<RolloutCurve>) -> Self {
        let mut salt = 0xCBF2_9CE4_8422_2325u64;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                salt = (salt ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(label.as_bytes());
        for member in &members {
            fold(&member.weight.to_le_bytes());
            fold(member.scheme.name().as_bytes());
            fold(member.deployment.label().as_bytes());
            // Only an explicit override is folded, so fleets predating the
            // buffer axis keep their historical salts (and draw sequences).
            if let Some(size) = member.buffer_size {
                fold(b"buffer");
                fold(&size.to_le_bytes());
            }
        }
        if let Some(curve) = &rollout {
            fold(b"rollout");
            fold(&(curve.batch() as u64).to_le_bytes());
            for stage in curve.stages() {
                for weight in stage {
                    fold(&weight.to_le_bytes());
                }
            }
        }
        Population { label, members, rollout, salt }
    }

    /// Display label of the fleet ("P-SSP" for uniform populations).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The configured members.
    pub fn members(&self) -> &[PopulationMember] {
        &self.members
    }

    /// Whether every victim runs the same configuration.
    pub fn is_uniform(&self) -> bool {
        self.members.len() == 1
    }

    /// The heaviest member (first on ties) — the fleet's headline
    /// configuration, used for a report's scalar `scheme` / `deployment`
    /// fields.
    pub fn dominant(&self) -> &PopulationMember {
        self.members.iter().max_by_key(|m| m.weight).expect("populations are constructed non-empty")
    }

    /// Selects the deployment vehicle of **every** member (used by uniform
    /// campaigns switching to the binary rewriter).  The result is a
    /// different fleet, so its member-draw salt is recomputed.
    #[must_use]
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        for member in &mut self.members {
            member.deployment = deployment;
        }
        Population::build(self.label, self.members, self.rollout)
    }

    /// The rollout curve, when this fleet's weights vary over time.
    pub fn rollout(&self) -> Option<&RolloutCurve> {
        self.rollout.as_ref()
    }

    /// The member the victim with `seed` draws: the fleet-salted seed is
    /// hashed through a SplitMix64 finalizer and reduced against the
    /// cumulative weights, so nearby seeds land on independent members,
    /// different fleets draw independently over the same seed list, and
    /// every (fleet, seed) draw is fixed forever.
    pub fn member_for(&self, seed: u64) -> &PopulationMember {
        let total: u64 = self.members.iter().map(|m| u64::from(m.weight)).sum();
        let mut ticket = mix64(seed ^ self.salt) % total;
        for member in &self.members {
            let weight = u64::from(member.weight);
            if ticket < weight {
                return member;
            }
            ticket -= weight;
        }
        unreachable!("ticket < total weight by construction")
    }

    /// The member the victim at position `index` with `seed` draws.  For a
    /// static fleet this is exactly [`member_for`](Population::member_for);
    /// under a [`RolloutCurve`] the draw uses the stage weights in force at
    /// `index`, so the fleet's mix shifts as the campaign progresses while
    /// each individual draw stays a pure function of (fleet, index, seed).
    pub fn member_at(&self, index: usize, seed: u64) -> &PopulationMember {
        let Some(curve) = &self.rollout else {
            return self.member_for(seed);
        };
        let weights = curve.stage_for(index);
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        let mut ticket = mix64(seed ^ self.salt) % total;
        for (member, &weight) in self.members.iter().zip(weights) {
            let weight = u64::from(weight);
            if ticket < weight {
                return member;
            }
            ticket -= weight;
        }
        unreachable!("ticket < total stage weight by construction")
    }

    /// The self-describing record form of this fleet: label plus the
    /// weighted member mix (and the rollout curve, when one is attached).
    pub fn record(&self) -> Record {
        let record = Record::new().field("label", self.label.as_str()).field(
            "members",
            self.members.iter().map(PopulationMember::record).collect::<Vec<_>>(),
        );
        match &self.rollout {
            Some(curve) => record.field("rollout", curve.record()),
            None => record,
        }
    }
}

/// SplitMix64 finalizer: a cheap bijective scrambler whose output bits are
/// individually well mixed, so `mix64(seed) % total_weight` is unbiased
/// enough for fleet sampling even over structured seed sequences.
fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::derive_seeds;

    #[test]
    fn uniform_population_always_draws_its_only_member() {
        let pop = Population::uniform(SchemeKind::Pssp);
        assert!(pop.is_uniform());
        assert_eq!(pop.label(), "P-SSP");
        assert_eq!(pop.dominant().scheme, SchemeKind::Pssp);
        for seed in [0, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(pop.member_for(seed).scheme, SchemeKind::Pssp);
        }
    }

    #[test]
    fn member_draws_are_deterministic_in_the_seed() {
        let pop = Population::mixed("mix", [(7, SchemeKind::Pssp), (3, SchemeKind::Ssp)]);
        for seed in derive_seeds(0xF00, 64) {
            assert_eq!(pop.member_for(seed), pop.member_for(seed));
        }
    }

    #[test]
    fn mixed_draws_approximate_the_configured_weights() {
        let pop = Population::mixed("patched-70", [(7, SchemeKind::Pssp), (3, SchemeKind::Ssp)]);
        let seeds = derive_seeds(0xA5A5, 1_000);
        let patched =
            seeds.iter().filter(|&&s| pop.member_for(s).scheme == SchemeKind::Pssp).count();
        // 70 % ± a generous sampling margin over 1000 draws.
        assert!((620..=780).contains(&patched), "patched share {patched}/1000");
    }

    #[test]
    fn different_fleets_draw_independently_over_the_same_seeds() {
        let a = Population::mixed("fleet-a", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]);
        let b = Population::mixed("fleet-b", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]);
        let seeds = derive_seeds(1, 64);
        let draws =
            |p: &Population| seeds.iter().map(|&s| p.member_for(s).scheme).collect::<Vec<_>>();
        // Same mix, different identity: the salted tickets decorrelate.
        assert_ne!(draws(&a), draws(&b));
        // Same identity: the draw sequence is stable.
        let a_again = Population::mixed("fleet-a", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]);
        assert_eq!(draws(&a), draws(&a_again));
    }

    #[test]
    fn zero_weight_members_are_never_drawn() {
        let pop =
            Population::mixed("effectively-uniform", [(0, SchemeKind::Ssp), (4, SchemeKind::Pssp)]);
        assert!(pop.is_uniform());
        assert_eq!(pop.member_for(99).scheme, SchemeKind::Pssp);
    }

    #[test]
    #[should_panic(expected = "positively weighted")]
    fn all_zero_weights_are_rejected() {
        let _ = Population::mixed("empty", [(0, SchemeKind::Ssp)]);
    }

    #[test]
    fn with_deployment_rewrites_every_member_and_the_salt() {
        let compiler = Population::mixed("mix", [(1, SchemeKind::PsspBin32), (1, SchemeKind::Ssp)]);
        let rewriter = compiler.clone().with_deployment(Deployment::BinaryRewriter);
        assert!(rewriter.members().iter().all(|m| m.deployment == Deployment::BinaryRewriter));
        // A deployment change makes a different fleet, so its draw sequence
        // decorrelates from the original — the documented invariant that two
        // different fleets never share a ticket sequence.
        let seeds = derive_seeds(3, 64);
        let draws =
            |p: &Population| seeds.iter().map(|&s| p.member_for(s).scheme).collect::<Vec<_>>();
        assert_ne!(draws(&compiler), draws(&rewriter));
    }

    #[test]
    fn from_members_mixes_deployments_and_buffer_sizes() {
        let pop = Population::from_members(
            "hetero",
            [
                PopulationMember::new(3, SchemeKind::Pssp).with_buffer_size(128),
                PopulationMember::new(1, SchemeKind::PsspBin32)
                    .with_deployment(Deployment::BinaryRewriter),
            ],
        );
        assert!(!pop.is_uniform());
        assert_eq!(pop.dominant().buffer_size, Some(128));
        let seeds = derive_seeds(0xBEEF, 256);
        let rewritten = seeds
            .iter()
            .filter(|&&s| pop.member_for(s).deployment == Deployment::BinaryRewriter)
            .count();
        assert!((25..=110).contains(&rewritten), "rewriter share {rewritten}/256");
        // A buffer-size override changes the fleet identity (and salt).
        let other = Population::from_members(
            "hetero",
            [
                PopulationMember::new(3, SchemeKind::Pssp).with_buffer_size(96),
                PopulationMember::new(1, SchemeKind::PsspBin32)
                    .with_deployment(Deployment::BinaryRewriter),
            ],
        );
        assert_ne!(pop, other);
    }

    #[test]
    fn rollout_stages_shift_the_member_draws_over_time() {
        let members =
            [PopulationMember::new(1, SchemeKind::Pssp), PopulationMember::new(1, SchemeKind::Ssp)];
        let curve = RolloutCurve::new(4, vec![vec![0, 1], vec![1, 0]]);
        let pop = Population::from_members("rollout", members).with_rollout(curve);
        let seeds = derive_seeds(7, 16);
        for (index, &seed) in seeds.iter().enumerate() {
            let expected = if index < 4 { SchemeKind::Ssp } else { SchemeKind::Pssp };
            assert_eq!(pop.member_at(index, seed).scheme, expected, "victim {index}");
        }
        // The last stage persists past the end of the schedule.
        assert_eq!(pop.member_at(1_000, 42).scheme, SchemeKind::Pssp);
        // Without a curve, member_at is exactly member_for.
        let flat = Population::mixed("flat", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]);
        for (index, &seed) in seeds.iter().enumerate() {
            assert_eq!(flat.member_at(index, seed), flat.member_for(seed));
        }
    }

    #[test]
    #[should_panic(expected = "must weight all")]
    fn rollout_stage_width_must_match_the_member_count() {
        let members =
            [PopulationMember::new(1, SchemeKind::Pssp), PopulationMember::new(1, SchemeKind::Ssp)];
        let _ = Population::from_members("bad", members)
            .with_rollout(RolloutCurve::new(2, vec![vec![1]]));
    }

    #[test]
    #[should_panic(expected = "no positively weighted member")]
    fn rollout_stages_need_a_positive_weight() {
        let _ = RolloutCurve::new(2, vec![vec![0, 0]]);
    }

    #[test]
    fn rollout_record_nests_batch_and_stages() {
        let members =
            [PopulationMember::new(1, SchemeKind::Pssp), PopulationMember::new(1, SchemeKind::Ssp)];
        let pop = Population::from_members("curve", members)
            .with_rollout(RolloutCurve::new(3, vec![vec![1, 9], vec![9, 1]]));
        let rec = pop.record();
        let Some(Value::Record(rollout)) = rec.get("rollout") else { panic!("rollout: {rec:?}") };
        assert_eq!(rollout.get("batch"), Some(&Value::UInt(3)));
        let Some(Value::List(stages)) = rollout.get("stages") else { panic!("stages") };
        assert_eq!(stages.len(), 2);
    }

    #[test]
    fn population_record_nests_the_member_mix() {
        use polycanary_core::record::Value;

        let rec = Population::mixed("half", [(1, SchemeKind::Pssp), (1, SchemeKind::Ssp)]).record();
        assert_eq!(rec.get("label"), Some(&Value::Str("half".into())));
        let Some(Value::List(members)) = rec.get("members") else { panic!("members: {rec:?}") };
        assert_eq!(members.len(), 2);
        let Value::Record(first) = &members[0] else { panic!("member records") };
        assert_eq!(first.get("weight"), Some(&Value::UInt(1)));
    }
}
