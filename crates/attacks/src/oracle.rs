//! The attacker's view of the victim: an overflow oracle.
//!
//! §II-B: "the byte-by-byte attack essentially treats the parent process as
//! an 'oracle' which tells the attacker whether its guess is correct or
//! not."  The attacker sends a payload, observes whether the worker crashed
//! (connection reset) or kept serving (response received), and nothing more.

/// Observable outcome of one overflow attempt, as visible to a remote
/// attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The worker answered normally — the guessed bytes did not disturb the
    /// canary check.
    Survived,
    /// The worker was killed by the stack protector (`__stack_chk_fail`).
    Detected,
    /// The worker crashed for another reason (e.g. a wild pointer) — from
    /// the network the attacker cannot distinguish this from `Detected`,
    /// but the experiments record it separately.
    Crashed,
    /// Control flow reached the attacker's chosen address: the exploit
    /// succeeded without being detected.
    Hijacked,
}

impl RequestOutcome {
    /// Whether the worker stayed alive (what the remote attacker observes as
    /// "my guess was accepted").
    pub fn survived(self) -> bool {
        matches!(self, RequestOutcome::Survived)
    }

    /// Whether the attempt ended in a successful hijack.
    pub fn hijacked(self) -> bool {
        matches!(self, RequestOutcome::Hijacked)
    }
}

/// An oracle the attack strategies drive.  [`crate::victim::ForkingServer`]
/// is the canonical implementation; tests provide synthetic oracles.
pub trait OverflowOracle {
    /// Submits one payload and reports the worker's fate.
    fn attempt(&mut self, payload: &[u8]) -> RequestOutcome;

    /// Total number of attempts made so far.
    fn trials(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification_helpers() {
        assert!(RequestOutcome::Survived.survived());
        assert!(!RequestOutcome::Detected.survived());
        assert!(RequestOutcome::Hijacked.hijacked());
        assert!(!RequestOutcome::Crashed.hijacked());
    }
}
