//! Attack results and aggregated statistics.

use polycanary_core::scheme::SchemeKind;

use crate::oracle::RequestOutcome;

/// Result of one attack campaign against one victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackResult {
    /// Strategy name ("byte-by-byte", "exhaustive", "canary-reuse").
    pub strategy: &'static str,
    /// Scheme protecting the victim.
    pub scheme: SchemeKind,
    /// Whether the attacker achieved an undetected control-flow hijack.
    pub success: bool,
    /// Total oracle queries (requests sent) during the campaign.
    pub trials: u64,
    /// The canary bytes the attacker believed to have recovered, if the
    /// strategy produces them.
    pub recovered_canary: Option<Vec<u8>>,
    /// Outcome of the final exploit attempt, if one was made.
    pub final_outcome: Option<RequestOutcome>,
}

impl AttackResult {
    /// A failed campaign that ran out of budget.
    pub fn exhausted(strategy: &'static str, scheme: SchemeKind, trials: u64) -> Self {
        AttackResult {
            strategy,
            scheme,
            success: false,
            trials,
            recovered_canary: None,
            final_outcome: None,
        }
    }
}

/// Aggregated statistics over repeated attack campaigns (e.g. different
/// loader seeds), used by the effectiveness experiment of §VI-C.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttackSummary {
    /// Number of campaigns run.
    pub campaigns: u64,
    /// Number of campaigns ending in a successful hijack.
    pub successes: u64,
    /// Total trials over all campaigns.
    pub total_trials: u64,
    /// Trials of the successful campaigns only.
    pub successful_trials: Vec<u64>,
}

impl AttackSummary {
    /// Records one campaign result.
    pub fn record(&mut self, result: &AttackResult) {
        self.campaigns += 1;
        self.total_trials += result.trials;
        if result.success {
            self.successes += 1;
            self.successful_trials.push(result.trials);
        }
    }

    /// Success rate in [0, 1].
    pub fn success_rate(&self) -> f64 {
        if self.campaigns == 0 {
            0.0
        } else {
            self.successes as f64 / self.campaigns as f64
        }
    }

    /// Mean trials of the successful campaigns (`None` if none succeeded).
    pub fn mean_trials_to_success(&self) -> Option<f64> {
        if self.successful_trials.is_empty() {
            None
        } else {
            Some(
                self.successful_trials.iter().sum::<u64>() as f64
                    / self.successful_trials.len() as f64,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_aggregates_success_rate_and_trials() {
        let mut summary = AttackSummary::default();
        summary.record(&AttackResult {
            strategy: "byte-by-byte",
            scheme: SchemeKind::Ssp,
            success: true,
            trials: 1000,
            recovered_canary: None,
            final_outcome: Some(RequestOutcome::Hijacked),
        });
        summary.record(&AttackResult::exhausted("byte-by-byte", SchemeKind::Ssp, 2000));
        assert_eq!(summary.campaigns, 2);
        assert_eq!(summary.successes, 1);
        assert!((summary.success_rate() - 0.5).abs() < 1e-12);
        assert_eq!(summary.mean_trials_to_success(), Some(1000.0));
        assert_eq!(summary.total_trials, 3000);
    }

    #[test]
    fn empty_summary_is_well_defined() {
        let summary = AttackSummary::default();
        assert_eq!(summary.success_rate(), 0.0);
        assert_eq!(summary.mean_trials_to_success(), None);
    }

    #[test]
    fn exhausted_constructor_marks_failure() {
        let r = AttackResult::exhausted("exhaustive", SchemeKind::Pssp, 500);
        assert!(!r.success);
        assert_eq!(r.trials, 500);
        assert!(r.recovered_canary.is_none());
    }
}
