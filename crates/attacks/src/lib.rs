//! Attacker framework for the polycanary reproduction.
//!
//! The effectiveness claims of the paper (§II-B, §III-C, §VI-C) are about
//! what a remote attacker can and cannot do against a forking network
//! server.  This crate provides:
//!
//! * [`victim`] — the victim definition: the vulnerable binary (unbounded
//!   `strcpy`-style overflow plus, for the exposure experiments, an
//!   over-read disclosure bug), deployment vehicle and frame geometry.
//! * [`server`] — the long-lived forking server running that victim: the
//!   parent process lives across the whole attack and serves each attacker
//!   connection from a freshly forked worker whose canaries are inherited
//!   or re-randomized per the scheme's fork-canary policy.
//! * [`oracle`] — the attacker's crash/no-crash view of that server.
//! * [`byte_by_byte`] — the BROP-style byte-by-byte attack that breaks SSP
//!   in ~1024 requests and fails against P-SSP.
//! * [`exhaustive`] — whole-word guessing, against which P-SSP and SSP are
//!   equally strong.
//! * [`reuse`] — the canary-disclosure-and-reuse attack that only
//!   P-SSP-OWF survives.
//! * [`pool`] — the reusable parallel job pool (scoped worker threads over
//!   an atomic work queue) every experiment fans out on, including the
//!   sharded early-stopping executor fleet campaigns run on.
//! * [`snapshot`] — snapshot-keyed victim construction: the compile/boot
//!   pipeline runs once per distinct victim configuration and every further
//!   victim of that configuration boots from the captured image.
//! * [`population`] — victim fleets: uniform (every paper table) or
//!   weighted mixes such as a 70 %-patched fleet, whose in-between success
//!   rates exercise the stop rules' indifference region.
//! * [`campaign`] — multi-seed campaigns fanning any of the above out over
//!   the pool and aggregating success-rate and request-count statistics
//!   (the statistically robust version of §VI-C), with optional adaptive
//!   stop rules — Wilson-interval settling or Wald's sequential
//!   probability-ratio test — that end a campaign once its verdict is
//!   statistically settled.
//!
//! # Quick example
//!
//! ```
//! use polycanary_attacks::byte_by_byte::ByteByByteAttack;
//! use polycanary_attacks::victim::{ForkingServer, VictimConfig};
//! use polycanary_core::scheme::SchemeKind;
//!
//! // The byte-by-byte attack breaks a classic-SSP server ...
//! let mut ssp = ForkingServer::new(VictimConfig::new(SchemeKind::Ssp, 42));
//! let geometry = ssp.geometry();
//! let result = ByteByByteAttack::default().run(&mut ssp, geometry, SchemeKind::Ssp);
//! assert!(result.success);
//!
//! // ... and fails against the same server compiled with P-SSP.
//! let mut pssp = ForkingServer::new(VictimConfig::new(SchemeKind::Pssp, 42));
//! let geometry = pssp.geometry();
//! let result = ByteByByteAttack::with_budget(5_000).run(&mut pssp, geometry, SchemeKind::Pssp);
//! assert!(!result.success);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byte_by_byte;
pub mod campaign;
pub mod exhaustive;
pub mod oracle;
pub mod pool;
pub mod population;
pub mod reuse;
pub mod server;
pub mod snapshot;
pub mod stats;
pub mod victim;

pub use byte_by_byte::ByteByByteAttack;
pub use campaign::{
    derive_seed, derive_seeds, wilson_interval, AttackKind, Campaign, CampaignReport, CampaignRun,
    StopRule, TrialStats, Verdict,
};
pub use exhaustive::ExhaustiveAttack;
pub use oracle::{OverflowOracle, RequestOutcome};
pub use pool::{JobPool, ShardOutcome};
pub use population::{Population, PopulationMember};
pub use reuse::CanaryReuseAttack;
pub use server::{Connection, ForkingServer};
pub use snapshot::{SnapshotCache, VictimKey, VictimSnapshot};
pub use stats::{AttackResult, AttackSummary};
pub use victim::{Deployment, FrameGeometry, VictimConfig, HIJACK_TARGET};
