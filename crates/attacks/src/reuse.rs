//! Canary-disclosure-and-reuse attack (§IV-C motivation).
//!
//! P-SSP (like SSP) has a single point of failure: every frame of a process
//! carries canaries consistent with the one TLS canary, so a memory
//! disclosure in *one* function lets the attacker forge valid canaries for
//! *every* function of that process.  P-SSP-OWF removes this by binding each
//! frame's canary to its return address and a nonce under a secret key.
//!
//! The attack modelled here drives both bugs of the victim over one
//! keep-alive connection: first the over-read in `leak_status` (disclosing
//! that frame's canary region), then the overflow in `handle_request`
//! replaying the disclosed canaries in front of a rewritten return address.

use crate::server::ForkingServer;
use crate::stats::AttackResult;
use crate::victim::HIJACK_TARGET;

/// The canary-reuse strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanaryReuseAttack {
    /// The address the exploit diverts control flow to.
    pub hijack_target: u64,
}

impl Default for CanaryReuseAttack {
    fn default() -> Self {
        CanaryReuseAttack { hijack_target: HIJACK_TARGET }
    }
}

impl CanaryReuseAttack {
    /// Runs the attack against a forking server victim.
    ///
    /// Requires direct access to the [`ForkingServer`] (not just the oracle
    /// trait) because the disclosure and the overflow must travel over one
    /// keep-alive connection — i.e. hit the *same* worker process.
    pub fn run(&self, server: &mut ForkingServer) -> AttackResult {
        let geometry = server.geometry();
        let scheme = server.scheme();

        // The over-read in leak_status starts at its buffer and walks
        // upwards: buffer words, then the canary region, then saved %rbp and
        // the return address.  The attacker therefore finds the canary
        // region at byte offset `filler_len` of the leaked blob.
        let canary_start = geometry.filler_len;
        let canary_end = canary_start + geometry.canary_region_len;
        let hijack_target = self.hijack_target;

        let (leaked, outcome) = server.serve_leak_then_overflow(b"STATUS", |leaked| {
            let mut payload = vec![0x41u8; geometry.filler_len];
            if leaked.len() >= canary_end {
                payload.extend_from_slice(&leaked[canary_start..canary_end]);
            } else {
                payload.extend(std::iter::repeat_n(0u8, geometry.canary_region_len));
            }
            payload.extend_from_slice(&[0x41u8; 8]); // saved %rbp
            payload.extend_from_slice(&hijack_target.to_le_bytes());
            payload
        });

        AttackResult {
            strategy: "canary-reuse",
            scheme,
            success: outcome.hijacked(),
            trials: 1,
            recovered_canary: if leaked.len() >= canary_end {
                Some(leaked[canary_start..canary_end].to_vec())
            } else {
                None
            },
            final_outcome: Some(outcome),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::VictimConfig;
    use polycanary_core::scheme::SchemeKind;

    fn run_against(kind: SchemeKind) -> AttackResult {
        let mut server = ForkingServer::new(VictimConfig::new(kind, 0x1EAC));
        CanaryReuseAttack::default().run(&mut server)
    }

    #[test]
    fn reuse_defeats_ssp_and_basic_pssp() {
        // §IV-C: "If the stack canary in one stack frame is exposed ... the
        // attacker can use it to successfully overflow all other stack
        // frames" — true for SSP and for basic P-SSP.
        for kind in [SchemeKind::Ssp, SchemeKind::Pssp, SchemeKind::PsspNt, SchemeKind::PsspLv] {
            let result = run_against(kind);
            assert!(result.success, "{kind} should fall to canary reuse: {result:?}");
            assert!(result.recovered_canary.is_some());
        }
    }

    #[test]
    fn reuse_fails_against_pssp_owf() {
        let result = run_against(SchemeKind::PsspOwf);
        assert!(!result.success, "P-SSP-OWF must resist canary reuse: {result:?}");
        assert_eq!(result.final_outcome, Some(crate::oracle::RequestOutcome::Detected));
    }

    #[test]
    fn reuse_needs_only_a_single_connection() {
        let result = run_against(SchemeKind::Ssp);
        assert_eq!(result.trials, 1);
    }

    #[test]
    fn leaked_canary_matches_the_scheme_region_size() {
        for kind in [SchemeKind::Ssp, SchemeKind::Pssp, SchemeKind::PsspOwf] {
            let result = run_against(kind);
            let expected = kind.scheme().canary_region_words() as usize * 8;
            assert_eq!(result.recovered_canary.map(|c| c.len()), Some(expected), "{kind}");
        }
    }
}
