//! Code generation: MiniC module + scheme → executable [`Program`].
//!
//! This is the analogue of the paper's `libP-SSP.so` LLVM plugin (§V-B): for
//! every function the compiler establishes the frame, asks the active
//! [`CanaryScheme`] for its prologue, lowers the body, and asks the scheme
//! for its epilogue before `leaveq; retq`.

use std::collections::HashMap;

use polycanary_core::scheme::{CanaryScheme, SchemeKind};
use polycanary_vm::inst::{FuncId, Inst};
use polycanary_vm::machine::Machine;
use polycanary_vm::program::Program;
use polycanary_vm::reg::Reg;

use crate::error::CompileError;
use crate::frame::{layout_frame, FrameLayout};
use crate::ir::{ModuleDef, Stmt, WriteSource};
use crate::pass::PassManager;

/// The result of compiling a MiniC module.
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// The executable program.
    pub program: Program,
    /// The scheme the module was compiled with (per-function overrides, if
    /// any, are recorded in [`CompiledModule::function_schemes`]).
    pub scheme: SchemeKind,
    /// Frame layout of every function, indexed like the program's functions.
    pub frames: Vec<FrameLayout>,
    /// The scheme actually applied to each function.
    pub function_schemes: Vec<SchemeKind>,
    /// Name → function id map.
    pub by_name: HashMap<String, FuncId>,
}

impl CompiledModule {
    /// Frame layout of a function by name.
    pub fn frame(&self, name: &str) -> Option<&FrameLayout> {
        self.by_name.get(name).map(|id| &self.frames[id.0])
    }

    /// Total encoded code size in bytes (the `.text` section).
    pub fn code_size(&self) -> u64 {
        self.program.text_size()
    }

    /// Builds a [`Machine`] running this module under the runtime hooks of
    /// the scheme it was compiled with.
    pub fn into_machine(self, seed: u64) -> Machine {
        let hooks = self.scheme.scheme().runtime_hooks(seed ^ 0xB007_0000_0000_0001);
        Machine::new(self.program, hooks, seed)
    }
}

/// The MiniC compiler, parameterised by a canary scheme.
pub struct Compiler {
    scheme_kind: SchemeKind,
    scheme: Box<dyn CanaryScheme>,
    passes: PassManager,
    overrides: HashMap<String, SchemeKind>,
}

impl std::fmt::Debug for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiler")
            .field("scheme", &self.scheme_kind)
            .field("overrides", &self.overrides)
            .finish()
    }
}

impl Compiler {
    /// Creates a compiler that protects every function with `kind`.
    pub fn new(kind: SchemeKind) -> Self {
        Compiler {
            scheme_kind: kind,
            scheme: kind.scheme(),
            passes: PassManager::standard(),
            overrides: HashMap::new(),
        }
    }

    /// Overrides the scheme for a single function — used by the
    /// compatibility experiments of §VI-C, where P-SSP code and SSP code are
    /// mixed in the same binary (e.g. application vs glibc).
    #[must_use]
    pub fn with_function_scheme(mut self, function: impl Into<String>, kind: SchemeKind) -> Self {
        self.overrides.insert(function.into(), kind);
        self
    }

    /// The scheme this compiler applies by default.
    pub fn scheme_kind(&self) -> SchemeKind {
        self.scheme_kind
    }

    /// Compiles `module` into an executable program.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the module fails validation or a frame
    /// cannot be laid out.
    pub fn compile(&self, module: &ModuleDef) -> Result<CompiledModule, CompileError> {
        module.validate()?;

        // Function ids are assigned by declaration order.
        let ids: HashMap<String, FuncId> =
            module.functions.iter().enumerate().map(|(i, f)| (f.name.clone(), FuncId(i))).collect();

        let mut program = Program::new();
        let mut frames = Vec::with_capacity(module.functions.len());
        let mut function_schemes = Vec::with_capacity(module.functions.len());

        for func in &module.functions {
            let kind = self.overrides.get(&func.name).copied().unwrap_or(self.scheme_kind);
            let scheme: Box<dyn CanaryScheme>;
            let scheme_ref: &dyn CanaryScheme = if kind == self.scheme_kind {
                self.scheme.as_ref()
            } else {
                scheme = kind.scheme();
                scheme.as_ref()
            };

            let analysis = self.passes.run(func);
            let layout = layout_frame(func, scheme_ref)?;
            debug_assert_eq!(analysis.needs_protection, layout.info.protected);

            let insts = lower_function(func, &layout, scheme_ref, &ids)?;
            program
                .add_function(func.name.clone(), insts)
                .map_err(|_| CompileError::DuplicateFunction { name: func.name.clone() })?;
            frames.push(layout);
            function_schemes.push(kind);
        }

        let entry = ids[&module.entry];
        program.set_entry(entry);
        program.finalize();

        Ok(CompiledModule {
            program,
            scheme: self.scheme_kind,
            frames,
            function_schemes,
            by_name: ids,
        })
    }
}

/// Lowers one function to VM instructions.
fn lower_function(
    func: &crate::ir::FunctionDef,
    layout: &FrameLayout,
    scheme: &dyn CanaryScheme,
    ids: &HashMap<String, FuncId>,
) -> Result<Vec<Inst>, CompileError> {
    let mut insts = Vec::new();

    // Frame establishment (Code 1, lines 1–3).
    insts.push(Inst::PushReg(Reg::Rbp));
    insts.push(Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp });
    if layout.info.frame_size > 0 {
        insts.push(Inst::SubRspImm(layout.info.frame_size));
    }

    // Scheme prologue.
    insts.extend(scheme.emit_prologue(&layout.info));

    // Body.
    for stmt in &func.body {
        match stmt {
            Stmt::Compute { cycles } => insts.push(Inst::Compute(*cycles)),
            Stmt::WriteBuffer { local, source } => {
                let offset = layout.local_offset(*local);
                match source {
                    WriteSource::InputUnbounded => {
                        insts.push(Inst::CopyInputToFrame { offset });
                    }
                    WriteSource::InputBounded => {
                        let max_len = func.locals[*local].kind.size();
                        insts.push(Inst::CopyInputToFrameBounded { offset, max_len });
                    }
                }
            }
            Stmt::Call { callee } => {
                let id = ids.get(callee).copied().ok_or_else(|| CompileError::UnknownCallee {
                    function: func.name.clone(),
                    callee: callee.clone(),
                })?;
                insts.push(Inst::CallFn(id));
            }
            Stmt::SetReturn { value } => {
                insts.push(Inst::MovImmToReg { dst: Reg::Rax, imm: *value });
            }
            Stmt::LeakFrame { local, words } => {
                let base = layout.local_offset(*local);
                for w in 0..*words {
                    insts.push(Inst::MovFrameToReg { dst: Reg::Rax, offset: base + 8 * w as i32 });
                    insts.push(Inst::OutputReg(Reg::Rax));
                }
            }
        }
    }

    // Scheme epilogue followed by frame teardown (Code 2, lines 6–8).
    insts.extend(scheme.emit_epilogue(&layout.info));
    insts.push(Inst::Leave);
    insts.push(Inst::Ret);
    Ok(insts)
}

/// Code-expansion report for Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeExpansion {
    /// Size of the module compiled without protection.
    pub native_bytes: u64,
    /// Size of the module compiled with the scheme under test.
    pub scheme_bytes: u64,
}

impl CodeExpansion {
    /// Expansion as a fraction (0.0027 ≙ 0.27 %).
    pub fn ratio(&self) -> f64 {
        if self.native_bytes == 0 {
            0.0
        } else {
            (self.scheme_bytes as f64 - self.native_bytes as f64) / self.native_bytes as f64
        }
    }

    /// Expansion in percent.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }
}

/// Measures the code expansion of compiling `module` with `kind` relative to
/// the unprotected build (Table II's "Compilation" column).
///
/// # Errors
///
/// Propagates compilation errors from either build.
pub fn code_expansion(module: &ModuleDef, kind: SchemeKind) -> Result<CodeExpansion, CompileError> {
    let native = Compiler::new(SchemeKind::Native).compile(module)?.code_size();
    let scheme = Compiler::new(kind).compile(module)?.code_size();
    Ok(CodeExpansion { native_bytes: native, scheme_bytes: scheme })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, ModuleBuilder};
    use polycanary_vm::cpu::Exit;
    use polycanary_vm::machine::Machine;

    fn victim_module() -> ModuleDef {
        ModuleBuilder::new()
            .function(
                FunctionBuilder::new("handle_request")
                    .buffer("buf", 64)
                    .vulnerable_copy("buf")
                    .compute(200)
                    .returns(0)
                    .build(),
            )
            .function(
                FunctionBuilder::new("main")
                    .scalar("status")
                    .call("handle_request")
                    .returns(0)
                    .build(),
            )
            .entry("main")
            .build()
            .unwrap()
    }

    fn run_with_input(kind: SchemeKind, input: Vec<u8>) -> Exit {
        let compiled = Compiler::new(kind).compile(&victim_module()).unwrap();
        let mut machine = compiled.into_machine(0xFEED);
        let mut process = machine.spawn();
        process.set_input(input);
        machine.run(&mut process).unwrap().exit
    }

    #[test]
    fn benign_input_runs_normally_under_every_scheme() {
        for kind in SchemeKind::ALL {
            let exit = run_with_input(kind, vec![0x41; 16]);
            assert!(exit.is_normal(), "{kind}: {exit:?}");
        }
    }

    #[test]
    fn overflow_is_detected_by_every_protected_scheme() {
        // 64-byte buffer + enough to clobber every canary layout and the
        // saved frame pointer and return address.
        let overflow = vec![0x41u8; 64 + 48];
        for kind in SchemeKind::ALL {
            let exit = run_with_input(kind, overflow.clone());
            if kind == SchemeKind::Native {
                assert!(!exit.is_detection(), "native has no canary to fire");
            } else {
                assert!(exit.is_detection(), "{kind} must detect the smash: {exit:?}");
            }
        }
    }

    #[test]
    fn compiled_frames_are_recorded_per_function() {
        let compiled = Compiler::new(SchemeKind::Pssp).compile(&victim_module()).unwrap();
        let frame = compiled.frame("handle_request").unwrap();
        assert!(frame.info.protected);
        assert_eq!(frame.canary_words, 2);
        let main_frame = compiled.frame("main").unwrap();
        assert!(!main_frame.info.protected);
        assert!(compiled.frame("missing").is_none());
    }

    #[test]
    fn function_scheme_overrides_apply() {
        let compiled = Compiler::new(SchemeKind::Pssp)
            .with_function_scheme("handle_request", SchemeKind::Ssp)
            .compile(&victim_module())
            .unwrap();
        assert_eq!(compiled.function_schemes[0], SchemeKind::Ssp);
        assert_eq!(compiled.function_schemes[1], SchemeKind::Pssp);
        // The overridden function has the SSP frame (one canary word).
        assert_eq!(compiled.frame("handle_request").unwrap().canary_words, 1);
    }

    #[test]
    fn mixed_ssp_and_pssp_module_runs_without_false_positives() {
        // §VI-C compatibility: SSP functions and P-SSP functions coexist in
        // one control flow under the P-SSP runtime.
        let compiled = Compiler::new(SchemeKind::Pssp)
            .with_function_scheme("handle_request", SchemeKind::Ssp)
            .compile(&victim_module())
            .unwrap();
        let hooks = SchemeKind::Pssp.scheme().runtime_hooks(1);
        let mut machine = Machine::new(compiled.program, hooks, 7);
        let mut process = machine.spawn();
        process.set_input(vec![1, 2, 3]);
        let outcome = machine.run(&mut process).unwrap();
        assert!(outcome.exit.is_normal(), "{:?}", outcome.exit);
    }

    #[test]
    fn code_expansion_is_positive_for_pssp() {
        let expansion = code_expansion(&victim_module(), SchemeKind::Pssp).unwrap();
        assert!(expansion.scheme_bytes > expansion.native_bytes);
        assert!(expansion.percent() > 0.0);
    }

    #[test]
    fn code_expansion_is_small_for_realistic_function_bodies() {
        // Table II reports 0.27 % expansion on SPEC-sized programs: the
        // canary handling is a fixed few dozen bytes per function, so the
        // ratio shrinks as function bodies grow.  Model a program whose
        // functions carry realistic amounts of body code.
        let mut builder = ModuleBuilder::new();
        for i in 0..8 {
            let mut f =
                FunctionBuilder::new(format!("work_{i}")).buffer("buf", 64).safe_copy("buf");
            for _ in 0..200 {
                f = f.compute(50);
            }
            builder = builder.function(f.returns(0).build());
        }
        let module = builder.build().unwrap();
        let expansion = code_expansion(&module, SchemeKind::Pssp).unwrap();
        assert!(expansion.percent() > 0.0);
        assert!(
            expansion.percent() < 2.0,
            "expansion on body-heavy programs should be small, got {:.2}%",
            expansion.percent()
        );
    }

    #[test]
    fn pssp_costs_more_bytes_than_ssp_which_costs_more_than_native() {
        let module = victim_module();
        let native = Compiler::new(SchemeKind::Native).compile(&module).unwrap().code_size();
        let ssp = Compiler::new(SchemeKind::Ssp).compile(&module).unwrap().code_size();
        let pssp = Compiler::new(SchemeKind::Pssp).compile(&module).unwrap().code_size();
        assert!(native < ssp);
        assert!(ssp < pssp);
    }

    #[test]
    fn unknown_callee_is_rejected_at_compile_time() {
        let module = ModuleDef {
            functions: vec![FunctionBuilder::new("main").call("ghost").build()],
            entry: "main".into(),
        };
        let err = Compiler::new(SchemeKind::Ssp).compile(&module).unwrap_err();
        assert!(matches!(err, CompileError::UnknownCallee { .. }));
    }

    #[test]
    fn leak_statement_discloses_stack_words() {
        let module = ModuleBuilder::new()
            .function(
                FunctionBuilder::new("leaky")
                    .buffer("buf", 16)
                    .safe_copy("buf")
                    .leak("buf", 4)
                    .returns(0)
                    .build(),
            )
            .build()
            .unwrap();
        let compiled = Compiler::new(SchemeKind::Ssp).compile(&module).unwrap();
        let mut machine = compiled.into_machine(3);
        let mut process = machine.spawn();
        process.set_input(b"AAAABBBBCCCCDDDD".to_vec());
        let outcome = machine.run(&mut process).unwrap();
        assert!(outcome.exit.is_normal());
        let output = process.take_output();
        // 4 words = 32 bytes: the 16 buffer bytes plus 16 bytes beyond them
        // (which, under SSP, include the canary).
        assert_eq!(output.len(), 32);
        assert_eq!(&output[..16], b"AAAABBBBCCCCDDDD");
    }

    #[test]
    fn lv_detects_overflow_that_stops_short_of_the_return_canary() {
        // A scratch buffer sits between the critical buffer and the canary
        // region: an overflow out of the critical buffer that corrupts only
        // its guard canary (and part of the scratch buffer) is caught by
        // P-SSP-LV but missed by plain P-SSP, whose canaries are untouched.
        let module = ModuleBuilder::new()
            .function(
                FunctionBuilder::new("process_record")
                    .buffer("scratch", 32)
                    .critical_buffer("record", 32)
                    .vulnerable_copy("record")
                    .returns(0)
                    .build(),
            )
            .build()
            .unwrap();
        // Overflow by 8 bytes past `record`: under P-SSP-LV this clobbers the
        // guard canary directly above it; under plain P-SSP it merely dents
        // the scratch buffer, far below the split canary pair.
        let payload = vec![0x42u8; 32 + 8];

        let lv = Compiler::new(SchemeKind::PsspLv).compile(&module).unwrap();
        let mut machine = lv.into_machine(5);
        let mut process = machine.spawn();
        process.set_input(payload.clone());
        assert!(machine.run(&mut process).unwrap().exit.is_detection());

        let pssp = Compiler::new(SchemeKind::Pssp).compile(&module).unwrap();
        let mut machine = pssp.into_machine(5);
        let mut process = machine.spawn();
        process.set_input(payload);
        let exit = machine.run(&mut process).unwrap().exit;
        assert!(exit.is_normal(), "plain P-SSP misses a local-variable-only overflow: {exit:?}");
    }
}
