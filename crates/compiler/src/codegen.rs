//! Code generation: MiniC module + scheme → executable [`Program`].
//!
//! This is the analogue of the paper's `libP-SSP.so` LLVM plugin (§V-B): for
//! every function the compiler establishes the frame, asks the active
//! [`CanaryScheme`] for its prologue, lowers the body, and asks the scheme
//! for its epilogue before `leaveq; retq`.

use std::collections::HashMap;

use polycanary_core::scheme::{CanaryScheme, SchemeKind};
use polycanary_vm::inst::{FuncId, Inst};
use polycanary_vm::machine::Machine;
use polycanary_vm::program::Program;
use polycanary_vm::reg::Reg;

use crate::error::CompileError;
use crate::frame::{layout_frame, FrameLayout};
use crate::ir::{ModuleDef, Stmt, WriteSource};
use crate::pass::{FunctionAnalysis, LoweredBody, OptLevel, PassCtx, PassManager};

/// The result of compiling a MiniC module.
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// The executable program.
    pub program: Program,
    /// The scheme the module was compiled with (per-function overrides, if
    /// any, are recorded in [`CompiledModule::function_schemes`]).
    pub scheme: SchemeKind,
    /// The optimization level the module was compiled at.
    pub opt_level: OptLevel,
    /// Frame layout of every function, indexed like the program's functions.
    pub frames: Vec<FrameLayout>,
    /// The scheme actually applied to each function.
    pub function_schemes: Vec<SchemeKind>,
    /// The pipeline's per-function analysis results (protection decision,
    /// post-optimization cost estimate), indexed like the functions.
    pub analyses: Vec<FunctionAnalysis>,
    /// Name → function id map.
    pub by_name: HashMap<String, FuncId>,
}

impl CompiledModule {
    /// Frame layout of a function by name.
    pub fn frame(&self, name: &str) -> Option<&FrameLayout> {
        self.by_name.get(name).map(|id| &self.frames[id.0])
    }

    /// Pass analysis of a function by name.
    pub fn analysis(&self, name: &str) -> Option<&FunctionAnalysis> {
        self.by_name.get(name).map(|id| &self.analyses[id.0])
    }

    /// Total encoded code size in bytes (the `.text` section).
    pub fn code_size(&self) -> u64 {
        self.program.text_size()
    }

    /// Builds a [`Machine`] running this module under the runtime hooks of
    /// the scheme it was compiled with.
    pub fn into_machine(self, seed: u64) -> Machine {
        let hooks = self.scheme.scheme().runtime_hooks(seed ^ 0xB007_0000_0000_0001);
        Machine::new(self.program, hooks, seed)
    }
}

/// The MiniC compiler, parameterised by a canary scheme.
pub struct Compiler {
    scheme_kind: SchemeKind,
    scheme: Box<dyn CanaryScheme>,
    opt_level: OptLevel,
    preserve_canary_shapes: bool,
    passes: PassManager,
    overrides: HashMap<String, SchemeKind>,
}

impl std::fmt::Debug for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiler")
            .field("scheme", &self.scheme_kind)
            .field("opt_level", &self.opt_level)
            .field("overrides", &self.overrides)
            .finish()
    }
}

impl Compiler {
    /// Creates a compiler that protects every function with `kind`, at the
    /// default [`OptLevel::O0`] (the historical unoptimized pipeline).
    pub fn new(kind: SchemeKind) -> Self {
        Compiler {
            scheme_kind: kind,
            scheme: kind.scheme(),
            opt_level: OptLevel::O0,
            preserve_canary_shapes: false,
            passes: PassManager::standard(OptLevel::O0),
            overrides: HashMap::new(),
        }
    }

    /// Selects the optimization level (rebuilds the standard pipeline).
    #[must_use]
    pub fn with_opt_level(mut self, opt: OptLevel) -> Self {
        self.opt_level = opt;
        self.passes = PassManager::standard(opt);
        self
    }

    /// Forbids the instruction-level passes from reshaping canary prologue
    /// and epilogue sequences.  Builds destined for the binary rewriter need
    /// this: the rewriter pattern-matches the canonical SSP shapes.
    #[must_use]
    pub fn with_preserved_canary_shapes(mut self) -> Self {
        self.preserve_canary_shapes = true;
        self
    }

    /// The optimization level this compiler runs at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// Names of the passes in this compiler's pipeline, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.pass_names()
    }

    /// Overrides the scheme for a single function — used by the
    /// compatibility experiments of §VI-C, where P-SSP code and SSP code are
    /// mixed in the same binary (e.g. application vs glibc).
    #[must_use]
    pub fn with_function_scheme(mut self, function: impl Into<String>, kind: SchemeKind) -> Self {
        self.overrides.insert(function.into(), kind);
        self
    }

    /// The scheme this compiler applies by default.
    pub fn scheme_kind(&self) -> SchemeKind {
        self.scheme_kind
    }

    /// Compiles `module` into an executable program.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the module fails validation or a frame
    /// cannot be laid out.
    pub fn compile(&self, module: &ModuleDef) -> Result<CompiledModule, CompileError> {
        module.validate()?;

        // Function ids are assigned by declaration order.
        let ids: HashMap<String, FuncId> =
            module.functions.iter().enumerate().map(|(i, f)| (f.name.clone(), FuncId(i))).collect();

        let mut program = Program::new();
        let mut frames = Vec::with_capacity(module.functions.len());
        let mut function_schemes = Vec::with_capacity(module.functions.len());
        let mut analyses = Vec::with_capacity(module.functions.len());

        for func in &module.functions {
            let kind = self.overrides.get(&func.name).copied().unwrap_or(self.scheme_kind);
            let scheme: Box<dyn CanaryScheme>;
            let scheme_ref: &dyn CanaryScheme = if kind == self.scheme_kind {
                self.scheme.as_ref()
            } else {
                scheme = kind.scheme();
                scheme.as_ref()
            };

            // Stage 1: analysis over the unoptimized IR.
            let mut analysis = self.passes.run(func);

            // Stage 2: IR transforms (folding, fusion, DSE), then layout.
            let mut func_opt = func.clone();
            self.passes.transform_ir(&mut func_opt);
            let layout = layout_frame(&func_opt, scheme_ref)?;
            debug_assert_eq!(analysis.needs_protection, layout.info.protected);

            // Stage 3: lower, then instruction transforms (scheduling,
            // canary-load elimination, cost estimation).
            let mut body = lower_function(&func_opt, &layout, scheme_ref, &ids)?;
            let ctx = PassCtx {
                scheme: kind,
                layout: &layout,
                preserve_canary_shapes: self.preserve_canary_shapes,
            };
            self.passes.transform_insts(&mut body, &ctx, &mut analysis);

            program
                .add_function(func.name.clone(), body.insts)
                .map_err(|_| CompileError::DuplicateFunction { name: func.name.clone() })?;
            frames.push(layout);
            function_schemes.push(kind);
            analyses.push(analysis);
        }

        let entry = ids[&module.entry];
        program.set_entry(entry);
        program.finalize();

        Ok(CompiledModule {
            program,
            scheme: self.scheme_kind,
            opt_level: self.opt_level,
            frames,
            function_schemes,
            analyses,
            by_name: ids,
        })
    }
}

/// Lowers one function to VM instructions, recording where the scheme
/// prologue and epilogue landed so instruction-level passes can reason
/// about them.
pub(crate) fn lower_function(
    func: &crate::ir::FunctionDef,
    layout: &FrameLayout,
    scheme: &dyn CanaryScheme,
    ids: &HashMap<String, FuncId>,
) -> Result<LoweredBody, CompileError> {
    let mut insts = Vec::new();

    // Frame establishment (Code 1, lines 1–3).
    insts.push(Inst::PushReg(Reg::Rbp));
    insts.push(Inst::MovRegReg { dst: Reg::Rbp, src: Reg::Rsp });
    if layout.info.frame_size > 0 {
        insts.push(Inst::SubRspImm(layout.info.frame_size));
    }

    // Scheme prologue.
    let prologue_start = insts.len();
    insts.extend(scheme.emit_prologue(&layout.info));
    let prologue = prologue_start..insts.len();

    // Body.
    for stmt in &func.body {
        match stmt {
            Stmt::Compute { cycles } => insts.push(Inst::Compute(*cycles)),
            Stmt::InitBuffer { local } => {
                // Zero-fill as a run of 4-byte `movl $0` stores over the
                // buffer's (word-rounded) slot — canary slots are never in
                // range by construction.
                let base = layout.local_offset(*local);
                let rounded = func.locals[*local].kind.size().div_ceil(8) * 8;
                for delta in (0..rounded).step_by(4) {
                    insts.push(Inst::MovImmToFrame { offset: base + delta as i32, imm: 0 });
                }
            }
            Stmt::WriteBuffer { local, source } => {
                let offset = layout.local_offset(*local);
                match source {
                    WriteSource::InputUnbounded => {
                        insts.push(Inst::CopyInputToFrame { offset });
                    }
                    WriteSource::InputBounded => {
                        let max_len = func.locals[*local].kind.size();
                        insts.push(Inst::CopyInputToFrameBounded { offset, max_len });
                    }
                }
            }
            Stmt::Call { callee } => {
                let id = ids.get(callee).copied().ok_or_else(|| CompileError::UnknownCallee {
                    function: func.name.clone(),
                    callee: callee.clone(),
                })?;
                insts.push(Inst::CallFn(id));
            }
            Stmt::SetReturn { value } => {
                insts.push(Inst::MovImmToReg { dst: Reg::Rax, imm: *value });
            }
            Stmt::LeakFrame { local, words } => {
                let base = layout.local_offset(*local);
                for w in 0..*words {
                    insts.push(Inst::MovFrameToReg { dst: Reg::Rax, offset: base + 8 * w as i32 });
                    insts.push(Inst::OutputReg(Reg::Rax));
                }
            }
        }
    }

    // Scheme epilogue followed by frame teardown (Code 2, lines 6–8).
    let epilogue_start = insts.len();
    insts.extend(scheme.emit_epilogue(&layout.info));
    let epilogue = epilogue_start..insts.len();
    insts.push(Inst::Leave);
    insts.push(Inst::Ret);
    Ok(LoweredBody { insts, prologue, epilogue })
}

/// Code-expansion report for Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeExpansion {
    /// Size of the module compiled without protection.
    pub native_bytes: u64,
    /// Size of the module compiled with the scheme under test.
    pub scheme_bytes: u64,
}

impl CodeExpansion {
    /// Expansion as a fraction (0.0027 ≙ 0.27 %).
    pub fn ratio(&self) -> f64 {
        if self.native_bytes == 0 {
            0.0
        } else {
            (self.scheme_bytes as f64 - self.native_bytes as f64) / self.native_bytes as f64
        }
    }

    /// Expansion in percent.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }
}

/// Measures the code expansion of compiling `module` with `kind` relative to
/// the unprotected build (Table II's "Compilation" column).
///
/// # Errors
///
/// Propagates compilation errors from either build.
pub fn code_expansion(module: &ModuleDef, kind: SchemeKind) -> Result<CodeExpansion, CompileError> {
    let native = Compiler::new(SchemeKind::Native).compile(module)?.code_size();
    let scheme = Compiler::new(kind).compile(module)?.code_size();
    Ok(CodeExpansion { native_bytes: native, scheme_bytes: scheme })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, ModuleBuilder};
    use polycanary_vm::cpu::Exit;
    use polycanary_vm::machine::Machine;

    fn victim_module() -> ModuleDef {
        ModuleBuilder::new()
            .function(
                FunctionBuilder::new("handle_request")
                    .buffer("buf", 64)
                    .vulnerable_copy("buf")
                    .compute(200)
                    .returns(0)
                    .build(),
            )
            .function(
                FunctionBuilder::new("main")
                    .scalar("status")
                    .call("handle_request")
                    .returns(0)
                    .build(),
            )
            .entry("main")
            .build()
            .unwrap()
    }

    fn run_with_input(kind: SchemeKind, input: Vec<u8>) -> Exit {
        let compiled = Compiler::new(kind).compile(&victim_module()).unwrap();
        let mut machine = compiled.into_machine(0xFEED);
        let mut process = machine.spawn();
        process.set_input(input);
        machine.run(&mut process).unwrap().exit
    }

    #[test]
    fn benign_input_runs_normally_under_every_scheme() {
        for kind in SchemeKind::ALL {
            let exit = run_with_input(kind, vec![0x41; 16]);
            assert!(exit.is_normal(), "{kind}: {exit:?}");
        }
    }

    #[test]
    fn overflow_is_detected_by_every_protected_scheme() {
        // 64-byte buffer + enough to clobber every canary layout and the
        // saved frame pointer and return address.
        let overflow = vec![0x41u8; 64 + 48];
        for kind in SchemeKind::ALL {
            let exit = run_with_input(kind, overflow.clone());
            if kind == SchemeKind::Native {
                assert!(!exit.is_detection(), "native has no canary to fire");
            } else {
                assert!(exit.is_detection(), "{kind} must detect the smash: {exit:?}");
            }
        }
    }

    #[test]
    fn compiled_frames_are_recorded_per_function() {
        let compiled = Compiler::new(SchemeKind::Pssp).compile(&victim_module()).unwrap();
        let frame = compiled.frame("handle_request").unwrap();
        assert!(frame.info.protected);
        assert_eq!(frame.canary_words, 2);
        let main_frame = compiled.frame("main").unwrap();
        assert!(!main_frame.info.protected);
        assert!(compiled.frame("missing").is_none());
    }

    #[test]
    fn function_scheme_overrides_apply() {
        let compiled = Compiler::new(SchemeKind::Pssp)
            .with_function_scheme("handle_request", SchemeKind::Ssp)
            .compile(&victim_module())
            .unwrap();
        assert_eq!(compiled.function_schemes[0], SchemeKind::Ssp);
        assert_eq!(compiled.function_schemes[1], SchemeKind::Pssp);
        // The overridden function has the SSP frame (one canary word).
        assert_eq!(compiled.frame("handle_request").unwrap().canary_words, 1);
    }

    #[test]
    fn mixed_ssp_and_pssp_module_runs_without_false_positives() {
        // §VI-C compatibility: SSP functions and P-SSP functions coexist in
        // one control flow under the P-SSP runtime.
        let compiled = Compiler::new(SchemeKind::Pssp)
            .with_function_scheme("handle_request", SchemeKind::Ssp)
            .compile(&victim_module())
            .unwrap();
        let hooks = SchemeKind::Pssp.scheme().runtime_hooks(1);
        let mut machine = Machine::new(compiled.program, hooks, 7);
        let mut process = machine.spawn();
        process.set_input(vec![1, 2, 3]);
        let outcome = machine.run(&mut process).unwrap();
        assert!(outcome.exit.is_normal(), "{:?}", outcome.exit);
    }

    #[test]
    fn code_expansion_is_positive_for_pssp() {
        let expansion = code_expansion(&victim_module(), SchemeKind::Pssp).unwrap();
        assert!(expansion.scheme_bytes > expansion.native_bytes);
        assert!(expansion.percent() > 0.0);
    }

    #[test]
    fn code_expansion_is_small_for_realistic_function_bodies() {
        // Table II reports 0.27 % expansion on SPEC-sized programs: the
        // canary handling is a fixed few dozen bytes per function, so the
        // ratio shrinks as function bodies grow.  Model a program whose
        // functions carry realistic amounts of body code.
        let mut builder = ModuleBuilder::new();
        for i in 0..8 {
            let mut f =
                FunctionBuilder::new(format!("work_{i}")).buffer("buf", 64).safe_copy("buf");
            for _ in 0..200 {
                f = f.compute(50);
            }
            builder = builder.function(f.returns(0).build());
        }
        let module = builder.build().unwrap();
        let expansion = code_expansion(&module, SchemeKind::Pssp).unwrap();
        assert!(expansion.percent() > 0.0);
        assert!(
            expansion.percent() < 2.0,
            "expansion on body-heavy programs should be small, got {:.2}%",
            expansion.percent()
        );
    }

    #[test]
    fn pssp_costs_more_bytes_than_ssp_which_costs_more_than_native() {
        let module = victim_module();
        let native = Compiler::new(SchemeKind::Native).compile(&module).unwrap().code_size();
        let ssp = Compiler::new(SchemeKind::Ssp).compile(&module).unwrap().code_size();
        let pssp = Compiler::new(SchemeKind::Pssp).compile(&module).unwrap().code_size();
        assert!(native < ssp);
        assert!(ssp < pssp);
    }

    #[test]
    fn unknown_callee_is_rejected_at_compile_time() {
        let module = ModuleDef {
            functions: vec![FunctionBuilder::new("main").call("ghost").build()],
            entry: "main".into(),
        };
        let err = Compiler::new(SchemeKind::Ssp).compile(&module).unwrap_err();
        assert!(matches!(err, CompileError::UnknownCallee { .. }));
    }

    #[test]
    fn leak_statement_discloses_stack_words() {
        let module = ModuleBuilder::new()
            .function(
                FunctionBuilder::new("leaky")
                    .buffer("buf", 16)
                    .safe_copy("buf")
                    .leak("buf", 4)
                    .returns(0)
                    .build(),
            )
            .build()
            .unwrap();
        let compiled = Compiler::new(SchemeKind::Ssp).compile(&module).unwrap();
        let mut machine = compiled.into_machine(3);
        let mut process = machine.spawn();
        process.set_input(b"AAAABBBBCCCCDDDD".to_vec());
        let outcome = machine.run(&mut process).unwrap();
        assert!(outcome.exit.is_normal());
        let output = process.take_output();
        // 4 words = 32 bytes: the 16 buffer bytes plus 16 bytes beyond them
        // (which, under SSP, include the canary).
        assert_eq!(output.len(), 32);
        assert_eq!(&output[..16], b"AAAABBBBCCCCDDDD");
    }

    fn leaf_insts(kind: SchemeKind, opt: OptLevel) -> Vec<Inst> {
        let compiled = Compiler::new(kind).with_opt_level(opt).compile(&victim_module()).unwrap();
        let id = compiled.by_name["handle_request"];
        compiled.program.function(id).unwrap().insts().to_vec()
    }

    #[test]
    fn o2_strength_reduces_the_ssp_epilogue_to_a_register_compare() {
        let o0 = leaf_insts(SchemeKind::Ssp, OptLevel::O0);
        let o2 = leaf_insts(SchemeKind::Ssp, OptLevel::O2);
        // The O0 epilogue re-loads the slot and XORs the TLS word.
        assert!(o0.iter().any(|i| matches!(i, Inst::XorTlsReg { .. })));
        // At O2 the leaf keeps the canary in a register: the TLS re-load and
        // the frame re-load disappear in favour of a direct compare.
        assert!(!o2.iter().any(|i| matches!(i, Inst::XorTlsReg { .. })));
        assert!(o2.iter().any(|i| matches!(i, Inst::CmpFrameReg { offset: -8, .. })));
        // The prologue's TLS load survives (renamed, not duplicated).
        assert_eq!(o2.iter().filter(|i| matches!(i, Inst::MovTlsToReg { .. })).count(), 1);
    }

    #[test]
    fn o2_lowers_the_estimated_cost_for_every_compiler_scheme() {
        for kind in SchemeKind::ALL {
            if kind == SchemeKind::Native || kind == SchemeKind::PsspBin32 {
                continue; // nothing to reduce / deliberately shape-locked
            }
            let module = victim_module();
            let o0 = Compiler::new(kind).compile(&module).unwrap();
            let o2 = Compiler::new(kind).with_opt_level(OptLevel::O2).compile(&module).unwrap();
            let c0 = o0.analysis("handle_request").unwrap().estimated_body_cycles;
            let c2 = o2.analysis("handle_request").unwrap().estimated_body_cycles;
            assert!(c2 < c0, "{kind}: O2 estimate {c2} must beat O0 estimate {c0}");
        }
    }

    #[test]
    fn preserved_canary_shapes_disable_sequence_rewrites() {
        let compiled = Compiler::new(SchemeKind::Ssp)
            .with_opt_level(OptLevel::O2)
            .with_preserved_canary_shapes()
            .compile(&victim_module())
            .unwrap();
        let id = compiled.by_name["handle_request"];
        let insts = compiled.program.function(id).unwrap().insts();
        assert!(insts.iter().any(|i| matches!(i, Inst::XorTlsReg { .. })));
    }

    #[test]
    fn canary_schedule_sinks_the_store_and_hoists_the_check() {
        let module = ModuleBuilder::new()
            .function(
                FunctionBuilder::new("worker")
                    .buffer("buf", 32)
                    .compute(100)
                    .safe_copy("buf")
                    .returns(0)
                    .compute(50)
                    .build(),
            )
            .build()
            .unwrap();
        let compiled =
            Compiler::new(SchemeKind::Ssp).with_opt_level(OptLevel::O1).compile(&module).unwrap();
        let id = compiled.by_name["worker"];
        let insts = compiled.program.function(id).unwrap().insts();
        let setup_compute = insts.iter().position(|i| matches!(i, Inst::Compute(100))).unwrap();
        let store = insts.iter().position(|i| matches!(i, Inst::MovRegToFrame { .. })).unwrap();
        let check = insts.iter().position(|i| matches!(i, Inst::XorTlsReg { .. })).unwrap();
        let tail_compute = insts.iter().position(|i| matches!(i, Inst::Compute(50))).unwrap();
        assert!(setup_compute < store, "setup computation runs before the canary store");
        assert!(check < tail_compute, "the check is hoisted above trailing computation");
        // The moved computation still cannot touch the protected window: the
        // input copy remains strictly between store and check.
        let copy =
            insts.iter().position(|i| matches!(i, Inst::CopyInputToFrameBounded { .. })).unwrap();
        assert!(store < copy && copy < check);
    }

    #[test]
    fn dead_zero_fills_are_eliminated_only_when_unobservable() {
        let module = |leaky: bool| {
            let mut f = FunctionBuilder::new("f").buffer("buf", 16).zero_fill("buf");
            if leaky {
                f = f.leak("buf", 2);
            }
            ModuleBuilder::new().function(f.returns(0).build()).build().unwrap()
        };
        let count_zero_stores = |module: &ModuleDef, opt: OptLevel| {
            let compiled =
                Compiler::new(SchemeKind::Ssp).with_opt_level(opt).compile(module).unwrap();
            let id = compiled.by_name["f"];
            compiled
                .program
                .function(id)
                .unwrap()
                .insts()
                .iter()
                .filter(|i| matches!(i, Inst::MovImmToFrame { imm: 0, .. }))
                .count()
        };
        assert_eq!(count_zero_stores(&module(false), OptLevel::O0), 4);
        assert_eq!(count_zero_stores(&module(false), OptLevel::O2), 0);
        assert_eq!(count_zero_stores(&module(true), OptLevel::O2), 4, "leaky fills observable");
    }

    #[test]
    fn optimized_builds_preserve_detection_under_every_scheme() {
        let overflow = vec![0x41u8; 64 + 48];
        for kind in SchemeKind::ALL {
            for opt in OptLevel::ALL {
                let compiled =
                    Compiler::new(kind).with_opt_level(opt).compile(&victim_module()).unwrap();
                let mut machine = compiled.into_machine(0xFEED);
                let mut process = machine.spawn();
                process.set_input(overflow.clone());
                let exit = machine.run(&mut process).unwrap().exit;
                if kind == SchemeKind::Native {
                    assert!(!exit.is_detection());
                } else {
                    assert!(exit.is_detection(), "{kind}@{opt} must detect: {exit:?}");
                }
                let mut machine2 = Compiler::new(kind)
                    .with_opt_level(opt)
                    .compile(&victim_module())
                    .unwrap()
                    .into_machine(0xFEED);
                let mut benign = machine2.spawn();
                benign.set_input(vec![0x41; 16]);
                let exit = machine2.run(&mut benign).unwrap().exit;
                assert!(exit.is_normal(), "{kind}@{opt} benign: {exit:?}");
            }
        }
    }

    #[test]
    fn cost_estimate_matches_vm_cycles_on_straight_line_functions() {
        let module = ModuleBuilder::new()
            .function(FunctionBuilder::new("f").buffer("buf", 32).compute(100).returns(7).build())
            .build()
            .unwrap();
        for kind in [SchemeKind::Ssp, SchemeKind::Pssp] {
            for opt in [OptLevel::O0, OptLevel::O2] {
                let compiled = Compiler::new(kind).with_opt_level(opt).compile(&module).unwrap();
                let estimate = compiled.analysis("f").unwrap().estimated_body_cycles;
                let mut machine = compiled.into_machine(11);
                let mut process = machine.spawn();
                let outcome = machine.run(&mut process).unwrap();
                assert!(outcome.exit.is_normal());
                assert_eq!(
                    estimate, outcome.cycles,
                    "{kind}@{opt}: estimate must match the VM's benign run"
                );
            }
        }
    }

    #[test]
    fn o2_pipeline_is_idempotent_on_prng_programs() {
        use crate::frame::layout_frame;
        use crate::pass::PassManager;

        struct Rng(u64);
        impl Rng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
            fn below(&mut self, n: u64) -> u64 {
                self.next() % n
            }
        }

        for seed in 0..16u64 {
            let mut rng = Rng(seed);
            let mut f = FunctionBuilder::new("f");
            let critical = rng.below(2) == 0;
            f = if critical { f.critical_buffer("buf", 32) } else { f.buffer("buf", 32) };
            for _ in 0..rng.below(3) {
                f = f.compute(rng.below(200));
            }
            if rng.below(2) == 0 {
                f = f.zero_fill("buf");
            }
            if rng.below(2) == 0 {
                f = f.safe_copy("buf");
            }
            if rng.below(3) == 0 {
                f = f.leak("buf", 2);
            }
            f = f.returns(rng.below(100)).compute(rng.below(50));
            let func = f.build();

            let pm = PassManager::standard(OptLevel::O2);
            let mut ir_once = func.clone();
            pm.transform_ir(&mut ir_once);
            let mut ir_twice = ir_once.clone();
            pm.transform_ir(&mut ir_twice);
            assert_eq!(ir_once, ir_twice, "transform_ir must be idempotent (seed {seed})");

            for kind in SchemeKind::ALL {
                let scheme = kind.scheme();
                let layout = layout_frame(&ir_once, scheme.as_ref()).unwrap();
                let ids = HashMap::from([("f".to_string(), FuncId(0))]);
                let mut body = lower_function(&ir_once, &layout, scheme.as_ref(), &ids).unwrap();
                let mut analysis = pm.run(&ir_once);
                let ctx = PassCtx { scheme: kind, layout: &layout, preserve_canary_shapes: false };
                pm.transform_insts(&mut body, &ctx, &mut analysis);
                let once = body.clone();
                pm.transform_insts(&mut body, &ctx, &mut analysis);
                assert_eq!(body, once, "{kind} seed {seed}: O2 twice must equal O2 once");
            }
        }
    }

    #[test]
    fn lv_detects_overflow_that_stops_short_of_the_return_canary() {
        // A scratch buffer sits between the critical buffer and the canary
        // region: an overflow out of the critical buffer that corrupts only
        // its guard canary (and part of the scratch buffer) is caught by
        // P-SSP-LV but missed by plain P-SSP, whose canaries are untouched.
        let module = ModuleBuilder::new()
            .function(
                FunctionBuilder::new("process_record")
                    .buffer("scratch", 32)
                    .critical_buffer("record", 32)
                    .vulnerable_copy("record")
                    .returns(0)
                    .build(),
            )
            .build()
            .unwrap();
        // Overflow by 8 bytes past `record`: under P-SSP-LV this clobbers the
        // guard canary directly above it; under plain P-SSP it merely dents
        // the scratch buffer, far below the split canary pair.
        let payload = vec![0x42u8; 32 + 8];

        let lv = Compiler::new(SchemeKind::PsspLv).compile(&module).unwrap();
        let mut machine = lv.into_machine(5);
        let mut process = machine.spawn();
        process.set_input(payload.clone());
        assert!(machine.run(&mut process).unwrap().exit.is_detection());

        let pssp = Compiler::new(SchemeKind::Pssp).compile(&module).unwrap();
        let mut machine = pssp.into_machine(5);
        let mut process = machine.spawn();
        process.set_input(payload);
        let exit = machine.run(&mut process).unwrap().exit;
        assert!(exit.is_normal(), "plain P-SSP misses a local-variable-only overflow: {exit:?}");
    }
}
