//! The pass framework mirroring the paper's LLVM deployment (§V-B).
//!
//! The real P-SSP plugin is a `FunctionPass` registered with LLVM's pass
//! manager whose `runOnFunction` decides, per function, whether a canary is
//! needed and which locals deserve extra protection.  The MiniC compiler
//! keeps the same structure — a [`PassManager`] runs a pipeline of
//! [`FunctionPass`]es over each function — but the pipeline is no longer
//! analysis-only: passes run in three stages, mirroring a real optimizing
//! middle/back end:
//!
//! 1. **analyze** — inspect the IR and accumulate a [`FunctionAnalysis`]
//!    (protection policy, critical locals);
//! 2. **transform_ir** — rewrite the [`FunctionDef`] body (constant folding,
//!    compute fusion, dead-store elimination);
//! 3. **transform_insts** — rewrite the lowered [`Inst`] stream of a
//!    [`LoweredBody`] (prologue/epilogue scheduling, redundant canary-load
//!    elimination), with the final cost estimation consuming the
//!    post-optimization instructions.
//!
//! Which passes run is selected by [`OptLevel`] through
//! [`PassManager::standard`]; `O0` reproduces the historical analysis-only
//! pipeline byte for byte, so every default build is unchanged.  Every
//! transformed body must still re-prove the canary invariants in
//! `polycanary_verifier` — the optimizer relies on that gate rather than on
//! being trusted.

use std::ops::Range;

use polycanary_core::scheme::SchemeKind;
use polycanary_vm::inst::Inst;
use polycanary_vm::reg::Reg;

use crate::frame::FrameLayout;
use crate::ir::{FunctionDef, Stmt};

// ---------------------------------------------------------------------------
// Optimization levels
// ---------------------------------------------------------------------------

/// Optimization level of the compiler pipeline.
///
/// `O0` is the historical analysis-only pipeline (the default everywhere, so
/// existing builds and their measured numbers are untouched); `O1` adds the
/// IR-level cleanups and canary scheduling; `O2` additionally removes dead
/// frame stores and strength-reduces the canary check against values cached
/// in otherwise-unused registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// No optimization: analysis passes only.
    #[default]
    O0,
    /// IR cleanups (constant folding, compute fusion) + canary scheduling.
    O1,
    /// `O1` plus dead-store and redundant canary-load elimination.
    O2,
}

impl OptLevel {
    /// Every level, in ascending order.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

    /// The canonical label (`"O0"`, `"O1"`, `"O2"`).
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "O0" | "0" => Ok(OptLevel::O0),
            "O1" | "1" => Ok(OptLevel::O1),
            "O2" | "2" => Ok(OptLevel::O2),
            other => Err(format!("unknown opt level `{other}` (expected O0, O1 or O2)")),
        }
    }
}

// ---------------------------------------------------------------------------
// Pass infrastructure
// ---------------------------------------------------------------------------

/// Per-function facts accumulated by the analysis passes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunctionAnalysis {
    /// Whether the stack-protector policy applies (a local buffer exists).
    pub needs_protection: bool,
    /// Declaration indices of the critical locals (P-SSP-LV candidates).
    pub critical_locals: Vec<usize>,
    /// Estimated cycles of one benign call of the function, computed from
    /// the **post-optimization** instruction stream with canary checks
    /// assumed to pass (input-copy surcharges, which depend on the runtime
    /// input length, are excluded).
    pub estimated_body_cycles: u64,
    /// Names of the passes registered in the pipeline, in order.
    pub passes_run: Vec<&'static str>,
}

/// The lowered instruction stream of one function, with the scheme
/// prologue/epilogue regions tracked so instruction-level passes can reason
/// about (and move) them without re-deriving shapes.
///
/// `insts[..prologue.start]` is the frame establishment, `prologue` covers
/// the scheme's canary prologue, `epilogue` covers the canary check, and the
/// trailing instructions after `epilogue.end` are the `leaveq; retq`
/// teardown (plus any computation a scheduling pass hoisted past the check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredBody {
    /// The full instruction stream of the function.
    pub insts: Vec<Inst>,
    /// Index range of the scheme prologue (empty when unprotected).
    pub prologue: Range<usize>,
    /// Index range of the scheme epilogue (empty when unprotected).
    pub epilogue: Range<usize>,
}

/// Context handed to instruction-level passes.
#[derive(Debug, Clone, Copy)]
pub struct PassCtx<'a> {
    /// The scheme applied to this function (after per-function overrides).
    pub scheme: SchemeKind,
    /// The function's frame layout.
    pub layout: &'a FrameLayout,
    /// When set, canary sequences must keep their canonical shapes — the
    /// binary rewriter pattern-matches them, so builds destined for
    /// rewriting must not reshape prologues or epilogues.
    pub preserve_canary_shapes: bool,
}

/// One pass over a single function.  Every stage hook defaults to a no-op,
/// so analysis-only and transform-only passes implement exactly the stage
/// they care about.
pub trait FunctionPass: Send + Sync {
    /// The pass's name (shows up in [`FunctionAnalysis::passes_run`] and
    /// `harness --list-passes`).
    fn name(&self) -> &'static str;

    /// Stage 1: inspects `func` and updates the accumulated analysis.
    fn analyze(&self, _func: &FunctionDef, _analysis: &mut FunctionAnalysis) {}

    /// Stage 2: rewrites the IR body before frame layout and lowering.
    fn transform_ir(&self, _func: &mut FunctionDef) {}

    /// Stage 3: rewrites the lowered instruction stream.
    fn transform_insts(
        &self,
        _body: &mut LoweredBody,
        _ctx: &PassCtx<'_>,
        _analysis: &mut FunctionAnalysis,
    ) {
    }
}

// ---------------------------------------------------------------------------
// Analysis passes
// ---------------------------------------------------------------------------

/// Decides whether the function needs a canary at all — the
/// `-fstack-protector` policy the paper's plugin re-implements: protect
/// exactly the functions with a local buffer.
#[derive(Debug, Default, Clone, Copy)]
pub struct StackProtectPass;

impl FunctionPass for StackProtectPass {
    fn name(&self) -> &'static str {
        "stack-protect"
    }

    fn analyze(&self, func: &FunctionDef, analysis: &mut FunctionAnalysis) {
        analysis.needs_protection = func.needs_protection();
    }
}

/// Collects the critical locals that P-SSP-LV will guard.  The paper leaves
/// automatic discovery as future work and marks sensitive variables
/// manually (§V-E2); MiniC models that manual annotation with
/// `CriticalBuffer`, and this pass simply collects the annotations.
#[derive(Debug, Default, Clone, Copy)]
pub struct CriticalVariablePass;

impl FunctionPass for CriticalVariablePass {
    fn name(&self) -> &'static str {
        "critical-variables"
    }

    fn analyze(&self, func: &FunctionDef, analysis: &mut FunctionAnalysis) {
        analysis.critical_locals = func.critical_locals();
    }
}

// ---------------------------------------------------------------------------
// IR transform passes
// ---------------------------------------------------------------------------

/// Constant folding over the IR: drops `Compute {{ cycles: 0 }}` no-ops and
/// collapses runs of adjacent `SetReturn` statements to the last one (the
/// only observable write to `%rax`).
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstFoldPass;

impl FunctionPass for ConstFoldPass {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn transform_ir(&self, func: &mut FunctionDef) {
        func.body.retain(|s| !matches!(s, Stmt::Compute { cycles: 0 }));
        let mut out: Vec<Stmt> = Vec::with_capacity(func.body.len());
        for stmt in func.body.drain(..) {
            if matches!(stmt, Stmt::SetReturn { .. })
                && matches!(out.last(), Some(Stmt::SetReturn { .. }))
            {
                out.pop();
            }
            out.push(stmt);
        }
        func.body = out;
    }
}

/// Fuses adjacent `Compute` statements into one, preserving the total cycle
/// count exactly (one `Inst::Compute(a + b)` costs the same `a + b` cycles
/// as the pair, so the fusion is perf-neutral and only shrinks code).
#[derive(Debug, Default, Clone, Copy)]
pub struct ComputeFusionPass;

impl FunctionPass for ComputeFusionPass {
    fn name(&self) -> &'static str {
        "compute-fusion"
    }

    fn transform_ir(&self, func: &mut FunctionDef) {
        let mut out: Vec<Stmt> = Vec::with_capacity(func.body.len());
        for stmt in func.body.drain(..) {
            if let (Some(Stmt::Compute { cycles: acc }), Stmt::Compute { cycles }) =
                (out.last_mut(), &stmt)
            {
                *acc = acc.saturating_add(*cycles);
                continue;
            }
            out.push(stmt);
        }
        func.body = out;
    }
}

/// Dead-store elimination on frame slots: removes `InitBuffer` zero-fills
/// whose bytes can never be observed.  A zero-fill is dead iff the function
/// neither leaks frame memory nor calls other functions, and the buffer is
/// not a `CriticalBuffer` (zeroing a critical variable is treated as
/// semantically meaningful, like scrubbing a secret).  Canary slots are
/// never touched: `InitBuffer` only ever lowers to stores inside the
/// buffer's own slot.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeadStoreElimPass;

impl FunctionPass for DeadStoreElimPass {
    fn name(&self) -> &'static str {
        "dead-store-elim"
    }

    fn transform_ir(&self, func: &mut FunctionDef) {
        let observable =
            func.body.iter().any(|s| matches!(s, Stmt::LeakFrame { .. } | Stmt::Call { .. }));
        if observable {
            return;
        }
        let critical: Vec<bool> = func.locals.iter().map(|l| l.kind.is_critical()).collect();
        func.body.retain(|s| match s {
            Stmt::InitBuffer { local } => critical[*local],
            _ => true,
        });
    }
}

// ---------------------------------------------------------------------------
// Instruction transform passes
// ---------------------------------------------------------------------------

/// Prologue/epilogue scheduling: sinks the canary store past leading setup
/// computation and hoists the canary check above trailing computation, so
/// the protected window tracks the instructions that can actually clobber
/// the frame.  `Inst::Compute` touches neither registers nor memory, so both
/// motions are semantics- and verifier-preserving (the check still
/// dominates `ret`, and no store or input copy crosses the check).
#[derive(Debug, Default, Clone, Copy)]
pub struct CanarySchedulePass;

impl FunctionPass for CanarySchedulePass {
    fn name(&self) -> &'static str {
        "canary-schedule"
    }

    fn transform_insts(
        &self,
        body: &mut LoweredBody,
        ctx: &PassCtx<'_>,
        _analysis: &mut FunctionAnalysis,
    ) {
        if ctx.preserve_canary_shapes || body.prologue.is_empty() || body.epilogue.is_empty() {
            return;
        }

        // Sink the canary store: leading pure computation of the body moves
        // ahead of the scheme prologue.
        let lead = body.insts[body.prologue.end..body.epilogue.start]
            .iter()
            .take_while(|i| matches!(i, Inst::Compute(_)))
            .count();
        if lead > 0 {
            body.insts[body.prologue.start..body.prologue.end + lead].rotate_right(lead);
            body.prologue = body.prologue.start + lead..body.prologue.end + lead;
        }

        // Hoist the check: trailing pure computation of the body moves after
        // the scheme epilogue (before the `leaveq; retq` teardown).
        let trail = body.insts[body.prologue.end..body.epilogue.start]
            .iter()
            .rev()
            .take_while(|i| matches!(i, Inst::Compute(_)))
            .count();
        if trail > 0 {
            let start = body.epilogue.start - trail;
            let len = body.epilogue.len();
            body.insts[start..body.epilogue.end].rotate_left(trail);
            body.epilogue = start..start + len;
        }
    }
}

/// Registers safe to cache canary values in: never produced by the lowering
/// of any MiniC statement or scheme sequence (`r12`/`r13` are reserved for
/// the P-SSP-OWF key, `rax`/`rcx`/`rdx`/`rdi` are the schemes' scratch
/// registers, `rbp`/`rsp` frame the stack).
const CACHE_POOL: [Reg; 8] =
    [Reg::Rbx, Reg::Rsi, Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R14, Reg::R15];

/// Redundant canary-load elimination (leaf functions only).
///
/// The canonical epilogues re-load every canary slot *and* the TLS word and
/// XOR them together; but within a single activation of a leaf function the
/// values written by the prologue are still available — the loads are
/// redundant.  This pass renames (or copies) the prologue's canary values
/// into otherwise-unused registers and replaces the epilogue's xor-chain
/// (or, for P-SSP-OWF, its re-encryption) with one `cmp slot, reg` +
/// `je`/`__stack_chk_fail` guard per slot.  Per-slot compares are strictly
/// stronger than the xor-chain (any single-slot corruption already fails its
/// own compare), `CmpFrameReg` at a policy slot is a first-class canary
/// compare for the verifier, and bookkeeping instructions (DynaGuard/DCR)
/// are preserved verbatim.
///
/// Functions that call other functions are skipped — the callee may itself
/// be optimized and clobber the cache registers.  `PsspBin32` is skipped
/// because its whole point is byte-identical SSP layout, as is any build
/// with [`PassCtx::preserve_canary_shapes`] set.  Any shape the pass does
/// not recognize (including its own output, which makes the pass
/// idempotent) is left untouched.
#[derive(Debug, Default, Clone, Copy)]
pub struct RedundantCanaryLoadElimPass;

impl FunctionPass for RedundantCanaryLoadElimPass {
    fn name(&self) -> &'static str {
        "redundant-canary-load-elim"
    }

    fn transform_insts(
        &self,
        body: &mut LoweredBody,
        ctx: &PassCtx<'_>,
        _analysis: &mut FunctionAnalysis,
    ) {
        if ctx.preserve_canary_shapes
            || matches!(ctx.scheme, SchemeKind::Native | SchemeKind::PsspBin32)
            || body.prologue.is_empty()
            || body.epilogue.is_empty()
            || body.insts.iter().any(|i| matches!(i, Inst::CallFn(_)))
        {
            return;
        }

        let slots = canary_slots(ctx.layout);
        let epilogue = &body.insts[body.epilogue.clone()];
        let Some(bookkeeping) = recognize_epilogue(epilogue, ctx.scheme, &slots) else {
            return;
        };

        let mut free = free_regs(&body.insts);
        if free.len() < slots.len() {
            return;
        }

        let mut prologue: Vec<Inst> = body.insts[body.prologue.clone()].to_vec();
        let Some(cached) = cache_canary_values(&mut prologue, &slots, &mut free) else {
            return;
        };

        // Replace the epilogue core with per-slot compares, preserving the
        // bookkeeping tail; then splice in the rewritten prologue.
        let book_tail: Vec<Inst> =
            body.insts[body.epilogue.end - bookkeeping..body.epilogue.end].to_vec();
        let mut new_epilogue = Vec::with_capacity(3 * cached.len() + book_tail.len());
        for &(slot, reg) in &cached {
            new_epilogue.push(Inst::CmpFrameReg { reg, offset: slot });
            new_epilogue.push(Inst::JeSkip(1));
            new_epilogue.push(Inst::CallStackChkFail);
        }
        new_epilogue.extend(book_tail);

        let epi_start = body.epilogue.start;
        let epi_len = new_epilogue.len();
        body.insts.splice(body.epilogue.clone(), new_epilogue);
        body.epilogue = epi_start..epi_start + epi_len;

        let pro_start = body.prologue.start;
        let old_pro_len = body.prologue.len();
        let new_pro_len = prologue.len();
        body.insts.splice(body.prologue.clone(), prologue);
        body.prologue = pro_start..pro_start + new_pro_len;
        let shift = new_pro_len as i64 - old_pro_len as i64;
        body.epilogue = (body.epilogue.start as i64 + shift) as usize
            ..(body.epilogue.end as i64 + shift) as usize;
    }
}

/// All canary slots of the frame, in prologue store order: the region words
/// directly below the saved `%rbp`, then the P-SSP-LV guard slots.
fn canary_slots(layout: &FrameLayout) -> Vec<i32> {
    let mut slots: Vec<i32> = (1..=layout.canary_words).map(|w| -8 * w as i32).collect();
    slots.extend(layout.info.critical_canary_slots.iter().copied());
    slots
}

/// Registers referenced (read or written) by an instruction, including the
/// implicit operands of `rdtsc` and the AES helper.  Unknown instructions
/// conservatively reference every register, which empties the cache pool
/// and makes the elimination bail.
fn regs_referenced(inst: &Inst) -> Vec<Reg> {
    match inst {
        Inst::PushReg(r)
        | Inst::PopReg(r)
        | Inst::TestReg(r)
        | Inst::Rdrand(r)
        | Inst::InputLenToReg(r)
        | Inst::OutputReg(r) => vec![*r],
        Inst::MovRegReg { dst, src }
        | Inst::XorRegReg { dst, src }
        | Inst::AddRegReg { dst, src }
        | Inst::OrRegReg { dst, src } => vec![*dst, *src],
        Inst::MovTlsToReg { dst, .. }
        | Inst::MovFrameToReg { dst, .. }
        | Inst::MovFrameToReg32 { dst, .. }
        | Inst::MovImmToReg { dst, .. }
        | Inst::LeaFrameToReg { dst, .. }
        | Inst::XorTlsReg { dst, .. }
        | Inst::ShlRegImm { dst, .. }
        | Inst::ShrRegImm { dst, .. } => vec![*dst],
        Inst::MovRegToTls { src, .. }
        | Inst::MovRegToFrame { src, .. }
        | Inst::MovRegToFrame32 { src, .. } => vec![*src],
        Inst::MovMemToReg { dst, base, .. } => vec![*dst, *base],
        Inst::MovRegToMem { src, base, .. } => vec![*src, *base],
        Inst::CmpFrameReg { reg, .. } | Inst::CmpRegImm { reg, .. } => vec![*reg],
        Inst::Rdtsc => vec![Reg::Rax, Reg::Rdx],
        Inst::AesEncryptFrame { nonce } => {
            vec![*nonce, Reg::Rax, Reg::Rdx, Reg::R12, Reg::R13]
        }
        Inst::CallFn(_) => Reg::ALL.to_vec(),
        Inst::CallCheckCanary32 => vec![Reg::Rdi],
        Inst::SubRspImm(_)
        | Inst::AddRspImm(_)
        | Inst::Leave
        | Inst::Ret
        | Inst::MovImmToFrame { .. }
        | Inst::JeSkip(_)
        | Inst::JneSkip(_)
        | Inst::JmpSkip(_)
        | Inst::CallStackChkFail
        | Inst::Nop
        | Inst::RecordCanaryAddress { .. }
        | Inst::PopCanaryAddress
        | Inst::LinkCanaryPush { .. }
        | Inst::LinkCanaryPop { .. }
        | Inst::CopyInputToFrame { .. }
        | Inst::CopyInputToFrameBounded { .. }
        | Inst::Compute(_) => Vec::new(),
        // `Inst` is non_exhaustive: a variant this pass has never seen must
        // poison the whole pool rather than be silently treated as dead.
        _ => Reg::ALL.to_vec(),
    }
}

/// The cache-pool registers not referenced anywhere in the function.
fn free_regs(insts: &[Inst]) -> Vec<Reg> {
    let mut used = [false; 16];
    for inst in insts {
        for reg in regs_referenced(inst) {
            used[reg.index()] = true;
        }
    }
    CACHE_POOL.iter().copied().filter(|r| !used[r.index()]).collect()
}

/// Registers written by an instruction (register destinations only).
fn regs_written(inst: &Inst) -> Vec<Reg> {
    match inst {
        Inst::PopReg(r) | Inst::Rdrand(r) | Inst::InputLenToReg(r) => vec![*r],
        Inst::MovRegReg { dst, .. }
        | Inst::MovTlsToReg { dst, .. }
        | Inst::MovFrameToReg { dst, .. }
        | Inst::MovFrameToReg32 { dst, .. }
        | Inst::MovImmToReg { dst, .. }
        | Inst::LeaFrameToReg { dst, .. }
        | Inst::MovMemToReg { dst, .. }
        | Inst::XorRegReg { dst, .. }
        | Inst::XorTlsReg { dst, .. }
        | Inst::AddRegReg { dst, .. }
        | Inst::ShlRegImm { dst, .. }
        | Inst::ShrRegImm { dst, .. }
        | Inst::OrRegReg { dst, .. } => vec![*dst],
        Inst::Rdtsc | Inst::AesEncryptFrame { .. } => vec![Reg::Rax, Reg::Rdx],
        Inst::CallFn(_) => Reg::ALL.to_vec(),
        _ => Vec::new(),
    }
}

/// Whether the instruction both reads and writes its destination (so the
/// def-chain of the value continues through it).
fn is_read_modify_write(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::XorRegReg { .. }
            | Inst::XorTlsReg { .. }
            | Inst::AddRegReg { .. }
            | Inst::ShlRegImm { .. }
            | Inst::ShrRegImm { .. }
            | Inst::OrRegReg { .. }
    )
}

/// Renames every occurrence of `from` (as any operand) to `to`.
fn rename_reg(inst: &mut Inst, from: Reg, to: Reg) {
    let fix = |r: &mut Reg| {
        if *r == from {
            *r = to;
        }
    };
    match inst {
        Inst::PushReg(r)
        | Inst::PopReg(r)
        | Inst::TestReg(r)
        | Inst::Rdrand(r)
        | Inst::InputLenToReg(r)
        | Inst::OutputReg(r) => fix(r),
        Inst::MovRegReg { dst, src }
        | Inst::XorRegReg { dst, src }
        | Inst::AddRegReg { dst, src }
        | Inst::OrRegReg { dst, src } => {
            fix(dst);
            fix(src);
        }
        Inst::MovTlsToReg { dst, .. }
        | Inst::MovFrameToReg { dst, .. }
        | Inst::MovFrameToReg32 { dst, .. }
        | Inst::MovImmToReg { dst, .. }
        | Inst::LeaFrameToReg { dst, .. }
        | Inst::XorTlsReg { dst, .. }
        | Inst::ShlRegImm { dst, .. }
        | Inst::ShrRegImm { dst, .. } => fix(dst),
        Inst::MovRegToTls { src, .. }
        | Inst::MovRegToFrame { src, .. }
        | Inst::MovRegToFrame32 { src, .. } => fix(src),
        Inst::MovMemToReg { dst, base, .. } => {
            fix(dst);
            fix(base);
        }
        Inst::MovRegToMem { src, base, .. } => {
            fix(src);
            fix(base);
        }
        Inst::CmpFrameReg { reg, .. } | Inst::CmpRegImm { reg, .. } => fix(reg),
        Inst::AesEncryptFrame { nonce } => fix(nonce),
        _ => {}
    }
}

/// Index of the latest instruction before `before` that writes `reg`.
fn find_write_before(insts: &[Inst], before: usize, reg: Reg) -> Option<usize> {
    (0..before).rev().find(|&i| regs_written(&insts[i]).contains(&reg))
}

/// Index of the first instruction after `after` that writes `reg`.
fn find_write_after(insts: &[Inst], after: usize, reg: Reg) -> Option<usize> {
    (after + 1..insts.len()).find(|&i| regs_written(&insts[i]).contains(&reg))
}

/// Rewrites `prologue` so the value stored to each canary slot survives in a
/// register from `free` until the (replaced) epilogue: explicit definitions
/// (`rdrand`, TLS loads, moves) are renamed along their def-use chain;
/// implicit definitions (`rdtsc`, the AES helper, whose destinations are
/// architecturally fixed) get a `mov` copy inserted right after the
/// definition.  Returns the `(slot, register)` cache map, or `None` if any
/// slot's value cannot be traced (in which case `prologue` must be
/// discarded).
fn cache_canary_values(
    prologue: &mut Vec<Inst>,
    slots: &[i32],
    free: &mut Vec<Reg>,
) -> Option<Vec<(i32, Reg)>> {
    let mut cached = Vec::with_capacity(slots.len());
    for &slot in slots {
        let store = prologue
            .iter()
            .position(|i| matches!(i, Inst::MovRegToFrame { offset, .. } if *offset == slot))?;
        let src = match prologue[store] {
            Inst::MovRegToFrame { src, .. } => src,
            _ => unreachable!("position above matched MovRegToFrame"),
        };

        // Walk the def chain back through read-modify-write instructions to
        // the terminal definition of the stored value.
        let mut def = find_write_before(prologue, store, src)?;
        while is_read_modify_write(&prologue[def]) {
            def = find_write_before(prologue, def, src)?;
        }

        let cache_reg = free.pop()?;
        match prologue[def] {
            Inst::Rdtsc | Inst::AesEncryptFrame { .. } => {
                prologue.insert(def + 1, Inst::MovRegReg { dst: cache_reg, src });
            }
            Inst::MovTlsToReg { .. }
            | Inst::Rdrand(_)
            | Inst::MovRegReg { .. }
            | Inst::MovFrameToReg { .. }
            | Inst::MovImmToReg { .. } => {
                let end = find_write_after(prologue, store, src).unwrap_or(prologue.len());
                for inst in &mut prologue[def..end] {
                    rename_reg(inst, src, cache_reg);
                }
            }
            _ => return None,
        }
        cached.push((slot, cache_reg));
    }
    Some(cached)
}

/// Matches the epilogue against the canonical check of `scheme` over
/// `slots`.  Returns the number of trailing bookkeeping instructions
/// (DynaGuard `PopCanaryAddress`, DCR `LinkCanaryPop`) to preserve, or
/// `None` when the shape is not the canonical one.
fn recognize_epilogue(epilogue: &[Inst], scheme: SchemeKind, slots: &[i32]) -> Option<usize> {
    let mut core_len = epilogue.len();
    while core_len > 0
        && matches!(epilogue[core_len - 1], Inst::PopCanaryAddress | Inst::LinkCanaryPop { .. })
    {
        core_len -= 1;
    }
    let core = &epilogue[..core_len];
    let ok = if scheme == SchemeKind::PsspOwf {
        matches_owf_epilogue(core, slots)
    } else {
        matches_xor_chain_epilogue(core, slots)
    };
    ok.then_some(epilogue.len() - core_len)
}

/// The xor-chain shape shared by SSP-style and split-canary epilogues:
/// load `slots[0]`, fold every further slot in with `xor`, XOR the TLS word
/// and guard the `je` with `__stack_chk_fail`.
fn matches_xor_chain_epilogue(core: &[Inst], slots: &[i32]) -> bool {
    let (&first_slot, rest) = match slots.split_first() {
        Some(split) => split,
        None => return false,
    };
    if core.len() != 4 + 2 * rest.len() {
        return false;
    }
    let acc = match core[0] {
        Inst::MovFrameToReg { dst, offset } if offset == first_slot => dst,
        _ => return false,
    };
    for (i, &slot) in rest.iter().enumerate() {
        let load = &core[1 + 2 * i];
        let fold = &core[2 + 2 * i];
        let tmp = match load {
            Inst::MovFrameToReg { dst, offset } if *offset == slot => *dst,
            _ => return false,
        };
        if !matches!(fold, Inst::XorRegReg { dst, src } if *dst == acc && *src == tmp) {
            return false;
        }
    }
    matches!(core[core.len() - 3], Inst::XorTlsReg { dst, .. } if dst == acc)
        && matches!(core[core.len() - 2], Inst::JeSkip(1))
        && matches!(core[core.len() - 1], Inst::CallStackChkFail)
}

/// The P-SSP-OWF shape (Code 9): reload the nonce, re-encrypt, and compare
/// both ciphertext halves against the stored ones.
fn matches_owf_epilogue(core: &[Inst], slots: &[i32]) -> bool {
    if slots != [-8, -16, -24] || core.len() != 8 {
        return false;
    }
    let nonce = match core[0] {
        Inst::MovFrameToReg { dst, offset: -8 } => dst,
        _ => return false,
    };
    matches!(core[1], Inst::AesEncryptFrame { nonce: n } if n == nonce)
        && matches!(core[2], Inst::CmpFrameReg { offset: -16, .. })
        && matches!(core[3], Inst::JeSkip(1))
        && matches!(core[4], Inst::CallStackChkFail)
        && matches!(core[5], Inst::CmpFrameReg { offset: -24, .. })
        && matches!(core[6], Inst::JeSkip(1))
        && matches!(core[7], Inst::CallStackChkFail)
}

// ---------------------------------------------------------------------------
// Cost estimation
// ---------------------------------------------------------------------------

/// Estimates one benign call of the function from the **post-optimization**
/// instruction stream: the sum of every instruction's cycle cost, with each
/// `je`-guarded `__stack_chk_fail` assumed skipped (the check passes on a
/// benign run).  Runs last in every pipeline so the estimate reflects what
/// the VM actually executes.
#[derive(Debug, Default, Clone, Copy)]
pub struct CostEstimationPass;

impl FunctionPass for CostEstimationPass {
    fn name(&self) -> &'static str {
        "cost-estimation"
    }

    fn transform_insts(
        &self,
        body: &mut LoweredBody,
        _ctx: &PassCtx<'_>,
        analysis: &mut FunctionAnalysis,
    ) {
        analysis.estimated_body_cycles = estimate_cycles(&body.insts);
    }
}

/// Straight-line benign-run cycle estimate of an instruction stream (canary
/// checks assumed to pass; input-copy surcharges excluded).
pub fn estimate_cycles(insts: &[Inst]) -> u64 {
    let mut total = 0;
    let mut i = 0;
    while i < insts.len() {
        total += insts[i].cycles();
        if matches!(insts[i], Inst::JeSkip(1))
            && matches!(insts.get(i + 1), Some(Inst::CallStackChkFail))
        {
            i += 1;
        }
        i += 1;
    }
    total
}

// ---------------------------------------------------------------------------
// The pass manager
// ---------------------------------------------------------------------------

/// A pipeline of function passes.
pub struct PassManager {
    passes: Vec<Box<dyn FunctionPass>>,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager").field("passes", &self.pass_names()).finish()
    }
}

impl PassManager {
    /// An empty pass manager.
    pub fn new() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// The standard pipeline for an optimization level.  `O0` is the
    /// historical analysis-only pipeline; higher levels insert the transform
    /// passes between the analyses and the final cost estimation.
    pub fn standard(opt: OptLevel) -> Self {
        let mut pm = Self::new();
        pm.register(Box::new(StackProtectPass));
        pm.register(Box::new(CriticalVariablePass));
        if opt >= OptLevel::O1 {
            pm.register(Box::new(ConstFoldPass));
            pm.register(Box::new(ComputeFusionPass));
            if opt >= OptLevel::O2 {
                pm.register(Box::new(DeadStoreElimPass));
            }
            pm.register(Box::new(CanarySchedulePass));
            if opt >= OptLevel::O2 {
                pm.register(Box::new(RedundantCanaryLoadElimPass));
            }
        }
        pm.register(Box::new(CostEstimationPass));
        pm
    }

    /// Registers an additional pass at the end of the pipeline.
    pub fn register(&mut self, pass: Box<dyn FunctionPass>) {
        self.passes.push(pass);
    }

    /// Names of the registered passes, in pipeline order — the
    /// `harness --list-passes` introspection surface.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the analysis stage over one function.
    pub fn run(&self, func: &FunctionDef) -> FunctionAnalysis {
        let mut analysis = FunctionAnalysis::default();
        for pass in &self.passes {
            pass.analyze(func, &mut analysis);
            analysis.passes_run.push(pass.name());
        }
        analysis
    }

    /// Runs the IR transform stage over one function.
    pub fn transform_ir(&self, func: &mut FunctionDef) {
        for pass in &self.passes {
            pass.transform_ir(func);
        }
    }

    /// Runs the instruction transform stage over one lowered body.
    pub fn transform_insts(
        &self,
        body: &mut LoweredBody,
        ctx: &PassCtx<'_>,
        analysis: &mut FunctionAnalysis,
    ) {
        for pass in &self.passes {
            pass.transform_insts(body, ctx, analysis);
        }
    }
}

impl Default for PassManager {
    fn default() -> Self {
        Self::standard(OptLevel::O0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FunctionBuilder;

    #[test]
    fn standard_o0_pipeline_is_the_historical_analysis_pipeline() {
        let func = FunctionBuilder::new("f")
            .buffer("buf", 32)
            .critical_buffer("secret", 16)
            .compute(100)
            .compute(250)
            .build();
        let analysis = PassManager::standard(OptLevel::O0).run(&func);
        assert!(analysis.needs_protection);
        assert_eq!(analysis.critical_locals, vec![1]);
        assert_eq!(
            analysis.passes_run,
            vec!["stack-protect", "critical-variables", "cost-estimation"]
        );
    }

    #[test]
    fn o2_pipeline_composes_every_transform_pass() {
        let pm = PassManager::standard(OptLevel::O2);
        assert_eq!(
            pm.pass_names(),
            vec![
                "stack-protect",
                "critical-variables",
                "const-fold",
                "compute-fusion",
                "dead-store-elim",
                "canary-schedule",
                "redundant-canary-load-elim",
                "cost-estimation",
            ]
        );
        let o1 = PassManager::standard(OptLevel::O1);
        assert!(!o1.pass_names().contains(&"redundant-canary-load-elim"));
        assert!(o1.pass_names().contains(&"canary-schedule"));
    }

    #[test]
    fn opt_level_parses_and_displays() {
        assert_eq!("O2".parse::<OptLevel>().unwrap(), OptLevel::O2);
        assert_eq!("o1".parse::<OptLevel>().unwrap(), OptLevel::O1);
        assert_eq!("0".parse::<OptLevel>().unwrap(), OptLevel::O0);
        assert!("O3".parse::<OptLevel>().is_err());
        assert_eq!(OptLevel::O2.to_string(), "O2");
        assert_eq!(OptLevel::default(), OptLevel::O0);
        assert!(OptLevel::O0 < OptLevel::O1 && OptLevel::O1 < OptLevel::O2);
    }

    #[test]
    fn functions_without_buffers_are_not_protected() {
        let func = FunctionBuilder::new("leaf").scalar("x").compute(10).build();
        let analysis = PassManager::standard(OptLevel::O0).run(&func);
        assert!(!analysis.needs_protection);
        assert!(analysis.critical_locals.is_empty());
    }

    #[test]
    fn custom_passes_can_be_registered() {
        struct CountLocals;
        impl FunctionPass for CountLocals {
            fn name(&self) -> &'static str {
                "count-locals"
            }
            fn analyze(&self, func: &FunctionDef, analysis: &mut FunctionAnalysis) {
                analysis.estimated_body_cycles += func.locals.len() as u64;
            }
        }
        let mut pm = PassManager::new();
        pm.register(Box::new(CountLocals));
        assert_eq!(pm.pass_names(), vec!["count-locals"]);
        let func = FunctionBuilder::new("f").scalar("a").scalar("b").build();
        assert_eq!(pm.run(&func).estimated_body_cycles, 2);
    }

    #[test]
    fn empty_pass_manager_produces_default_analysis() {
        let func = FunctionBuilder::new("f").buffer("buf", 8).build();
        let analysis = PassManager::new().run(&func);
        assert!(!analysis.needs_protection);
        assert!(analysis.passes_run.is_empty());
    }

    #[test]
    fn const_fold_drops_zero_computes_and_collapses_returns() {
        let mut func = FunctionBuilder::new("f")
            .compute(0)
            .compute(10)
            .returns(1)
            .returns(2)
            .returns(3)
            .build();
        ConstFoldPass.transform_ir(&mut func);
        assert_eq!(func.body, vec![Stmt::Compute { cycles: 10 }, Stmt::SetReturn { value: 3 }]);
        // Idempotent: a second application changes nothing.
        let folded = func.clone();
        ConstFoldPass.transform_ir(&mut func);
        assert_eq!(func, folded);
    }

    #[test]
    fn compute_fusion_preserves_total_cycles() {
        let mut func = FunctionBuilder::new("f")
            .compute(10)
            .compute(20)
            .returns(0)
            .compute(5)
            .compute(7)
            .build();
        ComputeFusionPass.transform_ir(&mut func);
        assert_eq!(
            func.body,
            vec![
                Stmt::Compute { cycles: 30 },
                Stmt::SetReturn { value: 0 },
                Stmt::Compute { cycles: 12 },
            ]
        );
        let fused = func.clone();
        ComputeFusionPass.transform_ir(&mut func);
        assert_eq!(func, fused, "fusion must be idempotent");
    }

    #[test]
    fn dead_store_elim_keeps_critical_and_observable_zero_fills() {
        // Plain buffer, nothing observable: the zero-fill is dead.
        let mut dead =
            FunctionBuilder::new("f").buffer("buf", 16).zero_fill("buf").compute(5).build();
        DeadStoreElimPass.transform_ir(&mut dead);
        assert!(!dead.body.iter().any(|s| matches!(s, Stmt::InitBuffer { .. })));

        // Critical buffer: scrubbing a secret is semantically meaningful.
        let mut critical =
            FunctionBuilder::new("f").critical_buffer("key", 16).zero_fill("key").build();
        DeadStoreElimPass.transform_ir(&mut critical);
        assert!(critical.body.iter().any(|s| matches!(s, Stmt::InitBuffer { .. })));

        // A frame leak makes the zeroed bytes observable.
        let mut leaky =
            FunctionBuilder::new("f").buffer("buf", 16).zero_fill("buf").leak("buf", 2).build();
        DeadStoreElimPass.transform_ir(&mut leaky);
        assert!(leaky.body.iter().any(|s| matches!(s, Stmt::InitBuffer { .. })));

        // A call makes the frame reachable from elsewhere: keep the store.
        let mut calling =
            FunctionBuilder::new("f").buffer("buf", 16).zero_fill("buf").call("g").build();
        DeadStoreElimPass.transform_ir(&mut calling);
        assert!(calling.body.iter().any(|s| matches!(s, Stmt::InitBuffer { .. })));
    }

    #[test]
    fn estimate_treats_guarded_fail_as_skipped() {
        let insts = vec![Inst::Compute(10), Inst::JeSkip(1), Inst::CallStackChkFail, Inst::Ret];
        // Compute(10) + je(1) + ret(2); the fail call is skipped.
        assert_eq!(estimate_cycles(&insts), 13);
    }
}
