//! The pass framework mirroring the paper's LLVM deployment (§V-B).
//!
//! The real P-SSP plugin is a `FunctionPass` registered with LLVM's pass
//! manager whose `runOnFunction` decides, per function, whether a canary is
//! needed and which locals deserve extra protection.  The MiniC compiler
//! keeps the same structure: a [`PassManager`] runs a pipeline of
//! [`FunctionPass`]es over each function and accumulates a
//! [`FunctionAnalysis`] that the code generator then consumes.

use crate::ir::FunctionDef;

/// Per-function facts accumulated by the analysis passes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunctionAnalysis {
    /// Whether the stack-protector policy applies (a local buffer exists).
    pub needs_protection: bool,
    /// Declaration indices of the critical locals (P-SSP-LV candidates).
    pub critical_locals: Vec<usize>,
    /// Estimated body cost in cycles (sum of `Compute` statements), used by
    /// the workload generators to sanity-check overhead ratios.
    pub estimated_body_cycles: u64,
    /// Names of the passes that ran, in order (for diagnostics).
    pub passes_run: Vec<&'static str>,
}

/// One analysis pass over a single function.
pub trait FunctionPass: Send + Sync {
    /// The pass's name (shows up in [`FunctionAnalysis::passes_run`]).
    fn name(&self) -> &'static str;

    /// Inspects `func` and updates the accumulated analysis.
    fn run(&self, func: &FunctionDef, analysis: &mut FunctionAnalysis);
}

/// Decides whether the function needs a canary at all — the
/// `-fstack-protector` policy the paper's plugin re-implements: protect
/// exactly the functions with a local buffer.
#[derive(Debug, Default, Clone, Copy)]
pub struct StackProtectPass;

impl FunctionPass for StackProtectPass {
    fn name(&self) -> &'static str {
        "stack-protect"
    }

    fn run(&self, func: &FunctionDef, analysis: &mut FunctionAnalysis) {
        analysis.needs_protection = func.needs_protection();
    }
}

/// Collects the critical locals that P-SSP-LV will guard.  The paper leaves
/// automatic discovery as future work and marks sensitive variables
/// manually (§V-E2); MiniC models that manual annotation with
/// `CriticalBuffer`, and this pass simply collects the annotations.
#[derive(Debug, Default, Clone, Copy)]
pub struct CriticalVariablePass;

impl FunctionPass for CriticalVariablePass {
    fn name(&self) -> &'static str {
        "critical-variables"
    }

    fn run(&self, func: &FunctionDef, analysis: &mut FunctionAnalysis) {
        analysis.critical_locals = func.critical_locals();
    }
}

/// Estimates the body cost of the function in cycles.
#[derive(Debug, Default, Clone, Copy)]
pub struct CostEstimationPass;

impl FunctionPass for CostEstimationPass {
    fn name(&self) -> &'static str {
        "cost-estimation"
    }

    fn run(&self, func: &FunctionDef, analysis: &mut FunctionAnalysis) {
        analysis.estimated_body_cycles = func
            .body
            .iter()
            .map(|stmt| match stmt {
                crate::ir::Stmt::Compute { cycles } => *cycles,
                _ => 0,
            })
            .sum();
    }
}

/// A pipeline of function passes.
pub struct PassManager {
    passes: Vec<Box<dyn FunctionPass>>,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager").field("passes", &names).finish()
    }
}

impl PassManager {
    /// An empty pass manager.
    pub fn new() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// The standard pipeline used by the compiler: protection policy,
    /// critical-variable collection and cost estimation.
    pub fn standard() -> Self {
        let mut pm = Self::new();
        pm.register(Box::new(StackProtectPass));
        pm.register(Box::new(CriticalVariablePass));
        pm.register(Box::new(CostEstimationPass));
        pm
    }

    /// Registers an additional pass at the end of the pipeline.
    pub fn register(&mut self, pass: Box<dyn FunctionPass>) {
        self.passes.push(pass);
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs the pipeline over one function.
    pub fn run(&self, func: &FunctionDef) -> FunctionAnalysis {
        let mut analysis = FunctionAnalysis::default();
        for pass in &self.passes {
            pass.run(func, &mut analysis);
            analysis.passes_run.push(pass.name());
        }
        analysis
    }
}

impl Default for PassManager {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FunctionBuilder;

    #[test]
    fn standard_pipeline_runs_all_passes() {
        let func = FunctionBuilder::new("f")
            .buffer("buf", 32)
            .critical_buffer("secret", 16)
            .compute(100)
            .compute(250)
            .build();
        let analysis = PassManager::standard().run(&func);
        assert!(analysis.needs_protection);
        assert_eq!(analysis.critical_locals, vec![1]);
        assert_eq!(analysis.estimated_body_cycles, 350);
        assert_eq!(
            analysis.passes_run,
            vec!["stack-protect", "critical-variables", "cost-estimation"]
        );
    }

    #[test]
    fn functions_without_buffers_are_not_protected() {
        let func = FunctionBuilder::new("leaf").scalar("x").compute(10).build();
        let analysis = PassManager::standard().run(&func);
        assert!(!analysis.needs_protection);
        assert!(analysis.critical_locals.is_empty());
    }

    #[test]
    fn custom_passes_can_be_registered() {
        struct CountLocals;
        impl FunctionPass for CountLocals {
            fn name(&self) -> &'static str {
                "count-locals"
            }
            fn run(&self, func: &FunctionDef, analysis: &mut FunctionAnalysis) {
                analysis.estimated_body_cycles += func.locals.len() as u64;
            }
        }
        let mut pm = PassManager::new();
        pm.register(Box::new(CountLocals));
        assert_eq!(pm.len(), 1);
        assert!(!pm.is_empty());
        let func = FunctionBuilder::new("f").scalar("a").scalar("b").build();
        assert_eq!(pm.run(&func).estimated_body_cycles, 2);
    }

    #[test]
    fn empty_pass_manager_produces_default_analysis() {
        let func = FunctionBuilder::new("f").buffer("buf", 8).build();
        let analysis = PassManager::new().run(&func);
        assert!(!analysis.needs_protection);
        assert!(analysis.passes_run.is_empty());
    }
}
