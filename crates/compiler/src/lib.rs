//! MiniC compiler for the polycanary workspace.
//!
//! The paper deploys P-SSP through an LLVM plugin registered as a
//! `FunctionPass` (§V-B).  This crate reproduces that deployment for the
//! simulated substrate:
//!
//! * [`ir`] — the MiniC intermediate representation: functions with typed
//!   locals (scalars, buffers, critical buffers) and bodies made of
//!   computation, calls and possibly-overflowing buffer writes.
//! * [`pass`] — the optimizing pass pipeline mirroring the plugin
//!   structure: analysis, IR transforms and instruction transforms selected
//!   by [`pass::OptLevel`].
//! * [`frame`] — stack-frame layout with SSP-style buffer reordering and the
//!   per-critical-variable guard slots of P-SSP-LV.
//! * [`codegen`] — lowering to VM instructions with the scheme-provided
//!   prologue/epilogue, plus the code-expansion accounting of Table II.
//!
//! # Quick example
//!
//! ```
//! use polycanary_compiler::ir::{FunctionBuilder, ModuleBuilder};
//! use polycanary_compiler::codegen::Compiler;
//! use polycanary_core::scheme::SchemeKind;
//!
//! let module = ModuleBuilder::new()
//!     .function(
//!         FunctionBuilder::new("handle_request")
//!             .buffer("buf", 64)
//!             .vulnerable_copy("buf")
//!             .returns(0)
//!             .build(),
//!     )
//!     .build()?;
//!
//! let compiled = Compiler::new(SchemeKind::Pssp).compile(&module)?;
//! let mut machine = compiled.into_machine(42);
//! let mut process = machine.spawn();
//! process.set_input(vec![0u8; 16]);               // benign request
//! assert!(machine.run(&mut process)?.exit.is_normal());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod error;
pub mod frame;
pub mod ir;
pub mod pass;

pub use codegen::{code_expansion, CodeExpansion, CompiledModule, Compiler};
pub use error::CompileError;
pub use frame::{layout_frame, FrameLayout};
pub use ir::{FunctionBuilder, FunctionDef, Local, LocalKind, ModuleBuilder, ModuleDef, Stmt};
pub use pass::{FunctionAnalysis, FunctionPass, LoweredBody, OptLevel, PassCtx, PassManager};

#[cfg(test)]
mod tests {
    use super::*;
    use polycanary_core::scheme::SchemeKind;

    #[test]
    fn facade_compiles_a_module_end_to_end() {
        let module = ModuleBuilder::new()
            .function(FunctionBuilder::new("f").buffer("b", 16).safe_copy("b").returns(3).build())
            .build()
            .unwrap();
        let compiled = Compiler::new(SchemeKind::Ssp).compile(&module).unwrap();
        assert!(compiled.code_size() > 0);
    }
}
