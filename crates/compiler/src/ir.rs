//! The MiniC intermediate representation.
//!
//! The paper's compiler plugin is an LLVM `FunctionPass` that inspects each
//! function's local variables and inserts the scheme's prologue/epilogue when
//! a stack buffer is present (§V-B).  MiniC captures exactly the information
//! that decision needs: functions with typed locals (scalars vs buffers, with
//! buffers optionally marked *critical* for P-SSP-LV) and bodies made of the
//! operations that matter for the evaluation — computation, calls, and the
//! library-style buffer writes that can overflow.

use crate::error::CompileError;

/// Kind of a local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalKind {
    /// A scalar (pointer-sized) local.
    Scalar,
    /// A byte buffer of the given size.
    Buffer {
        /// Size of the buffer in bytes.
        size: u32,
    },
    /// A byte buffer marked as a *critical variable* in the sense of
    /// §IV-B: under P-SSP-LV it receives its own guard canary.
    CriticalBuffer {
        /// Size of the buffer in bytes.
        size: u32,
    },
}

impl LocalKind {
    /// Size of the local in bytes (scalars are one machine word).
    pub fn size(&self) -> u32 {
        match self {
            LocalKind::Scalar => 8,
            LocalKind::Buffer { size } | LocalKind::CriticalBuffer { size } => *size,
        }
    }

    /// Whether the local is a buffer (of either kind).
    pub fn is_buffer(&self) -> bool {
        matches!(self, LocalKind::Buffer { .. } | LocalKind::CriticalBuffer { .. })
    }

    /// Whether the local is a critical buffer.
    pub fn is_critical(&self) -> bool {
        matches!(self, LocalKind::CriticalBuffer { .. })
    }
}

/// A local variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Local {
    /// Variable name (for diagnostics).
    pub name: String,
    /// Variable kind and size.
    pub kind: LocalKind,
}

/// Source of the bytes written into a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteSource {
    /// The process input, copied without any bound — the `strcpy`/`gets`
    /// model, i.e. the vulnerability every attack exploits.
    InputUnbounded,
    /// The process input, truncated to the destination buffer's size — the
    /// `strncpy`/`read(fd, buf, sizeof buf)` model.
    InputBounded,
}

/// One statement of a MiniC function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Straight-line computation consuming the given number of cycles.
    Compute {
        /// Simulated cycles of work.
        cycles: u64,
    },
    /// Zero-fill a local buffer — the `memset(buf, 0, sizeof buf)` /
    /// `char buf[N] = {0};` model.  Subject to dead-store elimination at
    /// `O2` when the zeroed bytes are provably unobservable.
    InitBuffer {
        /// Index of the buffer local to zero.
        local: usize,
    },
    /// Copy the process input into a local buffer.
    WriteBuffer {
        /// Index of the destination local.
        local: usize,
        /// Where the bytes come from and whether the copy is bounded.
        source: WriteSource,
    },
    /// Call another function of the module by name.
    Call {
        /// Name of the callee.
        callee: String,
    },
    /// Set the function's return value (placed in `%rax`).
    SetReturn {
        /// The value to return.
        value: u64,
    },
    /// Write `words` consecutive stack words starting at the given local to
    /// the output channel — an over-read / memory-disclosure bug used by the
    /// exposure-resilience experiments (§IV-C).
    LeakFrame {
        /// Index of the local where the leak starts.
        local: usize,
        /// Number of 8-byte words disclosed.
        words: u32,
    },
}

/// A MiniC function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Local variable declarations.
    pub locals: Vec<Local>,
    /// Function body.
    pub body: Vec<Stmt>,
}

impl FunctionDef {
    /// Whether `-fstack-protector` style policy would protect this function:
    /// it contains at least one local buffer (§V-B).
    pub fn needs_protection(&self) -> bool {
        self.locals.iter().any(|l| l.kind.is_buffer())
    }

    /// Indices of critical buffers, in declaration order.
    pub fn critical_locals(&self) -> Vec<usize> {
        self.locals
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind.is_critical())
            .map(|(i, _)| i)
            .collect()
    }

    /// Validates intra-function references.
    ///
    /// # Errors
    ///
    /// Returns the first [`CompileError`] found (unknown local, write to a
    /// scalar, ...).
    pub fn validate(&self) -> Result<(), CompileError> {
        for stmt in &self.body {
            match stmt {
                Stmt::WriteBuffer { local, .. } | Stmt::InitBuffer { local } => {
                    let decl = self.locals.get(*local).ok_or(CompileError::UnknownLocal {
                        function: self.name.clone(),
                        index: *local,
                    })?;
                    if !decl.kind.is_buffer() {
                        return Err(CompileError::NotABuffer {
                            function: self.name.clone(),
                            local: decl.name.clone(),
                        });
                    }
                }
                Stmt::LeakFrame { local, .. } => {
                    if self.locals.get(*local).is_none() {
                        return Err(CompileError::UnknownLocal {
                            function: self.name.clone(),
                            index: *local,
                        });
                    }
                }
                Stmt::Compute { .. } | Stmt::Call { .. } | Stmt::SetReturn { .. } => {}
            }
        }
        Ok(())
    }
}

/// A MiniC module: a set of functions plus an entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleDef {
    /// The functions of the module.
    pub functions: Vec<FunctionDef>,
    /// Name of the entry function.
    pub entry: String,
}

impl ModuleDef {
    /// Validates the whole module (names, references, entry point).
    ///
    /// # Errors
    ///
    /// Returns the first error found.
    pub fn validate(&self) -> Result<(), CompileError> {
        for (i, f) in self.functions.iter().enumerate() {
            if self.functions.iter().skip(i + 1).any(|g| g.name == f.name) {
                return Err(CompileError::DuplicateFunction { name: f.name.clone() });
            }
            f.validate()?;
            for stmt in &f.body {
                if let Stmt::Call { callee } = stmt {
                    if !self.functions.iter().any(|g| &g.name == callee) {
                        return Err(CompileError::UnknownCallee {
                            function: f.name.clone(),
                            callee: callee.clone(),
                        });
                    }
                }
            }
        }
        if !self.functions.iter().any(|f| f.name == self.entry) {
            return Err(CompileError::MissingEntry { entry: self.entry.clone() });
        }
        Ok(())
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Builder for a [`FunctionDef`].
///
/// ```
/// use polycanary_compiler::ir::FunctionBuilder;
///
/// let handler = FunctionBuilder::new("handle_request")
///     .buffer("buf", 64)
///     .scalar("status")
///     .vulnerable_copy("buf")
///     .compute(500)
///     .returns(0)
///     .build();
/// assert!(handler.needs_protection());
/// ```
#[derive(Debug, Clone)]
pub struct FunctionBuilder {
    def: FunctionDef,
}

impl FunctionBuilder {
    /// Starts a function with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            def: FunctionDef { name: name.into(), locals: Vec::new(), body: Vec::new() },
        }
    }

    fn local_index(&self, name: &str) -> usize {
        self.def
            .locals
            .iter()
            .position(|l| l.name == name)
            .unwrap_or_else(|| panic!("local `{name}` was not declared before use"))
    }

    /// Declares a scalar local.
    #[must_use]
    pub fn scalar(mut self, name: impl Into<String>) -> Self {
        self.def.locals.push(Local { name: name.into(), kind: LocalKind::Scalar });
        self
    }

    /// Declares a byte buffer local.
    #[must_use]
    pub fn buffer(mut self, name: impl Into<String>, size: u32) -> Self {
        self.def.locals.push(Local { name: name.into(), kind: LocalKind::Buffer { size } });
        self
    }

    /// Declares a critical byte buffer local (P-SSP-LV protected).
    #[must_use]
    pub fn critical_buffer(mut self, name: impl Into<String>, size: u32) -> Self {
        self.def.locals.push(Local { name: name.into(), kind: LocalKind::CriticalBuffer { size } });
        self
    }

    /// Adds an unbounded (vulnerable) copy of the process input into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not declared.
    #[must_use]
    pub fn vulnerable_copy(mut self, buf: &str) -> Self {
        let local = self.local_index(buf);
        self.def.body.push(Stmt::WriteBuffer { local, source: WriteSource::InputUnbounded });
        self
    }

    /// Adds a bounded (safe) copy of the process input into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not declared.
    #[must_use]
    pub fn safe_copy(mut self, buf: &str) -> Self {
        let local = self.local_index(buf);
        self.def.body.push(Stmt::WriteBuffer { local, source: WriteSource::InputBounded });
        self
    }

    /// Zero-fills the buffer `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not declared.
    #[must_use]
    pub fn zero_fill(mut self, buf: &str) -> Self {
        let local = self.local_index(buf);
        self.def.body.push(Stmt::InitBuffer { local });
        self
    }

    /// Adds a memory-disclosure over-read of `words` words starting at `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not declared.
    #[must_use]
    pub fn leak(mut self, buf: &str, words: u32) -> Self {
        let local = self.local_index(buf);
        self.def.body.push(Stmt::LeakFrame { local, words });
        self
    }

    /// Adds straight-line computation.
    #[must_use]
    pub fn compute(mut self, cycles: u64) -> Self {
        self.def.body.push(Stmt::Compute { cycles });
        self
    }

    /// Adds a call to another function.
    #[must_use]
    pub fn call(mut self, callee: impl Into<String>) -> Self {
        self.def.body.push(Stmt::Call { callee: callee.into() });
        self
    }

    /// Sets the return value.
    #[must_use]
    pub fn returns(mut self, value: u64) -> Self {
        self.def.body.push(Stmt::SetReturn { value });
        self
    }

    /// Finishes the function.
    pub fn build(self) -> FunctionDef {
        self.def
    }
}

/// Builder for a [`ModuleDef`].
#[derive(Debug, Clone, Default)]
pub struct ModuleBuilder {
    functions: Vec<FunctionDef>,
    entry: Option<String>,
}

impl ModuleBuilder {
    /// Starts an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function.
    #[must_use]
    pub fn function(mut self, def: FunctionDef) -> Self {
        self.functions.push(def);
        self
    }

    /// Sets the entry function (defaults to the first function added).
    #[must_use]
    pub fn entry(mut self, name: impl Into<String>) -> Self {
        self.entry = Some(name.into());
        self
    }

    /// Finishes and validates the module.
    ///
    /// # Errors
    ///
    /// Returns the first validation error.
    pub fn build(self) -> Result<ModuleDef, CompileError> {
        let entry = self
            .entry
            .or_else(|| self.functions.first().map(|f| f.name.clone()))
            .unwrap_or_default();
        let module = ModuleDef { functions: self.functions, entry };
        module.validate()?;
        Ok(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn victim() -> FunctionDef {
        FunctionBuilder::new("victim").buffer("buf", 32).vulnerable_copy("buf").returns(0).build()
    }

    #[test]
    fn protection_policy_requires_a_buffer() {
        let no_buffer = FunctionBuilder::new("leaf").scalar("x").compute(10).build();
        assert!(!no_buffer.needs_protection());
        assert!(victim().needs_protection());
    }

    #[test]
    fn critical_locals_are_listed_in_order() {
        let f = FunctionBuilder::new("f")
            .buffer("a", 16)
            .critical_buffer("b", 16)
            .scalar("c")
            .critical_buffer("d", 8)
            .build();
        assert_eq!(f.critical_locals(), vec![1, 3]);
    }

    #[test]
    fn module_validation_catches_unknown_callee() {
        let module = ModuleBuilder::new()
            .function(FunctionBuilder::new("main").call("missing").build())
            .build();
        assert!(matches!(module, Err(CompileError::UnknownCallee { .. })));
    }

    #[test]
    fn module_validation_catches_duplicate_functions() {
        let module = ModuleBuilder::new().function(victim()).function(victim()).build();
        assert!(matches!(module, Err(CompileError::DuplicateFunction { .. })));
    }

    #[test]
    fn module_validation_catches_missing_entry() {
        let module = ModuleBuilder::new().function(victim()).entry("nope").build();
        assert!(matches!(module, Err(CompileError::MissingEntry { .. })));
    }

    #[test]
    fn function_validation_rejects_write_to_scalar() {
        let f = FunctionDef {
            name: "f".into(),
            locals: vec![Local { name: "x".into(), kind: LocalKind::Scalar }],
            body: vec![Stmt::WriteBuffer { local: 0, source: WriteSource::InputUnbounded }],
        };
        assert!(matches!(f.validate(), Err(CompileError::NotABuffer { .. })));
    }

    #[test]
    fn function_validation_rejects_zero_fill_of_scalar() {
        let f = FunctionDef {
            name: "f".into(),
            locals: vec![Local { name: "x".into(), kind: LocalKind::Scalar }],
            body: vec![Stmt::InitBuffer { local: 0 }],
        };
        assert!(matches!(f.validate(), Err(CompileError::NotABuffer { .. })));
    }

    #[test]
    fn function_validation_rejects_unknown_local() {
        let f = FunctionDef {
            name: "f".into(),
            locals: vec![],
            body: vec![Stmt::LeakFrame { local: 3, words: 1 }],
        };
        assert!(matches!(f.validate(), Err(CompileError::UnknownLocal { .. })));
    }

    #[test]
    fn default_entry_is_first_function() {
        let module = ModuleBuilder::new()
            .function(victim())
            .function(FunctionBuilder::new("other").build())
            .build()
            .unwrap();
        assert_eq!(module.entry, "victim");
        assert!(module.function("other").is_some());
        assert!(module.function("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "was not declared")]
    fn builder_panics_on_undeclared_local() {
        let _ = FunctionBuilder::new("f").vulnerable_copy("nope");
    }

    #[test]
    fn local_kind_sizes() {
        assert_eq!(LocalKind::Scalar.size(), 8);
        assert_eq!(LocalKind::Buffer { size: 64 }.size(), 64);
        assert!(LocalKind::CriticalBuffer { size: 8 }.is_critical());
        assert!(!LocalKind::Buffer { size: 8 }.is_critical());
    }
}
