//! Stack-frame layout.
//!
//! The layout mirrors what GCC/LLVM produce under `-fstack-protector`:
//!
//! * the canary region sits directly below the saved frame pointer,
//! * buffers are placed *above* scalars (closest to the canary) so that an
//!   overflow reaches the canary before it can corrupt scalar locals, and
//! * under P-SSP-LV, every critical buffer additionally gets a guard canary
//!   slot at the address directly above it (§IV-B).

use polycanary_core::layout::FrameInfo;
use polycanary_core::scheme::CanaryScheme;

use crate::error::CompileError;
use crate::ir::FunctionDef;

/// Maximum supported frame size (disp32 addressing of locals).
const MAX_FRAME: i64 = i32::MAX as i64 / 2;

/// Complete layout of one function's frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLayout {
    /// The scheme-facing summary (size, protection flag, critical slots).
    pub info: FrameInfo,
    /// `%rbp`-relative offset of the *lowest* byte of each local, indexed by
    /// the local's declaration order in the [`FunctionDef`].
    pub local_offsets: Vec<i32>,
    /// Number of canary words reserved directly below the saved `%rbp`.
    pub canary_words: u32,
}

impl FrameLayout {
    /// Offset of a local by declaration index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range (layouts are only built from
    /// validated functions).
    pub fn local_offset(&self, index: usize) -> i32 {
        self.local_offsets[index]
    }
}

/// Computes the frame layout of `func` under `scheme`.
///
/// # Errors
///
/// Returns [`CompileError::FrameTooLarge`] if the locals do not fit in a
/// 32-bit displacement.
pub fn layout_frame(
    func: &FunctionDef,
    scheme: &dyn CanaryScheme,
) -> Result<FrameLayout, CompileError> {
    let protected = func.needs_protection();
    let canary_words = if protected { scheme.canary_region_words() } else { 0 };
    let guard_locals = scheme.properties().protects_local_variables;

    let mut cursor: i64 = -(8 * i64::from(canary_words));
    let mut local_offsets = vec![0i32; func.locals.len()];
    let mut critical_slots = Vec::new();

    // Buffers first (nearest the canary), then scalars — the reordering SSP
    // performs so buffer overflows cannot silently corrupt scalars.
    let mut order: Vec<usize> = (0..func.locals.len()).collect();
    order.sort_by_key(|&i| usize::from(!func.locals[i].kind.is_buffer()));

    for index in order {
        let local = &func.locals[index];
        if guard_locals && local.kind.is_critical() && protected {
            cursor -= 8;
            critical_slots.push(cursor as i32);
        }
        let size = (i64::from(local.kind.size()) + 7) / 8 * 8;
        cursor -= size;
        if -cursor > MAX_FRAME {
            return Err(CompileError::FrameTooLarge {
                function: func.name.clone(),
                size: (-cursor) as u64,
            });
        }
        local_offsets[index] = cursor as i32;
    }

    let frame_size = ((-cursor + 15) / 16 * 16) as u32;
    let info = if protected {
        FrameInfo::protected(func.name.clone(), frame_size).with_critical_slots(critical_slots)
    } else {
        FrameInfo::unprotected(func.name.clone(), frame_size)
    };
    Ok(FrameLayout { info, local_offsets, canary_words })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FunctionBuilder;
    use polycanary_core::scheme::SchemeKind;

    #[test]
    fn ssp_layout_places_buffer_below_single_canary() {
        let func = FunctionBuilder::new("f").buffer("buf", 16).scalar("x").build();
        let scheme = SchemeKind::Ssp.scheme();
        let layout = layout_frame(&func, scheme.as_ref()).unwrap();
        assert_eq!(layout.canary_words, 1);
        // Canary occupies [-8, 0); the buffer sits right below it.
        assert_eq!(layout.local_offset(0), -8 - 16);
        // The scalar sits below the buffer (reordered even though declared after).
        assert_eq!(layout.local_offset(1), -8 - 16 - 8);
        assert_eq!(layout.info.frame_size % 16, 0);
    }

    #[test]
    fn pssp_layout_reserves_two_canary_words() {
        let func = FunctionBuilder::new("f").buffer("buf", 16).build();
        let layout = layout_frame(&func, SchemeKind::Pssp.scheme().as_ref()).unwrap();
        assert_eq!(layout.canary_words, 2);
        assert_eq!(layout.local_offset(0), -16 - 16);
    }

    #[test]
    fn buffers_are_reordered_above_scalars() {
        // Declared scalar-first, but the buffer must end up closer to the
        // canary (higher address) than the scalar.
        let func = FunctionBuilder::new("f").scalar("x").buffer("buf", 32).build();
        let layout = layout_frame(&func, SchemeKind::Ssp.scheme().as_ref()).unwrap();
        assert!(layout.local_offset(1) > layout.local_offset(0));
    }

    #[test]
    fn lv_layout_inserts_guard_slots_above_critical_buffers() {
        let func =
            FunctionBuilder::new("f").critical_buffer("secret", 16).buffer("scratch", 16).build();
        let scheme = SchemeKind::PsspLv.scheme();
        let layout = layout_frame(&func, scheme.as_ref()).unwrap();
        assert_eq!(layout.info.critical_canary_slots.len(), 1);
        let guard = layout.info.critical_canary_slots[0];
        let secret = layout.local_offset(0);
        // The guard slot is the word directly above the critical buffer.
        assert_eq!(guard, secret + 16);
    }

    #[test]
    fn non_lv_schemes_do_not_insert_guard_slots() {
        let func = FunctionBuilder::new("f").critical_buffer("secret", 16).build();
        let layout = layout_frame(&func, SchemeKind::Pssp.scheme().as_ref()).unwrap();
        assert!(layout.info.critical_canary_slots.is_empty());
    }

    #[test]
    fn unprotected_functions_have_no_canary_region() {
        let func = FunctionBuilder::new("leaf").scalar("x").scalar("y").build();
        let layout = layout_frame(&func, SchemeKind::Pssp.scheme().as_ref()).unwrap();
        assert_eq!(layout.canary_words, 0);
        assert!(!layout.info.protected);
        assert_eq!(layout.local_offset(0), -8);
        assert_eq!(layout.local_offset(1), -16);
    }

    #[test]
    fn buffer_sizes_are_rounded_to_words() {
        let func = FunctionBuilder::new("f").buffer("odd", 13).build();
        let layout = layout_frame(&func, SchemeKind::Ssp.scheme().as_ref()).unwrap();
        assert_eq!(layout.local_offset(0), -8 - 16);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let func = FunctionBuilder::new("huge").buffer("big", u32::MAX / 2).build();
        let err = layout_frame(&func, SchemeKind::Ssp.scheme().as_ref()).unwrap_err();
        assert!(matches!(err, CompileError::FrameTooLarge { .. }));
    }

    #[test]
    fn frame_size_covers_all_locals_and_canaries() {
        let func = FunctionBuilder::new("f").buffer("a", 64).buffer("b", 32).scalar("c").build();
        let layout = layout_frame(&func, SchemeKind::Pssp.scheme().as_ref()).unwrap();
        let lowest = *layout.local_offsets.iter().min().unwrap();
        assert!(i64::from(layout.info.frame_size) >= i64::from(-lowest));
    }
}
