//! Compiler error type.

use std::fmt;

/// Errors reported while compiling a MiniC module.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// A statement referenced a local variable index that does not exist.
    UnknownLocal {
        /// Function containing the reference.
        function: String,
        /// The out-of-range index.
        index: usize,
    },
    /// A call statement referenced a function that is not part of the module.
    UnknownCallee {
        /// Function containing the call.
        function: String,
        /// Name of the missing callee.
        callee: String,
    },
    /// The module's entry function does not exist.
    MissingEntry {
        /// The entry name that failed to resolve.
        entry: String,
    },
    /// Two functions share the same name.
    DuplicateFunction {
        /// The duplicated name.
        name: String,
    },
    /// A statement that writes to a local targeted a scalar, which has no
    /// buffer semantics.
    NotABuffer {
        /// Function containing the statement.
        function: String,
        /// Name of the local.
        local: String,
    },
    /// The frame grew beyond what a 32-bit displacement can address.
    FrameTooLarge {
        /// Function whose frame overflowed.
        function: String,
        /// Computed frame size in bytes.
        size: u64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownLocal { function, index } => {
                write!(f, "function `{function}` references unknown local #{index}")
            }
            CompileError::UnknownCallee { function, callee } => {
                write!(f, "function `{function}` calls unknown function `{callee}`")
            }
            CompileError::MissingEntry { entry } => {
                write!(f, "entry function `{entry}` is not defined")
            }
            CompileError::DuplicateFunction { name } => {
                write!(f, "function `{name}` is defined more than once")
            }
            CompileError::NotABuffer { function, local } => {
                write!(f, "local `{local}` in `{function}` is not a buffer")
            }
            CompileError::FrameTooLarge { function, size } => {
                write!(f, "frame of `{function}` is too large ({size} bytes)")
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CompileError::UnknownCallee { function: "main".into(), callee: "gone".into() };
        let msg = err.to_string();
        assert!(msg.contains("main") && msg.contains("gone"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CompileError>();
    }
}
