//! Stripping run-varying fields so exports compare record-for-record.
//!
//! The engine-wide determinism contract says a scenario's records are a
//! pure function of the experiment context's reproducibility knobs —
//! except for the fields that *measure* the run rather than
//! describe its results: wall-clock times (`wall_ms`), the worker budget
//! (`workers`, which changes wall time but never records) and the output
//! medium (`format`).  [`scrub`] removes exactly those, recursively, so
//! two exports of the same configuration are byte-comparable and the
//! Markdown report is deterministic.

use polycanary_core::record::{Record, Value};

/// Field names that legitimately vary between otherwise-identical runs
/// and are therefore excluded from comparisons and generated reports.
pub const VOLATILE_FIELDS: &[&str] = &["wall_ms", "workers", "format"];

/// Returns `record` with every [`VOLATILE_FIELDS`] member removed, at
/// every nesting depth.
pub fn scrub(record: &Record) -> Record {
    let mut out = Record::new();
    for (name, value) in record.fields() {
        if VOLATILE_FIELDS.contains(&name.as_str()) {
            continue;
        }
        out.push(name.clone(), scrub_value(value));
    }
    out
}

fn scrub_value(value: &Value) -> Value {
    match value {
        Value::Record(rec) => Value::Record(scrub(rec)),
        Value::List(items) => Value::List(items.iter().map(scrub_value).collect()),
        other => other.clone(),
    }
}

/// Scrubs a whole record list.
pub fn scrub_all(records: &[Record]) -> Vec<Record> {
    records.iter().map(scrub).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_removes_volatile_fields_at_every_depth() {
        let nested = Record::new().field("verdict", "breaks").field("wall_ms", 12.5f64);
        let rec = Record::new()
            .field("scheme", "SSP")
            .field("workers", 8u64)
            .field("format", "json")
            .field("campaign", nested)
            .field("runs", vec![Record::new().field("seed", 1u64).field("wall_ms", 0.25f64)]);
        let scrubbed = scrub(&rec);
        assert_eq!(
            scrubbed.to_json(),
            r#"{"scheme":"SSP","campaign":{"verdict":"breaks"},"runs":[{"seed":1}]}"#
        );
        // Already-clean records pass through unchanged.
        assert_eq!(scrub(&scrubbed), scrubbed);
        assert_eq!(scrub_all(&[rec.clone(), rec]).len(), 2);
    }
}
